//! Cross-crate integration: the full stack from lock-free region through
//! driver, DMA engine, memory manager, and physical bytes.

use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};
use memif_hwsim::MemoryKind;

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_mul(31).wrapping_add((i % 249) as u8))
        .collect()
}

/// A long mixed workload: many regions replicated and migrated back and
/// forth, with contents verified byte-for-byte at every step and all
/// resources (slots, frames, descriptors) conserved at the end.
#[test]
fn mixed_workload_conserves_everything() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();

    let live_frames_start = sys.alloc.live_frames();
    let mut regions = Vec::new();
    for r in 0..6u8 {
        let va = sys.mmap(space, 32, PageSize::Small4K, NodeId(0)).unwrap();
        let data = pattern(32 * 4096, r);
        sys.write_user(space, va, &data).unwrap();
        regions.push((va, data));
    }
    let live_frames_mapped = sys.alloc.live_frames();
    assert_eq!(live_frames_mapped - live_frames_start, 6 * 32);

    for round in 0..4 {
        // Alternate migrations to fast and back, plus replications into
        // scratch space.
        for (va, _) in &regions {
            let target = if round % 2 == 0 { NodeId(1) } else { NodeId(0) };
            memif
                .submit(
                    &mut sys,
                    &mut sim,
                    MoveSpec::migrate(*va, 32, PageSize::Small4K, target),
                )
                .unwrap();
        }
        sim.run(&mut sys);
        let mut completed = 0;
        while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
            assert!(c.status.is_ok(), "round {round}: {:?}", c.status);
            completed += 1;
        }
        assert_eq!(completed, regions.len());

        for (va, data) in &regions {
            let mut back = vec![0u8; data.len()];
            sys.read_user(space, *va, &mut back).unwrap();
            assert_eq!(&back, data, "round {round}: data survived migration");
            let node = sys
                .node_of(sys.space(space).translate(*va).unwrap())
                .unwrap();
            let expect = if round % 2 == 0 { NodeId(1) } else { NodeId(0) };
            assert_eq!(node, expect, "round {round}: region on the right node");
        }
    }

    // Conservation: no leaked frames, all slots home, engine quiescent.
    assert_eq!(sys.alloc.live_frames(), live_frames_mapped);
    let dev = sys.device(memif.device()).unwrap();
    assert_eq!(dev.region.stats().free, dev.config.queue_capacity);
    assert_eq!(dev.stats.completed, 24);
    assert!(dev.is_idle());
    memif.close(&mut sys).unwrap();
}

/// Replication into fast memory followed by compute-and-writeback, like
/// the runtime does, across the public API only.
#[test]
fn replicate_compute_writeback_cycle() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();

    let slow = sys.mmap(space, 16, PageSize::Small4K, NodeId(0)).unwrap();
    let fast = sys.mmap(space, 16, PageSize::Small4K, NodeId(1)).unwrap();
    let input = pattern(16 * 4096, 99);
    sys.write_user(space, slow, &input).unwrap();

    // In: slow -> fast.
    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::replicate(slow, fast, 16, PageSize::Small4K),
        )
        .unwrap();
    sim.run(&mut sys);
    assert!(memif
        .retrieve_completed(&mut sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());

    // "Compute": increment every byte in fast memory through the CPU path.
    let mut buf = vec![0u8; input.len()];
    sys.read_user(space, fast, &mut buf).unwrap();
    for b in &mut buf {
        *b = b.wrapping_add(1);
    }
    sys.write_user(space, fast, &buf).unwrap();

    // Out: fast -> slow.
    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::replicate(fast, slow, 16, PageSize::Small4K),
        )
        .unwrap();
    sim.run(&mut sys);
    assert!(memif
        .retrieve_completed(&mut sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());

    let mut out = vec![0u8; input.len()];
    sys.read_user(space, slow, &mut out).unwrap();
    let expect: Vec<u8> = input.iter().map(|b| b.wrapping_add(1)).collect();
    assert_eq!(out, expect, "writeback carried the computed bytes");
}

/// Large pages travel the same pipeline.
#[test]
fn large_page_end_to_end() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    let va = sys.mmap(space, 2, PageSize::Large2M, NodeId(0)).unwrap();
    let data = pattern(4 << 20, 5);
    sys.write_user(space, va, &data).unwrap();

    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(va, 2, PageSize::Large2M, NodeId(1)),
        )
        .unwrap();
    sim.run(&mut sys);
    let c = memif.retrieve_completed(&mut sys).unwrap().unwrap();
    assert!(c.status.is_ok());
    assert_eq!(c.bytes, 4 << 20);

    let fast = sys.topo.node_of_kind(MemoryKind::Fast).unwrap().id;
    assert_eq!(
        sys.node_of(sys.space(space).translate(va).unwrap()),
        Some(fast)
    );
    let mut back = vec![0u8; data.len()];
    sys.read_user(space, va, &mut back).unwrap();
    assert_eq!(back, data);
    // Fast node has 6 MiB: exactly one more 2 MiB block free.
    assert_eq!(sys.alloc.free_bytes(fast), (6 << 20) - (4 << 20));
}

/// The boot quirk of §6.1 travels the whole stack: before boot
/// completes, migrations to the hidden SRAM node must fail cleanly.
#[test]
fn migration_to_offline_node_fails_cleanly() {
    use memif_hwsim::{CostModel, Topology};
    // A topology whose fast bank never comes online (boot_visible=false
    // and we don't complete boot... with_profile always boots, so use a
    // one-node topology instead).
    let topo = Topology::custom(
        vec![memif_hwsim::MemoryNode {
            id: NodeId(0),
            name: "ddr".into(),
            kind: MemoryKind::Slow,
            tier: memif_hwsim::TierRank(0),
            base: memif_hwsim::PhysAddr::new(0x8000_0000),
            bytes: 64 << 20,
            bandwidth_gbps: 6.2,
            boot_visible: true,
        }],
        4,
    )
    .expect("valid one-node topology");
    let mut sys = System::with_profile(topo, CostModel::keystone_ii());
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    let va = sys.mmap(space, 4, PageSize::Small4K, NodeId(0)).unwrap();

    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    sim.run(&mut sys);
    let c = memif.retrieve_completed(&mut sys).unwrap().unwrap();
    assert_eq!(c.status.0, memif::MoveStatus::Invalid);
    assert!(
        sys.space(space).translate(va).is_some(),
        "mapping untouched"
    );
}
