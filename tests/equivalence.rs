//! Property-based equivalence: random request mixes through memif leave
//! memory in exactly the state a trivially-correct reference (plain
//! `Vec<u8>` copies) predicts — and the Linux baseline agrees with memif
//! on final state for the same migrations.

use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};
use memif_baseline::{mbind, RegionRequest};
use memif_hwsim::UsageMeter;
use proptest::prelude::*;

const REGIONS: usize = 4;
const PAGES: u32 = 8;
const REGION_BYTES: usize = (PAGES as usize) * 4096;

#[derive(Debug, Clone)]
enum Op {
    Replicate { src: usize, dst: usize },
    Migrate { region: usize, to_fast: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..REGIONS), (0..REGIONS)).prop_map(|(src, dst)| Op::Replicate { src, dst }),
        ((0..REGIONS), any::<bool>()).prop_map(|(region, to_fast)| Op::Migrate { region, to_fast }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memif_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();

        // Reference: plain byte vectors.
        let mut model: Vec<Vec<u8>> = Vec::new();
        let mut regions = Vec::new();
        for r in 0..REGIONS {
            let va = sys.mmap(space, PAGES, PageSize::Small4K, NodeId(0)).unwrap();
            let data: Vec<u8> = (0..REGION_BYTES).map(|i| ((i + r * 7) % 251) as u8).collect();
            sys.write_user(space, va, &data).unwrap();
            model.push(data);
            regions.push(va);
        }

        for op in &ops {
            match *op {
                Op::Replicate { src, dst } => {
                    if src == dst {
                        continue; // overlapping replication is rejected
                    }
                    memif.submit(&mut sys, &mut sim, MoveSpec::replicate(
                        regions[src], regions[dst], PAGES, PageSize::Small4K,
                    )).unwrap();
                    sim.run(&mut sys);
                    let c = memif.retrieve_completed(&mut sys).unwrap().unwrap();
                    prop_assert!(c.status.is_ok());
                    let src_data = model[src].clone();
                    model[dst] = src_data;
                }
                Op::Migrate { region, to_fast } => {
                    let node = if to_fast { NodeId(1) } else { NodeId(0) };
                    memif.submit(&mut sys, &mut sim, MoveSpec::migrate(
                        regions[region], PAGES, PageSize::Small4K, node,
                    )).unwrap();
                    sim.run(&mut sys);
                    let c = memif.retrieve_completed(&mut sys).unwrap().unwrap();
                    prop_assert!(c.status.is_ok());
                    // Migration never changes contents.
                    let pa = sys.space(space).translate(regions[region]).unwrap();
                    prop_assert_eq!(sys.node_of(pa), Some(node));
                }
            }
            // Full-state check after every op.
            for (va, expect) in regions.iter().zip(&model) {
                let mut got = vec![0u8; REGION_BYTES];
                sys.read_user(space, *va, &mut got).unwrap();
                prop_assert_eq!(&got, expect);
            }
        }
    }

    /// memif migration and Linux `mbind` reach identical observable
    /// states (contents + destination node) from identical starts.
    #[test]
    fn memif_and_baseline_agree(seed in any::<u8>(), to_fast in any::<bool>()) {
        let node = if to_fast { NodeId(1) } else { NodeId(0) };
        let data: Vec<u8> = (0..REGION_BYTES).map(|i| (i as u8).wrapping_add(seed)).collect();

        // memif path.
        let (memif_bytes, memif_node) = {
            let mut sys = System::keystone_ii();
            let mut sim = Sim::new();
            let space = sys.new_space();
            let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
            let va = sys.mmap(space, PAGES, PageSize::Small4K, NodeId(0)).unwrap();
            sys.write_user(space, va, &data).unwrap();
            memif.submit(&mut sys, &mut sim,
                MoveSpec::migrate(va, PAGES, PageSize::Small4K, node)).unwrap();
            sim.run(&mut sys);
            prop_assert!(memif.retrieve_completed(&mut sys).unwrap().unwrap().status.is_ok());
            let mut got = vec![0u8; REGION_BYTES];
            sys.read_user(space, va, &mut got).unwrap();
            let n = sys.node_of(sys.space(space).translate(va).unwrap()).unwrap();
            (got, n)
        };

        // Linux baseline path.
        let (linux_bytes, linux_node) = {
            let mut sys = System::keystone_ii();
            let space = sys.new_space();
            let va = sys.mmap(space, PAGES, PageSize::Small4K, NodeId(0)).unwrap();
            sys.write_user(space, va, &data).unwrap();
            let mut meter = UsageMeter::new();
            let cost = sys.cost.clone();
            let (spaces, alloc, phys) = sys.split_for_baseline();
            let out = mbind(&mut spaces[0], alloc, phys, &cost, &mut meter,
                &[RegionRequest { start: va, pages: PAGES, page_size: PageSize::Small4K, dst_node: node }]);
            prop_assert!(out.failed.is_empty());
            let mut got = vec![0u8; REGION_BYTES];
            sys.read_user(space, va, &mut got).unwrap();
            let n = sys.node_of(sys.space(space).translate(va).unwrap()).unwrap();
            (got, n)
        };

        prop_assert_eq!(memif_bytes, linux_bytes);
        prop_assert_eq!(memif_node, linux_node);
    }
}
