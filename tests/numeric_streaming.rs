//! Numerical end-to-end validation: the memif data path preserves
//! computation bit-for-bit.
//!
//! The timing figures use kernel *profiles*; here the actual STREAM and
//! StreamCluster arithmetic runs over data that travels the full moving
//! machinery — DMA replication into fast-memory prefetch buffers,
//! chunked compute, DMA writeback, and migrations — and the results are
//! compared against a plain in-host reference.

use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};
use memif_workloads::kernels::{as_f64_vec, pgain, stream_triad, write_f64};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CHUNK_PAGES: u32 = 16; // 64 KiB prefetch buffers
const CHUNK_BYTES: usize = (CHUNK_PAGES as usize) * 4096;
const CHUNKS: usize = 12;

fn random_f64_bytes(rng: &mut StdRng, len_bytes: usize) -> Vec<u8> {
    let values: Vec<f64> = (0..len_bytes / 8)
        .map(|_| rng.random_range(-1e3..1e3))
        .collect();
    let mut out = vec![0u8; len_bytes];
    write_f64(&mut out, &values);
    out
}

/// STREAM.triad computed through prefetch buffers: inputs live in slow
/// memory, chunks are replicated into fast buffers, the kernel runs on
/// the fast copy, and results are written back through another
/// replication. The output must equal the reference computed directly.
#[test]
fn triad_through_prefetch_buffers_is_exact() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let scalar = 3.25;

    let total = CHUNKS * CHUNK_BYTES;
    let b_data = random_f64_bytes(&mut rng, total);
    let c_data = random_f64_bytes(&mut rng, total);

    // Big arrays in slow memory.
    let pages = (total / 4096) as u32;
    let b_slow = sys
        .mmap(space, pages, PageSize::Small4K, NodeId(0))
        .unwrap();
    let c_slow = sys
        .mmap(space, pages, PageSize::Small4K, NodeId(0))
        .unwrap();
    let a_slow = sys
        .mmap(space, pages, PageSize::Small4K, NodeId(0))
        .unwrap();
    sys.write_user(space, b_slow, &b_data).unwrap();
    sys.write_user(space, c_slow, &c_data).unwrap();

    // Fast-memory prefetch buffers: b-chunk, c-chunk, a-chunk.
    let b_buf = sys
        .mmap(space, CHUNK_PAGES, PageSize::Small4K, NodeId(1))
        .unwrap();
    let c_buf = sys
        .mmap(space, CHUNK_PAGES, PageSize::Small4K, NodeId(1))
        .unwrap();
    let a_buf = sys
        .mmap(space, CHUNK_PAGES, PageSize::Small4K, NodeId(1))
        .unwrap();

    for chunk in 0..CHUNKS {
        let off = (chunk * CHUNK_BYTES) as u64;
        // Fill both input buffers asynchronously (two requests, one
        // ioctl at most — the kernel worker picks up the second).
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::replicate(b_slow.offset(off), b_buf, CHUNK_PAGES, PageSize::Small4K),
            )
            .unwrap();
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::replicate(c_slow.offset(off), c_buf, CHUNK_PAGES, PageSize::Small4K),
            )
            .unwrap();
        sim.run(&mut sys);
        assert!(memif
            .retrieve_completed(&mut sys)
            .unwrap()
            .unwrap()
            .status
            .is_ok());
        assert!(memif
            .retrieve_completed(&mut sys)
            .unwrap()
            .unwrap()
            .status
            .is_ok());

        // Compute on the fast copies.
        let mut b_bytes = vec![0u8; CHUNK_BYTES];
        let mut c_bytes = vec![0u8; CHUNK_BYTES];
        sys.read_user(space, b_buf, &mut b_bytes).unwrap();
        sys.read_user(space, c_buf, &mut c_bytes).unwrap();
        let a_bytes = stream_triad(&b_bytes, &c_bytes, scalar);
        sys.write_user(space, a_buf, &a_bytes).unwrap();

        // Write the result back to slow memory with another replication.
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::replicate(a_buf, a_slow.offset(off), CHUNK_PAGES, PageSize::Small4K),
            )
            .unwrap();
        sim.run(&mut sys);
        assert!(memif
            .retrieve_completed(&mut sys)
            .unwrap()
            .unwrap()
            .status
            .is_ok());
    }

    // Reference, computed directly on the host copies.
    let reference = stream_triad(&b_data, &c_data, scalar);
    let mut result = vec![0u8; total];
    sys.read_user(space, a_slow, &mut result).unwrap();
    assert_eq!(
        result, reference,
        "bit-exact triad through the move machinery"
    );
}

/// pgain computed over a point stream that is migrated between nodes
/// mid-computation: partial sums over migrated chunks equal the
/// reference over the whole stream.
#[test]
fn pgain_survives_migration_mid_stream() {
    const DIM: usize = 3;
    const POINTS_PER_CHUNK: usize = CHUNK_BYTES / ((DIM + 1) * 8);

    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(7);

    // Build a valid point stream: coords + positive assignment cost.
    let mut values = Vec::new();
    for _ in 0..POINTS_PER_CHUNK * 4 {
        for _ in 0..DIM {
            values.push(rng.random_range(-10.0..10.0));
        }
        values.push(rng.random_range(0.1..30.0));
    }
    let mut stream = vec![0u8; values.len() * 8];
    write_f64(&mut stream, &values);
    // Pad the region to whole pages.
    let pages = stream.len().div_ceil(4096) as u32;
    let region = sys
        .mmap(space, pages, PageSize::Small4K, NodeId(0))
        .unwrap();
    sys.write_user(space, region, &stream).unwrap();

    let candidate = [0.5f64, -0.25, 1.0];
    let reference = pgain(&stream, &candidate, DIM);

    // Process in 4 chunks; migrate the region to the other node between
    // chunks (the data keeps moving underneath the computation).
    let mut total_gain = 0.0;
    let chunk_bytes = values.len() * 8 / 4;
    for chunk in 0..4 {
        let node = if chunk % 2 == 0 { NodeId(1) } else { NodeId(0) };
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::migrate(region, pages, PageSize::Small4K, node),
            )
            .unwrap();
        sim.run(&mut sys);
        assert!(memif
            .retrieve_completed(&mut sys)
            .unwrap()
            .unwrap()
            .status
            .is_ok());

        let mut bytes = vec![0u8; chunk_bytes];
        sys.read_user(
            space,
            region.offset((chunk * chunk_bytes) as u64),
            &mut bytes,
        )
        .unwrap();
        total_gain += pgain(&bytes, &candidate, DIM);
    }
    assert!(
        (total_gain - reference).abs() < 1e-9,
        "pgain {total_gain} vs reference {reference}"
    );
    // Sanity: the computation used real data.
    assert!(reference > 0.0);
    assert_eq!(as_f64_vec(&stream).len(), values.len());
}
