//! Whole-stack scenario: several subsystems composed the way a real
//! deployment would use them — a FastPool manages residency for a
//! multi-phase job whose regions are shared with a sibling process,
//! while a streaming workload runs on the same machine through its own
//! memif instance.

use memif::{Memif, MemifConfig, NodeId, PageSize, Sim, System};
use memif_runtime::{FastPool, Placement, PoolRegion, StreamConfig, StreamRuntime};
use memif_workloads::stream_triad;

#[test]
fn pool_and_streaming_coexist() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();

    // Tenant A: a phased job managed by a FastPool (its own device).
    let job = sys.new_space();
    let job_memif = Memif::open(&mut sys, job, MemifConfig::default()).unwrap();
    let pool = FastPool::new(&sys, job_memif, 3 << 20); // leave 3 MiB for the stream
    let regions: Vec<PoolRegion> = (0..4)
        .map(|i| {
            let vaddr = sys.mmap(job, 256, PageSize::Small4K, NodeId(0)).unwrap();
            sys.write_user(job, vaddr, &vec![i as u8 + 1; 1 << 20])
                .unwrap();
            PoolRegion {
                space: job,
                vaddr,
                pages: 256,
                page_size: PageSize::Small4K,
            }
        })
        .collect();

    // Tenant B: a STREAM.triad run through the prefetch runtime (its own
    // device and space).
    let streamer = sys.new_space();
    let stream_memif = Memif::open(&mut sys, streamer, MemifConfig::default()).unwrap();
    let config = StreamConfig {
        placement: Placement::MemifPrefetch,
        total_input: 16 << 20,
        ..StreamConfig::default()
    };
    let rt = StreamRuntime::launch(
        &mut sys,
        &mut sim,
        streamer,
        Some(stream_memif),
        config,
        stream_triad(),
    );

    // Drive the pool through its phases while the stream runs: promote
    // each region in turn (3 MiB of pool budget forces evictions).
    for (i, r) in regions.iter().enumerate() {
        pool.promote(&mut sys, &mut sim, *r);
        let _ = i;
        sim.run(&mut sys);
    }
    sim.run(&mut sys);

    // Stream finished and produced sane throughput despite sharing the
    // engine with the pool's moves.
    let report = rt.report();
    assert_eq!(report.input_bytes, 16 << 20);
    assert!(
        report.traffic_gbps > 1.0,
        "stream made progress: {:.2}",
        report.traffic_gbps
    );

    // Pool is quiescent, last regions resident, data all intact.
    assert!(pool.is_quiescent());
    assert!(pool.is_resident(regions.last().unwrap()));
    for (i, r) in regions.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        sys.read_user(job, r.vaddr, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == i as u8 + 1), "region {i} intact");
    }

    // Devices stayed isolated: each instance served only its own work.
    let job_dev = sys.device(pool.memif().device()).unwrap();
    assert!(job_dev.stats.completed >= 4);
    assert_eq!(job_dev.stats.failed, 0);
}
