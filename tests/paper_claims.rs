//! The paper's evaluation claims, as executable assertions.
//!
//! Each test pins one qualitative result of §6 (the *shape*: who wins,
//! by roughly what factor, where the crossovers fall). Exact paper
//! magnitudes live in EXPERIMENTS.md; the tolerances here are loose
//! enough to survive re-calibration but tight enough to catch a
//! regression that would invalidate the reproduction.

use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};
use memif_baseline::{run_migspeed, MigspeedConfig};
use memif_hwsim::{CostModel, Topology};
use memif_runtime::{Placement, StreamConfig, StreamRuntime};
use memif_workloads::table4_kernels;

fn booted() -> Topology {
    let mut t = Topology::keystone_ii();
    t.complete_boot();
    t
}

/// §2.2 / abstract: Linux migrates 1500 4 KB pages at ≈0.30 GB/s on the
/// ARM SoC — below 10% of the DDR bandwidth.
#[test]
fn claim_linux_migration_is_slow() {
    let r = run_migspeed(
        &booted(),
        &CostModel::keystone_ii(),
        MigspeedConfig {
            pages_per_syscall: 1_500,
            batches: 1,
            page_size: PageSize::Small4K,
            from: NodeId(0),
            to: NodeId(1),
        },
    );
    assert!(
        (0.25..0.35).contains(&r.throughput_gbps),
        "got {:.3}",
        r.throughput_gbps
    );
    assert!(
        r.throughput_gbps < 0.1 * 6.2,
        "below 10% of memory bandwidth"
    );
}

/// Abstract: "memif reduces CPU usage by up to 15% for small pages and
/// by up to 38× for large pages."
#[test]
fn claim_cpu_usage_reductions() {
    use memif_bench_shim::*;
    // Small pages: modest reduction (memif still does per-page VM work).
    let linux4k = probe_linux(PageSize::Small4K, 64);
    let memif4k = probe_memif(PageSize::Small4K, 64);
    assert!(
        memif4k.cpu_usage < linux4k.cpu_usage,
        "memif uses less CPU at 4KB"
    );
    assert!(
        memif4k.cpu_usage > linux4k.cpu_usage * 0.5,
        "at 4KB the reduction is modest (paper: up to 15%)"
    );
    // Large pages: an order-of-magnitude-plus reduction.
    let linux2m = probe_linux(PageSize::Large2M, 4);
    let memif2m = probe_memif(PageSize::Large2M, 4);
    let factor = linux2m.cpu_usage / memif2m.cpu_usage;
    assert!(factor > 20.0, "paper: up to 38x; got {factor:.0}x");
}

/// §6.4: in a burst of eight 16-page requests, memif makes one syscall
/// and each completion arrives soon after the previous; Linux either
/// pays one syscall per request or delays all completions to the batch
/// end.
#[test]
fn claim_latency_shape() {
    use memif_bench_shim::*;
    let memif_run = stream_memif_shim(16, 8, 8);
    assert_eq!(memif_run.ioctls, 1, "one kick-start for the whole burst");
    // Evenly spread completions: max gap below 2x min gap.
    let gaps: Vec<u64> = memif_run
        .completion_times
        .windows(2)
        .map(|w| w[1].as_ns() - w[0].as_ns())
        .collect();
    let (min, max) = (gaps.iter().min().unwrap(), gaps.iter().max().unwrap());
    assert!(
        *max < *min * 3,
        "pipelined completions are evenly spaced: {gaps:?}"
    );

    let linux1 = stream_linux_shim(16, 8, 1);
    let linux8 = stream_linux_shim(16, 8, 8);
    let mean =
        |ts: &[memif::SimTime]| ts.iter().map(|t| t.as_ns()).sum::<u64>() as f64 / ts.len() as f64;
    let m = mean(&memif_run.completion_times);
    assert!(
        m < mean(&linux1.completion_times) * 0.75,
        "memif mean latency well below batch-1"
    );
    assert!(
        m < mean(&linux8.completion_times) * 0.5,
        "and far below batch-8"
    );
    // Paper: reduces latency by up to 63%.
    let reduction = 1.0 - m / mean(&linux8.completion_times);
    assert!(reduction > 0.5, "got {:.0}%", reduction * 100.0);
}

/// §6.5: except at one 4 KB page per request, memif migration beats
/// migspeed by ≥40%, by up to ~3× at large pages; replication is faster
/// still.
#[test]
fn claim_throughput_shape() {
    use memif_bench_shim::*;
    for (page, pages, min_ratio, max_ratio) in [
        (PageSize::Small4K, 16u32, 1.4, 6.0),
        (PageSize::Medium64K, 16, 2.0, 5.0),
        (PageSize::Large2M, 4, 2.0, 3.5),
    ] {
        let linux = stream_linux_page(page, pages, 24, 1);
        let mig = stream_memif_page(page, pages, 24, false);
        let rep = stream_memif_page(page, pages, 24, true);
        let ratio = mig.throughput_gbps / linux.throughput_gbps;
        assert!(
            (min_ratio..max_ratio).contains(&ratio),
            "{page} x{pages}: mig/linux = {ratio:.2}"
        );
        assert!(
            rep.throughput_gbps >= mig.throughput_gbps * 0.99,
            "{page}: replication at least matches migration"
        );
    }
}

/// §6.6 / Table 4: every streaming kernel gains from the memif runtime;
/// STREAM kernels gain ≈⅓, pgain ≈¼.
#[test]
fn claim_streaming_gains() {
    for kernel in table4_kernels() {
        let mut gains = Vec::new();
        for placement in [Placement::SlowOnly, Placement::MemifPrefetch] {
            let mut sys = System::keystone_ii();
            let mut sim = Sim::new();
            let space = sys.new_space();
            let memif = (placement == Placement::MemifPrefetch)
                .then(|| Memif::open(&mut sys, space, MemifConfig::default()).unwrap());
            let config = StreamConfig {
                placement,
                total_input: 32 << 20,
                ..StreamConfig::default()
            };
            let rt =
                StreamRuntime::launch(&mut sys, &mut sim, space, memif, config, kernel.clone());
            sim.run(&mut sys);
            gains.push(rt.report().traffic_gbps);
        }
        let gain = gains[1] / gains[0] - 1.0;
        assert!(
            (0.10..0.55).contains(&gain),
            "{}: gain {:.1}% outside the paper's 20–35% neighborhood",
            kernel.name,
            gain * 100.0
        );
    }
}

/// §5.2: success-path Release does no TLB flushing (semi-final PTEs
/// never enter the TLB), halving the flush count vs prevention.
#[test]
fn claim_release_needs_no_flush() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    let va = sys.mmap(space, 32, PageSize::Small4K, NodeId(0)).unwrap();
    let before = sys.space(space).tlb().stats().page_flushes;
    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(va, 32, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    sim.run(&mut sys);
    assert!(memif
        .retrieve_completed(&mut sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());
    assert_eq!(sys.space(space).tlb().stats().page_flushes - before, 32);
}

/// Thin wrappers over the bench crate's harness so claims reuse the
/// exact experiment code paths.
mod memif_bench_shim {
    use super::*;
    use memif_bench::{
        probe_linux_once, probe_memif_once, stream_linux, stream_memif, ProbeResult, StreamResult,
    };
    use memif_workloads::ShapeKind;

    pub fn probe_linux(page: PageSize, pages: u32) -> ProbeResult {
        probe_linux_once(&CostModel::keystone_ii(), page, pages)
    }

    pub fn probe_memif(page: PageSize, pages: u32) -> ProbeResult {
        probe_memif_once(
            &CostModel::keystone_ii(),
            MemifConfig::default(),
            ShapeKind::Migrate,
            page,
            pages,
            2,
        )
    }

    pub fn stream_memif_shim(pages: u32, count: usize, window: usize) -> StreamResult {
        stream_memif(
            &CostModel::keystone_ii(),
            MemifConfig::default(),
            ShapeKind::Migrate,
            PageSize::Small4K,
            pages,
            count,
            window,
        )
    }

    pub fn stream_linux_shim(pages: u32, count: usize, batch: usize) -> StreamResult {
        stream_linux(
            &CostModel::keystone_ii(),
            PageSize::Small4K,
            pages,
            count,
            batch,
        )
    }

    pub fn stream_linux_page(
        page: PageSize,
        pages: u32,
        count: usize,
        batch: usize,
    ) -> StreamResult {
        stream_linux(&CostModel::keystone_ii(), page, pages, count, batch)
    }

    pub fn stream_memif_page(
        page: PageSize,
        pages: u32,
        count: usize,
        replicate: bool,
    ) -> StreamResult {
        stream_memif(
            &CostModel::keystone_ii(),
            MemifConfig::default(),
            if replicate {
                ShapeKind::Replicate
            } else {
                ShapeKind::Migrate
            },
            page,
            pages,
            count,
            8,
        )
    }
}
