//! Umbrella crate for the memif reproduction workspace.
//!
//! This package exists to host the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). The substance lives in
//! the member crates:
//!
//! * [`memif`] — the asynchronous memory-move service itself;
//! * [`memif_lockfree`] — the shared lock-free interface structures;
//! * [`memif_hwsim`] — the simulated KeyStone II (DES, DMA engine,
//!   heterogeneous memory, cost model);
//! * [`memif_mm`] — the virtual-memory substrate;
//! * [`memif_baseline`] — the Linux page-migration comparator;
//! * [`memif_runtime`] — the §6.6 mini streaming runtime;
//! * [`memif_workloads`] — evaluation kernels and request generators.
//!
//! See `README.md` for the tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction methodology.

pub use memif;
pub use memif_baseline;
pub use memif_hwsim;
pub use memif_lockfree;
pub use memif_mm;
pub use memif_runtime;
pub use memif_workloads;
