//! Issue-shard equivalence: sharding the staging/submission pair and
//! the kernel worker is a *performance* change, not a semantic one. For
//! any workload, every `issue_shards` x `batch_max` x coalescing
//! configuration must drive each request to the same terminal status
//! and leave physical memory byte-identical to the sequential
//! single-worker path — including under a seeded chaos [`FaultPlan`],
//! where the CPU-copy fallback guarantees termination even when the
//! fault draws land differently across shard interleavings.
//!
//! Two further pins:
//!
//! * explicitly configuring `issue_shards = 1` must reproduce the
//!   default configuration's typed event log verbatim, so the seed
//!   benchmarks cannot drift while the feature is off;
//! * a *cross-shard* overlap (a replicate whose destination collides
//!   with another shard's in-flight migration) must be deferred by the
//!   device-wide span index, counted in `cross_shard_deferred`, and
//!   still retired — the peer-wake path keeps the parked shard live.

use memif::{
    FaultPlan, Memif, MemifConfig, MoveSpec, MoveStatus, NodeId, PageSize, Sim, SimDuration, System,
};
use proptest::prelude::*;

const REGIONS: usize = 4;
const PAGES: u32 = 8;
const PAGE: PageSize = PageSize::Small4K;

#[derive(Debug, Clone)]
enum WorkOp {
    /// Migrate region `r` toward fast (`true`) or slow.
    Migrate(usize, bool),
    /// Replicate region `src` into region `dst` (no-op when equal).
    Replicate(usize, usize),
    /// Let the machine run for a bounded slice, so submissions land on
    /// queues of varying depth across all shards.
    RunFor(u32),
}

fn op_strategy() -> impl Strategy<Value = WorkOp> {
    prop_oneof![
        ((0..REGIONS), any::<bool>()).prop_map(|(r, f)| WorkOp::Migrate(r, f)),
        ((0..REGIONS), (0..REGIONS)).prop_map(|(a, b)| WorkOp::Replicate(a, b)),
        (1u32..1_500).prop_map(WorkOp::RunFor),
    ]
}

fn rate() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1e-3), Just(1e-2), Just(0.05)]
}

fn plan_strategy() -> impl Strategy<Value = Option<FaultPlan>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), rate(), rate(), rate()).prop_map(|(seed, err, drop, exhaust)| {
            Some(FaultPlan {
                seed,
                dma_error_rate: err,
                drop_rate: drop,
                desc_exhaust_rate: exhaust,
                ..FaultPlan::default()
            })
        }),
    ]
}

/// Runs `ops` under `config` and returns (terminal status per cookie,
/// per-page physical-memory checksums). Same runner discipline as the
/// batching equivalence suite: quiesce before any op that touches a
/// region with an outstanding move, so the op stream is identical for
/// every configuration and no timing-dependent races are created.
fn run_workload(
    config: MemifConfig,
    plan: Option<&FaultPlan>,
    ops: &[WorkOp],
) -> (Vec<(u64, MoveStatus)>, Vec<u64>) {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    if let Some(p) = plan {
        sys.install_faults(&mut sim, p.clone());
    }
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, config).unwrap();
    let regions: Vec<_> = (0..REGIONS)
        .map(|_| sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap())
        .collect();
    for (r, va) in regions.iter().enumerate() {
        for i in 0..PAGES {
            let page = va.offset(u64::from(i) * PAGE.bytes());
            let pa = sys.space(space).translate(page).unwrap();
            let pattern = 1 + (r as u8) * 31 + (i as u8) * 7;
            sys.phys.fill(pa, PAGE.bytes(), pattern);
        }
    }

    let mut cookie = 0u64;
    let mut outcomes = Vec::new();
    let mut outstanding = [false; REGIONS];
    for op in ops {
        let conflicts = |outstanding: &[bool; REGIONS]| match op {
            WorkOp::Migrate(r, _) => outstanding[*r],
            WorkOp::Replicate(a, b) => outstanding[*a] || outstanding[*b],
            WorkOp::RunFor(_) => false,
        };
        if conflicts(&outstanding) {
            sim.run(&mut sys);
            while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
                outcomes.push((c.user_data, c.status.0));
            }
            outstanding = [false; REGIONS];
        }
        match op {
            WorkOp::Migrate(r, to_fast) => {
                let node = if *to_fast { NodeId(1) } else { NodeId(0) };
                let spec = MoveSpec::migrate(regions[*r], PAGES, PAGE, node).with_user_data(cookie);
                memif.submit(&mut sys, &mut sim, spec).unwrap();
                cookie += 1;
                outstanding[*r] = true;
            }
            WorkOp::Replicate(a, b) => {
                if a != b {
                    let spec = MoveSpec::replicate(regions[*a], regions[*b], PAGES, PAGE)
                        .with_user_data(cookie);
                    memif.submit(&mut sys, &mut sim, spec).unwrap();
                    cookie += 1;
                    outstanding[*a] = true;
                    outstanding[*b] = true;
                }
            }
            WorkOp::RunFor(us) => {
                let until = sim.now() + SimDuration::from_us(u64::from(*us));
                sim.run_until(&mut sys, until);
            }
        }
        while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
            outcomes.push((c.user_data, c.status.0));
        }
    }
    sim.run(&mut sys);
    while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
        outcomes.push((c.user_data, c.status.0));
    }
    outcomes.sort_unstable_by_key(|(cookie, _)| *cookie);

    let mut fingerprint = Vec::with_capacity(REGIONS * PAGES as usize);
    for va in &regions {
        for i in 0..PAGES {
            let page = va.offset(u64::from(i) * PAGE.bytes());
            let pa = sys.space(space).translate(page).expect("page still mapped");
            fingerprint.push(sys.phys.checksum(pa, PAGE.bytes()));
        }
    }
    memif.close(&mut sys).unwrap();
    (outcomes, fingerprint)
}

fn config_for(issue_shards: usize, batch_max: usize, coalesce: bool) -> MemifConfig {
    MemifConfig {
        issue_shards,
        batch_max,
        coalesce,
        ..MemifConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every sharded configuration — alone and combined with batching
    /// and coalescing — is observationally equivalent to the sequential
    /// single-worker issue path.
    #[test]
    fn sharded_runs_match_sequential(
        ops in proptest::collection::vec(op_strategy(), 1..32),
        plan in plan_strategy(),
    ) {
        let (base_status, base_mem) =
            run_workload(config_for(1, 1, false), plan.as_ref(), &ops);
        for (shards, batch_max, coalesce) in [
            (2, 1, false),
            (2, 16, true),
            (4, 1, false),
            (4, 16, false),
            (4, 16, true),
        ] {
            let (status, mem) = run_workload(
                config_for(shards, batch_max, coalesce),
                plan.as_ref(),
                &ops,
            );
            prop_assert_eq!(
                &status, &base_status,
                "terminal statuses diverged at shards={} batch_max={} coalesce={}",
                shards, batch_max, coalesce
            );
            prop_assert_eq!(
                &mem, &base_mem,
                "final memory diverged at shards={} batch_max={} coalesce={}",
                shards, batch_max, coalesce
            );
        }
    }
}

/// The feature is invisible while off: explicitly setting
/// `issue_shards = 1` replays the default configuration's event stream
/// verbatim (queue layout, wakeup accounting, event JSON — everything).
#[test]
fn explicit_single_shard_is_event_identical() {
    let run = |config: MemifConfig| {
        let mut sys = System::keystone_ii();
        sys.enable_event_log();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, config).unwrap();
        for r in 0..REGIONS {
            let va = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
            memif
                .submit(
                    &mut sys,
                    &mut sim,
                    MoveSpec::migrate(va, PAGES, PAGE, NodeId(1)).with_user_data(r as u64),
                )
                .unwrap();
        }
        sim.run(&mut sys);
        while memif.retrieve_completed(&mut sys).unwrap().is_some() {}
        memif.close(&mut sys).unwrap();
        sys.take_event_log()
    };
    let default_log = run(MemifConfig::default());
    let explicit_log = run(config_for(1, 1, false));
    assert!(!default_log.is_empty(), "event log must capture the run");
    assert_eq!(
        default_log, explicit_log,
        "issue_shards=1 must be byte-identical to the default path"
    );
}

/// `kthread_wakeups` counts logical wakeups, not wake *events*: two
/// `KthreadRun` events landing on one shard at the same instant (a
/// retire wake colliding with a peer wake) are one `wake_up()` of an
/// already-running thread and must bump the counter once. Wakes at
/// distinct instants still count separately.
#[test]
fn same_instant_wakeups_count_once() {
    use memif::SimEvent;

    let count_wakeups = |kicks: &[u64]| {
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        // Empty queues: every kick runs a full round that issues
        // nothing, so no `busy_until` early-out hides the double count.
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
        for &at in kicks {
            sim.schedule_after(
                SimDuration::from_ns(at),
                SimEvent::KthreadRun {
                    device: memif.device(),
                    shard: 0,
                },
            );
        }
        sim.run(&mut sys);
        let wakeups = sys.device(memif.device()).unwrap().stats.kthread_wakeups;
        memif.close(&mut sys).unwrap();
        wakeups
    };

    assert_eq!(count_wakeups(&[500, 500]), 1, "same instant: one wakeup");
    assert_eq!(
        count_wakeups(&[500, 500, 500]),
        1,
        "any same-instant pile-up"
    );
    assert_eq!(
        count_wakeups(&[500, 600]),
        2,
        "distinct instants both count"
    );
}

/// The routing hash `submit` uses (kept in lockstep by the assertions
/// in [`cross_shard_overlap_defers_and_retires`]).
fn shard_of(base: u64, shards: usize) -> usize {
    (base.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % shards
}

/// A replicate routed by its *source* region can collide with another
/// shard's in-flight migration through its *destination* — the one
/// overlap affinity routing cannot co-locate. The device-wide span
/// index must defer it (counted as `cross_shard_deferred`), and the
/// peer-wake path must re-run the parked shard once the migration
/// retires, so both requests still reach `Done`.
#[test]
fn cross_shard_overlap_defers_and_retires() {
    const SHARDS: usize = 2;
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, config_for(SHARDS, 1, false)).unwrap();

    // Hunt for two regions whose VMA bases route to different shards.
    let mut on_shard: [Option<memif::VirtAddr>; SHARDS] = [None; SHARDS];
    for _ in 0..16 {
        let va = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
        on_shard[shard_of(va.as_u64(), SHARDS)].get_or_insert(va);
        if on_shard.iter().all(Option::is_some) {
            break;
        }
    }
    let x = on_shard[0].expect("a region routed to shard 0");
    let y = on_shard[1].expect("a region routed to shard 1");

    // Big enough to hold the migration in flight while the replicate is
    // dequeued; both requests below the descriptor-pool bound.
    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(x, PAGES, PAGE, NodeId(1)).with_user_data(1),
        )
        .unwrap();
    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::replicate(y, x, PAGES, PAGE).with_user_data(2),
        )
        .unwrap();
    sim.run(&mut sys);

    let stats = &sys.device(memif.device()).unwrap().stats;
    assert_eq!(stats.completed, 2, "both requests must retire");
    assert_eq!(stats.failed, 0);
    assert!(
        stats.cross_shard_deferred >= 1,
        "the dst-overlapping replicate must be deferred across shards \
         (deferred={}, cross={})",
        stats.requests_deferred,
        stats.cross_shard_deferred
    );
    let mut statuses = Vec::new();
    while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
        statuses.push((c.user_data, c.status.0));
    }
    statuses.sort_unstable_by_key(|(cookie, _)| *cookie);
    assert_eq!(
        statuses,
        vec![(1, MoveStatus::Done), (2, MoveStatus::Done)],
        "overlap must serialize, not fail"
    );
    memif.close(&mut sys).unwrap();
}
