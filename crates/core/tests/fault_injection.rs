//! Property-based chaos testing of the hardened driver.
//!
//! Under an arbitrary seeded [`FaultPlan`] — mid-flight DMA errors,
//! dropped and delayed completion interrupts, transient descriptor
//! exhaustion, bandwidth brownouts — every submitted request must reach
//! exactly one terminal state (no request silently lost, none wedged),
//! and after the drain the engine must be fully reclaimed: zero busy
//! PaRAM descriptors, zero active transfers, no leaked frames. Both
//! degradation policies are covered: CPU-copy fallback on (faults are
//! absorbed into `Done`) and off (exhausted retries surface as
//! `Failed`).

use memif::{
    Brownout, FaultPlan, Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, SimDuration, SimTime,
    System,
};
use proptest::prelude::*;

const REGIONS: usize = 4;
const PAGES: u32 = 16;
const COUNT: usize = 24;

fn rate() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1e-3), Just(1e-2), Just(0.1), Just(0.35),]
}

fn brownout_strategy() -> impl Strategy<Value = Brownout> {
    ((0u16..2), (0u64..3_000), (50u64..1_500), (1u32..10)).prop_map(
        |(node, start_us, dur_us, tenths)| Brownout {
            node: NodeId(node),
            start: SimTime::from_ns(start_us * 1_000),
            duration: SimDuration::from_us(dur_us),
            factor: f64::from(tenths) / 10.0,
        },
    )
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        rate(),
        rate(),
        rate(),
        rate(),
        proptest::collection::vec(brownout_strategy(), 0..3),
    )
        .prop_map(|(seed, err, drop, delay, exhaust, brownouts)| FaultPlan {
            seed,
            dma_error_rate: err,
            drop_rate: drop,
            delay_rate: delay,
            desc_exhaust_rate: exhaust,
            brownouts,
            ..FaultPlan::default()
        })
}

fn config_strategy() -> impl Strategy<Value = MemifConfig> {
    (any::<bool>(), 0u32..4, 1usize..3).prop_map(|(cpu_fallback, max_dma_retries, depth)| {
        MemifConfig {
            cpu_fallback,
            max_dma_retries,
            pipeline_depth: depth,
            ..MemifConfig::default()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chaos_never_loses_or_wedges_requests(
        plan in plan_strategy(),
        config in config_strategy(),
    ) {
        let fallback = config.cpu_fallback;
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, config).unwrap();
        sys.install_faults(&mut sim, plan);

        let frames_baseline = sys.alloc.live_frames();
        let mut regions: Vec<(memif::VirtAddr, NodeId)> = (0..REGIONS)
            .map(|_| {
                (
                    sys.mmap(space, PAGES, PageSize::Small4K, NodeId(0)).unwrap(),
                    NodeId(0),
                )
            })
            .collect();
        let frames_mapped = sys.alloc.live_frames();

        let mut submitted = 0u64;
        let mut terminal = 0u64;
        let mut failed = 0u64;
        while (submitted as usize) < COUNT {
            // A burst of migrations ping-ponging the region pool — one
            // request per region so concurrent requests never overlap
            // (overlap would make `Raced` a legal outcome and blur the
            // property), and well under the queue capacity.
            for _ in 0..REGIONS.min(COUNT - submitted as usize) {
                let slot = submitted as usize % REGIONS;
                let (va, node) = regions[slot];
                let target = if node == NodeId(0) { NodeId(1) } else { NodeId(0) };
                regions[slot].1 = target;
                let spec = MoveSpec::migrate(va, PAGES, PageSize::Small4K, target)
                    .with_user_data(submitted);
                memif.submit(&mut sys, &mut sim, spec).unwrap();
                submitted += 1;
            }
            sim.run(&mut sys);
            while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
                prop_assert!(
                    c.status.0.is_terminal(),
                    "non-terminal completion {:?}",
                    c.status
                );
                if c.status.is_failed() {
                    prop_assert!(!fallback, "fallback must absorb DMA failures");
                    failed += 1;
                } else {
                    prop_assert!(c.status.is_ok(), "unexpected status {:?}", c.status);
                }
                terminal += 1;
            }
        }
        sim.run(&mut sys);
        while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
            prop_assert!(c.status.0.is_terminal());
            if c.status.is_failed() {
                failed += 1;
            }
            terminal += 1;
        }

        // Exactly one terminal state per submission; nothing wedged.
        prop_assert_eq!(terminal, submitted, "every request reaches one terminal state");
        let dev = sys.device(memif.device()).unwrap();
        prop_assert!(dev.is_idle(), "driver wedged: {dev:?}");
        prop_assert_eq!(dev.stats.completed + dev.stats.failed, submitted);
        prop_assert_eq!(dev.stats.failed, failed);
        if !fallback {
            prop_assert_eq!(dev.stats.fallbacks, 0);
        }

        // The engine is fully reclaimed after the drain.
        prop_assert_eq!(
            sys.dma.chains().busy_descriptors(),
            0,
            "descriptor pool occupancy must return to zero"
        );
        prop_assert_eq!(sys.active_transfers(), 0, "no transfer stuck on a controller");
        prop_assert_eq!(
            sys.alloc.live_frames(),
            frames_mapped,
            "no frame leaked or double-freed"
        );
        let _ = frames_baseline;
        memif.close(&mut sys).unwrap();
    }
}
