//! Batching/coalescing equivalence: the chained-SG issue path is an
//! *optimization*, not a semantic change. For any workload, every
//! `batch_max` x coalescing configuration must drive each request to
//! the same terminal status and leave physical memory byte-identical
//! to the sequential (batch_max=1, no-coalesce) path — including under
//! a seeded chaos [`FaultPlan`], where the CPU-copy fallback guarantees
//! termination even when the fault draws land differently.
//!
//! A second test pins byte-identity harder: explicitly configuring the
//! defaults (`batch_max=1`, `coalesce=false`) must reproduce the
//! default configuration's typed event log verbatim, so the seed
//! benchmarks cannot drift while the feature is off.

use memif::{
    FaultPlan, Memif, MemifConfig, MoveSpec, MoveStatus, NodeId, PageSize, Sim, SimDuration, System,
};
use proptest::prelude::*;

const REGIONS: usize = 4;
const PAGES: u32 = 8;
const PAGE: PageSize = PageSize::Small4K;

#[derive(Debug, Clone)]
enum WorkOp {
    /// Migrate region `r` toward fast (`true`) or slow.
    Migrate(usize, bool),
    /// Replicate region `src` into region `dst` (no-op when equal).
    Replicate(usize, usize),
    /// Let the machine run for a bounded slice, so submissions land on
    /// queues of varying depth (solo rounds, partial and full batches).
    RunFor(u32),
}

fn op_strategy() -> impl Strategy<Value = WorkOp> {
    prop_oneof![
        ((0..REGIONS), any::<bool>()).prop_map(|(r, f)| WorkOp::Migrate(r, f)),
        ((0..REGIONS), (0..REGIONS)).prop_map(|(a, b)| WorkOp::Replicate(a, b)),
        (1u32..1_500).prop_map(WorkOp::RunFor),
    ]
}

fn rate() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1e-3), Just(1e-2), Just(0.05)]
}

fn plan_strategy() -> impl Strategy<Value = Option<FaultPlan>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), rate(), rate(), rate()).prop_map(|(seed, err, drop, exhaust)| {
            Some(FaultPlan {
                seed,
                dma_error_rate: err,
                drop_rate: drop,
                desc_exhaust_rate: exhaust,
                ..FaultPlan::default()
            })
        }),
    ]
}

/// Runs `ops` under `config` and returns (terminal status per cookie,
/// per-page physical-memory checksums). Pages are pre-filled with a
/// position-derived pattern so a misdirected or partially-copied
/// segment shows up in the fingerprint.
///
/// The runner quiesces before submitting a request that touches a
/// region with an outstanding move: concurrent conflicting moves are
/// *races* whose outcome depends on issue timing even in the seed
/// driver (the pipelined plan remaps under the earlier move and
/// `DetectFail` surfaces `Raced`), so no issue-path optimization can —
/// or should — reproduce them. The quiesce decision depends only on
/// the submission history, never on timing, so every configuration
/// sees the identical op stream.
fn run_workload(
    config: MemifConfig,
    plan: Option<&FaultPlan>,
    ops: &[WorkOp],
) -> (Vec<(u64, MoveStatus)>, Vec<u64>) {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    if let Some(p) = plan {
        sys.install_faults(&mut sim, p.clone());
    }
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, config).unwrap();
    let regions: Vec<_> = (0..REGIONS)
        .map(|_| sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap())
        .collect();
    for (r, va) in regions.iter().enumerate() {
        for i in 0..PAGES {
            let page = va.offset(u64::from(i) * PAGE.bytes());
            let pa = sys.space(space).translate(page).unwrap();
            let pattern = 1 + (r as u8) * 31 + (i as u8) * 7;
            sys.phys.fill(pa, PAGE.bytes(), pattern);
        }
    }

    let mut cookie = 0u64;
    let mut outcomes = Vec::new();
    // Regions with a move submitted since the last full quiesce. Only a
    // quiesce clears it: mid-run completions are timing-dependent and
    // must not influence which ops get submitted.
    let mut outstanding = [false; REGIONS];
    for op in ops {
        let conflicts = |outstanding: &[bool; REGIONS]| match op {
            WorkOp::Migrate(r, _) => outstanding[*r],
            WorkOp::Replicate(a, b) => outstanding[*a] || outstanding[*b],
            WorkOp::RunFor(_) => false,
        };
        if conflicts(&outstanding) {
            sim.run(&mut sys);
            while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
                outcomes.push((c.user_data, c.status.0));
            }
            outstanding = [false; REGIONS];
        }
        match op {
            WorkOp::Migrate(r, to_fast) => {
                let node = if *to_fast { NodeId(1) } else { NodeId(0) };
                let spec = MoveSpec::migrate(regions[*r], PAGES, PAGE, node).with_user_data(cookie);
                memif.submit(&mut sys, &mut sim, spec).unwrap();
                cookie += 1;
                outstanding[*r] = true;
            }
            WorkOp::Replicate(a, b) => {
                if a != b {
                    let spec = MoveSpec::replicate(regions[*a], regions[*b], PAGES, PAGE)
                        .with_user_data(cookie);
                    memif.submit(&mut sys, &mut sim, spec).unwrap();
                    cookie += 1;
                    outstanding[*a] = true;
                    outstanding[*b] = true;
                }
            }
            WorkOp::RunFor(us) => {
                let until = sim.now() + SimDuration::from_us(u64::from(*us));
                sim.run_until(&mut sys, until);
            }
        }
        while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
            outcomes.push((c.user_data, c.status.0));
        }
    }
    sim.run(&mut sys);
    while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
        outcomes.push((c.user_data, c.status.0));
    }
    outcomes.sort_unstable_by_key(|(cookie, _)| *cookie);

    let mut fingerprint = Vec::with_capacity(REGIONS * PAGES as usize);
    for va in &regions {
        for i in 0..PAGES {
            let page = va.offset(u64::from(i) * PAGE.bytes());
            let pa = sys.space(space).translate(page).expect("page still mapped");
            fingerprint.push(sys.phys.checksum(pa, PAGE.bytes()));
        }
    }
    memif.close(&mut sys).unwrap();
    (outcomes, fingerprint)
}

fn config_for(batch_max: usize, coalesce: bool) -> MemifConfig {
    MemifConfig {
        batch_max,
        coalesce,
        ..MemifConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every batching/coalescing configuration is observationally
    /// equivalent to the sequential issue path.
    #[test]
    fn batched_runs_match_sequential(
        ops in proptest::collection::vec(op_strategy(), 1..32),
        plan in plan_strategy(),
    ) {
        let (base_status, base_mem) =
            run_workload(config_for(1, false), plan.as_ref(), &ops);
        for (batch_max, coalesce) in
            [(1, true), (4, false), (4, true), (16, false), (16, true)]
        {
            let (status, mem) =
                run_workload(config_for(batch_max, coalesce), plan.as_ref(), &ops);
            prop_assert_eq!(
                &status, &base_status,
                "terminal statuses diverged at batch_max={} coalesce={}",
                batch_max, coalesce
            );
            prop_assert_eq!(
                &mem, &base_mem,
                "final memory diverged at batch_max={} coalesce={}",
                batch_max, coalesce
            );
        }
    }
}

/// The feature is invisible while off: explicitly setting the default
/// knobs replays the default configuration's event stream verbatim.
#[test]
fn explicit_defaults_are_event_identical() {
    let run = |config: MemifConfig| {
        let mut sys = System::keystone_ii();
        sys.enable_event_log();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, config).unwrap();
        for r in 0..REGIONS {
            let va = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
            memif
                .submit(
                    &mut sys,
                    &mut sim,
                    MoveSpec::migrate(va, PAGES, PAGE, NodeId(1)).with_user_data(r as u64),
                )
                .unwrap();
        }
        sim.run(&mut sys);
        while memif.retrieve_completed(&mut sys).unwrap().is_some() {}
        memif.close(&mut sys).unwrap();
        sys.take_event_log()
    };
    let default_log = run(MemifConfig::default());
    let explicit_log = run(config_for(1, false));
    assert!(!default_log.is_empty(), "event log must capture the run");
    assert_eq!(
        default_log, explicit_log,
        "batch_max=1 without coalescing must be byte-identical to the default path"
    );
}
