//! Migration of pages shared among processes (the §6.7 limitation,
//! implemented here through reverse mapping): every mapper's PTE is
//! updated, remote mappers are blocked for exactly the transfer window,
//! and frame reference counts stay balanced through completion, abort,
//! and unmap in any order.

use memif::{
    Memif, MemifConfig, MoveSpec, NodeId, PageSize, RaceMode, Sim, SimEvent, SimTime, SpaceId,
    System,
};
use memif_mm::{AccessKind, Fault};

const PAGES: u32 = 4;
const BYTES: usize = (PAGES as usize) * 4096;

struct Setup {
    sys: System,
    sim: Sim<System>,
    a: SpaceId,
    b: SpaceId,
    memif: Memif,
    va_a: memif::VirtAddr,
    va_b: memif::VirtAddr,
}

fn setup(config: MemifConfig) -> Setup {
    let mut sys = System::keystone_ii();
    let sim = Sim::new();
    let a = sys.new_space();
    let b = sys.new_space();
    let memif = Memif::open(&mut sys, a, config).unwrap();
    let va_a = sys.mmap(a, PAGES, PageSize::Small4K, NodeId(0)).unwrap();
    let data: Vec<u8> = (0..BYTES).map(|i| (i % 247) as u8).collect();
    sys.write_user(a, va_a, &data).unwrap();
    let va_b = sys.share_region(a, va_a, b).unwrap();
    Setup {
        sys,
        sim,
        a,
        b,
        memif,
        va_a,
        va_b,
    }
}

#[test]
fn sharing_bumps_refcounts_and_aliases_bytes() {
    let mut s = setup(MemifConfig::default());
    let pa_a = s.sys.space(s.a).translate(s.va_a).unwrap();
    let pa_b = s.sys.space(s.b).translate(s.va_b).unwrap();
    assert_eq!(pa_a, pa_b, "same backing frame");
    assert_eq!(s.sys.alloc.frame_info(pa_a).unwrap().refcount, 2);

    // A write through one space is visible through the other.
    s.sys.write_user(s.a, s.va_a.offset(10), &[0x42]).unwrap();
    let mut byte = [0u8];
    s.sys.read_user(s.b, s.va_b.offset(10), &mut byte).unwrap();
    assert_eq!(byte[0], 0x42);

    // rmap sees both mappers.
    let mappers = s.sys.rmap_mappers(pa_a, PageSize::Small4K);
    assert_eq!(mappers.len(), 2);
}

#[test]
fn shared_migration_updates_every_mapper() {
    let mut s = setup(MemifConfig::default());
    let mut before = vec![0u8; BYTES];
    s.sys.read_user(s.a, s.va_a, &mut before).unwrap();

    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(s.va_a, PAGES, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let c = s.memif.retrieve_completed(&mut s.sys).unwrap().unwrap();
    assert!(c.status.is_ok(), "{:?}", c.status);

    // Both spaces now map the *same new* frame on the fast node.
    let pa_a = s.sys.space(s.a).translate(s.va_a).unwrap();
    let pa_b = s.sys.space(s.b).translate(s.va_b).unwrap();
    assert_eq!(pa_a, pa_b);
    assert_eq!(s.sys.node_of(pa_a), Some(NodeId(1)));
    assert_eq!(s.sys.alloc.frame_info(pa_a).unwrap().refcount, 2);

    // Contents intact through both views.
    for (space, va) in [(s.a, s.va_a), (s.b, s.va_b)] {
        let mut got = vec![0u8; BYTES];
        s.sys.read_user(space, va, &mut got).unwrap();
        assert_eq!(got, before);
    }
}

#[test]
fn remote_mapper_is_blocked_during_flight() {
    let mut s = setup(MemifConfig::default());
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(s.va_a, PAGES, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    // Mid-flight, the remote space hits a migration entry; the owner's
    // semi-final PTE still serves reads (race-detected).
    let (b, va_b) = (s.b, s.va_b);
    s.sim.schedule_at(
        SimTime::from_ns(1),
        SimEvent::call(move |sys: &mut System, _| {
            let err = sys.space_mut(b).access(va_b, AccessKind::Read).unwrap_err();
            assert!(matches!(err, Fault::BlockedByMigration(_)));
        }),
    );
    s.sim.run(&mut s.sys);
    let c = s.memif.retrieve_completed(&mut s.sys).unwrap().unwrap();
    assert!(
        c.status.is_ok(),
        "remote blocked access is not a race: {:?}",
        c.status
    );
    // After completion the remote mapper works again.
    assert!(s
        .sys
        .space_mut(s.b)
        .access(s.va_b, AccessKind::Read)
        .is_ok());
}

#[test]
fn owner_access_still_races_for_shared_pages() {
    let mut s = setup(MemifConfig::default());
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(s.va_a, PAGES, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    let (a, va_a) = (s.a, s.va_a);
    s.sim.schedule_at(
        SimTime::from_ns(1),
        SimEvent::call(move |sys: &mut System, _| {
            sys.space_mut(a).access(va_a, AccessKind::Read).unwrap();
        }),
    );
    s.sim.run(&mut s.sys);
    let c = s.memif.retrieve_completed(&mut s.sys).unwrap().unwrap();
    assert!(c.status.is_race());
    // Even on a raced page, the remote mapper was rewritten and works.
    assert!(s
        .sys
        .space_mut(s.b)
        .access(s.va_b, AccessKind::Read)
        .is_ok());
}

#[test]
fn recover_abort_restores_all_mappers() {
    let config = MemifConfig {
        race_mode: RaceMode::DetectRecover,
        ..MemifConfig::default()
    };
    let mut s = setup(config);
    let pa_before = s.sys.space(s.a).translate(s.va_a).unwrap();
    let sram_free = s.sys.alloc.free_bytes(NodeId(1));

    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(s.va_a, PAGES, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    let a = s.a;
    let va = s.va_a;
    s.sim.schedule_at(
        SimTime::from_ns(1),
        SimEvent::call(move |sys: &mut System, sim| {
            sys.cpu_write(sim, a, va, &[9])
                .expect("write preserved by recover");
        }),
    );
    s.sim.run(&mut s.sys);
    let c = s.memif.retrieve_completed(&mut s.sys).unwrap().unwrap();
    assert!(c.status.is_aborted());

    // Both mappers back on the original frame; SRAM fully returned.
    assert_eq!(s.sys.space(s.a).translate(s.va_a), Some(pa_before));
    assert_eq!(s.sys.space(s.b).translate(s.va_b), Some(pa_before));
    assert_eq!(s.sys.alloc.frame_info(pa_before).unwrap().refcount, 2);
    assert_eq!(s.sys.alloc.free_bytes(NodeId(1)), sram_free);
    assert!(s
        .sys
        .space_mut(s.b)
        .access(s.va_b, AccessKind::Read)
        .is_ok());
}

#[test]
fn unmap_order_is_immaterial_after_shared_migration() {
    let mut s = setup(MemifConfig::default());
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(s.va_a, PAGES, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    assert!(s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());

    let new_frame = s.sys.space(s.a).translate(s.va_a).unwrap();
    // Unmap the *owner* first: the frame must survive via b's reference.
    {
        let (spaces, alloc, _) = s.sys.split_for_baseline();
        spaces[s.a.0].munmap(alloc, s.va_a).unwrap();
    }
    assert!(
        s.sys.alloc.frame_info(new_frame).is_some(),
        "b still holds it"
    );
    let mut byte = [0u8];
    s.sys.read_user(s.b, s.va_b, &mut byte).unwrap();
    {
        let (spaces, alloc, _) = s.sys.split_for_baseline();
        spaces[s.b.0].munmap(alloc, s.va_b).unwrap();
    }
    assert!(
        s.sys.alloc.frame_info(new_frame).is_none(),
        "last reference frees"
    );
    assert_eq!(s.sys.alloc.free_bytes(NodeId(1)), 6 << 20);
}

#[test]
fn three_way_sharing_migrates_consistently() {
    let mut s = setup(MemifConfig::default());
    let c_space = s.sys.new_space();
    let va_c = s.sys.share_region(s.a, s.va_a, c_space).unwrap();
    let pa = s.sys.space(s.a).translate(s.va_a).unwrap();
    assert_eq!(s.sys.alloc.frame_info(pa).unwrap().refcount, 3);

    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(s.va_a, PAGES, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    assert!(s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());

    let new = s.sys.space(s.a).translate(s.va_a).unwrap();
    assert_eq!(s.sys.space(s.b).translate(s.va_b), Some(new));
    assert_eq!(s.sys.space(c_space).translate(va_c), Some(new));
    assert_eq!(s.sys.alloc.frame_info(new).unwrap().refcount, 3);
    assert!(
        s.sys.alloc.frame_info(pa).is_none(),
        "old frame fully freed"
    );
}
