//! End-to-end driver tests: the full submit → flush → MOV_ONE → DMA →
//! release → notify pipeline, including race handling in all three
//! modes, the interrupt/poll mode switch, validation failures, and
//! multi-device isolation.

use memif::{
    Memif, MemifConfig, MemifError, MoveSpec, NodeId, PageSize, RaceMode, Sim, SimEvent, SimTime,
    System,
};
use memif_mm::{AccessKind, Fault};

const PAGE: u64 = 4096;

struct Setup {
    sys: System,
    sim: Sim<System>,
    space: memif::SpaceId,
    memif: Memif,
}

fn setup_with(config: MemifConfig) -> Setup {
    let mut sys = System::keystone_ii();
    let sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, config).unwrap();
    Setup {
        sys,
        sim,
        space,
        memif,
    }
}

fn setup() -> Setup {
    setup_with(MemifConfig::default())
}

fn pattern(len: u64, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i % 251) as u8))
        .collect()
}

#[test]
fn replication_moves_bytes() {
    let mut s = setup();
    let src = s
        .sys
        .mmap(s.space, 8, PageSize::Small4K, NodeId(0))
        .unwrap();
    let dst = s
        .sys
        .mmap(s.space, 8, PageSize::Small4K, NodeId(1))
        .unwrap();
    let data = pattern(8 * PAGE, 7);
    s.sys.write_user(s.space, src, &data).unwrap();

    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::replicate(src, dst, 8, PageSize::Small4K),
        )
        .unwrap();
    s.sim.run(&mut s.sys);

    let done = s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .expect("completed");
    assert!(done.status.is_ok());
    assert_eq!(done.bytes, 8 * PAGE);

    let mut back = vec![0u8; data.len()];
    s.sys.read_user(s.space, dst, &mut back).unwrap();
    assert_eq!(back, data);
}

#[test]
fn migration_replaces_backing_and_preserves_data() {
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 16, PageSize::Small4K, NodeId(0))
        .unwrap();
    let data = pattern(16 * PAGE, 42);
    s.sys.write_user(s.space, va, &data).unwrap();
    let live_before = s.sys.alloc.live_frames();
    let sram_free_before = s.sys.alloc.free_bytes(NodeId(1));

    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 16, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);

    let done = s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .expect("completed");
    assert!(done.status.is_ok(), "status: {:?}", done.status);

    // Backing moved to SRAM; data identical; no frame leak.
    let pa = s.sys.space(s.space).translate(va).unwrap();
    assert_eq!(s.sys.node_of(pa), Some(NodeId(1)));
    let mut back = vec![0u8; data.len()];
    s.sys.read_user(s.space, va, &mut back).unwrap();
    assert_eq!(back, data);
    assert_eq!(s.sys.alloc.live_frames(), live_before);
    assert_eq!(
        s.sys.alloc.free_bytes(NodeId(1)),
        sram_free_before - 16 * PAGE
    );
}

#[test]
fn burst_of_requests_needs_one_syscall() {
    // §6.4: "Through the course, the application only makes one syscall
    // — ioctl() for the first request."
    let mut s = setup();
    let mut regions = Vec::new();
    for _ in 0..8 {
        regions.push(
            s.sys
                .mmap(s.space, 16, PageSize::Small4K, NodeId(0))
                .unwrap(),
        );
    }
    for va in &regions {
        s.memif
            .submit(
                &mut s.sys,
                &mut s.sim,
                MoveSpec::migrate(*va, 16, PageSize::Small4K, NodeId(1)),
            )
            .unwrap();
    }
    s.sim.run(&mut s.sys);

    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(
        dev.stats.ioctls, 1,
        "single kick-start syscall for the whole burst"
    );
    assert_eq!(dev.stats.completed, 8);
    assert_eq!(dev.log.len(), 8);
    // Completions arrive in submission order and strictly spread in time
    // (each request completes soon after the previous one, Figure 7).
    let times: Vec<_> = dev.log.iter().map(|r| r.completed_at).collect();
    for w in times.windows(2) {
        assert!(w[0] < w[1]);
    }
    for i in 0..8 {
        let c = s
            .memif
            .retrieve_completed(&mut s.sys)
            .unwrap()
            .expect("one per request");
        assert!(c.status.is_ok(), "request {i}");
    }
    assert!(s.memif.retrieve_completed(&mut s.sys).unwrap().is_none());
}

#[test]
fn race_detection_fails_the_request() {
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    // Touch one page while the DMA is in flight: the reference clears the
    // young bit of the semi-final PTE and Release's CAS must detect it.
    s.sim.schedule_at(
        SimTime::from_ns(1),
        SimEvent::call(move |sys: &mut System, _| {
            sys.space_mut(memif::SpaceId(0))
                .access(va, AccessKind::Read)
                .unwrap();
        }),
    );
    s.sim.run(&mut s.sys);

    let done = s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .expect("completed");
    assert!(
        done.status.is_race(),
        "SEGFAULT-equivalent under proceed-and-fail"
    );
    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(dev.stats.races_detected, 1, "only the touched page raced");
    assert_eq!(dev.stats.failed, 1);
}

#[test]
fn undisturbed_migration_skips_release_tlb_flushes() {
    // §5.2: "On success, no TLB flush is needed since the semi-final PTE
    // never enters TLB."
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 8, PageSize::Small4K, NodeId(0))
        .unwrap();
    let flushes_before = s.sys.space(s.space).tlb().stats().page_flushes;
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 8, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let flushes = s.sys.space(s.space).tlb().stats().page_flushes - flushes_before;
    assert_eq!(flushes, 8, "one flush per page (Remap); none in Release");
}

#[test]
fn prevention_mode_flushes_twice_and_blocks_access() {
    let config = MemifConfig {
        race_mode: RaceMode::Prevent,
        ..MemifConfig::default()
    };
    let mut s = setup_with(config);
    let va = s
        .sys
        .mmap(s.space, 8, PageSize::Small4K, NodeId(0))
        .unwrap();
    let flushes_before = s.sys.space(s.space).tlb().stats().page_flushes;
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 8, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    // Mid-flight access hits the migration entry and blocks.
    s.sim.schedule_at(
        SimTime::from_ns(1),
        SimEvent::call(move |sys: &mut System, _| {
            let err = sys
                .space_mut(memif::SpaceId(0))
                .access(va, AccessKind::Read)
                .unwrap_err();
            assert!(matches!(err, Fault::BlockedByMigration(_)));
        }),
    );
    s.sim.run(&mut s.sys);
    let done = s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .expect("completed");
    assert!(done.status.is_ok(), "prevention never reports races");
    let flushes = s.sys.space(s.space).tlb().stats().page_flushes - flushes_before;
    assert_eq!(flushes, 16, "Remap and Release both flush, as in Linux");
}

#[test]
fn recover_mode_aborts_and_preserves_the_write() {
    let config = MemifConfig {
        race_mode: RaceMode::DetectRecover,
        ..MemifConfig::default()
    };
    let mut s = setup_with(config);
    let va = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.sys
        .write_user(s.space, va, &pattern(4 * PAGE, 1))
        .unwrap();
    let sram_free = s.sys.alloc.free_bytes(NodeId(1));

    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    // A mid-flight store traps, aborts the migration, and succeeds
    // against the restored old mapping.
    let space = s.space;
    s.sim.schedule_at(
        SimTime::from_ns(1),
        SimEvent::call(move |sys: &mut System, sim| {
            sys.cpu_write(sim, space, va.offset(100), &[0xEE])
                .expect("write preserved");
        }),
    );
    s.sim.run(&mut s.sys);

    let done = s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .expect("notified");
    assert!(done.status.is_aborted());
    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(dev.stats.aborts, 1);

    // Old mapping restored (still DDR), write visible, new frames freed.
    let pa = s.sys.space(s.space).translate(va).unwrap();
    assert_eq!(s.sys.node_of(pa), Some(NodeId(0)));
    let mut byte = [0u8];
    s.sys.read_user(s.space, va.offset(100), &mut byte).unwrap();
    assert_eq!(byte[0], 0xEE);
    assert_eq!(
        s.sys.alloc.free_bytes(NodeId(1)),
        sram_free,
        "SRAM fully returned"
    );
}

#[test]
fn poll_wakes_on_completion() {
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();

    // Sleep until the notification; record when we woke.
    static WOKE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    WOKE.store(0, std::sync::atomic::Ordering::SeqCst);
    let memif = s.memif;
    memif
        .poll(&mut s.sys, &mut s.sim, move |sys, sim| {
            WOKE.store(sim.now().as_ns(), std::sync::atomic::Ordering::SeqCst);
            let c = memif
                .retrieve_completed(sys)
                .unwrap()
                .expect("ready at wake");
            assert!(c.status.is_ok());
        })
        .unwrap();
    s.sim.run(&mut s.sys);
    let woke = WOKE.load(std::sync::atomic::Ordering::SeqCst);
    assert!(woke > 0, "waker ran");

    // Polling when a completion is already queued fires immediately.
    let va2 = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va2, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let fired;
    {
        static FIRED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        FIRED.store(false, std::sync::atomic::Ordering::SeqCst);
        memif
            .poll(&mut s.sys, &mut s.sim, |_, _| {
                FIRED.store(true, std::sync::atomic::Ordering::SeqCst);
            })
            .unwrap();
        s.sim.run(&mut s.sys);
        fired = FIRED.load(std::sync::atomic::Ordering::SeqCst);
    }
    assert!(fired);
}

#[test]
fn validation_failures_arrive_asynchronously() {
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();

    // Unaligned source.
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va.offset(1), 4, PageSize::Small4K, NodeId(1)).with_user_data(1),
        )
        .unwrap();
    // Unknown node.
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(9)).with_user_data(2),
        )
        .unwrap();
    // Range exceeding the VMA.
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 400, PageSize::Small4K, NodeId(1)).with_user_data(3),
        )
        .unwrap();
    // Page-size mismatch.
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 1, PageSize::Medium64K, NodeId(1)).with_user_data(4),
        )
        .unwrap();
    s.sim.run(&mut s.sys);

    let mut seen = Vec::new();
    while let Some(c) = s.memif.retrieve_completed(&mut s.sys).unwrap() {
        assert_eq!(c.status.0, memif::MoveStatus::Invalid);
        seen.push(c.user_data);
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2, 3, 4]);
    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(dev.stats.failed, 4);
    assert_eq!(dev.stats.completed, 0);
}

#[test]
fn migration_oom_reports_and_rolls_back() {
    let mut s = setup();
    // 1537 pages exceed the 1536-page SRAM.
    let va = s
        .sys
        .mmap(s.space, 1_537, PageSize::Small4K, NodeId(0))
        .unwrap();
    let sram_free = s.sys.alloc.free_bytes(NodeId(1));
    // Request only covers 512 pages at a time (descriptor pool limit);
    // submit three full 512s then the remainder — the last one OOMs only
    // if SRAM is full; instead make one request that cannot fit:
    // fill SRAM first.
    let hog = s
        .sys
        .mmap(s.space, 1_200, PageSize::Small4K, NodeId(1))
        .unwrap();
    let _ = hog;
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 400, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);

    let done = s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .expect("notified");
    assert_eq!(done.status.0, memif::MoveStatus::OutOfMemory);
    // Nothing leaked: free SRAM unchanged apart from the hog region.
    assert_eq!(s.sys.alloc.free_bytes(NodeId(1)), sram_free - 1_200 * PAGE);
    // Source mapping untouched.
    let pa = s.sys.space(s.space).translate(va).unwrap();
    assert_eq!(s.sys.node_of(pa), Some(NodeId(0)));
}

#[test]
fn poll_threshold_selects_completion_path() {
    // Small request (64 KiB < 512 KiB): polling mode, no interrupt.
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 16, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 16, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(dev.stats.polled, 1);
    assert_eq!(dev.stats.interrupts, 0);

    // Large request (1 MiB ≥ 512 KiB): interrupt path.
    let va2 = s
        .sys
        .mmap(s.space, 256, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va2, 256, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(dev.stats.interrupts, 1);
    assert_eq!(dev.stats.polled, 1);
}

#[test]
fn descriptor_reuse_cheapens_second_request() {
    let mut s = setup();
    let a = s
        .sys
        .mmap(s.space, 32, PageSize::Small4K, NodeId(0))
        .unwrap();
    let b = s
        .sys
        .mmap(s.space, 32, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(a, 32, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let full_after_first = s.sys.dma.stats().full_configs;
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(b, 32, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let stats = s.sys.dma.stats();
    assert_eq!(full_after_first, 32);
    assert_eq!(
        stats.full_configs, 32,
        "second transfer reused the whole chain"
    );
    assert_eq!(stats.reuse_configs, 32);
}

#[test]
fn reuse_disabled_reconfigures_fully() {
    let config = MemifConfig {
        descriptor_reuse: false,
        ..MemifConfig::default()
    };
    let mut s = setup_with(config);
    s.sys.dma.set_reuse_enabled(false);
    let a = s
        .sys
        .mmap(s.space, 16, PageSize::Small4K, NodeId(0))
        .unwrap();
    for _ in 0..2 {
        s.memif
            .submit(
                &mut s.sys,
                &mut s.sim,
                MoveSpec::migrate(a, 16, PageSize::Small4K, NodeId(1)),
            )
            .unwrap();
        s.sim.run(&mut s.sys);
    }
    let stats = s.sys.dma.stats();
    assert_eq!(stats.full_configs, 32);
    assert_eq!(stats.reuse_configs, 0);
}

#[test]
fn slot_exhaustion_is_synchronous() {
    let config = MemifConfig {
        queue_capacity: 2,
        ..MemifConfig::default()
    };
    let mut s = setup_with(config);
    let va = s
        .sys
        .mmap(s.space, 2, PageSize::Small4K, NodeId(0))
        .unwrap();
    // Submit without running the sim: slots stay in flight.
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 1, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 1, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    let err = s
        .memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 1, PageSize::Small4K, NodeId(1)),
        )
        .unwrap_err();
    assert_eq!(err, MemifError::Exhausted);
    // Drain; slots return; submission works again.
    s.sim.run(&mut s.sys);
    while s.memif.retrieve_completed(&mut s.sys).unwrap().is_some() {}
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 1, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
}

#[test]
fn devices_are_isolated_and_share_the_engine() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let p1 = sys.new_space();
    let p2 = sys.new_space();
    let m1 = Memif::open(&mut sys, p1, MemifConfig::default()).unwrap();
    let m2 = Memif::open(&mut sys, p2, MemifConfig::default()).unwrap();
    let a = sys.mmap(p1, 64, PageSize::Small4K, NodeId(0)).unwrap();
    let b = sys.mmap(p2, 64, PageSize::Small4K, NodeId(0)).unwrap();

    m1.submit(
        &mut sys,
        &mut sim,
        MoveSpec::migrate(a, 64, PageSize::Small4K, NodeId(1)),
    )
    .unwrap();
    m2.submit(
        &mut sys,
        &mut sim,
        MoveSpec::migrate(b, 64, PageSize::Small4K, NodeId(1)),
    )
    .unwrap();
    sim.run(&mut sys);

    assert!(m1
        .retrieve_completed(&mut sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());
    assert!(m2
        .retrieve_completed(&mut sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());
    assert!(m1.retrieve_completed(&mut sys).unwrap().is_none());
    let d1 = sys.device(m1.device()).unwrap();
    let d2 = sys.device(m2.device()).unwrap();
    assert_eq!(d1.stats.completed, 1);
    assert_eq!(d2.stats.completed, 1);
    assert_eq!(d1.stats.ioctls, 1);
    assert_eq!(d2.stats.ioctls, 1, "each instance kick-starts itself");
}

#[test]
fn close_refuses_busy_device() {
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    assert!(
        s.memif.close(&mut s.sys).is_err(),
        "in-flight work blocks close"
    );
    s.sim.run(&mut s.sys);
    while s.memif.retrieve_completed(&mut s.sys).unwrap().is_some() {}
    s.memif.close(&mut s.sys).unwrap();
}

#[test]
fn latency_log_is_consistent() {
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 16, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 16, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let dev = s.sys.device(s.memif.device()).unwrap();
    let rec = dev.log[0];
    assert_eq!(rec.bytes, 16 * PAGE);
    let started = rec.dma_started_at.expect("launched");
    assert!(rec.submitted_at <= started);
    assert!(started < rec.completed_at);
    assert!(rec.latency().as_ns() > 0);
}

#[test]
fn large_pages_migrate_with_fewer_descriptors() {
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 2, PageSize::Large2M, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 2, PageSize::Large2M, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let done = s.memif.retrieve_completed(&mut s.sys).unwrap().unwrap();
    assert!(done.status.is_ok());
    assert_eq!(done.bytes, 4 << 20);
    assert_eq!(
        s.sys.dma.stats().full_configs,
        2,
        "one descriptor per 2 MiB page"
    );
    let pa = s.sys.space(s.space).translate(va).unwrap();
    assert_eq!(s.sys.node_of(pa), Some(NodeId(1)));
}

#[test]
fn overlapping_migrations_of_one_region_serialize() {
    // Two queued migrations of the *same* region are a driver-visible
    // ordering hazard: planning the second while the first is in flight
    // would overwrite the first's semi-final PTEs and misreport it as
    // raced. The issue-time overlap guard instead parks the second
    // until the first retires, so both succeed in submission order and
    // the region ends where the *last* request put it. (A racing CPU
    // store is still detected as a race — the guard only serializes the
    // driver against itself.)
    let mut s = setup();
    let va = s
        .sys
        .mmap(s.space, 16, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 16, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 16, PageSize::Small4K, NodeId(0)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);

    let mut statuses = std::collections::HashMap::new();
    while let Some(c) = s.memif.retrieve_completed(&mut s.sys).unwrap() {
        statuses.insert(c.req_id.0, c.status);
    }
    assert!(statuses[&0].is_ok(), "first migration completes untouched");
    assert!(
        statuses[&1].is_ok(),
        "second migration runs after the first"
    );
    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(
        dev.stats.requests_deferred, 1,
        "the overlap guard parked the second migration exactly once"
    );
    // The region ends where the second migration put it: back on DDR.
    let pa = s.sys.space(s.space).translate(va).unwrap();
    assert_eq!(s.sys.node_of(pa), Some(NodeId(0)));
}

#[test]
fn descriptor_pool_exhaustion_retries_until_served() {
    // Two devices, each pipelining two 256-page requests, want
    // 4 x 256 = 1024 descriptors from the 512-entry PaRAM. The driver
    // backs off and retries instead of failing requests.
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let mut handles = Vec::new();
    for _ in 0..2 {
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
        for _ in 0..3 {
            let src = sys.mmap(space, 256, PageSize::Small4K, NodeId(0)).unwrap();
            let dst = sys.mmap(space, 256, PageSize::Small4K, NodeId(0)).unwrap();
            memif
                .submit(
                    &mut sys,
                    &mut sim,
                    MoveSpec::replicate(src, dst, 256, PageSize::Small4K),
                )
                .unwrap();
        }
        handles.push(memif);
    }
    sim.run(&mut sys);
    for memif in handles {
        let mut done = 0;
        while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
            assert!(c.status.is_ok(), "{:?}", c.status);
            done += 1;
        }
        assert_eq!(
            done, 3,
            "every request eventually served despite pool pressure"
        );
    }
}

#[test]
fn pipeline_depth_one_is_strictly_serial() {
    let config = MemifConfig {
        pipeline_depth: 1,
        ..MemifConfig::default()
    };
    let mut s = setup_with(config);
    let mut regions = Vec::new();
    for _ in 0..4 {
        regions.push(
            s.sys
                .mmap(s.space, 16, PageSize::Small4K, NodeId(0))
                .unwrap(),
        );
    }
    for va in &regions {
        s.memif
            .submit(
                &mut s.sys,
                &mut s.sim,
                MoveSpec::migrate(*va, 16, PageSize::Small4K, NodeId(1)),
            )
            .unwrap();
    }
    s.sim.run(&mut s.sys);
    let dev = s.sys.device(s.memif.device()).unwrap();
    assert_eq!(dev.stats.completed, 4);
    // Strict serialization: request k+1's DMA starts only after request
    // k's completion notification.
    for w in dev.log.windows(2) {
        assert!(
            w[1].dma_started_at.unwrap() >= w[0].completed_at,
            "serial service: {:?} vs {:?}",
            w[1].dma_started_at,
            w[0].completed_at
        );
    }
}

#[test]
fn tracing_records_the_three_paths() {
    let mut s = setup();
    s.sys.enable_tracing();
    // Large request => interrupt path; small => polling path.
    let big = s
        .sys
        .mmap(s.space, 256, PageSize::Small4K, NodeId(0))
        .unwrap();
    let small = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(big, 256, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(small, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);

    let trace = s.sys.trace();
    assert!(!trace.is_empty());
    let has = |needle: &str| trace.iter().any(|e| e.label.contains(needle));
    assert!(has("ioctl(MOV_ONE)"), "syscall path traced");
    assert!(
        has("interrupt entry"),
        "interrupt path traced (large request)"
    );
    assert!(has("kthread wakes"), "polling path traced (small request)");
    assert!(has("ops 1-3"), "preparation traced");
    assert!(has("ops 4-5"), "release traced");
    assert!(has("recolored blue"), "idle hand-off traced");
    // Every entry carries a monotone, in-range timestamp.
    for w in trace.windows(2) {
        assert!(w[0].at <= w[1].at, "trace is time-ordered");
    }
}

#[test]
fn transfer_controllers_bound_concurrency() {
    // Table 2: six transfer controllers. Eight simultaneous tenants can
    // keep at most six transfers on the engine; the rest queue and all
    // eventually complete.
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
        let src = sys.mmap(space, 32, PageSize::Small4K, NodeId(0)).unwrap();
        let dst = sys.mmap(space, 32, PageSize::Small4K, NodeId(0)).unwrap();
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::replicate(src, dst, 32, PageSize::Small4K),
            )
            .unwrap();
        handles.push(memif);
    }
    // Probe concurrency while transfers are in flight.
    let peak = std::rc::Rc::new(std::cell::Cell::new(0usize));
    for t in (0..4000u64).step_by(50) {
        let peak = std::rc::Rc::clone(&peak);
        sim.schedule_at(
            SimTime::from_ns(t * 1_000),
            SimEvent::call(move |sys: &mut System, _| {
                peak.set(peak.get().max(sys.active_transfers()));
            }),
        );
    }
    sim.run(&mut sys);
    assert!(
        peak.get() >= 5,
        "the engine was actually loaded: peak {}",
        peak.get()
    );
    assert!(
        peak.get() <= 6,
        "never more transfers than controllers: peak {}",
        peak.get()
    );
    for memif in handles {
        let c = memif
            .retrieve_completed(&mut sys)
            .unwrap()
            .expect("completed");
        assert!(c.status.is_ok());
    }
}

#[test]
fn interleaved_region_migrates_to_one_node() {
    // A region spread across both nodes by policy is gathered onto the
    // fast node by one migration — the driver handles mixed-source
    // scatter-gather fine.
    use memif_mm::{AllocPolicy, Populate};
    let mut s = setup();
    let va = s
        .sys
        .mmap_with(
            s.space,
            8,
            PageSize::Small4K,
            AllocPolicy::Interleave(vec![NodeId(0), NodeId(1)]),
            Populate::Eager,
        )
        .unwrap();
    let data = pattern(8 * PAGE, 3);
    s.sys.write_user(s.space, va, &data).unwrap();

    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 8, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    assert!(s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .unwrap()
        .status
        .is_ok());

    for i in 0..8u64 {
        let pa = s.sys.space(s.space).translate(va.offset(i * PAGE)).unwrap();
        assert_eq!(s.sys.node_of(pa), Some(NodeId(1)), "page {i} gathered");
    }
    let mut back = vec![0u8; data.len()];
    s.sys.read_user(s.space, va, &mut back).unwrap();
    assert_eq!(back, data);
}

#[test]
fn migrating_an_unpopulated_lazy_region_fails_cleanly() {
    use memif_mm::{AllocPolicy, Populate};
    let mut s = setup();
    let va = s
        .sys
        .mmap_with(
            s.space,
            4,
            PageSize::Small4K,
            AllocPolicy::Bind(NodeId(0)),
            Populate::Lazy,
        )
        .unwrap();
    // Touch only the first page.
    s.sys.write_user(s.space, va, &[1]).unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.run(&mut s.sys);
    let c = s.memif.retrieve_completed(&mut s.sys).unwrap().unwrap();
    assert_eq!(
        c.status.0,
        memif::MoveStatus::Invalid,
        "holes are rejected, mapping untouched"
    );
    assert!(s.sys.space(s.space).translate(va).is_some());
}

#[test]
fn recover_mode_tolerates_reads() {
    // Proceed-and-recover traps *writes*; a mid-flight read clears the
    // young bit but must not fail the migration — the driver finalizes
    // the read-disturbed entry, clears the write trap, and the request
    // completes Done. (Found and pinned by the driver fuzzer.)
    let config = MemifConfig {
        race_mode: RaceMode::DetectRecover,
        ..MemifConfig::default()
    };
    let mut s = setup_with(config);
    let va = s
        .sys
        .mmap(s.space, 4, PageSize::Small4K, NodeId(0))
        .unwrap();
    s.memif
        .submit(
            &mut s.sys,
            &mut s.sim,
            MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    s.sim.schedule_at(
        SimTime::from_ns(1),
        SimEvent::call(move |sys: &mut System, _| {
            sys.space_mut(memif::SpaceId(0))
                .access(va, AccessKind::Read)
                .unwrap();
        }),
    );
    s.sim.run(&mut s.sys);

    let done = s
        .memif
        .retrieve_completed(&mut s.sys)
        .unwrap()
        .expect("completed");
    assert!(
        done.status.is_ok(),
        "reads are transparent in recover mode: {:?}",
        done.status
    );
    // Migration took effect, and the page is writable again (no leaked
    // watch bit).
    let pa = s.sys.space(s.space).translate(va).unwrap();
    assert_eq!(s.sys.node_of(pa), Some(NodeId(1)));
    assert!(s
        .sys
        .space_mut(s.space)
        .access(va, AccessKind::Write)
        .is_ok());
}
