//! Property-based driver fuzzing: random interleavings of submissions
//! (valid and invalid), racing CPU accesses, simulation slices, and
//! retrievals must never panic, leak, or corrupt — regardless of race
//! mode or pipeline depth.

use memif::{
    Memif, MemifConfig, MoveSpec, NodeId, PageSize, RaceMode, Sim, SimDuration, SpaceId, System,
};
use memif_mm::AccessKind;
use proptest::prelude::*;

const REGIONS: usize = 3;
const PAGES: u32 = 8;

#[derive(Debug, Clone)]
enum Op {
    /// Migrate region `r` toward fast (`true`) or slow.
    Migrate(usize, bool),
    /// Replicate region `src` into region `dst`.
    Replicate(usize, usize),
    /// Submit something semantically invalid (unaligned / bad node /
    /// out-of-range) — must surface as an async failure, nothing worse.
    SubmitInvalid(u8),
    /// Touch a byte of region `r` (may race with an in-flight move, may
    /// hit migration entries or watch bits — all are legal outcomes).
    Touch(usize, bool),
    /// Let the machine run for a bounded slice.
    RunFor(u32),
    /// Drain the completion queues.
    RetrieveAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..REGIONS), any::<bool>()).prop_map(|(r, f)| Op::Migrate(r, f)),
        ((0..REGIONS), (0..REGIONS)).prop_map(|(a, b)| Op::Replicate(a, b)),
        any::<u8>().prop_map(Op::SubmitInvalid),
        ((0..REGIONS), any::<bool>()).prop_map(|(r, w)| Op::Touch(r, w)),
        (1u32..2_000).prop_map(Op::RunFor),
        Just(Op::RetrieveAll),
    ]
}

fn config_strategy() -> impl Strategy<Value = MemifConfig> {
    (
        prop_oneof![
            Just(RaceMode::DetectFail),
            Just(RaceMode::DetectRecover),
            Just(RaceMode::Prevent)
        ],
        1usize..4,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(race_mode, pipeline_depth, gang, reuse)| MemifConfig {
            race_mode,
            pipeline_depth,
            gang_lookup: gang,
            descriptor_reuse: reuse,
            ..MemifConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn driver_survives_arbitrary_interleavings(
        config in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let recover = config.race_mode == RaceMode::DetectRecover;
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, config).unwrap();

        let frames_baseline = sys.alloc.live_frames();
        let regions: Vec<_> = (0..REGIONS)
            .map(|_| sys.mmap(space, PAGES, PageSize::Small4K, NodeId(0)).unwrap())
            .collect();
        let frames_mapped = sys.alloc.live_frames();
        prop_assert_eq!(frames_mapped - frames_baseline, REGIONS * PAGES as usize);

        let mut submitted = 0u64;
        let mut retrieved = 0u64;

        for op in ops {
            match op {
                Op::Migrate(r, to_fast) => {
                    let node = if to_fast { NodeId(1) } else { NodeId(0) };
                    let spec = MoveSpec::migrate(regions[r], PAGES, PageSize::Small4K, node);
                    if memif.submit(&mut sys, &mut sim, spec).is_ok() {
                        submitted += 1;
                    }
                }
                Op::Replicate(a, b) => {
                    if a != b {
                        let spec = MoveSpec::replicate(
                            regions[a], regions[b], PAGES, PageSize::Small4K,
                        );
                        if memif.submit(&mut sys, &mut sim, spec).is_ok() {
                            submitted += 1;
                        }
                    }
                }
                Op::SubmitInvalid(sel) => {
                    let spec = match sel % 3 {
                        0 => MoveSpec::migrate(
                            regions[0].offset(1), PAGES, PageSize::Small4K, NodeId(1),
                        ),
                        1 => MoveSpec::migrate(regions[0], PAGES, PageSize::Small4K, NodeId(7)),
                        _ => MoveSpec::migrate(regions[0], 5_000, PageSize::Small4K, NodeId(1)),
                    };
                    if memif.submit(&mut sys, &mut sim, spec).is_ok() {
                        submitted += 1;
                    }
                }
                Op::Touch(r, write) => {
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    match sys.space_mut(SpaceId(0)).access(regions[r], kind) {
                        Ok(_) => {}
                        Err(memif_mm::Fault::BlockedByMigration(_)) => {}
                        Err(memif_mm::Fault::WriteProtected(va)) => {
                            // Recover mode: the trap aborts the migration
                            // and the store retries successfully.
                            prop_assert!(recover);
                            let handled =
                                memif::handle_write_fault(&mut sys, &mut sim, space, va);
                            prop_assert!(handled);
                            prop_assert!(sys
                                .space_mut(SpaceId(0))
                                .access(regions[r], kind)
                                .is_ok());
                        }
                        Err(other) => prop_assert!(false, "unexpected fault {other}"),
                    }
                }
                Op::RunFor(us) => {
                    let until = sim.now() + SimDuration::from_us(u64::from(us));
                    sim.run_until(&mut sys, until);
                }
                Op::RetrieveAll => {
                    while let Some(_c) = memif.retrieve_completed(&mut sys).unwrap() {
                        retrieved += 1;
                    }
                }
            }
        }

        // Quiesce and drain.
        sim.run(&mut sys);
        while let Some(_c) = memif.retrieve_completed(&mut sys).unwrap() {
            retrieved += 1;
        }

        // Conservation invariants.
        prop_assert_eq!(retrieved, submitted, "every submission completes exactly once");
        prop_assert_eq!(
            sys.alloc.live_frames(),
            frames_mapped,
            "no frame leaked or double-freed"
        );
        let dev = sys.device(memif.device()).unwrap();
        prop_assert_eq!(dev.region.stats().free, dev.config.queue_capacity);
        prop_assert!(dev.is_idle());
        prop_assert_eq!(dev.stats.completed + dev.stats.failed, submitted);
        prop_assert_eq!(sys.active_transfers(), 0, "no transfer stuck on a controller");
        // Every region is still fully mapped and readable.
        for va in &regions {
            for i in 0..PAGES {
                let page = va.offset(u64::from(i) * 4096);
                prop_assert!(sys.space(space).translate(page).is_some());
            }
        }
        memif.close(&mut sys).unwrap();
    }
}
