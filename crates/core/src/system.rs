//! The simulated machine: the world type all memif experiments run on.
//!
//! [`System`] bundles the hardware substrates (topology, physical
//! memory, DMA engine, bandwidth flows, cost model), the memory manager
//! (frame allocator plus per-process address spaces), the usage meter,
//! and the open memif devices. Experiment scripts own a `System` and a
//! [`Sim<System>`] and drive both.

use memif_hwsim::dma::DmaEngine;
use memif_hwsim::{
    Context, CostModel, FlowSystem, NodeId, PhysAddr, PhysMem, ResourceId, Sim, SimDuration,
    SimTime, TcScheduler, Topology, UsageMeter,
};
use memif_mm::{AddressSpace, FrameAllocator};

use crate::device::{DeviceId, MemifDevice};
use crate::event::SimEvent;

/// One entry of the driver execution trace (Figure 5 reconstruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the activity started.
    pub at: SimTime,
    /// How long it occupied its context (zero for instant events).
    pub duration: SimDuration,
    /// The execution context (syscall / interrupt / kernel thread / DMA).
    pub ctx: Context,
    /// What happened.
    pub label: String,
    /// The request involved, if any.
    pub req: Option<u64>,
}

/// Identifies a simulated process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceId(pub usize);

/// Bandwidth resources registered with the flow network.
#[derive(Debug)]
pub struct Resources {
    nodes: Vec<ResourceId>,
    /// One resource per transfer-controller channel; `tcs[0]` is the
    /// engine-wide resource of the single-channel (paper) configuration.
    tcs: Vec<ResourceId>,
    /// Per-node *write* pipe, present only for NVM-like nodes whose
    /// writes are slower than reads. `None` elsewhere, so machines
    /// without an NVM bank are resource-for-resource unchanged.
    nvm_writes: Vec<Option<ResourceId>>,
}

impl Resources {
    /// The resource of a memory node's bus.
    #[must_use]
    pub fn node(&self, id: NodeId) -> ResourceId {
        self.nodes[id.0 as usize]
    }

    /// The write-side pipe of an NVM node, if the node has one.
    #[must_use]
    pub fn node_write(&self, id: NodeId) -> Option<ResourceId> {
        self.nvm_writes.get(id.0 as usize).copied().flatten()
    }

    /// The DMA engine's aggregate-bandwidth resource (transfer-controller
    /// channel 0).
    #[must_use]
    pub fn engine(&self) -> ResourceId {
        self.tcs[0]
    }

    /// The bandwidth resource of transfer-controller channel `tc`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range channel index.
    #[must_use]
    pub fn tc(&self, tc: usize) -> ResourceId {
        self.tcs[tc]
    }

    /// Number of transfer-controller channels.
    #[must_use]
    pub fn tc_count(&self) -> usize {
        self.tcs.len()
    }
}

/// Occupancy and migration traffic of one tier rank, as reported by
/// [`System::tier_usage`] (and surfaced as the `tiers` array of the CLI's
/// `--json` output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierUsage {
    /// Tier rank (0 = fastest).
    pub rank: u16,
    /// Technology label of the tier's banks ("fast", "slow", "nvm",
    /// "compressed").
    pub kind: &'static str,
    /// Bytes currently allocated across the tier's banks.
    pub used_bytes: u64,
    /// Total bytes across the tier's banks.
    pub capacity_bytes: u64,
    /// Successful migrations that landed on this tier.
    pub moves_in: u64,
    /// Successful migrations that left this tier.
    pub moves_out: u64,
}

/// The whole simulated machine.
#[derive(Debug)]
pub struct System {
    /// Memory topology (booted; all banks online).
    pub topo: Topology,
    /// Per-operation cost model.
    pub cost: CostModel,
    /// Byte-backed physical memory.
    pub phys: PhysMem,
    /// Per-node frame allocator.
    pub alloc: FrameAllocator,
    /// Bandwidth-contention flows (DMA transfers, CPU streaming).
    pub flows: FlowSystem<System>,
    /// The EDMA3-model engine.
    pub dma: DmaEngine,
    /// CPU/engine busy-time accounting.
    pub meter: UsageMeter,
    /// Flow-resource handles.
    pub resources: Resources,
    pub(crate) devices: Vec<Option<MemifDevice>>,
    pub(crate) spaces: Vec<AddressSpace>,
    pub(crate) trace: Option<Vec<TraceEntry>>,
    /// Transfer-controller channels: admission (the hardware's global
    /// controller cap), least-loaded routing, and per-channel launch
    /// queues. Tickets are `(device, token)` of the launch to re-run.
    pub(crate) tc: TcScheduler<(DeviceId, u64)>,
    /// Hook callbacks dispatched by [`SimEvent::Hook`].
    pub(crate) hooks: crate::event::Hooks,
    /// JSON-lines record of every dispatched event, when enabled.
    pub(crate) event_log: Option<Vec<String>>,
    /// The persistent write-ahead move journal (crash recovery).
    pub(crate) journal: crate::journal::MoveJournal,
    /// Set by a crash point firing: the world has halted; every further
    /// event is dropped until [`System::recover`] runs.
    pub(crate) crashed: bool,
}

impl System {
    /// A booted KeyStone II machine with the paper's cost profile.
    #[must_use]
    pub fn keystone_ii() -> Self {
        Self::with_profile(Topology::keystone_ii(), CostModel::keystone_ii())
    }

    /// A machine over a custom topology and cost model. Boot completes
    /// here: hidden banks come online and get allocators, reproducing
    /// the §6.1 bring-up order.
    #[must_use]
    pub fn with_profile(mut topo: Topology, cost: CostModel) -> Self {
        let pre_boot = FrameAllocator::new(&topo); // boot-visible banks only
        let mut alloc = pre_boot;
        topo.complete_boot();
        for node in topo.online_nodes() {
            if alloc.total_bytes(node.id) == 0 {
                alloc.online_node(node);
            }
        }
        let mut flows = FlowSystem::new(|| SimEvent::FlowTick);
        let nodes = topo
            .all_nodes()
            .iter()
            .map(|n| flows.add_resource(n.name.clone(), n.bandwidth_gbps))
            .collect();
        // NVM nodes get a second, slower write-side pipe; DMA routes
        // targeting them are constrained by it (asymmetric read/write
        // cost). Machines without an NVM bank add no extra resources.
        let nvm_writes = topo
            .all_nodes()
            .iter()
            .map(|n| {
                if n.kind.is_persistent() {
                    Some(flows.add_resource(format!("{}-wr", n.name), cost.nvm_write_bw_gbps))
                } else {
                    None
                }
            })
            .collect();
        // Transfer-controller channels. Channel 0 keeps the historical
        // "dma-engine" name (and resource id), so a one-channel machine
        // is resource-for-resource identical to the pre-TC layout.
        let tc_count = cost.dma_tc_count.max(1) as usize;
        let mut tc = TcScheduler::new(cost.dma_transfer_controllers as usize);
        let mut tcs = Vec::with_capacity(tc_count);
        for i in 0..tc_count {
            let name = if i == 0 {
                "dma-engine".to_owned()
            } else {
                format!("dma-tc{i}")
            };
            let r = flows.add_resource(name, cost.dma_engine_bw_gbps);
            tc.add_channel(r);
            tcs.push(r);
        }
        System {
            topo,
            cost,
            phys: PhysMem::new(),
            alloc,
            flows,
            dma: DmaEngine::new(),
            meter: UsageMeter::new(),
            resources: Resources {
                nodes,
                tcs,
                nvm_writes,
            },
            devices: Vec::new(),
            spaces: Vec::new(),
            trace: None,
            tc,
            hooks: crate::event::Hooks::default(),
            event_log: None,
            journal: crate::journal::MoveJournal::default(),
            crashed: false,
        }
    }

    /// Transfers currently executing on the engine's transfer
    /// controllers (diagnostics).
    #[must_use]
    pub fn active_transfers(&self) -> usize {
        self.tc.active()
    }

    /// Installs a chaos-mode fault plan: the DMA engine gets a seeded
    /// [`memif_hwsim::FaultInjector`], and every scheduled brownout
    /// becomes a pair of events scaling the affected node's bus capacity
    /// down at its start and back at its end.
    ///
    /// Installing a plan also arms the driver's per-request watchdogs
    /// and bounded-retry machinery; without one (the default), none of
    /// that machinery exists and simulation output is byte-identical to
    /// a build without this feature. A no-op plan with brownouts still
    /// installs (the watchdog must cover brownout-stretched transfers).
    ///
    /// Brownouts naming unknown nodes are skipped.
    pub fn install_faults(&mut self, sim: &mut Sim<System>, plan: memif_hwsim::FaultPlan) {
        for b in &plan.brownouts {
            let Some(node) = self.topo.node(b.node) else {
                continue;
            };
            let base = node.bandwidth_gbps;
            let factor = b.factor.clamp(f64::MIN_POSITIVE, 1.0);
            let resource = self.resources.node(b.node);
            let (start, end) = (b.start, b.start + b.duration);
            sim.schedule_at(
                start,
                SimEvent::SetCapacity {
                    resource,
                    gbps: base * factor,
                },
            );
            sim.schedule_at(
                end,
                SimEvent::SetCapacity {
                    resource,
                    gbps: base,
                },
            );
        }
        self.dma
            .install_injector(memif_hwsim::FaultInjector::new(plan));
    }

    /// True once a fault plan has been installed: the driver arms
    /// watchdogs and bounds its retries.
    #[must_use]
    pub fn chaos_enabled(&self) -> bool {
        self.dma.injector().is_some()
    }

    /// True after a crash point fired: the world is halted and only
    /// [`System::recover`] makes it usable again.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The persistent move journal (diagnostics, recovery tests).
    #[must_use]
    pub fn journal(&self) -> &crate::journal::MoveJournal {
        &self.journal
    }

    /// Rolls the installed fault plan's crash point at `point` and, if
    /// it fires, halts the world. Returns `true` exactly when the crash
    /// fired *now*; call sites must stop their work immediately. Free
    /// when no fault plan is installed.
    pub(crate) fn maybe_crash(
        &mut self,
        sim: &mut Sim<System>,
        point: memif_hwsim::CrashPoint,
    ) -> bool {
        if self.crashed {
            return true;
        }
        let fired = self
            .dma
            .injector_mut()
            .is_some_and(|inj| inj.roll_crash(point));
        if fired {
            self.force_crash(sim, point.as_str());
        }
        fired
    }

    /// Halts the world as a crash would, unconditionally (test hook and
    /// the crash points' common path). All volatile state is considered
    /// lost from this instant; pending events drain undelivered.
    pub fn force_crash(&mut self, sim: &mut Sim<System>, label: &str) {
        self.crashed = true;
        if let Some(log) = &mut self.event_log {
            log.push(format!(
                "{{\"t\":{},\"type\":\"crash\",\"point\":\"{}\"}}",
                sim.now().as_ns(),
                label
            ));
        }
    }

    /// Turns on driver execution tracing (the raw material for the
    /// Figure 5 timeline). Costs nothing when off.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    pub(crate) fn trace_emit(
        &mut self,
        at: SimTime,
        duration: SimDuration,
        ctx: Context,
        label: impl Into<String>,
        req: Option<u64>,
    ) {
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry {
                at,
                duration,
                ctx,
                label: label.into(),
                req,
            });
        }
    }

    /// Creates an empty process address space.
    pub fn new_space(&mut self) -> SpaceId {
        self.spaces.push(AddressSpace::new());
        SpaceId(self.spaces.len() - 1)
    }

    /// The address space `id`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn space(&self, id: SpaceId) -> &AddressSpace {
        &self.spaces[id.0]
    }

    /// Mutable access to the address space `id`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn space_mut(&mut self, id: SpaceId) -> &mut AddressSpace {
        &mut self.spaces[id.0]
    }

    /// Maps an anonymous region in `space`, eagerly backed on `node` —
    /// a convenience around [`AddressSpace::mmap_anonymous`] that
    /// supplies the machine's frame allocator.
    ///
    /// # Errors
    ///
    /// Propagates [`memif_mm::MmError`].
    pub fn mmap(
        &mut self,
        space: SpaceId,
        pages: u32,
        page_size: memif_mm::PageSize,
        node: NodeId,
    ) -> Result<memif_mm::VirtAddr, memif_mm::MmError> {
        self.spaces[space.0].mmap_anonymous(&mut self.alloc, pages, page_size, node)
    }

    /// Maps an anonymous region under an arbitrary allocation policy
    /// (interleave/preferred/bind) with eager or lazy population — the
    /// `mbind`-policy surface of the pseudo-NUMA abstraction.
    ///
    /// # Errors
    ///
    /// Propagates [`memif_mm::MmError`].
    pub fn mmap_with(
        &mut self,
        space: SpaceId,
        pages: u32,
        page_size: memif_mm::PageSize,
        policy: memif_mm::AllocPolicy,
        populate: memif_mm::Populate,
    ) -> Result<memif_mm::VirtAddr, memif_mm::MmError> {
        self.spaces[space.0].mmap_with(&mut self.alloc, pages, page_size, policy, populate)
    }

    /// Writes bytes into `space` at `vaddr` through ordinary CPU
    /// accesses (page faults are *not* recovered; see
    /// [`System::cpu_write`] for proceed-and-recover semantics).
    ///
    /// # Errors
    ///
    /// Propagates [`memif_mm::Fault`].
    pub fn write_user(
        &mut self,
        space: SpaceId,
        vaddr: memif_mm::VirtAddr,
        data: &[u8],
    ) -> Result<(), memif_mm::Fault> {
        loop {
            match self.spaces[space.0].write_bytes(&mut self.phys, vaddr, data) {
                Err(memif_mm::Fault::DemandPage(page)) => {
                    self.spaces[space.0]
                        .handle_demand_fault(&mut self.alloc, page)
                        .map_err(|_| memif_mm::Fault::Unmapped(page))?;
                }
                other => return other,
            }
        }
    }

    /// Reads bytes from `space` at `vaddr` through ordinary CPU accesses.
    ///
    /// # Errors
    ///
    /// Propagates [`memif_mm::Fault`].
    pub fn read_user(
        &mut self,
        space: SpaceId,
        vaddr: memif_mm::VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), memif_mm::Fault> {
        loop {
            match self.spaces[space.0].read_bytes(&self.phys, vaddr, buf) {
                Err(memif_mm::Fault::DemandPage(page)) => {
                    self.spaces[space.0]
                        .handle_demand_fault(&mut self.alloc, page)
                        .map_err(|_| memif_mm::Fault::Unmapped(page))?;
                }
                other => return other,
            }
        }
    }

    /// Shares the region at `vaddr` in `from` into `to`: the new space
    /// maps the *same* backing frames (reference counts bumped). The
    /// substrate behind moving "pages shared among processes", which the
    /// paper's prototype supported only primitively (§6.7); migration of
    /// shared pages here updates every mapper through reverse mapping.
    ///
    /// # Errors
    ///
    /// [`memif_mm::MmError::NoSuchRegion`] if `vaddr` does not start a
    /// region in `from`, or mapping failures from the target space.
    pub fn share_region(
        &mut self,
        from: SpaceId,
        vaddr: memif_mm::VirtAddr,
        to: SpaceId,
    ) -> Result<memif_mm::VirtAddr, memif_mm::MmError> {
        let (frames, page_size, node) = {
            let space = &self.spaces[from.0];
            let vma = space
                .vma_at(vaddr)
                .filter(|v| v.start == vaddr)
                .ok_or(memif_mm::MmError::NoSuchRegion(vaddr))?
                .clone();
            let mut frames = Vec::with_capacity(vma.pages as usize);
            for i in 0..vma.pages {
                let va = vaddr.offset(u64::from(i) * vma.page_size.bytes());
                let pa = space
                    .translate(va)
                    .ok_or(memif_mm::MmError::NoSuchRegion(va))?;
                frames.push(pa);
            }
            (frames, vma.page_size, vma.node)
        };
        self.spaces[to.0].map_shared(&mut self.alloc, &frames, page_size, node)
    }

    /// Reverse mapping: every `(space, vaddr)` whose present entry maps
    /// `frame` at `page_size` granularity. Linear in the machine's
    /// mapped pages — fine at simulation scale; the cost model charges
    /// per mapping found.
    #[must_use]
    pub fn rmap_mappers(
        &self,
        frame: PhysAddr,
        page_size: memif_mm::PageSize,
    ) -> Vec<(SpaceId, memif_mm::VirtAddr)> {
        let mut out = Vec::new();
        for (sid, space) in self.spaces.iter().enumerate() {
            for vma in space.vmas() {
                if vma.page_size != page_size {
                    continue;
                }
                for i in 0..vma.pages {
                    let va = vma.start.offset(u64::from(i) * page_size.bytes());
                    if let Some(pte) = space.table().peek(va, page_size) {
                        if pte.is_present() && pte.frame() == frame {
                            out.push((SpaceId(sid), va));
                        }
                    }
                }
            }
        }
        out
    }

    /// Splits out the pieces the synchronous Linux-baseline path needs
    /// (`memif-baseline` runs against the same machine state but outside
    /// the event loop): the address spaces, the frame allocator, and
    /// physical memory.
    pub fn split_for_baseline(
        &mut self,
    ) -> (&mut Vec<AddressSpace>, &mut FrameAllocator, &mut PhysMem) {
        (&mut self.spaces, &mut self.alloc, &mut self.phys)
    }

    /// The flow route a DMA transfer between two nodes occupies: the
    /// engine (transfer-controller channel 0) plus each distinct node
    /// bus.
    #[must_use]
    pub fn dma_route(&self, src: NodeId, dst: NodeId) -> Vec<ResourceId> {
        self.dma_route_on(0, src, dst)
    }

    /// The flow route of a transfer dispatched onto transfer-controller
    /// channel `tc`: that channel's pipe plus each distinct node bus.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range channel index.
    #[must_use]
    pub fn dma_route_on(&self, tc: usize, src: NodeId, dst: NodeId) -> Vec<ResourceId> {
        let mut route = vec![self.resources.tc(tc), self.resources.node(src)];
        if let Some(wr) = self.resources.node_write(dst) {
            // Writes into an NVM node go through its slower write pipe.
            route.push(wr);
        } else if src != dst {
            route.push(self.resources.node(dst));
        }
        route
    }

    /// Which node backs a physical address.
    #[must_use]
    pub fn node_of(&self, addr: PhysAddr) -> Option<NodeId> {
        self.topo.node_of_addr(addr)
    }

    /// End-of-run occupancy and migration traffic per tier rank, in rank
    /// order (the `tiers` array of `stats --json` / `policy --json`).
    /// Occupancy comes from the frame allocator; move counts sum the
    /// per-node counters of every open device over the tier's banks.
    #[must_use]
    pub fn tier_usage(&self) -> Vec<TierUsage> {
        (0..self.topo.tier_count())
            .map(|rank| {
                let rank = memif_hwsim::TierRank(rank as u16);
                let mut usage = TierUsage {
                    rank: rank.0,
                    kind: "?",
                    used_bytes: 0,
                    capacity_bytes: 0,
                    moves_in: 0,
                    moves_out: 0,
                };
                for node in self.topo.nodes_of_tier(rank) {
                    usage.kind = node.kind.label();
                    let total = self.alloc.total_bytes(node.id);
                    usage.capacity_bytes += total;
                    usage.used_bytes += total - self.alloc.free_bytes(node.id);
                    for device in self.devices.iter().flatten() {
                        usage.moves_in += device
                            .stats
                            .node_moves_in
                            .get(&node.id.0)
                            .copied()
                            .unwrap_or(0);
                        usage.moves_out += device
                            .stats
                            .node_moves_out
                            .get(&node.id.0)
                            .copied()
                            .unwrap_or(0);
                    }
                }
                usage
            })
            .collect()
    }

    /// Runs the given closure as a fresh simulation over this system,
    /// returning the closure's value (convenience for tests/examples).
    ///
    /// # Examples
    ///
    /// ```
    /// use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, System};
    ///
    /// let mut sys = System::keystone_ii();
    /// let space = sys.new_space();
    /// let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    /// let va = sys.mmap(space, 4, PageSize::Small4K, NodeId(0)).unwrap();
    /// sys.run_sim(|sys, sim| {
    ///     memif.submit(sys, sim, MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1))).unwrap();
    /// });
    /// assert!(memif.retrieve_completed(&mut sys).unwrap().unwrap().status.is_ok());
    /// ```
    pub fn run_sim<T>(&mut self, f: impl FnOnce(&mut System, &mut Sim<System>) -> T) -> T {
        let mut sim = Sim::new();
        let out = f(self, &mut sim);
        sim.run(self);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif_hwsim::MemoryKind;
    use memif_mm::PageSize;

    #[test]
    fn keystone_boots_with_both_nodes() {
        let sys = System::keystone_ii();
        assert!(sys.topo.is_booted());
        assert_eq!(sys.topo.online_nodes().count(), 2);
        assert_eq!(
            sys.alloc.total_bytes(NodeId(1)),
            6 << 20,
            "SRAM onlined post-boot"
        );
        assert_eq!(sys.alloc.total_bytes(NodeId(0)), 8 << 30);
    }

    #[test]
    fn spaces_are_independent() {
        let mut sys = System::keystone_ii();
        let a = sys.new_space();
        let b = sys.new_space();
        let va = {
            let alloc = &mut sys.alloc;
            sys.spaces[a.0]
                .mmap_anonymous(alloc, 2, PageSize::Small4K, NodeId(0))
                .unwrap()
        };
        assert!(sys.space(a).translate(va).is_some());
        assert!(sys.space(b).translate(va).is_none());
    }

    #[test]
    fn dma_route_dedups_same_node() {
        let sys = System::keystone_ii();
        assert_eq!(sys.dma_route(NodeId(0), NodeId(1)).len(), 3);
        assert_eq!(sys.dma_route(NodeId(0), NodeId(0)).len(), 2);
    }

    #[test]
    fn node_lookup_by_phys_addr() {
        let sys = System::keystone_ii();
        let fast = sys.topo.node_of_kind(MemoryKind::Fast).unwrap().base;
        assert_eq!(sys.node_of(fast), Some(NodeId(1)));
    }
}
