//! The syscall path: `ioctl(MOV_ONE)` (§4.2, §5.4).
//!
//! "Entering the kernel, it dequeues a `mov_req` from the submission
//! queue and executes the memif driver for the request. [...] it exits
//! the kernel as soon as the resultant DMA transfer starts." The
//! application thread pays exactly one crossing for an entire burst of
//! asynchronous submissions.

use memif_hwsim::{Context, Phase, Sim, SimDuration};
use memif_lockfree::QueueId;

use crate::device::DeviceId;
use crate::driver::exec::execute_request;
use crate::driver::{dev, dev_mut};
use crate::event::SimEvent;
use crate::system::System;

/// Executes one `MOV_ONE` command in the calling process's context.
/// Returns the time spent inside the kernel (crossing + ops 1–3).
pub(crate) fn mov_one(sys: &mut System, sim: &mut Sim<System>, id: DeviceId) -> SimDuration {
    let crossing = sys.cost.syscall;
    sys.meter.charge(Context::Syscall, crossing);
    sys.trace_emit(
        sim.now(),
        crossing,
        Context::Syscall,
        "ioctl(MOV_ONE) enter",
        None,
    );
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.ioctls += 1;
        stats.phases.add(Phase::Interface, crossing);
    }

    let queue_cost = sys.cost.queue_op;
    sys.meter.charge(Context::Syscall, queue_cost);
    let next = match dev(sys, id).region.dequeue(QueueId::Submission) {
        Ok(next) => next,
        Err(e) => {
            // The mapped region failed validation mid-ioctl: fail the
            // call cleanly instead of panicking the kernel.
            crate::driver::region_fault(sys, sim, id, Context::Syscall, &e);
            return crossing + queue_cost;
        }
    };

    match next {
        Some(deq) => {
            let (elapsed, _outcome) = execute_request(sys, sim, id, deq, Context::Syscall);
            // Wake the worker once the syscall's CPU time has passed: it
            // drains the rest of the burst, pipelining the next
            // request's preparation with the first transfer.
            sim.schedule_after(elapsed, SimEvent::KthreadRun { device: id });
            crossing + queue_cost + elapsed
        }
        None => crossing + queue_cost, // spurious kick: queue already drained
    }
}
