//! The syscall path: `ioctl(MOV_ONE)` (§4.2, §5.4).
//!
//! "Entering the kernel, it dequeues a `mov_req` from the submission
//! queue and executes the memif driver for the request. [...] it exits
//! the kernel as soon as the resultant DMA transfer starts." The
//! application thread pays exactly one crossing for an entire burst of
//! asynchronous submissions.

use memif_hwsim::{Context, Phase, Sim, SimDuration};
use memif_lockfree::QueueId;

use crate::device::DeviceId;
use crate::driver::exec::execute_request;
use crate::driver::{dev, dev_mut};
use crate::event::SimEvent;
use crate::system::System;

/// Executes one `MOV_ONE` command in the calling process's context,
/// against issue shard `shard`'s submission queue. Returns the time
/// spent inside the kernel (crossing + ops 1–3).
pub(crate) fn mov_one(
    sys: &mut System,
    sim: &mut Sim<System>,
    id: DeviceId,
    shard: usize,
) -> SimDuration {
    let crossing = sys.cost.syscall;
    sys.meter.charge(Context::Syscall, crossing);
    sys.trace_emit(
        sim.now(),
        crossing,
        Context::Syscall,
        "ioctl(MOV_ONE) enter",
        None,
    );
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.ioctls += 1;
        stats.phases.add(Phase::Interface, crossing);
    }

    let queue_cost = sys.cost.queue_op;
    sys.meter.charge(Context::Syscall, queue_cost);
    let next = match dev(sys, id)
        .region
        .dequeue_sharded(QueueId::Submission, shard)
    {
        Ok(next) => next,
        Err(e) => {
            // The mapped region failed validation mid-ioctl: fail the
            // call cleanly instead of panicking the kernel.
            crate::driver::region_fault(sys, sim, id, Context::Syscall, &e);
            return crossing + queue_cost;
        }
    };

    match next {
        Some(deq) => {
            // The same issue-time hazard guard the worker applies: with
            // one shard an overlapping request can never reach this
            // point (it lands on the Red staging queue and goes through
            // the worker), but with affinity routing the conflicting
            // requests can arrive on *different* shards, each finding
            // its own queue idle. Park it; the conflicting request's
            // retire path wakes every shard with deferred work.
            if let Some(tok) = crate::driver::kthread::conflicting_token(dev(sys, id), &deq.req) {
                let cross = dev(sys, id)
                    .inflight
                    .iter()
                    .find(|i| i.token == tok)
                    .is_some_and(|i| i.shard != shard);
                let stats = &mut dev_mut(sys, id).stats;
                stats.requests_deferred += 1;
                if cross {
                    stats.cross_shard_deferred += 1;
                }
                dev_mut(sys, id).shards[shard].deferred.push(deq);
                // Any burst-mates behind it still need the worker.
                sim.schedule_after(
                    crossing + queue_cost,
                    SimEvent::KthreadRun { device: id, shard },
                );
                return crossing + queue_cost;
            }
            let (elapsed, _outcome) = execute_request(sys, sim, id, deq, Context::Syscall, shard);
            // Wake the shard's worker once the syscall's CPU time has
            // passed: it drains the rest of the burst, pipelining the
            // next request's preparation with the first transfer.
            sim.schedule_after(elapsed, SimEvent::KthreadRun { device: id, shard });
            crossing + queue_cost + elapsed
        }
        None => crossing + queue_cost, // spurious kick: queue already drained
    }
}
