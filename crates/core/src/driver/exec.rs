//! Operations 1–3 of Table 1: Prep (gang lookup), Remap, DMA config and
//! launch.

use memif_hwsim::dma::SgSegment;
use memif_hwsim::{CompletionDelivery, Context, Phase, PhysAddr, SimDuration};
use memif_lockfree::{Dequeued, FailReason, MovReq, MoveKind, MoveStatus};
use memif_mm::{PageSize, Pte, VirtAddr};

use crate::config::RaceMode;
use crate::device::{DeviceId, Inflight, PagePlan, PlanScratch};
use crate::driver::{complete, dev, dev_mut, fault};
use crate::event::SimEvent;
use crate::system::System;

/// What happened to a request handed to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecOutcome {
    /// A DMA transfer was launched; completion continues asynchronously.
    Launched,
    /// The request was rejected and its failure notification delivered.
    Rejected,
}

struct Plan {
    segments: Vec<SgSegment>,
    pages: Vec<PagePlan>,
    page_size: PageSize,
    prep_cost: SimDuration,
    remap_cost: SimDuration,
    /// Segments eliminated by coalescing (0 with coalescing off).
    coalesced_away: u64,
}

/// Merges adjacent segments whose source **and** destination runs are
/// both physically contiguous into one larger descriptor, in place.
/// Returns the number of segments eliminated.
fn coalesce_in_place(segs: &mut Vec<SgSegment>) -> u64 {
    if segs.len() < 2 {
        return 0;
    }
    let before = segs.len();
    let mut w = 0usize;
    for r in 1..segs.len() {
        let seg = segs[r];
        let prev = segs[w];
        if prev.src.offset(prev.bytes) == seg.src && prev.dst.offset(prev.bytes) == seg.dst {
            segs[w].bytes += seg.bytes;
        } else {
            w += 1;
            segs[w] = seg;
        }
    }
    segs.truncate(w + 1);
    (before - segs.len()) as u64
}

/// Books the coalescing savings of a freshly built plan: eliminated
/// segments and the descriptor field writes they would have cost.
fn record_coalescing(sys: &mut System, id: DeviceId, plan: &Plan) {
    if plan.coalesced_away > 0 {
        let stats = &mut dev_mut(sys, id).stats;
        stats.segments_coalesced += plan.coalesced_away;
        stats.descriptor_writes_saved +=
            plan.coalesced_away * u64::from(memif_hwsim::dma::PARAM_FIELDS);
    }
}

/// Remembers which nodes a planned migration moves between, so the
/// retire site can credit the per-node move counters after the remap has
/// erased the source. Replications copy rather than move and are not
/// counted.
fn record_route(sys: &mut System, id: DeviceId, req: &MovReq, plan: &Plan) {
    if req.kind != MoveKind::Migrate {
        return;
    }
    let src = plan.pages.first().and_then(|p| sys.node_of(p.old_frame));
    if let Some(src) = src {
        dev_mut(sys, id)
            .routes
            .insert(req.id, (src.0, req.dst_node));
    }
}

/// CPU codec work a segment list implies on topologies with a
/// compressed bank: bytes landing in such a bank charge compression,
/// bytes leaving one charge decompression — costed kernel work like the
/// CPU-copy degradation path, attributed separately in the meter.
/// Returns the charged duration (zero on ordinary topologies).
fn codec_charge(sys: &mut System, segments: &[SgSegment], ctx: Context) -> SimDuration {
    if !sys.topo.all_nodes().iter().any(|n| n.kind.is_compressed()) {
        return SimDuration::ZERO;
    }
    let kind_of = |sys: &System, addr: PhysAddr| {
        sys.topo
            .all_nodes()
            .iter()
            .find(|n| n.contains(addr))
            .map(|n| n.kind)
    };
    let (mut into, mut out_of) = (0u64, 0u64);
    for seg in segments {
        if kind_of(sys, seg.dst).is_some_and(memif_hwsim::MemoryKind::is_compressed) {
            into += seg.bytes;
        }
        if kind_of(sys, seg.src).is_some_and(memif_hwsim::MemoryKind::is_compressed) {
            out_of += seg.bytes;
        }
    }
    let mut cost = SimDuration::ZERO;
    if into > 0 {
        let c = sys.cost.compress(into);
        sys.meter.charge_compress(ctx, c);
        cost += c;
    }
    if out_of > 0 {
        let c = sys.cost.decompress(out_of);
        sys.meter.charge_decompress(ctx, c);
        cost += c;
    }
    cost
}

/// Runs operations 1–3 for `deq` in context `ctx`. Returns the kernel
/// time consumed (the caller resumes after it) and the outcome.
pub(crate) fn execute_request(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    deq: Dequeued,
    ctx: Context,
    shard: usize,
) -> (SimDuration, ExecOutcome) {
    execute_attempt(sys, sim, id, deq, ctx, 0, shard)
}

/// [`execute_request`] with an attempt budget carried across descriptor-
/// exhaustion retries. On the fault-free path the attempt counter stays
/// zero and the retry loop is unbounded, exactly as before hardening.
pub(crate) fn execute_attempt(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    deq: Dequeued,
    ctx: Context,
    attempt: u32,
    shard: usize,
) -> (SimDuration, ExecOutcome) {
    let req = deq.req;
    let mut elapsed = SimDuration::ZERO;

    let mut scratch = std::mem::take(&mut dev_mut(sys, id).shards[shard].scratch);
    let planned = plan_request(sys, id, &req, &mut scratch);
    dev_mut(sys, id).shards[shard].scratch = scratch;
    let plan = match planned {
        Ok(p) => p,
        Err((status, cost)) => {
            elapsed += cost;
            sys.meter.charge(ctx, cost);
            complete::notify(sys, sim, id, deq.slot, req, status, None, ctx);
            return (elapsed, ExecOutcome::Rejected);
        }
    };
    record_coalescing(sys, id, &plan);

    // Charge Prep and Remap.
    sys.meter.charge(ctx, plan.prep_cost + plan.remap_cost);
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.phases.add(Phase::Prep, plan.prep_cost);
        stats.phases.add(Phase::Remap, plan.remap_cost);
    }
    elapsed += plan.prep_cost + plan.remap_cost;

    // Op 3: program the scatter-gather chain. The engine-level reuse
    // switch follows the device's configuration (ablation A1).
    sys.dma
        .set_reuse_enabled(dev(sys, id).config.descriptor_reuse);
    let cfg = match sys.dma.configure_segments(plan.segments.clone(), &sys.cost) {
        Ok(cfg) => cfg,
        Err(memif_hwsim::dma::ChainError::AllBusy) => {
            // Every descriptor is tied up in other tenants' in-flight
            // transfers. A real driver waits for the PaRAM.
            let chaos = sys.chaos_enabled();
            let (max_retries, base_backoff, fallback) = {
                let c = &dev(sys, id).config;
                (c.max_dma_retries, c.retry_backoff, c.cpu_fallback)
            };
            if chaos && attempt >= max_retries {
                // Retry budget exhausted under fault injection: serve the
                // request degraded (the remap is still installed) or roll
                // it back and fail it — never drop it silently.
                if fallback {
                    let token =
                        register_inflight(sys, id, req, &deq, None, plan, false, attempt, shard);
                    elapsed += journal_issue(sys, id, token, ctx);
                    sim.schedule_after(
                        elapsed,
                        SimEvent::DegradeOrFail {
                            device: id,
                            token,
                            reason: FailReason::Descriptors,
                        },
                    );
                    return (elapsed, ExecOutcome::Launched);
                }
                undo_remap(sys, id, &plan);
                complete::notify(
                    sys,
                    sim,
                    id,
                    deq.slot,
                    req,
                    MoveStatus::Failed(FailReason::Descriptors),
                    None,
                    ctx,
                );
                return (elapsed, ExecOutcome::Rejected);
            }
            // Undo the remap and retry the whole request shortly. The
            // fault-free path keeps its historical unbounded fixed
            // backoff; under chaos the backoff doubles per attempt and
            // the budget above bounds it.
            undo_remap(sys, id, &plan);
            let (backoff, next_attempt) = if chaos {
                dev_mut(sys, id).stats.retries += 1;
                (base_backoff * (1u64 << attempt.min(16)), attempt + 1)
            } else {
                (base_backoff, 0)
            };
            sim.schedule_after(
                backoff,
                SimEvent::ExecRetry {
                    device: id,
                    slot: deq.slot,
                    req,
                    color: deq.color,
                    ctx,
                    attempt: next_attempt,
                    shard,
                },
            );
            return (elapsed, ExecOutcome::Launched);
        }
        Err(
            memif_hwsim::dma::ChainError::TooLarge { .. }
            | memif_hwsim::dma::ChainError::Empty
            | memif_hwsim::dma::ChainError::MixedSizes,
        ) => {
            // Cannot ever fit or malformed scatter-gather geometry
            // (validation bounds nr_pages by the pool size and plans use
            // one uniform page size, so this is belt-and-braces).
            undo_remap(sys, id, &plan);
            complete::notify(sys, sim, id, deq.slot, req, MoveStatus::Invalid, None, ctx);
            return (elapsed, ExecOutcome::Rejected);
        }
    };
    sys.meter.charge(ctx, cfg.config_cost);
    elapsed += cfg.config_cost;
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.phases.add(Phase::DmaConfig, cfg.config_cost);
        stats.descriptors_written += cfg.descriptors as u64;
    }
    record_route(sys, id, &req, &plan);
    // Compressed-tier moves pay their codec before the engine starts.
    elapsed += codec_charge(sys, &plan.segments, ctx);

    let bytes = cfg.bytes;
    let threshold = dev(sys, id).poll_threshold(sys.cost.poll_threshold_bytes);
    let interrupt_mode = bytes >= threshold;
    let token = register_inflight(
        sys,
        id,
        req,
        &deq,
        Some(cfg),
        plan,
        interrupt_mode,
        attempt,
        shard,
    );
    elapsed += journal_issue(sys, id, token, ctx);

    sys.trace_emit(
        sim.now(),
        elapsed,
        ctx,
        format!("ops 1-3: prep+remap+cfg ({} pages)", req.nr_pages),
        Some(req.id),
    );
    // The transfer begins once the CPU-side work above has elapsed.
    sim.schedule_after(elapsed, SimEvent::Launch { device: id, token });
    (elapsed, ExecOutcome::Launched)
}

/// Appends the issued request's write-ahead record. No-op (and free)
/// unless the device was opened with `journal = true`; journaling
/// devices pay one `journal_write` per issue, returned here so the
/// caller folds it into the issue path's elapsed time. Called after the
/// in-flight entry is fully linked (batch offsets and leader set), so
/// the record captures the final chain linkage.
fn journal_issue(sys: &mut System, id: DeviceId, token: u64, ctx: Context) -> SimDuration {
    let record = {
        let device = dev_mut(sys, id);
        if !device.config.journal {
            return SimDuration::ZERO;
        }
        let owner = device.owner;
        let Some(i) = device.inflight.iter().find(|i| i.token == token) else {
            return SimDuration::ZERO;
        };
        device.stats.journal_records += 1;
        crate::journal::JournalRecord {
            device: id,
            space: owner,
            token,
            req: i.req,
            shard: i.shard,
            batch_leader: i.batch_leader,
            page_size: i.page_size,
            pages: i
                .pages
                .iter()
                .map(crate::journal::JournalPage::of_plan)
                .collect(),
            segments: i.segments.clone(),
            milestone: crate::journal::JournalMilestone::Issued,
            sealed: None,
        }
    };
    sys.journal.append(record);
    let cost = sys.cost.journal_write;
    sys.meter.charge(ctx, cost);
    cost
}

/// Registers a prepared request with the device and returns its token.
/// The request's virtual address spans enter the device-wide in-flight
/// index here (and leave it in `MemifDevice::take_inflight`), so every
/// shard's issue-time hazard guard sees it immediately.
#[allow(clippy::too_many_arguments)]
fn register_inflight(
    sys: &mut System,
    id: DeviceId,
    req: MovReq,
    deq: &Dequeued,
    cfg: Option<memif_hwsim::dma::ConfiguredTransfer>,
    plan: Plan,
    interrupt_mode: bool,
    attempt: u32,
    shard: usize,
) -> u64 {
    let device = dev_mut(sys, id);
    let token = device.next_token;
    device.next_token += 1;
    let len = u64::from(req.nr_pages) << req.page_shift;
    device.spans.insert(req.src_base, len, token);
    if req.kind == MoveKind::Replicate {
        device.spans.insert(req.dst_base, len, token);
    }
    device.inflight.push(Inflight {
        token,
        req,
        slot: deq.slot,
        transfer: None,
        tc: None,
        cfg,
        segments: plan.segments,
        pages: plan.pages,
        page_size: plan.page_size,
        interrupt_mode,
        dma_started_at: None,
        completed: false,
        attempt,
        watchdog: None,
        batch_members: Vec::new(),
        batch_leader: None,
        chain_offset: 0,
        shard,
    });
    token
}

/// Runs operations 1–3 for a drained batch of compatible requests as
/// **one** chained scatter-gather launch. Each member is planned (and
/// its remap installed) individually; the per-request segment lists are
/// concatenated into a single descriptor chain programmed and launched
/// once, completing with a single interrupt whose handler fans status
/// back out per request. Per-member plan rejections notify that member
/// alone; descriptor exhaustion disbands the batch into per-member
/// retries so no request is ever dropped.
pub(crate) fn execute_batch(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    batch: Vec<Dequeued>,
    ctx: Context,
    shard: usize,
) -> (SimDuration, ExecOutcome) {
    let mut elapsed = SimDuration::ZERO;

    // Plan every member. Rejections drop out of the batch here with
    // their failure notification; survivors have their remaps installed.
    let mut scratch = std::mem::take(&mut dev_mut(sys, id).shards[shard].scratch);
    let mut planned: Vec<(Dequeued, Plan)> = Vec::with_capacity(batch.len());
    for deq in batch {
        match plan_request(sys, id, &deq.req, &mut scratch) {
            Ok(p) => planned.push((deq, p)),
            Err((status, cost)) => {
                elapsed += cost;
                sys.meter.charge(ctx, cost);
                complete::notify(sys, sim, id, deq.slot, deq.req, status, None, ctx);
            }
        }
    }
    dev_mut(sys, id).shards[shard].scratch = scratch;
    if planned.is_empty() {
        return (elapsed, ExecOutcome::Rejected);
    }

    // Charge Prep and Remap for every member.
    let mut prep = SimDuration::ZERO;
    let mut remap = SimDuration::ZERO;
    for (_, p) in &planned {
        record_coalescing(sys, id, p);
        prep += p.prep_cost;
        remap += p.remap_cost;
    }
    sys.meter.charge(ctx, prep + remap);
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.phases.add(Phase::Prep, prep);
        stats.phases.add(Phase::Remap, remap);
    }
    elapsed += prep + remap;

    // Op 3, once: program the concatenated chain.
    sys.dma
        .set_reuse_enabled(dev(sys, id).config.descriptor_reuse);
    let combined: Vec<SgSegment> = planned
        .iter()
        .flat_map(|(_, p)| p.segments.iter().copied())
        .collect();
    let cfg = match sys.dma.configure_segments(combined, &sys.cost) {
        Ok(cfg) => cfg,
        Err(memif_hwsim::dma::ChainError::AllBusy) => {
            // Descriptor exhaustion: disband. Each member's remap rolls
            // back and the member re-enters execution solo after the
            // backoff, exactly as a solo AllBusy would — retry operates
            // per request, never per batch.
            let chaos = sys.chaos_enabled();
            let base_backoff = dev(sys, id).config.retry_backoff;
            let next_attempt = u32::from(chaos);
            for (deq, plan) in planned {
                undo_remap(sys, id, &plan);
                if chaos {
                    dev_mut(sys, id).stats.retries += 1;
                }
                sim.schedule_after(
                    base_backoff,
                    SimEvent::ExecRetry {
                        device: id,
                        slot: deq.slot,
                        req: deq.req,
                        color: deq.color,
                        ctx,
                        attempt: next_attempt,
                        shard,
                    },
                );
            }
            return (elapsed, ExecOutcome::Launched);
        }
        Err(_) => {
            // Geometry errors (belt-and-braces: assembly bounds the
            // total page count by the pool size).
            for (deq, plan) in planned {
                undo_remap(sys, id, &plan);
                complete::notify(
                    sys,
                    sim,
                    id,
                    deq.slot,
                    deq.req,
                    MoveStatus::Invalid,
                    None,
                    ctx,
                );
            }
            return (elapsed, ExecOutcome::Rejected);
        }
    };
    sys.meter.charge(ctx, cfg.config_cost);
    elapsed += cfg.config_cost;
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.phases.add(Phase::DmaConfig, cfg.config_cost);
        stats.descriptors_written += cfg.descriptors as u64;
        if planned.len() >= 2 {
            stats.requests_batched += planned.len() as u64;
        }
    }
    for (deq, plan) in &planned {
        record_route(sys, id, &deq.req, plan);
        // Codec work for the whole chain, member by member.
        elapsed += codec_charge(sys, &plan.segments, ctx);
    }

    let threshold = dev(sys, id).poll_threshold(sys.cost.poll_threshold_bytes);
    // One completion for the whole chain: the leader's mode is decided
    // by the combined size. Members remember their own-size mode for
    // the day they are split off into solo retries.
    let batch_interrupt = cfg.bytes >= threshold;
    let n = planned.len();
    let mut cfg_slot = Some(cfg);
    let mut offset = 0u64;
    let mut leader_token = 0u64;
    let mut member_tokens = Vec::with_capacity(n.saturating_sub(1));
    let mut total_pages = 0u32;
    for (i, (deq, plan)) in planned.into_iter().enumerate() {
        let own_bytes: u64 = plan.segments.iter().map(|s| s.bytes).sum();
        let interrupt_mode = if i == 0 {
            batch_interrupt
        } else {
            own_bytes >= threshold
        };
        total_pages += deq.req.nr_pages;
        let token = register_inflight(
            sys,
            id,
            deq.req,
            &deq,
            if i == 0 { cfg_slot.take() } else { None },
            plan,
            interrupt_mode,
            0,
            shard,
        );
        let entry = dev_mut(sys, id)
            .inflight
            .iter_mut()
            .find(|f| f.token == token)
            .expect("just registered");
        entry.chain_offset = offset;
        offset += own_bytes;
        if i == 0 {
            leader_token = token;
        } else {
            entry.batch_leader = Some(leader_token);
            member_tokens.push(token);
        }
        // Journal after the chain linkage above is final, so the record
        // carries the member's leader token from the start.
        elapsed += journal_issue(sys, id, token, ctx);
    }
    dev_mut(sys, id)
        .inflight
        .iter_mut()
        .find(|f| f.token == leader_token)
        .expect("registered above")
        .batch_members = member_tokens;

    sys.trace_emit(
        sim.now(),
        elapsed,
        ctx,
        format!("ops 1-3: batched prep+remap+cfg ({n} reqs, {total_pages} pages)"),
        dev(sys, id)
            .inflight
            .iter()
            .find(|f| f.token == leader_token)
            .map(|f| f.req.id),
    );
    sim.schedule_after(
        elapsed,
        SimEvent::Launch {
            device: id,
            token: leader_token,
        },
    );
    (elapsed, ExecOutcome::Launched)
}

pub(crate) fn launch(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
) {
    let now = sim.now();
    if sys.device(id).is_none() || dev(sys, id).inflight.iter().all(|i| i.token != token) {
        // Aborted before launch (recover mode): free the slot this
        // launch would have taken for whoever is waiting.
        launch_next_waiting(sys, sim);
        return;
    }
    // Table 2: the engine has a fixed number of transfer controllers;
    // a launch with all of them busy queues until one frees. Admission
    // routes onto the least-loaded controller channel.
    let Some(tc) = sys.tc.admit((id, token)) else {
        sys.trace_emit(
            now,
            memif_hwsim::SimDuration::ZERO,
            Context::DmaEngine,
            "transfer queued: all transfer controllers busy",
            dev(sys, id)
                .inflight
                .iter()
                .find(|i| i.token == token)
                .map(|i| i.req.id),
        );
        return;
    };
    let Some(inflight) = dev_mut(sys, id)
        .inflight
        .iter_mut()
        .find(|i| i.token == token)
    else {
        unreachable!("checked above");
    };
    let cfg = inflight
        .cfg
        .take()
        .expect("launch consumes a programmed cfg");
    inflight.tc = Some(tc);
    if inflight.dma_started_at.is_none() {
        inflight.dma_started_at = Some(now);
    }
    // Batch members ride this launch: stamp their DMA start too.
    let member_tokens = inflight.batch_members.clone();
    for m in &member_tokens {
        if let Some(i) = dev_mut(sys, id).inflight.iter_mut().find(|i| i.token == *m) {
            if i.dma_started_at.is_none() {
                i.dma_started_at = Some(now);
            }
        }
    }
    let (src, dst) = (cfg.segments[0].src, cfg.segments[0].dst);
    let src_node = sys.node_of(src).expect("segment in a known bank");
    let dst_node = sys.node_of(dst).expect("segment in a known bank");
    let route = sys.dma_route_on(tc, src_node, dst_node);
    let demand = sys.cost.dma_engine_bw_gbps;
    let ticket = sys.dma.launch(&cfg, demand);
    let payload = match ticket.delivery {
        CompletionDelivery::Interrupt(outcome) => SimEvent::DmaDone {
            device: id,
            transfer: ticket.id,
            outcome,
        },
        CompletionDelivery::Delayed { outcome, delay } => SimEvent::DmaIrqDelayed {
            device: id,
            transfer: ticket.id,
            outcome,
            delay,
        },
        CompletionDelivery::Dropped => SimEvent::DmaIrqLost {
            device: id,
            transfer: ticket.id,
        },
    };
    let flow = sys
        .flows
        .start_flow(sim, &route, ticket.flow_bytes, demand, payload);
    sys.dma.attach_flow(ticket.id, flow);
    let req_id = dev(sys, id)
        .inflight
        .iter()
        .find(|i| i.token == token)
        .map(|i| i.req.id);
    dev_mut(sys, id)
        .inflight
        .iter_mut()
        .find(|i| i.token == token)
        .expect("still inflight")
        .transfer = Some(ticket.id);
    // Account the engine's busy time for utilization plots.
    let wall = SimDuration::for_bytes(cfg.bytes, demand) + cfg.engine_overhead;
    sys.meter.charge(Context::DmaEngine, wall);
    sys.trace_emit(now, wall, Context::DmaEngine, "DMA transfer", req_id);

    // Chaos-only watchdog: arm a deadline generous enough for queueing
    // and brownouts; if the completion interrupt never arrives the timer
    // reclaims the transfer. Fault-free runs never schedule this event,
    // keeping the hot path and the event stream identical to pre-
    // hardening builds.
    if sys.chaos_enabled() {
        let (factor, slack) = {
            let c = &dev(sys, id).config;
            (c.watchdog_factor, c.watchdog_slack)
        };
        let deadline = wall * u64::from(factor) + slack;
        let wd = sim.schedule_after(deadline, SimEvent::WatchdogFire { device: id, token });
        dev_mut(sys, id)
            .inflight
            .iter_mut()
            .find(|i| i.token == token)
            .expect("still inflight")
            .watchdog = Some(wd);
    }

    // Crash point: the transfer is on the engine and the journal record
    // (if any) is durable — power fails right after the DMA starts.
    sys.maybe_crash(sim, memif_hwsim::CrashPoint::PostLaunch);
}

/// The per-request watchdog: declares the transfer lost if it is still
/// pending when the deadline expires, then routes it into the bounded
/// retry machinery.
pub(crate) fn watchdog_fire(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
) {
    if sys.device(id).is_none() {
        return;
    }
    let Some(inflight) = dev(sys, id).inflight.iter().find(|i| i.token == token) else {
        return; // finished or aborted; stale timer
    };
    if inflight.completed {
        return;
    }
    let req_id = inflight.req.id;
    dev_mut(sys, id).stats.timeouts += 1;
    sys.trace_emit(
        sim.now(),
        SimDuration::ZERO,
        Context::Interrupt,
        "watchdog: completion interrupt lost",
        Some(req_id),
    );
    handle_dma_failure(sys, sim, id, token, FailReason::Timeout);
}

/// Common failure funnel for watchdog expiry and DMA error interrupts:
/// reclaims the engine resources of the failed attempt, then either
/// re-issues the request (bounded, exponential backoff) or degrades it.
pub(crate) fn handle_dma_failure(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
    reason: FailReason,
) {
    // A batch leader entering the failure funnel drags its members with
    // it — the combined chained transfer is gone for everyone. Disband
    // first, then funnel each request individually, so retry, degrade
    // and fallback all operate per request, never per batch. (A
    // mid-chain error interrupt disbands in `complete` instead, where
    // the fault-point byte count lets finished members complete.)
    let members = match dev_mut(sys, id)
        .inflight
        .iter_mut()
        .find(|i| i.token == token)
    {
        Some(i) => std::mem::take(&mut i.batch_members),
        None => return,
    };
    for m in &members {
        let mut rid = None;
        if let Some(i) = dev_mut(sys, id).inflight.iter_mut().find(|i| i.token == *m) {
            i.batch_leader = None;
            rid = Some(i.req.id);
        }
        if let Some(rid) = rid {
            sys.journal.set_leader(id, rid, None);
        }
    }
    fail_one(sys, sim, id, token, reason);
    for m in members {
        fail_one(sys, sim, id, m, reason);
    }
}

/// [`handle_dma_failure`] for a single (already unlinked) request.
fn fail_one(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
    reason: FailReason,
) {
    let Some(inflight) = dev_mut(sys, id)
        .inflight
        .iter_mut()
        .find(|i| i.token == token)
    else {
        return;
    };
    if let Some(w) = inflight.watchdog.take() {
        sim.cancel(w);
    }
    let attempt = inflight.attempt;
    let held_tc = inflight.tc.take();
    match inflight.transfer.take() {
        Some(t) => {
            // A lost transfer still owns its chain and controller slot
            // (its completion never ran); abort reclaims both. A transfer
            // already retired by its error interrupt aborts as a no-op.
            if let Some(aborted) = sys.dma.abort(t) {
                if let Some(flow) = aborted.flow {
                    sys.flows.cancel_flow(sim, flow);
                }
                if let Some(tc) = held_tc {
                    release_tc(sys, sim, tc);
                }
            }
        }
        None => {
            sys.tc.cancel_waiting(|(d, t)| *d == id && *t == token);
        }
    }
    let (max_retries, base_backoff) = {
        let c = &dev(sys, id).config;
        (c.max_dma_retries, c.retry_backoff)
    };
    if attempt < max_retries {
        {
            let device = dev_mut(sys, id);
            device.stats.retries += 1;
            if let Some(i) = device.inflight.iter_mut().find(|i| i.token == token) {
                i.attempt += 1;
            }
        }
        let backoff = base_backoff * (1u64 << attempt.min(16));
        sim.schedule_after(backoff, SimEvent::RetryLaunch { device: id, token });
        return;
    }
    degrade_or_fail(sys, sim, id, token, reason);
}

/// Re-issues a request whose previous DMA attempt failed: reprograms the
/// scatter-gather chain from the retained segments and relaunches.
pub(crate) fn retry_launch(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
) {
    if sys.device(id).is_none() {
        return;
    }
    let Some(segments) = dev(sys, id)
        .inflight
        .iter()
        .find(|i| i.token == token)
        .map(|i| i.segments.clone())
    else {
        return; // aborted while backing off
    };
    let req_id = dev(sys, id)
        .inflight
        .iter()
        .find(|i| i.token == token)
        .map(|i| i.req.id);
    sys.dma
        .set_reuse_enabled(dev(sys, id).config.descriptor_reuse);
    match sys.dma.configure_segments(segments, &sys.cost) {
        Ok(cfg) => {
            let cost = cfg.config_cost;
            sys.meter.charge(Context::KernelThread, cost);
            {
                let device = dev_mut(sys, id);
                device.stats.phases.add(Phase::DmaConfig, cost);
                device.stats.descriptors_written += cfg.descriptors as u64;
                if let Some(i) = device.inflight.iter_mut().find(|i| i.token == token) {
                    i.cfg = Some(cfg);
                }
            }
            sys.trace_emit(
                sim.now(),
                cost,
                Context::KernelThread,
                "retry: reprogram chain",
                req_id,
            );
            sim.schedule_after(cost, SimEvent::Launch { device: id, token });
        }
        Err(memif_hwsim::dma::ChainError::AllBusy) => {
            // Still exhausted: charge another attempt against the budget.
            handle_dma_failure(sys, sim, id, token, FailReason::Descriptors);
        }
        Err(_) => {
            // Geometry errors cannot heal by retrying.
            degrade_or_fail(sys, sim, id, token, FailReason::Descriptors);
        }
    }
}

/// Retry budget exhausted: serve the request on the costed CPU-copy path
/// (configurable), or tear it down and deliver `Failed`. Either way the
/// request reaches exactly one terminal state.
pub(crate) fn degrade_or_fail(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
    reason: FailReason,
) {
    let Some(index) = dev(sys, id).inflight.iter().position(|i| i.token == token) else {
        return;
    };
    if !dev(sys, id).config.cpu_fallback {
        let mut inflight = dev_mut(sys, id).take_inflight(index);
        if let Some(w) = inflight.watchdog.take() {
            sim.cancel(w);
        }
        let held_tc = inflight.tc.take();
        if let Some(t) = inflight.transfer.take() {
            if let Some(aborted) = sys.dma.abort(t) {
                if let Some(flow) = aborted.flow {
                    sys.flows.cancel_flow(sim, flow);
                }
                if let Some(tc) = held_tc {
                    release_tc(sys, sim, tc);
                }
            }
        }
        fault::teardown_inflight(sys, sim, id, inflight, MoveStatus::Failed(reason));
        return;
    }
    // Degraded service: the kernel worker performs the copy itself at the
    // costed CPU-copy bandwidth (4 µs per 4 KB page on Keystone II).
    let copy_cost = {
        let inflight = &dev(sys, id).inflight[index];
        let bytes: u64 = inflight.segments.iter().map(|s| s.bytes).sum();
        sys.cost.cpu_copy(bytes)
    };
    sys.meter.charge(Context::KernelThread, copy_cost);
    let segments = dev(sys, id).inflight[index].segments.clone();
    for seg in &segments {
        sys.phys.copy(seg.src, seg.dst, seg.bytes);
    }
    let (req_id, shard) = {
        let device = dev_mut(sys, id);
        device.stats.fallbacks += 1;
        device.stats.phases.add(Phase::Copy, copy_cost);
        let inflight = &mut device.inflight[index];
        inflight.completed = true; // engine freed; pipeline slot opens
        inflight.cfg = None;
        (inflight.req.id, inflight.shard)
    };
    sys.meter.attribute_worker(shard, copy_cost);
    // The payload is at the destination; a crash from here on rolls the
    // move forward instead of back.
    sys.journal.copy_done(id, req_id);
    sys.trace_emit(
        sim.now(),
        copy_cost,
        Context::KernelThread,
        "degraded: CPU-copy fallback",
        Some(req_id),
    );
    // Release must wait for the owning worker's CPU, like the polling
    // path.
    let ready_at = (sim.now() + copy_cost).max(dev(sys, id).shards[shard].busy_until);
    dev_mut(sys, id).shards[shard].busy_until = ready_at;
    sim.schedule_at(ready_at, SimEvent::DegradedRelease { device: id, token });
}

/// Release + Notify for a request served by the degraded CPU-copy path,
/// once the worker's CPU frees up ([`SimEvent::DegradedRelease`]).
pub(crate) fn degraded_release(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
) {
    if sys.device(id).is_none() {
        return;
    }
    let Some(index) = dev(sys, id).inflight.iter().position(|i| i.token == token) else {
        return; // aborted in the copy window
    };
    // Crash point: copy applied, release not yet run (retire site 3).
    if sys.maybe_crash(sim, memif_hwsim::CrashPoint::PreRetire) {
        return;
    }
    let inflight = dev_mut(sys, id).take_inflight(index);
    let req_id = inflight.req.id;
    let shard = inflight.shard;
    let release_cost = complete::release_and_notify(sys, sim, id, inflight, Context::KernelThread);
    sys.meter.attribute_worker(shard, release_cost);
    sys.trace_emit(
        sim.now(),
        release_cost,
        Context::KernelThread,
        "ops 4-5: release+notify (degraded)",
        Some(req_id),
    );
    let busy_until = sim.now() + release_cost;
    let device = dev_mut(sys, id);
    device.shards[shard].busy_until = device.shards[shard].busy_until.max(busy_until);
    sim.schedule_after(release_cost, SimEvent::KthreadRun { device: id, shard });
    crate::driver::wake_deferred_peers(sys, sim, id, shard, release_cost);
    // Crash point: the request retired (journal sealed) an instant ago.
    sys.maybe_crash(sim, memif_hwsim::CrashPoint::PostRetire);
}

/// Frees the transfer-controller slot a retired transfer held on channel
/// `tc` and launches the next waiting transfer, if any. Called from
/// every completion/abort path, with the channel taken from the
/// in-flight record (exactly once per launch).
pub(crate) fn release_tc(sys: &mut System, sim: &mut memif_hwsim::Sim<System>, tc: usize) {
    if let Some((id, token)) = sys.tc.release(tc) {
        launch(sys, sim, id, token);
    }
}

fn launch_next_waiting(sys: &mut System, sim: &mut memif_hwsim::Sim<System>) {
    if let Some((id, token)) = sys.tc.take_waiting() {
        launch(sys, sim, id, token);
    }
}

/// Validates a request and builds its execution plan.
#[allow(clippy::type_complexity)]
fn plan_request(
    sys: &mut System,
    id: DeviceId,
    req: &MovReq,
    scratch: &mut PlanScratch,
) -> Result<Plan, (MoveStatus, SimDuration)> {
    let device = dev(sys, id);
    let owner = device.owner;
    let gang = device.config.gang_lookup;
    let race_mode = device.config.race_mode;
    let coalesce = device.config.coalesce;
    let validate_cost = sys.cost.queue_op;

    let Some(page_size) = PageSize::from_shift(req.page_shift) else {
        return Err((MoveStatus::Invalid, validate_cost));
    };
    if req.nr_pages == 0 || req.nr_pages as usize > sys.dma.max_segments() {
        return Err((MoveStatus::Invalid, validate_cost));
    }
    let src = VirtAddr::new(req.src_base);
    let len = u64::from(req.nr_pages) * page_size.bytes();
    if !src.is_aligned(page_size) {
        return Err((MoveStatus::Invalid, validate_cost));
    }

    let space = sys.space(owner);
    let Some(vma) = space.vma_covering(src, len) else {
        return Err((MoveStatus::Invalid, validate_cost));
    };
    if vma.page_size != page_size {
        return Err((MoveStatus::Invalid, validate_cost));
    }

    match req.kind {
        MoveKind::Replicate => {
            plan_replication(sys, owner, req, page_size, gang, coalesce, scratch)
        }
        MoveKind::Migrate => plan_migration(
            sys, owner, req, page_size, gang, race_mode, coalesce, scratch,
        ),
    }
}

/// Finalizes a plan's segment list from the scratch build area:
/// coalesces in place when enabled, then copies out at exact size.
fn finish_segments(coalesce: bool, scratch: &mut PlanScratch) -> (Vec<SgSegment>, u64) {
    let coalesced_away = if coalesce {
        coalesce_in_place(&mut scratch.segments)
    } else {
        0
    };
    (scratch.segments.clone(), coalesced_away)
}

fn lookup_cost(sys: &System, stats: memif_mm::WalkStats) -> SimDuration {
    sys.cost.pt_walk_vertical * u64::from(stats.vertical)
        + sys.cost.pt_walk_horizontal * u64::from(stats.horizontal)
}

fn plan_replication(
    sys: &mut System,
    owner: crate::system::SpaceId,
    req: &MovReq,
    page_size: PageSize,
    gang: bool,
    coalesce: bool,
    scratch: &mut PlanScratch,
) -> Result<Plan, (MoveStatus, SimDuration)> {
    let src = VirtAddr::new(req.src_base);
    let dst = VirtAddr::new(req.dst_base);
    let len = u64::from(req.nr_pages) * page_size.bytes();
    let validate_cost = sys.cost.queue_op;
    if !dst.is_aligned(page_size) {
        return Err((MoveStatus::Invalid, validate_cost));
    }
    // Overlapping replication has no sane page-wise semantics; reject.
    if src.as_u64() < dst.offset(len).as_u64() && dst.as_u64() < src.offset(len).as_u64() {
        return Err((MoveStatus::Invalid, validate_cost));
    }
    let space = sys.space(owner);
    if space.vma_covering(dst, len).map(|v| v.page_size) != Some(page_size) {
        return Err((MoveStatus::Invalid, validate_cost));
    }

    // Op 1 for both regions: replication looks up source and destination
    // descriptors but manages no virtual memory (§3).
    let s1 = space.lookup_range_into(src, req.nr_pages, page_size, gang, &mut scratch.ptes);
    let s2 = space.lookup_range_into(dst, req.nr_pages, page_size, gang, &mut scratch.dst_ptes);
    let mut prep_cost = lookup_cost(sys, s1) + lookup_cost(sys, s2);
    prep_cost += sys.cost.gang_bookkeeping * u64::from(req.nr_pages);

    scratch.segments.clear();
    for (s, d) in scratch.ptes.iter().zip(&scratch.dst_ptes) {
        match (s, d) {
            (Some(sp), Some(dp)) if sp.is_present() && dp.is_present() => {
                scratch.segments.push(SgSegment {
                    src: sp.frame(),
                    dst: dp.frame(),
                    bytes: page_size.bytes(),
                });
            }
            _ => return Err((MoveStatus::Invalid, prep_cost)),
        }
    }
    let (segments, coalesced_away) = finish_segments(coalesce, scratch);
    Ok(Plan {
        segments,
        pages: Vec::new(),
        page_size,
        prep_cost,
        remap_cost: SimDuration::ZERO,
        coalesced_away,
    })
}

#[allow(clippy::too_many_arguments)]
fn plan_migration(
    sys: &mut System,
    owner: crate::system::SpaceId,
    req: &MovReq,
    page_size: PageSize,
    gang: bool,
    race_mode: RaceMode,
    coalesce: bool,
    scratch: &mut PlanScratch,
) -> Result<Plan, (MoveStatus, SimDuration)> {
    let src = VirtAddr::new(req.src_base);
    let dst_node = memif_hwsim::NodeId(req.dst_node);
    if sys.topo.node(dst_node).is_none() {
        return Err((MoveStatus::Invalid, sys.cost.queue_op));
    }

    // Op 1: gang page lookup.
    let walk =
        sys.space(owner)
            .lookup_range_into(src, req.nr_pages, page_size, gang, &mut scratch.ptes);
    let mut prep_cost = lookup_cost(sys, walk);
    prep_cost += sys.cost.gang_bookkeeping * u64::from(req.nr_pages);
    let mut originals = Vec::with_capacity(req.nr_pages as usize);
    for (i, pte) in scratch.ptes.iter().enumerate() {
        match pte {
            Some(p) if p.is_present() => {
                originals.push((src.offset(i as u64 * page_size.bytes()), *p));
            }
            _ => return Err((MoveStatus::Invalid, prep_cost)),
        }
    }

    // Op 2 (first half): allocate every destination page up front so a
    // mid-request exhaustion leaves the address space untouched.
    let mut new_frames = Vec::with_capacity(originals.len());
    for _ in &originals {
        match sys.alloc.alloc(dst_node, page_size) {
            Ok(f) => new_frames.push(f),
            Err(_) => {
                for f in new_frames {
                    let _ = sys.alloc.free(f);
                }
                let cost = prep_cost + sys.cost.page_alloc * u64::from(req.nr_pages);
                return Err((MoveStatus::OutOfMemory, cost));
            }
        }
    }

    // Op 2 (second half): install the in-flight entries. Shared pages
    // (frames also mapped by other spaces) are discovered through the
    // reverse map; remote mappers get Linux-style migration entries for
    // the transfer window and are rewritten at Release (§6.7 extension).
    let mut pages = Vec::with_capacity(originals.len());
    let mut remap_cost = sys.cost.page_alloc * originals.len() as u64;
    for ((vaddr, original), new_frame) in originals.into_iter().zip(new_frames) {
        let shared = sys
            .alloc
            .frame_info(original.frame())
            .is_some_and(|f| f.refcount > 1);
        let remote: Vec<(crate::system::SpaceId, VirtAddr)> = if shared {
            remap_cost += sys.cost.page_bookkeeping; // rmap walk
            sys.rmap_mappers(original.frame(), page_size)
                .into_iter()
                .filter(|(s, v)| !(*s == owner && *v == vaddr))
                .collect()
        } else {
            Vec::new()
        };
        let final_pte = original
            .with_frame(new_frame)
            .with_young(false)
            .with_watch(false);
        let installed = match race_mode {
            // Semi-final PTE: identical to final except young set (§5.2).
            RaceMode::DetectFail => final_pte.with_young(true),
            // Recover mode additionally write-watches the page.
            RaceMode::DetectRecover => final_pte.with_young(true).with_watch(true),
            // Ablation: Linux-style migration entry blocks accessors.
            RaceMode::Prevent => Pte::migration_entry(page_size),
        };
        let space = &mut sys.spaces[owner.0];
        space
            .table_mut()
            .replace(vaddr, installed)
            .expect("entry present above");
        space.tlb_mut().flush_page(vaddr, page_size);
        remap_cost += sys.cost.pte_update_with_flush();
        for (sid, rva) in &remote {
            // The new frame gains one reference per remote mapper up
            // front, so an abort can roll back uniformly.
            sys.alloc.get_ref(new_frame).expect("new frame live");
            let rspace = &mut sys.spaces[sid.0];
            rspace
                .table_mut()
                .replace(*rva, Pte::migration_entry(page_size))
                .expect("remote mapping present");
            rspace.tlb_mut().flush_page(*rva, page_size);
            remap_cost += sys.cost.pte_update_with_flush();
        }
        pages.push(PagePlan {
            vaddr,
            old_frame: original.frame(),
            new_frame,
            original,
            installed,
            final_pte,
            remote,
        });
    }

    scratch.segments.clear();
    scratch.segments.extend(pages.iter().map(|p| SgSegment {
        src: p.old_frame,
        dst: p.new_frame,
        bytes: page_size.bytes(),
    }));
    let (segments, coalesced_away) = finish_segments(coalesce, scratch);
    Ok(Plan {
        segments,
        pages,
        page_size,
        prep_cost,
        remap_cost,
        coalesced_away,
    })
}

/// Rolls Remap back after a post-remap failure (descriptor exhaustion).
fn undo_remap(sys: &mut System, id: DeviceId, plan: &Plan) {
    let owner = dev(sys, id).owner;
    for page in &plan.pages {
        let space = &mut sys.spaces[owner.0];
        space
            .table_mut()
            .replace(page.vaddr, page.original)
            .expect("entry exists");
        space.tlb_mut().flush_page(page.vaddr, plan.page_size);
        for (sid, rva) in &page.remote {
            let restored = page.original.with_young(false);
            let rspace = &mut sys.spaces[sid.0];
            rspace
                .table_mut()
                .replace(*rva, restored)
                .expect("remote entry exists");
            rspace.tlb_mut().flush_page(*rva, plan.page_size);
            let _ = sys.alloc.free(page.new_frame); // drop remote's ref
        }
    }
    for page in &plan.pages {
        let _ = sys.alloc.free(page.new_frame);
    }
}
