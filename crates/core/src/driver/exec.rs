//! Operations 1–3 of Table 1: Prep (gang lookup), Remap, DMA config and
//! launch.

use memif_hwsim::dma::SgSegment;
use memif_hwsim::{Context, Phase, SimDuration};
use memif_lockfree::{Dequeued, MovReq, MoveKind, MoveStatus};
use memif_mm::{PageSize, Pte, VirtAddr};

use crate::config::RaceMode;
use crate::device::{DeviceId, Inflight, PagePlan};

/// How long the driver backs off before re-attempting a request that
/// found every PaRAM descriptor busy.
const RETRY_BACKOFF: SimDuration = SimDuration::from_us(20);
use crate::driver::{complete, dev, dev_mut};
use crate::system::System;

/// What happened to a request handed to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecOutcome {
    /// A DMA transfer was launched; completion continues asynchronously.
    Launched,
    /// The request was rejected and its failure notification delivered.
    Rejected,
}

struct Plan {
    segments: Vec<SgSegment>,
    pages: Vec<PagePlan>,
    page_size: PageSize,
    prep_cost: SimDuration,
    remap_cost: SimDuration,
}

/// Runs operations 1–3 for `deq` in context `ctx`. Returns the kernel
/// time consumed (the caller resumes after it) and the outcome.
pub(crate) fn execute_request(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    deq: Dequeued,
    ctx: Context,
) -> (SimDuration, ExecOutcome) {
    let req = deq.req;
    let mut elapsed = SimDuration::ZERO;

    let plan = match plan_request(sys, id, &req) {
        Ok(p) => p,
        Err((status, cost)) => {
            elapsed += cost;
            sys.meter.charge(ctx, cost);
            complete::notify(sys, sim, id, deq.slot, req, status, None, ctx);
            return (elapsed, ExecOutcome::Rejected);
        }
    };

    // Charge Prep and Remap.
    sys.meter.charge(ctx, plan.prep_cost + plan.remap_cost);
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.phases.add(Phase::Prep, plan.prep_cost);
        stats.phases.add(Phase::Remap, plan.remap_cost);
    }
    elapsed += plan.prep_cost + plan.remap_cost;

    // Op 3: program the scatter-gather chain. The engine-level reuse
    // switch follows the device's configuration (ablation A1).
    sys.dma
        .set_reuse_enabled(dev(sys, id).config.descriptor_reuse);
    let cfg = match sys.dma.configure(plan.segments.clone(), &sys.cost) {
        Ok(cfg) => cfg,
        Err(memif_hwsim::dma::ChainError::AllBusy) => {
            // Every descriptor is tied up in other tenants' in-flight
            // transfers. A real driver waits for the PaRAM; undo the
            // remap and retry the whole request shortly.
            undo_remap(sys, id, &plan);
            let retry = Dequeued {
                slot: deq.slot,
                req,
                color: deq.color,
            };
            sim.schedule_after(RETRY_BACKOFF, move |sys: &mut System, sim| {
                let _ = execute_request(sys, sim, id, retry, ctx);
            });
            return (elapsed, ExecOutcome::Launched);
        }
        Err(memif_hwsim::dma::ChainError::TooLarge { .. }) => {
            // Cannot ever fit (validation bounds nr_pages by the pool
            // size, so this is belt-and-braces).
            undo_remap(sys, id, &plan);
            complete::notify(sys, sim, id, deq.slot, req, MoveStatus::Invalid, None, ctx);
            return (elapsed, ExecOutcome::Rejected);
        }
    };
    sys.meter.charge(ctx, cfg.config_cost);
    elapsed += cfg.config_cost;
    {
        let stats = &mut dev_mut(sys, id).stats;
        stats.phases.add(Phase::DmaConfig, cfg.config_cost);
    }

    let bytes = cfg.bytes;
    let threshold = dev(sys, id).poll_threshold(sys.cost.poll_threshold_bytes);
    let interrupt_mode = bytes >= threshold;

    let device = dev_mut(sys, id);
    let token = device.next_token;
    device.next_token += 1;
    device.inflight.push(Inflight {
        token,
        req,
        slot: deq.slot,
        transfer: None,
        cfg: Some(cfg),
        segments: plan.segments,
        pages: plan.pages,
        page_size: plan.page_size,
        interrupt_mode,
        dma_started_at: None,
        completed: false,
    });

    sys.trace_emit(
        sim.now(),
        elapsed,
        ctx,
        format!("ops 1-3: prep+remap+cfg ({} pages)", req.nr_pages),
        Some(req.id),
    );
    // The transfer begins once the CPU-side work above has elapsed.
    sim.schedule_after(elapsed, move |sys: &mut System, sim| {
        launch(sys, sim, id, token)
    });
    (elapsed, ExecOutcome::Launched)
}

pub(crate) fn launch(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    token: u64,
) {
    let now = sim.now();
    if sys.device(id).is_none() || dev(sys, id).inflight.iter().all(|i| i.token != token) {
        // Aborted before launch (recover mode): free the slot this
        // launch would have taken for whoever is waiting.
        launch_next_waiting(sys, sim);
        return;
    }
    // Table 2: the engine has a fixed number of transfer controllers;
    // a launch with all of them busy queues until one frees.
    let cap = sys.cost.dma_transfer_controllers as usize;
    if sys.tc_active >= cap {
        sys.tc_waiting.push_back((id, token));
        sys.trace_emit(
            now,
            memif_hwsim::SimDuration::ZERO,
            Context::DmaEngine,
            "transfer queued: all transfer controllers busy",
            dev(sys, id)
                .inflight
                .iter()
                .find(|i| i.token == token)
                .map(|i| i.req.id),
        );
        return;
    }
    sys.tc_active += 1;
    let Some(inflight) = dev_mut(sys, id)
        .inflight
        .iter_mut()
        .find(|i| i.token == token)
    else {
        unreachable!("checked above");
    };
    let cfg = inflight.cfg.take().expect("launch runs once");
    inflight.dma_started_at = Some(now);
    let (src, dst) = (cfg.segments[0].src, cfg.segments[0].dst);
    let src_node = sys.node_of(src).expect("segment in a known bank");
    let dst_node = sys.node_of(dst).expect("segment in a known bank");
    let route = sys.dma_route(src_node, dst_node);
    let demand = sys.cost.dma_engine_bw_gbps;
    let transfer = sys.dma.launch(
        &mut sys.flows,
        sim,
        &route,
        &cfg,
        demand,
        move |sys, sim, tid| {
            complete::on_dma_complete(sys, sim, id, tid);
        },
    );
    let req_id = dev(sys, id)
        .inflight
        .iter()
        .find(|i| i.token == token)
        .map(|i| i.req.id);
    dev_mut(sys, id)
        .inflight
        .iter_mut()
        .find(|i| i.token == token)
        .expect("still inflight")
        .transfer = Some(transfer);
    // Account the engine's busy time for utilization plots.
    let wall = SimDuration::for_bytes(cfg.bytes, demand) + cfg.engine_overhead;
    sys.meter.charge(Context::DmaEngine, wall);
    sys.trace_emit(now, wall, Context::DmaEngine, "DMA transfer", req_id);
}

/// Frees one transfer-controller slot and launches the next waiting
/// transfer, if any. Called from every completion/abort path.
pub(crate) fn release_tc(sys: &mut System, sim: &mut memif_hwsim::Sim<System>) {
    sys.tc_active = sys.tc_active.saturating_sub(1);
    launch_next_waiting(sys, sim);
}

fn launch_next_waiting(sys: &mut System, sim: &mut memif_hwsim::Sim<System>) {
    if let Some((id, token)) = sys.tc_waiting.pop_front() {
        launch(sys, sim, id, token);
    }
}

/// Validates a request and builds its execution plan.
#[allow(clippy::type_complexity)]
fn plan_request(
    sys: &mut System,
    id: DeviceId,
    req: &MovReq,
) -> Result<Plan, (MoveStatus, SimDuration)> {
    let device = dev(sys, id);
    let owner = device.owner;
    let gang = device.config.gang_lookup;
    let race_mode = device.config.race_mode;
    let validate_cost = sys.cost.queue_op;

    let Some(page_size) = PageSize::from_shift(req.page_shift) else {
        return Err((MoveStatus::Invalid, validate_cost));
    };
    if req.nr_pages == 0 || req.nr_pages as usize > sys.dma.max_segments() {
        return Err((MoveStatus::Invalid, validate_cost));
    }
    let src = VirtAddr::new(req.src_base);
    let len = u64::from(req.nr_pages) * page_size.bytes();
    if !src.is_aligned(page_size) {
        return Err((MoveStatus::Invalid, validate_cost));
    }

    let space = sys.space(owner);
    let Some(vma) = space.vma_covering(src, len) else {
        return Err((MoveStatus::Invalid, validate_cost));
    };
    if vma.page_size != page_size {
        return Err((MoveStatus::Invalid, validate_cost));
    }

    match req.kind {
        MoveKind::Replicate => plan_replication(sys, owner, req, page_size, gang),
        MoveKind::Migrate => plan_migration(sys, owner, req, page_size, gang, race_mode),
    }
}

fn lookup_cost(sys: &System, stats: memif_mm::WalkStats) -> SimDuration {
    sys.cost.pt_walk_vertical * u64::from(stats.vertical)
        + sys.cost.pt_walk_horizontal * u64::from(stats.horizontal)
}

fn plan_replication(
    sys: &mut System,
    owner: crate::system::SpaceId,
    req: &MovReq,
    page_size: PageSize,
    gang: bool,
) -> Result<Plan, (MoveStatus, SimDuration)> {
    let src = VirtAddr::new(req.src_base);
    let dst = VirtAddr::new(req.dst_base);
    let len = u64::from(req.nr_pages) * page_size.bytes();
    let validate_cost = sys.cost.queue_op;
    if !dst.is_aligned(page_size) {
        return Err((MoveStatus::Invalid, validate_cost));
    }
    // Overlapping replication has no sane page-wise semantics; reject.
    if src.as_u64() < dst.offset(len).as_u64() && dst.as_u64() < src.offset(len).as_u64() {
        return Err((MoveStatus::Invalid, validate_cost));
    }
    let space = sys.space(owner);
    if space.vma_covering(dst, len).map(|v| v.page_size) != Some(page_size) {
        return Err((MoveStatus::Invalid, validate_cost));
    }

    // Op 1 for both regions: replication looks up source and destination
    // descriptors but manages no virtual memory (§3).
    let (src_ptes, s1) = space.lookup_range(src, req.nr_pages, page_size, gang);
    let (dst_ptes, s2) = space.lookup_range(dst, req.nr_pages, page_size, gang);
    let mut prep_cost = lookup_cost(sys, s1) + lookup_cost(sys, s2);
    prep_cost += sys.cost.gang_bookkeeping * u64::from(req.nr_pages);

    let mut segments = Vec::with_capacity(req.nr_pages as usize);
    for (s, d) in src_ptes.iter().zip(&dst_ptes) {
        match (s, d) {
            (Some(sp), Some(dp)) if sp.is_present() && dp.is_present() => {
                segments.push(SgSegment {
                    src: sp.frame(),
                    dst: dp.frame(),
                    bytes: page_size.bytes(),
                });
            }
            _ => return Err((MoveStatus::Invalid, prep_cost)),
        }
    }
    Ok(Plan {
        segments,
        pages: Vec::new(),
        page_size,
        prep_cost,
        remap_cost: SimDuration::ZERO,
    })
}

fn plan_migration(
    sys: &mut System,
    owner: crate::system::SpaceId,
    req: &MovReq,
    page_size: PageSize,
    gang: bool,
    race_mode: RaceMode,
) -> Result<Plan, (MoveStatus, SimDuration)> {
    let src = VirtAddr::new(req.src_base);
    let dst_node = memif_hwsim::NodeId(req.dst_node);
    if sys.topo.node(dst_node).is_none() {
        return Err((MoveStatus::Invalid, sys.cost.queue_op));
    }

    // Op 1: gang page lookup.
    let (ptes, walk) = sys
        .space(owner)
        .lookup_range(src, req.nr_pages, page_size, gang);
    let mut prep_cost = lookup_cost(sys, walk);
    prep_cost += sys.cost.gang_bookkeeping * u64::from(req.nr_pages);
    let mut originals = Vec::with_capacity(req.nr_pages as usize);
    for (i, pte) in ptes.iter().enumerate() {
        match pte {
            Some(p) if p.is_present() => {
                originals.push((src.offset(i as u64 * page_size.bytes()), *p));
            }
            _ => return Err((MoveStatus::Invalid, prep_cost)),
        }
    }

    // Op 2 (first half): allocate every destination page up front so a
    // mid-request exhaustion leaves the address space untouched.
    let mut new_frames = Vec::with_capacity(originals.len());
    for _ in &originals {
        match sys.alloc.alloc(dst_node, page_size) {
            Ok(f) => new_frames.push(f),
            Err(_) => {
                for f in new_frames {
                    let _ = sys.alloc.free(f);
                }
                let cost = prep_cost + sys.cost.page_alloc * u64::from(req.nr_pages);
                return Err((MoveStatus::OutOfMemory, cost));
            }
        }
    }

    // Op 2 (second half): install the in-flight entries. Shared pages
    // (frames also mapped by other spaces) are discovered through the
    // reverse map; remote mappers get Linux-style migration entries for
    // the transfer window and are rewritten at Release (§6.7 extension).
    let mut pages = Vec::with_capacity(originals.len());
    let mut remap_cost = sys.cost.page_alloc * originals.len() as u64;
    for ((vaddr, original), new_frame) in originals.into_iter().zip(new_frames) {
        let shared = sys
            .alloc
            .frame_info(original.frame())
            .is_some_and(|f| f.refcount > 1);
        let remote: Vec<(crate::system::SpaceId, VirtAddr)> = if shared {
            remap_cost += sys.cost.page_bookkeeping; // rmap walk
            sys.rmap_mappers(original.frame(), page_size)
                .into_iter()
                .filter(|(s, v)| !(*s == owner && *v == vaddr))
                .collect()
        } else {
            Vec::new()
        };
        let final_pte = original
            .with_frame(new_frame)
            .with_young(false)
            .with_watch(false);
        let installed = match race_mode {
            // Semi-final PTE: identical to final except young set (§5.2).
            RaceMode::DetectFail => final_pte.with_young(true),
            // Recover mode additionally write-watches the page.
            RaceMode::DetectRecover => final_pte.with_young(true).with_watch(true),
            // Ablation: Linux-style migration entry blocks accessors.
            RaceMode::Prevent => Pte::migration_entry(page_size),
        };
        let space = &mut sys.spaces[owner.0];
        space
            .table_mut()
            .replace(vaddr, installed)
            .expect("entry present above");
        space.tlb_mut().flush_page(vaddr, page_size);
        remap_cost += sys.cost.pte_update_with_flush();
        for (sid, rva) in &remote {
            // The new frame gains one reference per remote mapper up
            // front, so an abort can roll back uniformly.
            sys.alloc.get_ref(new_frame).expect("new frame live");
            let rspace = &mut sys.spaces[sid.0];
            rspace
                .table_mut()
                .replace(*rva, Pte::migration_entry(page_size))
                .expect("remote mapping present");
            rspace.tlb_mut().flush_page(*rva, page_size);
            remap_cost += sys.cost.pte_update_with_flush();
        }
        pages.push(PagePlan {
            vaddr,
            old_frame: original.frame(),
            new_frame,
            original,
            installed,
            final_pte,
            remote,
        });
    }

    let segments = pages
        .iter()
        .map(|p| SgSegment {
            src: p.old_frame,
            dst: p.new_frame,
            bytes: page_size.bytes(),
        })
        .collect();
    Ok(Plan {
        segments,
        pages,
        page_size,
        prep_cost,
        remap_cost,
    })
}

/// Rolls Remap back after a post-remap failure (descriptor exhaustion).
fn undo_remap(sys: &mut System, id: DeviceId, plan: &Plan) {
    let owner = dev(sys, id).owner;
    for page in &plan.pages {
        let space = &mut sys.spaces[owner.0];
        space
            .table_mut()
            .replace(page.vaddr, page.original)
            .expect("entry exists");
        space.tlb_mut().flush_page(page.vaddr, plan.page_size);
        for (sid, rva) in &page.remote {
            let restored = page.original.with_young(false);
            let rspace = &mut sys.spaces[sid.0];
            rspace
                .table_mut()
                .replace(*rva, restored)
                .expect("remote entry exists");
            rspace.tlb_mut().flush_page(*rva, plan.page_size);
            let _ = sys.alloc.free(page.new_frame); // drop remote's ref
        }
    }
    for page in &plan.pages {
        let _ = sys.alloc.free(page.new_frame);
    }
}
