//! The memif driver: the kernel side of the service.
//!
//! Three execution paths serve requests (§5.4, Figure 5):
//!
//! * the **syscall path** ([`syscall::mov_one`]) — `ioctl(MOV_ONE)` runs
//!   operations 1–3 for one queued request in the caller's process
//!   context and returns as soon as the DMA transfer starts;
//! * the **interrupt path** ([`complete`]) — the DMA completion
//!   interrupt performs Release and Notify immediately (possible only
//!   because race *detection* removed the sleepable-lock requirement)
//!   and wakes the kernel thread;
//! * the **kernel thread path** ([`kthread`]) — the woken worker drains
//!   the submission and staging queues, switching between
//!   interrupt-driven and polling completion at the 512 KB threshold,
//!   and recolors the staging queue blue before going back to sleep.
//!
//! Every deferred step of these paths is a typed
//! [`SimEvent`](crate::SimEvent) — launch, retry, watchdog, interrupt
//! and polling release, kernel-thread continuation — dispatched by the
//! central `EventWorld` implementation in `crate::event`. The driver
//! schedules *data*, not closures, so a simulation's event stream can be
//! logged and replayed verbatim. DMA launches are admitted onto one of
//! the engine's transfer-controller channels by the system's
//! [`TcScheduler`](memif_hwsim::TcScheduler) (least-loaded routing;
//! FIFO queueing when all channels are busy), and the channel slot is
//! recorded in the in-flight entry so each terminal path — completion,
//! error, abort, teardown — releases it exactly once.

pub(crate) mod complete;
pub(crate) mod exec;
pub(crate) mod fault;
pub(crate) mod kthread;
pub(crate) mod syscall;

use crate::device::{DeviceId, MemifDevice};
use crate::system::System;

/// Immutable device access for driver internals.
///
/// # Panics
///
/// Panics if the device has been closed: driver continuations are only
/// scheduled while the device is open, and close refuses busy devices.
pub(crate) fn dev(sys: &System, id: DeviceId) -> &MemifDevice {
    sys.devices[id.0].as_ref().expect("device open")
}

/// Mutable device access for driver internals.
///
/// # Panics
///
/// Panics if the device has been closed (see [`dev`]).
pub(crate) fn dev_mut(sys: &mut System, id: DeviceId) -> &mut MemifDevice {
    sys.devices[id.0].as_mut().expect("device open")
}

/// A shared-region queue operation failed — the application-mapped
/// region no longer validates (a real driver would treat this as memory
/// corruption by a buggy or hostile mapper). The driver stops trusting
/// the queues: the fault is traced and the issue path parks instead of
/// panicking the kernel. In-flight transfers complete normally.
pub(crate) fn region_fault(
    sys: &mut System,
    sim: &memif_hwsim::Sim<System>,
    id: DeviceId,
    ctx: memif_hwsim::Context,
    err: &memif_lockfree::RegionError,
) {
    sys.trace_emit(
        sim.now(),
        memif_hwsim::SimDuration::ZERO,
        ctx,
        format!("shared region fault: {err}; device {} parks", id.0),
        None,
    );
}

/// Wakes every *other* shard's worker that has parked deferred work,
/// `delay` after now. Called from each retire path right after the
/// owning shard's own wakeup: a request deferred on shard A may have
/// been waiting on a conflict shard B just retired, and B's release
/// only re-runs B's worker. A no-op with a single shard (and whenever
/// no peer has deferred work), so the default configuration's event
/// stream is untouched.
pub(crate) fn wake_deferred_peers(
    sys: &mut System,
    sim: &mut memif_hwsim::Sim<System>,
    id: DeviceId,
    shard: usize,
    delay: memif_hwsim::SimDuration,
) {
    let shards = dev(sys, id).shards.len();
    for s in 0..shards {
        if s != shard && !dev(sys, id).shards[s].deferred.is_empty() {
            sim.schedule_after(
                delay,
                crate::event::SimEvent::KthreadRun {
                    device: id,
                    shard: s,
                },
            );
        }
    }
}
