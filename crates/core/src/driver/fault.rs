//! The proceed-and-recover fault handler (§5.2).
//!
//! In [`RaceMode::DetectRecover`](crate::RaceMode::DetectRecover) the
//! Remap step write-watches migrating pages. A store that traps lands
//! here: the handler restores the original mapping for the whole
//! request, drops the outstanding DMA transfer, and enqueues the aborted
//! `mov_req` so the application learns of the abort. "The CPU's new
//! write that causes the race will thus be preserved" — the caller
//! retries the store against the restored old page and it succeeds.

use memif_hwsim::{Context, Phase, Sim};
use memif_lockfree::MoveStatus;
use memif_mm::VirtAddr;

use crate::device::DeviceId;
use crate::driver::{complete, dev, dev_mut};
use crate::event::SimEvent;
use crate::system::{SpaceId, System};

/// Handles a write-protection fault at `vaddr` in `space`. Returns
/// `true` if an in-flight migration was aborted (the faulting store
/// should be retried); `false` if no migration covered the address.
pub fn handle_write_fault(
    sys: &mut System,
    sim: &mut Sim<System>,
    space: SpaceId,
    vaddr: VirtAddr,
) -> bool {
    // Find the device whose in-flight migration covers the fault.
    let hit = sys.devices.iter().flatten().find_map(|d| {
        if d.owner != space {
            return None;
        }
        d.inflight.iter().find_map(|inflight| {
            let covers = inflight.pages.iter().any(|p| {
                p.vaddr <= vaddr && vaddr.as_u64() < p.vaddr.as_u64() + inflight.page_size.bytes()
            });
            covers.then_some((d.id, inflight.token))
        })
    });
    let Some((id, token)) = hit else {
        return false;
    };
    abort_inflight(sys, sim, id, token);
    true
}

/// Aborts one in-flight migration: restores the original mapping, frees
/// the new pages, cancels the DMA transfer, and delivers an `Aborted`
/// notification. Runs in the faulting process's context.
pub(crate) fn abort_inflight(sys: &mut System, sim: &mut Sim<System>, id: DeviceId, token: u64) {
    let index = dev(sys, id)
        .inflight
        .iter()
        .position(|i| i.token == token)
        .expect("fault hit an inflight request");
    let mut inflight = dev_mut(sys, id).take_inflight(index);
    if let Some(watchdog) = inflight.watchdog.take() {
        sim.cancel(watchdog);
    }

    // Batch bookkeeping. A dying *leader* hands its combined chained
    // transfer (and controller slot) to the first surviving member —
    // aborting it would cancel every member's DMA for one request's
    // fault. The heir's byte offsets stay valid (the chain geometry is
    // unchanged); the old leader's segments still transfer but their
    // bytes are simply never copied out (its destination frames are
    // freed below). The leader's chaos watchdog was cancelled above and
    // is not re-armed — its deadline belonged to the old token. A dying
    // *member* just unlinks from its leader's roster.
    if !inflight.batch_members.is_empty() {
        let mut members = std::mem::take(&mut inflight.batch_members);
        let heir_pos = members
            .iter()
            .position(|t| dev(sys, id).inflight.iter().any(|i| i.token == *t));
        if let Some(pos) = heir_pos {
            let heir_token = members.remove(pos);
            let transfer = inflight.transfer.take();
            let tc = inflight.tc.take();
            let cfg = inflight.cfg.take();
            let interrupt_mode = inflight.interrupt_mode;
            for m in &members {
                let mut rid = None;
                if let Some(i) = dev_mut(sys, id).inflight.iter_mut().find(|i| i.token == *m) {
                    i.batch_leader = Some(heir_token);
                    rid = Some(i.req.id);
                }
                // Keep the journal's chain linkage in step with the
                // promotion, so a crash after it still reconstructs the
                // surviving chain correctly.
                if let Some(rid) = rid {
                    sys.journal.set_leader(id, rid, Some(heir_token));
                }
            }
            let heir = dev_mut(sys, id)
                .inflight
                .iter_mut()
                .find(|i| i.token == heir_token)
                .expect("heir located above");
            heir.batch_leader = None;
            heir.batch_members = members;
            heir.transfer = transfer;
            heir.tc = tc;
            heir.interrupt_mode = interrupt_mode;
            let heir_req = heir.req.id;
            let relaunch = cfg.is_some() && transfer.is_none();
            if relaunch {
                // The batch had not launched yet (the pending Launch —
                // or the controller wait — carries the dead token and
                // will no-op): the heir takes the programmed chain and
                // a fresh Launch. `cancel_waiting` below clears any
                // old-token controller-queue entry.
                heir.cfg = cfg;
                sim.schedule_after(
                    memif_hwsim::SimDuration::ZERO,
                    SimEvent::Launch {
                        device: id,
                        token: heir_token,
                    },
                );
            }
            sys.journal.set_leader(id, heir_req, None);
        }
        // No surviving member: fall through and abort like a solo.
    } else if let Some(leader) = inflight.batch_leader.take() {
        let aborted_token = inflight.token;
        if let Some(l) = dev_mut(sys, id)
            .inflight
            .iter_mut()
            .find(|i| i.token == leader)
        {
            l.batch_members.retain(|t| *t != aborted_token);
        }
    }

    // Drop the outstanding DMA transfer (it may not have launched yet,
    // or may still be waiting for a transfer controller).
    let held_tc = inflight.tc.take();
    if let Some(transfer) = inflight.transfer.take() {
        if let Some(aborted) = sys.dma.abort(transfer) {
            if let Some(flow) = aborted.flow {
                sys.flows.cancel_flow(sim, flow);
            }
            if let Some(tc) = held_tc {
                crate::driver::exec::release_tc(sys, sim, tc);
            }
        }
    } else {
        let token = inflight.token;
        sys.tc.cancel_waiting(|(d, t)| *d == id && *t == token);
    }

    teardown_inflight(sys, sim, id, inflight, MoveStatus::Aborted);
}

/// Rolls back one already-removed in-flight migration — restores the
/// original PTEs, frees the would-be destination frames — and delivers
/// `status` (`Aborted` for proceed-and-recover, `Failed` when the DMA
/// path gave up without a CPU fallback). The caller has already
/// reclaimed the engine-side resources.
pub(crate) fn teardown_inflight(
    sys: &mut System,
    sim: &mut Sim<System>,
    id: DeviceId,
    inflight: crate::device::Inflight,
    status: MoveStatus,
) {
    let owner = dev(sys, id).owner;

    // Restore the original PTEs (including remote mappers of shared
    // pages) and release the would-be destination.
    let mut cost = memif_hwsim::SimDuration::ZERO;
    for page in &inflight.pages {
        let space = &mut sys.spaces[owner.0];
        space
            .table_mut()
            .replace(page.vaddr, page.original)
            .expect("entry exists");
        space.tlb_mut().flush_page(page.vaddr, inflight.page_size);
        cost += sys.cost.pte_update_with_flush();
        for (sid, rva) in &page.remote {
            let restored = page.original.with_young(false);
            let rspace = &mut sys.spaces[sid.0];
            rspace
                .table_mut()
                .replace(*rva, restored)
                .expect("remote entry exists");
            rspace.tlb_mut().flush_page(*rva, inflight.page_size);
            cost += sys.cost.pte_update_with_flush();
            let _ = sys.alloc.free(page.new_frame); // remote's reference
        }
        let _ = sys.alloc.free(page.new_frame);
        if sys.alloc.frame_info(page.new_frame).is_none() {
            sys.phys.discard(page.new_frame, inflight.page_size.bytes());
        }
        cost += sys.cost.page_free;
    }
    sys.meter.charge(Context::Syscall, cost);
    {
        let stats = &mut dev_mut(sys, id).stats;
        if status == MoveStatus::Aborted {
            stats.aborts += 1;
        }
        stats.phases.add(Phase::Release, cost);
    }

    complete::notify(
        sys,
        sim,
        id,
        inflight.slot,
        inflight.req,
        status,
        inflight.dma_started_at,
        Context::Syscall,
    );

    // Let the owning shard's worker move on to queued requests.
    let wakeup = sys.cost.kthread_wakeup;
    sys.meter.charge(Context::KernelThread, wakeup);
    sys.meter.attribute_worker(inflight.shard, wakeup);
    sim.schedule_after(
        cost + wakeup,
        SimEvent::KthreadRun {
            device: id,
            shard: inflight.shard,
        },
    );
    crate::driver::wake_deferred_peers(sys, sim, id, inflight.shard, cost + wakeup);
}
