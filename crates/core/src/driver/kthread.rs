//! The memif kernel workers (§5.4).
//!
//! Once woken, a worker issues all requests queued on its issue shard —
//! from the shard's submission queue and directly from its staging
//! queue — one at a time, continuing from each completion. When both
//! queues are drained it recolors the shard's staging queue **blue**,
//! handing flushing responsibility back to the application, and goes
//! back to sleep. Running on schedulable kernel threads (not in the
//! application's context) shields the data-intensive application from
//! context switches and exceptions, and permits the sleepable operations
//! Remap needs.
//!
//! With `issue_shards` > 1 each shard's worker models its own CPU
//! (`IssueShard::busy_until`), so S workers prepare requests
//! concurrently while contending for the shared transfer controllers
//! and descriptor pool. Region-affinity routing (see `api::submit`)
//! guarantees same-region requests share a shard, so the per-shard FIFO
//! and the deferred-hazard guard compose exactly as in the single-worker
//! driver; the device-wide span index extends the guard across shards.

use memif_hwsim::{Context, Sim};
use memif_lockfree::{Color, Dequeued, MovReq, QueueId};

use crate::device::DeviceId;
use crate::driver::exec::{execute_batch, execute_request};
use crate::driver::{dev, dev_mut, region_fault};
use crate::event::SimEvent;
use crate::system::System;

/// A fresh wakeup of shard `shard`'s worker: counts a wakeup if the
/// round actually runs (the early-outs — pipeline full, CPU still busy —
/// were never real wakeups and are not counted).
pub(crate) fn run(sys: &mut System, sim: &mut Sim<System>, id: DeviceId, shard: usize) {
    run_round(sys, sim, id, shard, true);
}

/// The worker's continuation after preparing a request: same round, but
/// never counts a wakeup (the thread was already awake).
pub(crate) fn run_continue(sys: &mut System, sim: &mut Sim<System>, id: DeviceId, shard: usize) {
    run_round(sys, sim, id, shard, false);
}

/// One scheduling round of a shard's worker: issue the next queued
/// request — if the shard's pipeline has room — or go idle.
///
/// With `pipeline_depth` > 1 the worker prepares request *k+1* while
/// request *k*'s transfer is still on the engine (the EDMA3's multiple
/// transfer controllers run them concurrently), overlapping the
/// driver's CPU time with DMA time. The depth budget is per shard: each
/// worker keeps its own requests pipelined.
fn run_round(
    sys: &mut System,
    sim: &mut Sim<System>,
    id: DeviceId,
    shard: usize,
    count_wakeup: bool,
) {
    if sys.device(id).is_none() {
        return; // device closed while the wakeup was in flight
    }
    let depth = dev(sys, id).config.pipeline_depth.max(1);
    // A chained batch occupies one pipeline slot (one engine launch):
    // members ride their leader's transfer and do not count.
    if dev(sys, id)
        .inflight
        .iter()
        .filter(|i| i.shard == shard && !i.completed && i.batch_leader.is_none())
        .count()
        >= depth
    {
        return; // pipeline full; a completion re-runs us
    }
    if sim.now() < dev(sys, id).shards[shard].busy_until {
        // The worker's CPU is mid-preparation of an earlier request; its
        // own continuation (scheduled for that instant) picks up the
        // queues. One thread, one request at a time.
        return;
    }
    if count_wakeup {
        // Dedupe same-instant wakeups: when a peer wake (a conflicting
        // request retiring on another shard) lands at the same instant
        // as this shard's own wake, both events reach this point if the
        // first round issued nothing — but a `wake_up()` on an
        // already-running thread is a no-op, one logical wakeup.
        let device = dev_mut(sys, id);
        if device.shards[shard].last_counted_wakeup != Some(sim.now()) {
            device.shards[shard].last_counted_wakeup = Some(sim.now());
            device.stats.kthread_wakeups += 1;
        }
    }

    loop {
        // Deferred requests first: one may have been waiting on a
        // conflict that has since retired. They were dequeued (and their
        // queue operation charged) in an earlier round, so re-examining
        // them costs nothing. FIFO scan keeps same-region order.
        let parked = {
            let device = dev(sys, id);
            device.shards[shard]
                .deferred
                .iter()
                .position(|d| conflicting_token(device, &d.req).is_none())
        };
        if let Some(pos) = parked {
            let deq = dev_mut(sys, id).shards[shard].deferred.remove(pos);
            let (elapsed, _outcome) =
                execute_request(sys, sim, id, deq, Context::KernelThread, shard);
            dev_mut(sys, id).shards[shard].busy_until = sim.now() + elapsed;
            sys.meter.attribute_worker(shard, elapsed);
            sim.schedule_after(elapsed, SimEvent::KthreadContinue { device: id, shard });
            return;
        }

        let queue_cost = sys.cost.queue_op;
        sys.meter.charge_worker(shard, queue_cost);

        let device = dev(sys, id);
        let next = match device.region.dequeue_sharded(QueueId::Submission, shard) {
            Ok(Some(deq)) => Some(deq),
            Ok(None) => match device.region.dequeue_sharded(QueueId::Staging, shard) {
                Ok(next) => next,
                Err(e) => {
                    region_fault(sys, sim, id, Context::KernelThread, &e);
                    return;
                }
            },
            Err(e) => {
                region_fault(sys, sim, id, Context::KernelThread, &e);
                return;
            }
        };

        match next {
            Some(deq) => {
                // Issue-time hazard guard: a request whose pages overlap
                // a still-in-flight request must wait for it to retire.
                // Planning it now would re-read (and overwrite) the
                // in-flight remap's semi-final PTEs — with out-of-order
                // completions (a lost interrupt riding out its watchdog
                // while younger requests finish) the application can
                // legally have both queued. FIFO within a region is
                // preserved: a later same-region request conflicts with
                // the same in-flight entry and parks behind this one.
                // The span index is device-wide, so the guard also sees
                // requests another shard put in flight.
                if let Some(tok) = conflicting_token(dev(sys, id), &deq.req) {
                    let cross = dev(sys, id)
                        .inflight
                        .iter()
                        .find(|i| i.token == tok)
                        .is_some_and(|i| i.shard != shard);
                    let stats = &mut dev_mut(sys, id).stats;
                    stats.requests_deferred += 1;
                    if cross {
                        stats.cross_shard_deferred += 1;
                    }
                    dev_mut(sys, id).shards[shard].deferred.push(deq);
                    continue;
                }
                let batch_max = dev(sys, id).config.batch_max.max(1);
                let (elapsed, _outcome) = if batch_max > 1 {
                    let mut batch = assemble_batch(sys, id, shard, deq, batch_max);
                    if batch.len() == 1 {
                        let deq = batch.pop().expect("one element");
                        execute_request(sys, sim, id, deq, Context::KernelThread, shard)
                    } else {
                        execute_batch(sys, sim, id, batch, Context::KernelThread, shard)
                    }
                } else {
                    execute_request(sys, sim, id, deq, Context::KernelThread, shard)
                };
                // Whether launched or rejected, the worker's CPU is busy
                // for `elapsed`; it looks for more work afterwards (and
                // issues it if the pipeline still has room).
                dev_mut(sys, id).shards[shard].busy_until = sim.now() + elapsed;
                sys.meter.attribute_worker(shard, elapsed);
                sim.schedule_after(elapsed, SimEvent::KthreadContinue { device: id, shard });
                return;
            }
            None => {
                // Both queues drained: hand the flush duty back to the
                // application. A failed recolor means new requests raced
                // in — keep draining.
                match dev(sys, id)
                    .region
                    .set_color_sharded(QueueId::Staging, shard, Color::Blue)
                {
                    Ok(_) => {
                        sys.trace_emit(
                            sim.now(),
                            memif_hwsim::SimDuration::ZERO,
                            Context::KernelThread,
                            "queues drained: staging recolored blue, kthread sleeps",
                            None,
                        );
                        return; // idle; apps flush + ioctl from now on
                    }
                    Err(_) => continue,
                }
            }
        }
    }
}

/// Drains up to `batch_max` compatible requests behind `first` into one
/// issue batch: same kind and page size (one chain, one geometry), the
/// combined page count bounded by the descriptor pool, and no address
/// overlap with an earlier batch member (FIFO is the queues' only
/// ordering guarantee — an overlapping request must stay behind the
/// batch). Only this shard's queues are probed — a batch never crosses
/// shards. Incompatible requests are left in place, in order. Each
/// extra probe pays a queue operation like the solo path's; a region
/// fault merely stops assembly — the already-drained requests must
/// still be served.
fn assemble_batch(
    sys: &mut System,
    id: DeviceId,
    shard: usize,
    first: Dequeued,
    batch_max: usize,
) -> Vec<Dequeued> {
    let max_pages = sys.dma.max_segments();
    let kind = first.req.kind;
    let shift = first.req.page_shift;
    let mut total_pages = first.req.nr_pages as usize;
    let mut spans: Vec<(u64, u64)> = Vec::new();
    push_spans(&mut spans, &first.req);
    let mut batch = vec![first];
    while batch.len() < batch_max && total_pages < max_pages {
        let queue_cost = sys.cost.queue_op;
        sys.meter.charge_worker(shard, queue_cost);
        let device = dev(sys, id);
        let fits = |m: &MovReq| {
            m.kind == kind
                && m.page_shift == shift
                && total_pages + m.nr_pages as usize <= max_pages
                && !overlaps_any(&spans, m)
                && conflicting_token(device, m).is_none()
        };
        let next = match device
            .region
            .dequeue_matching_sharded(QueueId::Submission, shard, fits)
        {
            Ok(Some(d)) => Some(d),
            Ok(None) => device
                .region
                .dequeue_matching_sharded(QueueId::Staging, shard, fits)
                .unwrap_or_default(),
            Err(_) => None,
        };
        let Some(d) = next else { break };
        total_pages += d.req.nr_pages as usize;
        push_spans(&mut spans, &d.req);
        batch.push(d);
    }
    batch
}

/// Records the virtual address ranges `req` reads or writes.
pub(crate) fn push_spans(spans: &mut Vec<(u64, u64)>, req: &MovReq) {
    let len = u64::from(req.nr_pages) << req.page_shift;
    spans.push((req.src_base, len));
    if req.kind == memif_lockfree::MoveKind::Replicate {
        spans.push((req.dst_base, len));
    }
}

/// The token of an in-flight request (any shard; including
/// completed-but-unreleased entries, whose semi-final PTEs are still
/// installed) whose address ranges overlap `req`'s, if one exists. Such
/// a request cannot be planned yet: its page walk would observe — and
/// its remap overwrite — the in-flight entry's transient mappings. The
/// check runs against the device-wide span index, which mirrors
/// `inflight` exactly (spans registered at issue, dropped at retire).
pub(crate) fn conflicting_token(device: &crate::device::MemifDevice, req: &MovReq) -> Option<u64> {
    let len = u64::from(req.nr_pages) << req.page_shift;
    device.spans.first_overlap(req.src_base, len).or_else(|| {
        if req.kind == memif_lockfree::MoveKind::Replicate {
            device.spans.first_overlap(req.dst_base, len)
        } else {
            None
        }
    })
}

/// True if any of `req`'s address ranges intersects a recorded span.
fn overlaps_any(spans: &[(u64, u64)], req: &MovReq) -> bool {
    let mut own: Vec<(u64, u64)> = Vec::with_capacity(2);
    push_spans(&mut own, req);
    own.iter().any(|(base, len)| {
        spans
            .iter()
            .any(|(sbase, slen)| *base < sbase + slen && *sbase < base + len)
    })
}
