//! The memif kernel worker thread (§5.4).
//!
//! Once woken, the worker issues all queued requests — from the
//! submission queue and directly from the staging queue — one at a time,
//! continuing from each completion. When both queues are drained it
//! recolors the staging queue **blue**, handing flushing responsibility
//! back to the application, and goes back to sleep. Running on a
//! schedulable kernel thread (not in the application's context) shields
//! the data-intensive application from context switches and exceptions,
//! and permits the sleepable operations Remap needs.

use memif_hwsim::{Context, Sim};
use memif_lockfree::{Color, QueueId};

use crate::device::DeviceId;
use crate::driver::exec::execute_request;
use crate::driver::{dev, dev_mut};
use crate::event::SimEvent;
use crate::system::System;

/// One scheduling round of the worker: issue the next queued request —
/// if the pipeline has room — or go idle.
///
/// With `pipeline_depth` > 1 the worker prepares request *k+1* while
/// request *k*'s transfer is still on the engine (the EDMA3's multiple
/// transfer controllers run them concurrently), overlapping the
/// driver's CPU time with DMA time.
pub(crate) fn run(sys: &mut System, sim: &mut Sim<System>, id: DeviceId) {
    if sys.device(id).is_none() {
        return; // device closed while the wakeup was in flight
    }
    let depth = dev(sys, id).config.pipeline_depth.max(1);
    if dev(sys, id)
        .inflight
        .iter()
        .filter(|i| !i.completed)
        .count()
        >= depth
    {
        return; // pipeline full; a completion re-runs us
    }
    if sim.now() < dev(sys, id).kthread_busy_until {
        // The worker's CPU is mid-preparation of an earlier request; its
        // own continuation (scheduled for that instant) picks up the
        // queues. One thread, one request at a time.
        return;
    }
    dev_mut(sys, id).stats.kthread_wakeups += 1;

    loop {
        let queue_cost = sys.cost.queue_op;
        sys.meter.charge(Context::KernelThread, queue_cost);

        let device = dev(sys, id);
        let next = device
            .region
            .dequeue(QueueId::Submission)
            .expect("infallible")
            .or_else(|| device.region.dequeue(QueueId::Staging).expect("infallible"));

        match next {
            Some(deq) => {
                let (elapsed, _outcome) = execute_request(sys, sim, id, deq, Context::KernelThread);
                // Whether launched or rejected, the worker's CPU is busy
                // for `elapsed`; it looks for more work afterwards (and
                // issues it if the pipeline still has room).
                dev_mut(sys, id).kthread_busy_until = sim.now() + elapsed;
                sim.schedule_after(elapsed, SimEvent::KthreadContinue { device: id });
                return;
            }
            None => {
                // Both queues drained: hand the flush duty back to the
                // application. A failed recolor means new requests raced
                // in — keep draining.
                match dev(sys, id).region.set_color(QueueId::Staging, Color::Blue) {
                    Ok(_) => {
                        sys.trace_emit(
                            sim.now(),
                            memif_hwsim::SimDuration::ZERO,
                            Context::KernelThread,
                            "queues drained: staging recolored blue, kthread sleeps",
                            None,
                        );
                        return; // idle; apps flush + ioctl from now on
                    }
                    Err(_) => continue,
                }
            }
        }
    }
}

pub(crate) fn run_continue(sys: &mut System, sim: &mut Sim<System>, id: DeviceId) {
    // Continuation entry that does not re-count a wakeup.
    if sys.device(id).is_none() {
        return;
    }
    let depth = dev(sys, id).config.pipeline_depth.max(1);
    let active = dev(sys, id)
        .inflight
        .iter()
        .filter(|i| !i.completed)
        .count();
    if active >= depth || sim.now() < dev(sys, id).kthread_busy_until {
        return;
    }
    dev_mut(sys, id).stats.kthread_wakeups = dev(sys, id).stats.kthread_wakeups.saturating_sub(1);
    run(sys, sim, id);
}
