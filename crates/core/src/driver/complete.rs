//! Operations 4–5 of Table 1: Release (with race detection) and Notify,
//! on the interrupt path or the kernel thread's polling path (§5.4).

use memif_hwsim::dma::{DmaOutcome, TransferId};
use memif_hwsim::{Context, CrashPoint, Phase, Sim, SimDuration, SimTime};
use memif_lockfree::{FailReason, MovReq, MoveStatus, QueueId, SlotIndex};

use crate::config::RaceMode;
use crate::device::{CompletionRecord, DeviceId, Inflight};
use crate::driver::{dev, dev_mut};
use crate::event::SimEvent;
use crate::system::System;

/// Runs when the DMA engine finishes (or errors out) a device's
/// transfer.
pub(crate) fn on_dma_complete(
    sys: &mut System,
    sim: &mut Sim<System>,
    id: DeviceId,
    transfer: TransferId,
    outcome: DmaOutcome,
) {
    let Some(index) = dev(sys, id)
        .inflight
        .iter()
        .position(|i| i.transfer == Some(transfer))
    else {
        return; // aborted concurrently
    };

    if let DmaOutcome::Error { bytes_done } = outcome {
        // Error interrupt: the engine faulted mid-transfer. The partial
        // destination bytes of the faulting request are untrusted and
        // discarded; retire this attempt and route the request into the
        // retry machinery. The controller slot is released exactly once:
        // only if the engine still held the transfer (complete returns
        // true).
        let held_tc = dev_mut(sys, id).inflight[index].tc.take();
        if sys.dma.complete(transfer, outcome) {
            if let Some(tc) = held_tc {
                crate::driver::exec::release_tc(sys, sim, tc);
            }
        }
        let irq_cost = sys.cost.interrupt;
        sys.meter.charge(Context::Interrupt, irq_cost);
        let (token, req_id, members) = {
            let inflight = &mut dev_mut(sys, id).inflight[index];
            inflight.transfer = None;
            (
                inflight.token,
                inflight.req.id,
                std::mem::take(&mut inflight.batch_members),
            )
        };
        dev_mut(sys, id).stats.dma_errors += 1;
        sys.trace_emit(
            sim.now(),
            irq_cost,
            Context::Interrupt,
            "DMA error interrupt",
            Some(req_id),
        );
        if members.is_empty() {
            crate::driver::exec::handle_dma_failure(sys, sim, id, token, FailReason::DmaError);
            return;
        }
        // Chained batch: descriptors run in order, so segments before
        // the fault point finished and their bytes sit at the
        // destination. Attribute per request by each one's byte range
        // within the chain — fully-finished requests complete normally
        // off this (single) error interrupt; the faulting request and
        // everything after it retry or degrade individually.
        for t in std::iter::once(token).chain(members) {
            let Some(i) = dev_mut(sys, id).inflight.iter_mut().find(|i| i.token == t) else {
                continue; // aborted mid-flight
            };
            i.batch_leader = None;
            let rid = i.req.id;
            let own_bytes: u64 = i.segments.iter().map(|s| s.bytes).sum();
            let finished = i.chain_offset + own_bytes <= bytes_done;
            i.chain_offset = 0;
            if finished {
                i.completed = true;
                if let Some(w) = i.watchdog.take() {
                    sim.cancel(w);
                }
                let segments = i.segments.clone();
                for seg in &segments {
                    sys.phys.copy(seg.src, seg.dst, seg.bytes);
                }
                sys.journal.copy_done(id, rid);
                sim.schedule_after(
                    irq_cost,
                    SimEvent::IrqRelease {
                        device: id,
                        token: t,
                    },
                );
            } else {
                crate::driver::exec::handle_dma_failure(sys, sim, id, t, FailReason::DmaError);
            }
            sys.journal.set_leader(id, rid, None);
        }
        return;
    }

    // The bytes materialize now: perform the programmed copies — the
    // found request's own segments plus, for a chained batch, each
    // surviving member's.
    let member_tokens = std::mem::take(&mut dev_mut(sys, id).inflight[index].batch_members);
    let segments = dev(sys, id).inflight[index].segments.clone();
    let leader_req = dev(sys, id).inflight[index].req.id;
    for seg in &segments {
        sys.phys.copy(seg.src, seg.dst, seg.bytes);
    }
    sys.journal.copy_done(id, leader_req);
    // Crash point: the leader's bytes are applied and journaled
    // CopyDone, the members' are not — the asymmetric mid-chain state
    // recovery must untangle (leader rolls forward, members roll back).
    if !member_tokens.is_empty() && sys.maybe_crash(sim, CrashPoint::MidChain) {
        return;
    }
    for t in &member_tokens {
        let Some((segs, member_req)) = dev(sys, id)
            .inflight
            .iter()
            .find(|i| i.token == *t)
            .map(|i| (i.segments.clone(), i.req.id))
        else {
            continue; // aborted mid-flight; its remap was rolled back
        };
        for seg in &segs {
            sys.phys.copy(seg.src, seg.dst, seg.bytes);
        }
        sys.journal.copy_done(id, member_req);
    }
    let held_tc = dev_mut(sys, id).inflight[index].tc.take();
    if sys.dma.complete(transfer, outcome) {
        if let Some(tc) = held_tc {
            crate::driver::exec::release_tc(sys, sim, tc);
        }
    }

    // The request stays registered (so a trapping write can still find
    // and abort it) until the Release event actually runs; it is pulled
    // out by token there. Marking it completed frees its pipeline slot.
    let inflight = &mut dev_mut(sys, id).inflight[index];
    inflight.completed = true;
    if let Some(w) = inflight.watchdog.take() {
        sim.cancel(w);
    }
    let token = inflight.token;
    let req_id = inflight.req.id;
    let interrupt_mode = inflight.interrupt_mode;
    let shard = inflight.shard;
    for t in &member_tokens {
        if let Some(i) = dev_mut(sys, id).inflight.iter_mut().find(|i| i.token == *t) {
            i.completed = true;
            i.batch_leader = None;
            i.chain_offset = 0;
        }
    }

    if interrupt_mode {
        // Interrupt path: Release and Notify run in the handler — legal
        // only because detection freed Release of sleepable locks (§5.2)
        // — then the kernel thread is woken. The notification lands
        // after the interrupt entry has been paid.
        let irq_cost = sys.cost.interrupt;
        sys.meter.charge(Context::Interrupt, irq_cost);
        {
            let stats = &mut dev_mut(sys, id).stats;
            stats.interrupts += 1;
            stats.phases.add(Phase::Interface, irq_cost);
        }
        sys.trace_emit(
            sim.now(),
            irq_cost,
            Context::Interrupt,
            "interrupt entry",
            Some(req_id),
        );
        sim.schedule_after(irq_cost, SimEvent::IrqRelease { device: id, token });
        // Batch fan-out: one interrupt was taken for the whole chain;
        // the handler releases every member, leader first (chain order).
        for t in &member_tokens {
            sim.schedule_after(
                irq_cost,
                SimEvent::IrqRelease {
                    device: id,
                    token: *t,
                },
            );
        }
    } else {
        // Polling path: the kernel thread slept through the (short)
        // transfer and wakes right about now from its timed sleep — no
        // device interrupt was taken, but the timer wakeup itself is not
        // free.
        let poll_cost = sys.cost.queue_op + sys.cost.kthread_wakeup;
        sys.meter.charge(Context::KernelThread, poll_cost);
        sys.meter.attribute_worker(shard, poll_cost);
        {
            let stats = &mut dev_mut(sys, id).stats;
            stats.polled += 1;
            stats.phases.add(Phase::Interface, poll_cost);
        }
        // The owning shard's worker may still be preparing another
        // request (pipelining); Release must wait for its CPU — one
        // thread, one activity.
        let ready_at = (sim.now() + poll_cost).max(dev(sys, id).shards[shard].busy_until);
        sys.trace_emit(
            sim.now(),
            poll_cost,
            Context::KernelThread,
            "kthread wakes from timed sleep",
            Some(req_id),
        );
        dev_mut(sys, id).shards[shard].busy_until = ready_at;
        sim.schedule_at(ready_at, SimEvent::PollRelease { device: id, token });
        // Batch fan-out: one timed wakeup serviced the whole chain; the
        // worker releases every member in chain order.
        for t in &member_tokens {
            sim.schedule_at(
                ready_at,
                SimEvent::PollRelease {
                    device: id,
                    token: *t,
                },
            );
        }
    }
}

/// Release + Notify on the interrupt path, after the interrupt entry
/// cost has been paid ([`SimEvent::IrqRelease`]).
pub(crate) fn irq_release(sys: &mut System, sim: &mut Sim<System>, id: DeviceId, token: u64) {
    if sys.device(id).is_none() {
        return;
    }
    let Some(index) = dev(sys, id).inflight.iter().position(|i| i.token == token) else {
        return; // aborted in the completion window
    };
    // Crash point: copy applied, release not yet run (retire site 1).
    if sys.maybe_crash(sim, CrashPoint::PreRetire) {
        return;
    }
    let inflight = dev_mut(sys, id).take_inflight(index);
    let req_id = inflight.req.id;
    let shard = inflight.shard;
    let release_cost = release_and_notify(sys, sim, id, inflight, Context::Interrupt);
    sys.trace_emit(
        sim.now(),
        release_cost,
        Context::Interrupt,
        "ops 4-5: release+notify",
        Some(req_id),
    );
    let wakeup = sys.cost.kthread_wakeup;
    sys.meter.charge(Context::KernelThread, wakeup);
    sys.meter.attribute_worker(shard, wakeup);
    sim.schedule_after(
        release_cost + wakeup,
        SimEvent::KthreadRun { device: id, shard },
    );
    crate::driver::wake_deferred_peers(sys, sim, id, shard, release_cost + wakeup);
    // Crash point: the request retired (journal sealed) an instant ago.
    sys.maybe_crash(sim, CrashPoint::PostRetire);
}

/// Release + Notify on the polling path, once the worker's CPU frees
/// up ([`SimEvent::PollRelease`]).
pub(crate) fn poll_release(sys: &mut System, sim: &mut Sim<System>, id: DeviceId, token: u64) {
    if sys.device(id).is_none() {
        return;
    }
    let Some(index) = dev(sys, id).inflight.iter().position(|i| i.token == token) else {
        return; // aborted in the completion window
    };
    // Crash point: copy applied, release not yet run (retire site 2).
    if sys.maybe_crash(sim, CrashPoint::PreRetire) {
        return;
    }
    let inflight = dev_mut(sys, id).take_inflight(index);
    let req_id = inflight.req.id;
    let shard = inflight.shard;
    let release_cost = release_and_notify(sys, sim, id, inflight, Context::KernelThread);
    sys.meter.attribute_worker(shard, release_cost);
    sys.trace_emit(
        sim.now(),
        release_cost,
        Context::KernelThread,
        "ops 4-5: release+notify",
        Some(req_id),
    );
    // Release/Notify occupies the owning worker's CPU.
    let busy_until = sim.now() + release_cost;
    let device = dev_mut(sys, id);
    device.shards[shard].busy_until = device.shards[shard].busy_until.max(busy_until);
    sim.schedule_after(release_cost, SimEvent::KthreadRun { device: id, shard });
    crate::driver::wake_deferred_peers(sys, sim, id, shard, release_cost);
    // Crash point: the request retired (journal sealed) an instant ago.
    sys.maybe_crash(sim, CrashPoint::PostRetire);
}

/// Op 4 + Op 5 for one completed request. Returns the CPU cost.
pub(crate) fn release_and_notify(
    sys: &mut System,
    sim: &mut Sim<System>,
    id: DeviceId,
    inflight: Inflight,
    ctx: Context,
) -> SimDuration {
    let Inflight {
        req,
        slot,
        pages,
        page_size,
        dma_started_at,
        ..
    } = inflight;
    let race_mode = crate::driver::dev(sys, id).config.race_mode;
    let owner = crate::driver::dev(sys, id).owner;

    let mut cost = SimDuration::ZERO;
    let mut races = 0u64;

    // Op 4 — Release (migration only; replication needs no VM work).
    for page in &pages {
        match race_mode {
            RaceMode::DetectFail => {
                // Clear the young bit with a CAS; failure means the entry
                // was disturbed during the transfer: a race. No TLB flush
                // on success — the semi-final PTE never entered the TLB.
                let space = &mut sys.spaces[owner.0];
                debug_assert!(
                    !space.tlb().contains(page.vaddr, page_size)
                        || space.table().peek(page.vaddr, page_size) != Some(page.installed),
                    "semi-final PTE must not be TLB-resident unless referenced"
                );
                if let Err(found) =
                    space
                        .table_mut()
                        .compare_exchange(page.vaddr, page.installed, page.final_pte)
                {
                    if std::env::var_os("MEMIF_DEBUG_RACE").is_some() {
                        eprintln!(
                            "RACE at {}: installed={} found={} final={}",
                            page.vaddr, page.installed, found, page.final_pte
                        );
                    }
                    races += 1;
                }
                cost += sys.cost.pte_cas;
            }
            RaceMode::DetectRecover => {
                // Writes during the transfer trapped and aborted the
                // migration, so a surviving entry can differ from the
                // semi-final only by a harmless *read* (the reference
                // cleared young). Finalize either form; anything else is
                // an anomaly — report it, but always remove the write
                // trap so the page is not protected forever.
                let space = &mut sys.spaces[owner.0];
                let read_disturbed = page.installed.with_young(false);
                let finalized = space
                    .table_mut()
                    .compare_exchange(page.vaddr, page.installed, page.final_pte)
                    .is_ok()
                    || space
                        .table_mut()
                        .compare_exchange(page.vaddr, read_disturbed, page.final_pte)
                        .is_ok();
                if !finalized {
                    let found = space
                        .table()
                        .peek(page.vaddr, page_size)
                        .unwrap_or(memif_mm::Pte::EMPTY);
                    space
                        .table_mut()
                        .replace(page.vaddr, found.with_watch(false))
                        .expect("entry exists");
                    races += 1;
                }
                cost += sys.cost.pte_cas;
            }
            RaceMode::Prevent => {
                // Linux-style: swap the migration entry for the final PTE
                // and pay the second TLB flush.
                let space = &mut sys.spaces[owner.0];
                space
                    .table_mut()
                    .replace(page.vaddr, page.final_pte)
                    .expect("entry exists");
                space.tlb_mut().flush_page(page.vaddr, page_size);
                cost += sys.cost.pte_update_with_flush();
            }
        }
        // Remote mappers (shared pages): rewrite their migration
        // entries to the new frame; they were blocked for the window.
        for (sid, rva) in &page.remote {
            let rspace = &mut sys.spaces[sid.0];
            rspace
                .table_mut()
                .replace(*rva, page.final_pte)
                .expect("remote migration entry present");
            rspace.tlb_mut().flush_page(*rva, page_size);
            cost += sys.cost.pte_update_with_flush();
            // Drop one old-frame reference per remote mapper.
            let _ = sys.alloc.free(page.old_frame);
        }
        let freed = sys.alloc.free(page.old_frame).is_ok();
        if freed && sys.alloc.frame_info(page.old_frame).is_none() {
            sys.phys.discard(page.old_frame, page_size.bytes());
        }
        cost += sys.cost.page_free;
    }
    if !pages.is_empty() {
        let stats = &mut dev_mut(sys, id).stats;
        stats.phases.add(Phase::Release, cost);
        stats.races_detected += races;
    }
    sys.meter.charge(ctx, cost);

    // Races are program errors under proceed-and-fail: the application
    // receives the equivalent of a SEGFAULT through the failure queue.
    let status = if races > 0 {
        MoveStatus::Raced
    } else {
        MoveStatus::Done
    };
    cost += notify(sys, sim, id, slot, req, status, dma_started_at, ctx);
    cost
}

/// Op 5 — Notify: posts the completion to the application without any
/// user/kernel crossing, logs it, and wakes sleeping pollers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn notify(
    sys: &mut System,
    sim: &mut Sim<System>,
    id: DeviceId,
    slot: SlotIndex,
    mut req: MovReq,
    status: MoveStatus,
    dma_started_at: Option<SimTime>,
    ctx: Context,
) -> SimDuration {
    req.status = status;
    let mut cost = sys.cost.queue_op;
    sys.meter.charge(ctx, cost);

    // Seal the journal record (journaling devices only): the terminal
    // status becomes durable before the completion is posted, so a
    // crash from here on only re-reports it. Every retire site funnels
    // through this one seal; the journal debug_asserts it fires at most
    // once per request.
    if sys.journal.seal(id, req.id, status) {
        let seal_cost = sys.cost.journal_write;
        sys.meter.charge(ctx, seal_cost);
        cost += seal_cost;
    }

    let now = sim.now();
    let device = dev_mut(sys, id);
    let queue = if status.is_failure() {
        QueueId::CompletionErr
    } else {
        QueueId::CompletionOk
    };
    device
        .region
        .enqueue(queue, slot, &req)
        .expect("slot owned by driver");
    device.stats.phases.add(Phase::Notify, cost);

    // Retire-site idempotence audit: the first notification consumes the
    // submit timestamp, so a second pass for the same request means a
    // retire site re-entered — site 4/5 teardowns and the three release
    // paths must be mutually exclusive per request.
    let submitted_at = device.submit_times.remove(&req.id);
    debug_assert!(
        submitted_at.is_some(),
        "request {} notified twice (retire-site re-entry)",
        req.id
    );
    let submitted_at = submitted_at.unwrap_or(now);
    device.log.push(CompletionRecord {
        req_id: req.id,
        kind: req.kind,
        bytes: req.len_bytes(),
        submitted_at,
        dma_started_at,
        completed_at: now,
        status,
    });
    let route = device.routes.remove(&req.id);
    if status.is_failure() {
        device.stats.failed += 1;
    } else {
        device.stats.completed += 1;
        device.stats.bytes_moved += req.len_bytes();
        if let Some((src, dst)) = route {
            *device.stats.node_moves_out.entry(src).or_default() += 1;
            *device.stats.node_moves_in.entry(dst).or_default() += 1;
        }
    }

    // Wake anyone sleeping in poll() — the notification itself needed no
    // syscall, unlike epoll/kqueue (§7).
    let wakers = std::mem::take(&mut device.pollers);
    for waker in wakers {
        sim.schedule_after(SimDuration::ZERO, waker);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Memif, MoveSpec};
    use crate::config::MemifConfig;
    use memif_hwsim::NodeId;
    use memif_mm::PageSize;

    /// Runs one migrate to retirement and returns everything needed to
    /// re-enter the retire tail for the same request.
    fn retire_once(journal: bool) -> (System, Sim<System>, DeviceId, MovReq) {
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(
            &mut sys,
            space,
            MemifConfig {
                journal,
                ..MemifConfig::default()
            },
        )
        .unwrap();
        let va = sys.mmap(space, 4, PageSize::Small4K, NodeId(0)).unwrap();
        let (id, _) = memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1)),
            )
            .unwrap();
        sim.run(&mut sys);
        let rec = *dev(&sys, memif.device())
            .log
            .last()
            .expect("request retired");
        assert_eq!(rec.req_id, id.0);
        assert_eq!(rec.status, MoveStatus::Done);
        let req = MovReq {
            id: id.0,
            nr_pages: 4,
            page_shift: 12,
            ..MovReq::default()
        };
        (sys, sim, memif.device(), req)
    }

    /// Retire-site idempotence audit, journaled flavor: re-driving the
    /// retire tail after the record sealed trips the journal guard
    /// before anything else mutates.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "re-sealed request")]
    fn double_driving_a_retire_site_trips_the_seal_guard() {
        let (mut sys, mut sim, id, req) = retire_once(true);
        notify(
            &mut sys,
            &mut sim,
            id,
            0,
            req,
            MoveStatus::Done,
            None,
            Context::KernelThread,
        );
    }

    /// Same audit without a journal: the consumed submit timestamp is
    /// the remaining witness that a retire path ran twice.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "notified twice (retire-site re-entry)")]
    fn double_notify_without_journal_trips_the_submit_time_guard() {
        let (mut sys, mut sim, id, req) = retire_once(false);
        notify(
            &mut sys,
            &mut sim,
            id,
            0,
            req,
            MoveStatus::Done,
            None,
            Context::KernelThread,
        );
    }
}
