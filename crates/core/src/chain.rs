//! Cross-tier move chains: one logical region hopping through an
//! ordered list of nodes.
//!
//! A ranked hierarchy turns some placements into multi-hop journeys —
//! a demote-then-promote cascade under capacity pressure, or staging a
//! region through DRAM on its way from the compressed floor to SRAM.
//! [`MoveChain`] sequences those hops: each hop is an ordinary request
//! through the batched/sharded issue path (so it batches, shards,
//! journals, and recovers exactly like any other move), and the next hop
//! is submitted only after the previous hop's completion is retrieved.
//! Journaling therefore stays exactly-once *per hop*: every hop appends
//! its own issue record and seals its own terminal status; a crash
//! mid-chain loses at most the not-yet-submitted suffix, never a hop's
//! exactly-once accounting.

use std::collections::VecDeque;

use memif_hwsim::{NodeId, Sim};
use memif_lockfree::MoveStatus;
use memif_mm::{PageSize, VirtAddr};

use crate::api::{Completion, Memif, MoveSpec, ReqId};
use crate::error::MemifError;
use crate::system::System;

/// What feeding a completion to a chain did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStep {
    /// The completion belongs to some other request; the chain is
    /// untouched.
    NotMine,
    /// The hop finished and the next hop was submitted.
    Advanced(ReqId),
    /// The final hop finished; the region rests at the last node.
    Finished,
    /// A hop terminated unsuccessfully; the chain stops where it is.
    Failed(MoveStatus),
}

/// A logical move sequenced across multiple tier hops (see module docs).
#[derive(Debug)]
pub struct MoveChain {
    base: VirtAddr,
    pages: u32,
    page_size: PageSize,
    hops: VecDeque<NodeId>,
    user_data: u64,
    current: Option<ReqId>,
    hops_done: u32,
    done: bool,
}

impl MoveChain {
    /// A chain moving `pages` pages at `base` through `hops` in order.
    #[must_use]
    pub fn new(
        base: VirtAddr,
        pages: u32,
        page_size: PageSize,
        hops: Vec<NodeId>,
        user_data: u64,
    ) -> Self {
        MoveChain {
            base,
            pages,
            page_size,
            hops: hops.into(),
            user_data,
            current: None,
            hops_done: 0,
            done: false,
        }
    }

    /// Submits the first hop through the background (kernel-thread)
    /// issue path. Call once; completions then drive the rest via
    /// [`MoveChain::on_completion`].
    ///
    /// # Errors
    ///
    /// Propagates submission errors; [`MemifError::EmptyRequest`] if the
    /// chain has no hops or was already started.
    pub fn start(
        &mut self,
        memif: &Memif,
        sys: &mut System,
        sim: &mut Sim<System>,
    ) -> Result<ReqId, MemifError> {
        if self.current.is_some() || self.done {
            return Err(MemifError::EmptyRequest);
        }
        let Some(next) = self.hops.pop_front() else {
            return Err(MemifError::EmptyRequest);
        };
        self.submit_hop(memif, sys, sim, next)
    }

    fn submit_hop(
        &mut self,
        memif: &Memif,
        sys: &mut System,
        sim: &mut Sim<System>,
        dst: NodeId,
    ) -> Result<ReqId, MemifError> {
        let spec = MoveSpec::migrate(self.base, self.pages, self.page_size, dst)
            .with_user_data(self.user_data);
        let (id, _) = memif.submit_background(sys, sim, spec)?;
        self.current = Some(id);
        Ok(id)
    }

    /// Feeds a retrieved completion to the chain. If it completes the
    /// chain's in-flight hop, the next hop is submitted (or the chain
    /// finishes); any other completion returns [`ChainStep::NotMine`].
    ///
    /// # Errors
    ///
    /// Propagates submission errors from launching the next hop.
    pub fn on_completion(
        &mut self,
        memif: &Memif,
        sys: &mut System,
        sim: &mut Sim<System>,
        c: &Completion,
    ) -> Result<ChainStep, MemifError> {
        if self.current != Some(c.req_id) {
            return Ok(ChainStep::NotMine);
        }
        self.current = None;
        if !c.status.is_ok() {
            self.done = true;
            return Ok(ChainStep::Failed(c.status.0));
        }
        self.hops_done += 1;
        match self.hops.pop_front() {
            Some(next) => Ok(ChainStep::Advanced(self.submit_hop(memif, sys, sim, next)?)),
            None => {
                self.done = true;
                Ok(ChainStep::Finished)
            }
        }
    }

    /// Hops completed successfully so far.
    #[must_use]
    pub fn hops_done(&self) -> u32 {
        self.hops_done
    }

    /// True once the chain finished or failed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The in-flight hop's request id, if one is outstanding.
    #[must_use]
    pub fn in_flight(&self) -> Option<ReqId> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemifConfig;
    use memif_hwsim::{Context, CostModel, Topology};

    fn pump(memif: &Memif, sys: &mut System, sim: &mut Sim<System>) -> Completion {
        sim.run(sys);
        memif
            .retrieve_completed(sys)
            .unwrap()
            .expect("hop completion pending")
    }

    /// A region walks dram → nvm → sram on a 3-tier ladder; every hop is
    /// journaled exactly once and the pages end on the final node.
    #[test]
    fn chain_hops_land_in_order_with_exactly_once_journaling() {
        let mut sys = System::with_profile(Topology::ranked(3), CostModel::keystone_ii());
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(
            &mut sys,
            space,
            MemifConfig {
                journal: true,
                ..MemifConfig::default()
            },
        )
        .unwrap();
        let va = sys.mmap(space, 8, PageSize::Small4K, NodeId(0)).unwrap();

        let mut chain = MoveChain::new(va, 8, PageSize::Small4K, vec![NodeId(2), NodeId(1)], 7);
        chain.start(&memif, &mut sys, &mut sim).unwrap();
        assert!(chain.in_flight().is_some());
        // Starting twice is rejected.
        assert!(matches!(
            chain.start(&memif, &mut sys, &mut sim),
            Err(MemifError::EmptyRequest)
        ));

        let c1 = pump(&memif, &mut sys, &mut sim);
        let step = chain
            .on_completion(&memif, &mut sys, &mut sim, &c1)
            .unwrap();
        assert!(matches!(step, ChainStep::Advanced(_)));
        let mid = sys.space(space).translate(va).unwrap();
        assert_eq!(sys.node_of(mid), Some(NodeId(2)), "staged on the NVM hop");

        let c2 = pump(&memif, &mut sys, &mut sim);
        assert_eq!(c2.user_data, 7);
        let step = chain
            .on_completion(&memif, &mut sys, &mut sim, &c2)
            .unwrap();
        assert_eq!(step, ChainStep::Finished);
        assert!(chain.is_done());
        assert_eq!(chain.hops_done(), 2);
        let end = sys.space(space).translate(va).unwrap();
        assert_eq!(sys.node_of(end), Some(NodeId(1)));

        // Exactly-once per hop: one issue record per hop, each sealed.
        let stats = &sys.device(memif.device()).unwrap().stats;
        assert_eq!(stats.journal_records, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
        // Per-node traffic: out of dram once, through nvm once each way,
        // into sram once.
        assert_eq!(stats.node_moves_out.get(&0), Some(&1));
        assert_eq!(stats.node_moves_in.get(&2), Some(&1));
        assert_eq!(stats.node_moves_out.get(&2), Some(&1));
        assert_eq!(stats.node_moves_in.get(&1), Some(&1));
    }

    /// Moving through the compressed floor charges costed codec work,
    /// visible in the meter's compress/decompress attribution.
    #[test]
    fn compressed_hops_charge_codec_work() {
        let mut sys = System::with_profile(Topology::ranked(4), CostModel::keystone_ii());
        let mut sim = Sim::new();
        let space = sys.new_space();
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
        let va = sys.mmap(space, 16, PageSize::Small4K, NodeId(0)).unwrap();
        let bytes = 16 * 4096;

        let mut chain = MoveChain::new(va, 16, PageSize::Small4K, vec![NodeId(3), NodeId(0)], 0);
        chain.start(&memif, &mut sys, &mut sim).unwrap();
        let c = pump(&memif, &mut sys, &mut sim);
        assert!(c.status.is_ok());
        assert_eq!(
            sys.meter.compress_busy(),
            sys.cost.compress(bytes),
            "sinking to zram compresses every byte"
        );
        assert_eq!(sys.meter.decompress_busy().as_ns(), 0);
        let kthread_before = sys.meter.busy(Context::KernelThread);

        chain.on_completion(&memif, &mut sys, &mut sim, &c).unwrap();
        let c = pump(&memif, &mut sys, &mut sim);
        assert!(c.status.is_ok());
        assert_eq!(
            chain.on_completion(&memif, &mut sys, &mut sim, &c).unwrap(),
            ChainStep::Finished
        );
        assert_eq!(sys.meter.decompress_busy(), sys.cost.decompress(bytes));
        // Codec time is real kernel-thread time, not just attribution.
        assert!(
            sys.meter.busy(Context::KernelThread) >= kthread_before + sys.cost.decompress(bytes)
        );
        let end = sys.space(space).translate(va).unwrap();
        assert_eq!(sys.node_of(end), Some(NodeId(0)));
    }
}
