//! Crash recovery: rebuilding a consistent machine from the persistent
//! move journal ([`crate::MoveJournal`]) and the surviving page tables.
//!
//! A fired crash point ([`memif_hwsim::CrashPoint`]) halts the world:
//! every pending event dies undelivered and all volatile state — DMA
//! engine chains, transfer controllers, bandwidth flows, device queues,
//! and the contents of every non-persistent memory node — is lost.
//! [`System::recover`] is the reboot path. It terminates every journaled
//! move in **exactly one** terminal status:
//!
//! * sealed before the crash → reported as-is (the seal is durable);
//! * unsealed at milestone `Issued` → **rolled back**: original PTEs
//!   restored, destination frames freed, sealed `Aborted`;
//! * unsealed at milestone `CopyDone` with every destination byte on
//!   persistent media → **rolled forward**: final PTEs installed, old
//!   frames freed, sealed `Done`;
//! * unsealed at `CopyDone` but with a *volatile* destination → the
//!   copied bytes did not survive, so the move rolls back like `Issued`.
//!
//! Modeling notes, also spelled out in `docs/DESIGN.md` §13: page
//! tables and the frame allocator are treated as recoverable (a real
//! kernel reconstructs them from its persistent process image during
//! reboot); requests staged but never issued were never journaled and
//! simply vanish — the write-ahead contract makes unacknowledged work
//! the application's to resubmit. Race detection cannot run post-crash
//! (the CAS-witness CPU state is gone), so a rolled-forward move seals
//! `Done` unconditionally.

use memif_hwsim::Sim;
use memif_lockfree::MoveStatus;

use crate::device::{CompletionRecord, MemifDevice};
use crate::journal::{JournalMilestone, JournalRecord, RecoveryReport};
use crate::system::System;

impl System {
    /// Recovers the machine after a crash point fired. Safe (and a
    /// near-no-op) on an uncrashed system: the report then just lists
    /// the sealed journal records.
    ///
    /// Only devices opened with [`crate::MemifConfig::journal`] are
    /// rebuilt — a non-journaled device's entire state was volatile and
    /// is unrecoverable by design. Completions delivered before the
    /// crash sat in volatile queues; the returned
    /// [`RecoveryReport::statuses`] is the post-crash acknowledgment
    /// channel for **every** journaled request, sealed or recovered.
    pub fn recover(&mut self, sim: &mut Sim<System>) -> RecoveryReport {
        let mut report = RecoveryReport {
            journal_records: self.journal.len() as u64,
            ..RecoveryReport::default()
        };
        if !self.crashed {
            for rec in self.journal.records() {
                if let Some(status) = rec.sealed {
                    report
                        .statuses
                        .push((rec.req.id, status, rec.req.user_data));
                }
            }
            return report;
        }

        // Drain the dead world: dispatch drops every pending event while
        // the crashed flag is up, so this only advances the clock to the
        // last scheduled instant.
        while sim.step(self) {}

        // Transient-PTE audit (debug builds): every migration entry or
        // write-watch a move left behind must be covered by an unsealed
        // journal record — an orphan would be a page stuck unreachable
        // forever. Only meaningful when every open device journaled;
        // a non-journaled device legitimately strands its transients.
        #[cfg(debug_assertions)]
        if self.devices.iter().flatten().all(|d| d.config.journal) {
            let covered: std::collections::HashSet<(usize, u64)> = self
                .journal
                .records()
                .iter()
                .filter(|r| r.sealed.is_none())
                .flat_map(|r| {
                    r.pages.iter().flat_map(move |p| {
                        std::iter::once((r.space.0, p.vaddr.as_u64()))
                            .chain(p.remote.iter().map(|(sid, rva)| (sid.0, rva.as_u64())))
                    })
                })
                .collect();
            for (sid, space) in self.spaces.iter().enumerate() {
                for (va, pte) in space.scan_transient() {
                    debug_assert!(
                        covered.contains(&(sid, va.as_u64())),
                        "orphan transient PTE at space {sid} va {va}: {pte}"
                    );
                }
            }
        }

        // Volatile memory nodes lose their contents; persistent (NVM)
        // banks keep theirs — that asymmetry is what makes roll-forward
        // sound.
        let volatile: Vec<(memif_hwsim::PhysAddr, u64)> = self
            .topo
            .all_nodes()
            .iter()
            .filter(|n| !n.kind.is_persistent())
            .map(|n| (n.base, n.bytes))
            .collect();
        for (base, bytes) in volatile {
            self.phys.discard(base, bytes);
        }

        // Reset the volatile hardware: in-flight descriptor chains,
        // transfer-controller slots, bandwidth flows, CPU TLBs.
        self.dma.reset_volatile();
        self.tc.reset_volatile();
        self.flows.reset_volatile(sim);
        for space in &mut self.spaces {
            space.tlb_mut().flush_all();
        }

        // Device state (queues, in-flight records, logs) was volatile.
        // Re-open journaling devices at their recorded ids so journal
        // records resolve; everything else stays closed.
        self.devices.clear();
        let opens: Vec<_> = self.journal.opens().to_vec();
        for (id, owner, config) in opens {
            while self.devices.len() <= id.0 {
                self.devices.push(None);
            }
            let device = MemifDevice::new(id, owner, config)
                .expect("region geometry was valid at first open");
            self.devices[id.0] = Some(device);
        }

        // Classify and terminate every in-flight move, in journal append
        // order (the order they were issued).
        let records: Vec<JournalRecord> = self.journal.records().to_vec();
        for rec in &records {
            if rec.sealed.is_some() {
                continue;
            }
            let dst_persistent = rec.segments.iter().all(|s| {
                self.node_of(s.dst)
                    .and_then(|n| self.topo.node(n))
                    .is_some_and(|node| node.kind.is_persistent())
            });
            let forward = rec.milestone == JournalMilestone::CopyDone && dst_persistent;
            let status = if forward {
                self.roll_forward(rec);
                MoveStatus::Done
            } else {
                self.roll_back(rec);
                MoveStatus::Aborted
            };
            self.journal.seal(rec.device, rec.req.id, status);
            report.recovered_requests += 1;
            if forward {
                report.redriven += 1;
            } else {
                report.rolled_back += 1;
            }
            if let Some(device) = self.device_mut(rec.device) {
                device.stats.recovered_requests += 1;
                if forward {
                    device.stats.redriven += 1;
                    device.stats.completed += 1;
                    device.stats.bytes_moved += rec.req.len_bytes();
                } else {
                    device.stats.rolled_back += 1;
                    device.stats.failed += 1;
                }
                device.log.push(CompletionRecord {
                    req_id: rec.req.id,
                    kind: rec.req.kind,
                    bytes: rec.req.len_bytes(),
                    submitted_at: sim.now(),
                    dma_started_at: None,
                    completed_at: sim.now(),
                    status,
                });
            }
        }

        // Mirror the journal's per-device record count into the rebuilt
        // stats so `memifctl stats` reports it after a reboot.
        let record_devices: Vec<_> = self.journal.records().iter().map(|r| r.device).collect();
        for device in record_devices {
            if let Some(d) = self.device_mut(device) {
                d.stats.journal_records += 1;
            }
        }

        for rec in self.journal.records() {
            let status = rec.sealed.expect("every record sealed above");
            report
                .statuses
                .push((rec.req.id, status, rec.req.user_data));
        }

        self.crashed = false;
        if let Some(log) = &mut self.event_log {
            log.push(format!(
                "{{\"t\":{},\"type\":\"recover\",\"records\":{},\"rolled_back\":{},\"redriven\":{}}}",
                sim.now().as_ns(),
                report.journal_records,
                report.rolled_back,
                report.redriven
            ));
        }
        report
    }

    /// Restores the pre-move mapping of an interrupted migration: the
    /// exact PTE image the journal recorded, remote mappers included;
    /// destination frames return to the allocator. Mirrors the live
    /// driver's teardown path. Pure seal for replications (no mappings
    /// changed).
    fn roll_back(&mut self, rec: &JournalRecord) {
        for page in &rec.pages {
            let space = &mut self.spaces[rec.space.0];
            space
                .table_mut()
                .replace(page.vaddr, page.original)
                .expect("journaled page still mapped");
            for (sid, rva) in &page.remote {
                let restored = page.original.with_young(false);
                let rspace = &mut self.spaces[sid.0];
                rspace
                    .table_mut()
                    .replace(*rva, restored)
                    .expect("journaled remote mapping still present");
                let _ = self.alloc.free(page.new_frame);
            }
            let _ = self.alloc.free(page.new_frame);
            if self.alloc.frame_info(page.new_frame).is_none() {
                self.phys.discard(page.new_frame, rec.page_size.bytes());
            }
        }
    }

    /// Completes an interrupted migration whose payload already reached
    /// persistent destination frames: installs the final PTEs (remote
    /// mappers included) and frees the old frames. Mirrors the live
    /// driver's release path, minus race detection — the CAS witness
    /// died with the CPUs.
    fn roll_forward(&mut self, rec: &JournalRecord) {
        for page in &rec.pages {
            let space = &mut self.spaces[rec.space.0];
            space
                .table_mut()
                .replace(page.vaddr, page.final_pte)
                .expect("journaled page still mapped");
            for (sid, rva) in &page.remote {
                let rspace = &mut self.spaces[sid.0];
                rspace
                    .table_mut()
                    .replace(*rva, page.final_pte)
                    .expect("journaled remote mapping still present");
                let _ = self.alloc.free(page.old_frame);
            }
            let freed = self.alloc.free(page.old_frame).is_ok();
            if freed && self.alloc.frame_info(page.old_frame).is_none() {
                self.phys.discard(page.old_frame, rec.page_size.bytes());
            }
        }
    }
}
