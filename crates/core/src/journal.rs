//! The persistent write-ahead move journal.
//!
//! memif's moves are asynchronous kernel-side work, so a crash can
//! strike while a migration is mid-flight. Following the
//! detectably-recoverable style of memento (PLDI 2023), every *issued*
//! request writes one journal record before its DMA launches and seals
//! it with the terminal status at retire. Together with the transient
//! PTEs a migration leaves in the page table (migration entries,
//! watched or semi-final mappings), the journal classifies every
//! in-flight move after a crash:
//!
//! * **unsealed, milestone `Issued`** — no bytes reached the
//!   destination; recovery *rolls back* (restore original PTEs, free
//!   the new frames) and seals the record `Aborted`.
//! * **unsealed, milestone `CopyDone`** — the bytes are in place but
//!   the release never ran; recovery *rolls forward* (install the
//!   final PTEs, free the old frames) and seals the record `Done`.
//! * **sealed** — the move retired before the crash; recovery only
//!   reports its status.
//!
//! Requests still sitting in the submission queues at the crash were
//! never journaled and simply vanish — the classic write-ahead-log
//! contract that unacknowledged work is the client's to resubmit.
//!
//! The journal itself is modeled as living on persistent media: it
//! survives [`crate::System::recover`] untouched. Appends are charged
//! [`memif_hwsim::CostModel::journal_write`] and happen only for
//! devices opened with [`crate::MemifConfig::journal`] set, so default
//! runs pay nothing and stay byte-identical.

use std::collections::HashMap;

use memif_hwsim::dma::SgSegment;
use memif_lockfree::{MovReq, MoveStatus};
use memif_mm::{PageSize, Pte, VirtAddr};

use crate::config::MemifConfig;
use crate::device::{DeviceId, PagePlan};
use crate::system::SpaceId;

/// How far a journaled move had progressed when last recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMilestone {
    /// Issued: planned and (about to be) launched; destination bytes
    /// not yet in place.
    Issued,
    /// The payload bytes have been applied at the destination; only
    /// the release (PTE finalization + notification) remains.
    CopyDone,
}

/// The journaled shadow of one page's migration plan — everything
/// recovery needs to redo or undo the remap.
#[derive(Debug, Clone)]
pub struct JournalPage {
    /// The page's virtual address in the owning space.
    pub vaddr: VirtAddr,
    /// Frame backing the page before the move.
    pub old_frame: memif_hwsim::PhysAddr,
    /// Freshly allocated destination frame.
    pub new_frame: memif_hwsim::PhysAddr,
    /// PTE before the move (rollback target).
    pub original: Pte,
    /// Final PTE after a successful move (roll-forward target).
    pub final_pte: Pte,
    /// Additional mappers of a shared page: their PTEs move with ours.
    pub remote: Vec<(SpaceId, VirtAddr)>,
}

impl JournalPage {
    pub(crate) fn of_plan(plan: &PagePlan) -> Self {
        JournalPage {
            vaddr: plan.vaddr,
            old_frame: plan.old_frame,
            new_frame: plan.new_frame,
            original: plan.original,
            final_pte: plan.final_pte,
            remote: plan.remote.clone(),
        }
    }
}

/// One write-ahead record: a single issued move request.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// Device the request was issued on.
    pub device: DeviceId,
    /// Owning address space.
    pub space: SpaceId,
    /// Driver-internal token of the issue (re-issued retries reuse the
    /// record and refresh the token).
    pub token: u64,
    /// The request as issued.
    pub req: MovReq,
    /// Issue shard that carried the request.
    pub shard: usize,
    /// Batch linkage: `Some(leader_token)` for chained members, `None`
    /// for leaders and solo requests. Updated on heir promotion.
    pub batch_leader: Option<u64>,
    /// Page size of the covered region.
    pub page_size: PageSize,
    /// Per-page remap plans (empty for replications, which change no
    /// mappings).
    pub pages: Vec<JournalPage>,
    /// The scatter-gather segments of this member's payload.
    pub segments: Vec<SgSegment>,
    /// Progress milestone last durably recorded.
    pub milestone: JournalMilestone,
    /// Terminal status once the move retired; `None` while in flight.
    pub sealed: Option<MoveStatus>,
}

/// The machine-wide journal: per-device open records (so recovery can
/// rebuild devices) plus the append-ordered move records.
#[derive(Debug, Default)]
pub struct MoveJournal {
    /// Journaling devices, in open order: recovery re-opens these.
    opens: Vec<(DeviceId, SpaceId, MemifConfig)>,
    records: Vec<JournalRecord>,
    /// `(device, req_id) -> records index`. Requests are keyed by id,
    /// not token: a retried issue overwrites its own record.
    index: HashMap<(usize, u64), usize>,
}

impl MoveJournal {
    /// Records a journaling device's open (durable device metadata).
    pub(crate) fn record_open(&mut self, device: DeviceId, owner: SpaceId, config: &MemifConfig) {
        self.opens.push((device, owner, config.clone()));
    }

    /// Journaling devices in open order.
    #[must_use]
    pub fn opens(&self) -> &[(DeviceId, SpaceId, MemifConfig)] {
        &self.opens
    }

    /// All records, in append order.
    #[must_use]
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of records appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends (or, for a re-issued retry of the same request,
    /// overwrites) the record for an issued move.
    pub(crate) fn append(&mut self, record: JournalRecord) {
        let key = (record.device.0, record.req.id);
        match self.index.get(&key) {
            Some(&i) if self.records[i].sealed.is_none() => {
                // A retry re-planned and re-issued the same request; the
                // prior attempt was rolled back, so its plan is stale.
                self.records[i] = record;
            }
            _ => {
                self.index.insert(key, self.records.len());
                self.records.push(record);
            }
        }
    }

    fn get_mut(&mut self, device: DeviceId, req_id: u64) -> Option<&mut JournalRecord> {
        let i = *self.index.get(&(device.0, req_id))?;
        self.records.get_mut(i)
    }

    /// Marks the request's payload bytes as applied at the destination.
    pub(crate) fn copy_done(&mut self, device: DeviceId, req_id: u64) {
        if let Some(rec) = self.get_mut(device, req_id) {
            debug_assert!(rec.sealed.is_none(), "copy_done after seal");
            rec.milestone = JournalMilestone::CopyDone;
        }
    }

    /// Updates a member's batch linkage (heir promotion, disband).
    pub(crate) fn set_leader(&mut self, device: DeviceId, req_id: u64, leader: Option<u64>) {
        if let Some(rec) = self.get_mut(device, req_id) {
            rec.batch_leader = leader;
        }
    }

    /// Seals a record with its terminal status; returns whether a
    /// record was sealed (so the caller can charge the persistent
    /// write). No-op for requests that were never journaled (e.g.
    /// validation rejects); a second seal of the same record is a
    /// driver bug caught by the debug_assert — the five retire sites
    /// must each fire at most once per request.
    pub(crate) fn seal(&mut self, device: DeviceId, req_id: u64, status: MoveStatus) -> bool {
        if let Some(rec) = self.get_mut(device, req_id) {
            debug_assert!(
                rec.sealed.is_none(),
                "retire site re-sealed request {req_id} ({:?} -> {status:?})",
                rec.sealed
            );
            if rec.sealed.is_none() {
                rec.sealed = Some(status);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(req_id: u64, token: u64) -> JournalRecord {
        JournalRecord {
            device: DeviceId(0),
            space: SpaceId(0),
            token,
            req: MovReq {
                id: req_id,
                ..MovReq::default()
            },
            shard: 0,
            batch_leader: None,
            page_size: PageSize::Small4K,
            pages: Vec::new(),
            segments: Vec::new(),
            milestone: JournalMilestone::Issued,
            sealed: None,
        }
    }

    #[test]
    fn retry_overwrites_its_unsealed_record() {
        let mut j = MoveJournal::default();
        j.append(record(7, 1));
        j.append(record(7, 2));
        assert_eq!(j.len(), 1, "retries reuse the record, keyed by req id");
        assert_eq!(j.records()[0].token, 2, "retry refreshes the token");
    }

    #[test]
    fn seal_charges_once_and_skips_unjournaled_requests() {
        let mut j = MoveJournal::default();
        j.append(record(7, 1));
        assert!(j.seal(DeviceId(0), 7, MoveStatus::Done));
        assert_eq!(j.records()[0].sealed, Some(MoveStatus::Done));
        assert!(
            !j.seal(DeviceId(0), 8, MoveStatus::Done),
            "never-journaled requests (validation rejects) seal nothing"
        );
    }

    #[test]
    fn heir_promotion_relinks_members() {
        let mut j = MoveJournal::default();
        j.append(JournalRecord {
            batch_leader: Some(10),
            ..record(7, 1)
        });
        j.set_leader(DeviceId(0), 7, Some(11));
        assert_eq!(j.records()[0].batch_leader, Some(11));
        j.set_leader(DeviceId(0), 7, None);
        assert_eq!(j.records()[0].batch_leader, None, "heir itself unlinks");
    }

    /// Retire-site idempotence audit: all five retire paths funnel into
    /// one seal, so a second seal of the same record means a retire
    /// path re-entered — caught by the guard in debug builds.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "re-sealed request 7")]
    fn double_seal_is_a_retire_reentry_bug() {
        let mut j = MoveJournal::default();
        j.append(record(7, 1));
        j.seal(DeviceId(0), 7, MoveStatus::Done);
        j.seal(DeviceId(0), 7, MoveStatus::Aborted);
    }

    /// Copy progress reported after the request already retired means a
    /// completion path fired out of order.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "copy_done after seal")]
    fn copy_done_after_seal_is_a_reentry_bug() {
        let mut j = MoveJournal::default();
        j.append(record(7, 1));
        j.seal(DeviceId(0), 7, MoveStatus::Done);
        j.copy_done(DeviceId(0), 7);
    }
}

/// What [`crate::System::recover`] did, record by record.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Journal records examined (all appends, sealed or not).
    pub journal_records: u64,
    /// Records that were unsealed at the crash and needed recovery.
    pub recovered_requests: u64,
    /// Unsealed `Issued` records rolled back (sealed `Aborted`).
    pub rolled_back: u64,
    /// Unsealed `CopyDone` records rolled forward (sealed `Done`).
    pub redriven: u64,
    /// Terminal status of every journaled request after recovery, in
    /// journal append order: `(req_id, status, user_data)`.
    pub statuses: Vec<(u64, MoveStatus, u64)>,
}
