//! The memif user API (§4.1, Figure 2).
//!
//! The C prototype exposes `MemifOpen`/`AllocRequest`/`SubmitRequest`/
//! `RetrieveCompleted`/`poll`/`MemifClose`. [`Memif`] carries the same
//! surface against the simulated [`System`]. Because the world is a DES,
//! API calls return the [`SimDuration`] of application CPU time they
//! consumed; scripted applications advance their own timeline by that
//! amount (the harnesses in `memif-bench` do exactly this).
//!
//! ```
//! use memif::{Memif, MemifConfig, MoveSpec, System};
//! use memif_hwsim::{NodeId, Sim};
//! use memif_mm::PageSize;
//!
//! let mut sys = System::keystone_ii();
//! let mut sim = Sim::new();
//! let proc0 = sys.new_space();
//! let src = sys.mmap(proc0, 4, PageSize::Small4K, NodeId(0)).unwrap();
//! let dst = sys.mmap(proc0, 4, PageSize::Small4K, NodeId(1)).unwrap();
//!
//! let memif = Memif::open(&mut sys, proc0, MemifConfig::default()).unwrap();
//! let (_id, _cpu) = memif
//!     .submit(&mut sys, &mut sim, MoveSpec::replicate(src, dst, 4, PageSize::Small4K))
//!     .unwrap();
//! sim.run(&mut sys);
//! let done = memif.retrieve_completed(&mut sys).unwrap().expect("one completion");
//! assert!(done.status.is_ok());
//! ```

use memif_hwsim::{Context, CrashPoint, Sim, SimDuration};
use memif_lockfree::{Color, MovReq, MoveKind, MoveStatus, QueueId};
use memif_mm::{AccessKind, Fault, PageSize, VirtAddr};

use crate::config::MemifConfig;
use crate::device::DeviceId;
use crate::driver::{self, dev};
use crate::error::MemifError;
use crate::event::SimEvent;
use crate::system::{SpaceId, System};

/// Identifier the application uses to correlate completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// A move request as the application states it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveSpec {
    /// Replication or migration.
    pub kind: MoveKind,
    /// Source region base.
    pub src: VirtAddr,
    /// Destination region base (replication only).
    pub dst: VirtAddr,
    /// Pages covered.
    pub pages: u32,
    /// Page granularity (must match the regions' VMAs).
    pub page_size: PageSize,
    /// Destination node (migration only).
    pub dst_node: memif_hwsim::NodeId,
    /// Opaque cookie echoed in the completion.
    pub user_data: u64,
}

impl MoveSpec {
    /// A replication (asynchronous `memcpy`) of `pages` pages.
    #[must_use]
    pub fn replicate(src: VirtAddr, dst: VirtAddr, pages: u32, page_size: PageSize) -> Self {
        MoveSpec {
            kind: MoveKind::Replicate,
            src,
            dst,
            pages,
            page_size,
            dst_node: memif_hwsim::NodeId(0),
            user_data: 0,
        }
    }

    /// A migration of `pages` pages onto `dst_node`.
    #[must_use]
    pub fn migrate(
        src: VirtAddr,
        pages: u32,
        page_size: PageSize,
        dst_node: memif_hwsim::NodeId,
    ) -> Self {
        MoveSpec {
            kind: MoveKind::Migrate,
            src,
            dst: VirtAddr::new(0),
            pages,
            page_size,
            dst_node,
            user_data: 0,
        }
    }

    /// Attaches a user cookie.
    #[must_use]
    pub fn with_user_data(mut self, user_data: u64) -> Self {
        self.user_data = user_data;
        self
    }
}

/// A retrieved completion notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request this completes.
    pub req_id: ReqId,
    /// Terminal status.
    pub status: CompletionStatus,
    /// The cookie from the submission.
    pub user_data: u64,
    /// Replication or migration.
    pub kind: MoveKind,
    /// Bytes covered.
    pub bytes: u64,
}

/// Completion status exposed to applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionStatus(pub MoveStatus);

impl CompletionStatus {
    /// True for a successful move.
    #[must_use]
    pub fn is_ok(self) -> bool {
        self.0 == MoveStatus::Done
    }

    /// True when a CPU/DMA race was detected (the SEGFAULT-equivalent of
    /// proceed-and-fail).
    #[must_use]
    pub fn is_race(self) -> bool {
        self.0 == MoveStatus::Raced
    }

    /// True when proceed-and-recover aborted the migration.
    #[must_use]
    pub fn is_aborted(self) -> bool {
        self.0 == MoveStatus::Aborted
    }

    /// True when the DMA path gave up on the request (retries exhausted,
    /// no CPU fallback configured).
    #[must_use]
    pub fn is_failed(self) -> bool {
        matches!(self.0, MoveStatus::Failed(_))
    }

    /// Why the request failed, for [`is_failed`](Self::is_failed)
    /// completions.
    #[must_use]
    pub fn fail_reason(self) -> Option<memif_lockfree::FailReason> {
        match self.0 {
            MoveStatus::Failed(reason) => Some(reason),
            _ => None,
        }
    }
}

/// A handle to an open memif instance (the `memfd` of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Memif {
    device: DeviceId,
    owner: SpaceId,
}

impl Memif {
    /// `MemifOpen`: creates an instance owned by `owner`.
    ///
    /// # Errors
    ///
    /// Propagates region-construction failures.
    pub fn open(sys: &mut System, owner: SpaceId, config: MemifConfig) -> Result<Self, MemifError> {
        let journaled = config.journal.then(|| config.clone());
        let device = sys.open_device(owner, config)?;
        if let Some(cfg) = journaled {
            // Durable device metadata: recovery re-opens the instance at
            // this id so journal records resolve after a crash.
            sys.journal.record_open(device, owner, &cfg);
        }
        Ok(Memif { device, owner })
    }

    /// `MemifClose`: tears the instance down.
    ///
    /// # Errors
    ///
    /// [`MemifError::Busy`] if the device still has queued or in-flight
    /// work (retrieve completions first), or
    /// [`MemifError::NoSuchDevice`] if already closed.
    pub fn close(self, sys: &mut System) -> Result<(), MemifError> {
        let device = sys.device(self.device).ok_or(MemifError::NoSuchDevice)?;
        if !device.is_idle() {
            return Err(MemifError::Busy);
        }
        sys.close_device(self.device)?;
        Ok(())
    }

    /// The underlying device id.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// `AllocRequest` + populate + `SubmitRequest` (§4.4), as one call.
    ///
    /// Non-blocking: enqueues the request on the staging queue. If the
    /// observed color is **blue**, this thread flushes staging to the
    /// submission queue, recolors to red, and — if it won the recolor —
    /// makes the single `ioctl(MOV_ONE)` kick-start syscall. If the
    /// color is **red**, an active kernel worker will pick the request
    /// up with no syscall at all.
    ///
    /// Returns the request id and the application CPU time consumed
    /// (including any syscall).
    ///
    /// # Errors
    ///
    /// [`MemifError::Exhausted`] when all request slots are in flight,
    /// [`MemifError::NoSuchDevice`] if the instance has been closed.
    /// Semantic errors (bad ranges, unknown nodes) are reported
    /// asynchronously through the completion queue, as in the paper.
    pub fn submit(
        &self,
        sys: &mut System,
        sim: &mut Sim<System>,
        spec: MoveSpec,
    ) -> Result<(ReqId, SimDuration), MemifError> {
        let (id, shard, color) = self.stage(sys, sim, spec)?;
        let mut cpu = sys.cost.queue_op;

        // Crash point: staged but never flushed or kicked — the request
        // was not journaled and vanishes with the volatile queues; the
        // write-ahead contract makes it the application's to resubmit.
        if sys.maybe_crash(sim, CrashPoint::Submit) {
            return Ok((ReqId(id), cpu));
        }

        if color == Color::Blue {
            // This thread is the flusher (§4.4 pseudo-code) — for its
            // own shard only; each shard runs the color protocol
            // independently.
            loop {
                // flush: staging -> submission
                while let Some(d) = dev(sys, self.device)
                    .region
                    .dequeue_sharded(QueueId::Staging, shard)?
                {
                    dev(sys, self.device).region.enqueue_sharded(
                        QueueId::Submission,
                        shard,
                        d.slot,
                        &d.req,
                    )?;
                    cpu += sys.cost.queue_op * 2;
                }
                match dev(sys, self.device).region.set_color_sharded(
                    QueueId::Staging,
                    shard,
                    Color::Red,
                ) {
                    Err(_) => continue,      // queue refilled: re-flush
                    Ok(Color::Red) => break, // another thread already kicked
                    Ok(Color::Blue) => {
                        cpu += driver::syscall::mov_one(sys, sim, self.device, shard);
                        break;
                    }
                }
            }
        }
        sys.meter.charge(Context::App, sys.cost.queue_op);
        Ok((ReqId(id), cpu))
    }

    /// Low-priority submission for in-kernel producers (the
    /// `memif-policy` placement daemon): the request is staged on the
    /// shard's **blue** queue and the shard's kernel worker is kicked —
    /// no user/kernel crossing, no flush race with applications. An
    /// already-running worker treats the kick as a no-op and drains the
    /// staging queue on its normal rounds, so background work never
    /// preempts application submissions; at worst it waits for the
    /// worker's next idle round.
    ///
    /// Returns the request id and the (kernel-thread) CPU time consumed.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_background(
        &self,
        sys: &mut System,
        sim: &mut Sim<System>,
        spec: MoveSpec,
    ) -> Result<(ReqId, SimDuration), MemifError> {
        let (id, shard, _color) = self.stage(sys, sim, spec)?;
        let cpu = sys.cost.queue_op;
        // Crash point: staged but the worker never kicked (see submit).
        if sys.maybe_crash(sim, CrashPoint::Submit) {
            return Ok((ReqId(id), cpu));
        }
        sys.meter.charge(Context::KernelThread, cpu);
        sim.schedule_after(
            cpu,
            SimEvent::KthreadRun {
                device: self.device,
                shard,
            },
        );
        Ok((ReqId(id), cpu))
    }

    /// Routes `spec` to its issue shard and stages it (queue color as
    /// observed by the enqueue). Shared by [`submit`](Self::submit) and
    /// [`submit_background`](Self::submit_background).
    fn stage(
        &self,
        sys: &mut System,
        sim: &mut Sim<System>,
        spec: MoveSpec,
    ) -> Result<(u64, usize, Color), MemifError> {
        let shards = sys
            .device(self.device)
            .ok_or(MemifError::NoSuchDevice)?
            .config
            .issue_shards
            .max(1);
        // Region-affinity routing: hash the covering VMA's base (not the
        // request's own address) so every request touching one mapped
        // region lands on the same shard — same-region FIFO and the
        // deferred-hazard guard then compose per shard exactly as in the
        // single-worker driver. Requests outside any VMA (rejected later
        // in planning) fall back to their own base address.
        let shard = if shards == 1 {
            0
        } else {
            let len = u64::from(spec.pages) * spec.page_size.bytes();
            let base = sys
                .space(self.owner)
                .vma_covering(spec.src, len)
                .map_or(spec.src.as_u64(), |v| v.start.as_u64());
            (base.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % shards
        };
        let device = sys
            .device_mut(self.device)
            .ok_or(MemifError::NoSuchDevice)?;
        let slot = device.region.alloc_slot()?;
        let id = device.next_req_id;
        device.next_req_id += 1;
        device.stats.submitted += 1;
        device.submit_times.insert(id, sim.now());

        let req = MovReq {
            id,
            kind: spec.kind,
            src_base: spec.src.as_u64(),
            dst_base: spec.dst.as_u64(),
            nr_pages: spec.pages,
            page_shift: spec.page_size.shift(),
            dst_node: spec.dst_node.0,
            status: MoveStatus::Pending,
            user_data: spec.user_data,
        };
        let color =
            dev(sys, self.device)
                .region
                .enqueue_sharded(QueueId::Staging, shard, slot, &req)?;
        Ok((id, shard, color))
    }

    /// `RetrieveCompleted`: takes one completion notification, failure
    /// queue first, without blocking. The request slot returns to the
    /// free list.
    ///
    /// # Errors
    ///
    /// [`MemifError::NoSuchDevice`] if the instance has been closed;
    /// region-validation failures (not expected in normal operation).
    pub fn retrieve_completed(&self, sys: &mut System) -> Result<Option<Completion>, MemifError> {
        let device = sys.device(self.device).ok_or(MemifError::NoSuchDevice)?;
        let deq = match device.region.dequeue(QueueId::CompletionErr)? {
            Some(d) => Some(d),
            None => device.region.dequeue(QueueId::CompletionOk)?,
        };
        sys.meter.charge(Context::App, sys.cost.queue_op);
        match deq {
            Some(d) => {
                dev(sys, self.device).region.free_slot(d.slot)?;
                Ok(Some(Completion {
                    req_id: ReqId(d.req.id),
                    status: CompletionStatus(d.req.status),
                    user_data: d.req.user_data,
                    kind: d.req.kind,
                    bytes: d.req.len_bytes(),
                }))
            }
            None => Ok(None),
        }
    }

    /// `poll()`: runs `waker` as soon as a completion is (or becomes)
    /// available — immediately if one is already queued, otherwise when
    /// the driver posts the next notification. The application sleeps in
    /// between, burning no CPU.
    ///
    /// # Errors
    ///
    /// [`MemifError::NoSuchDevice`] if the instance has been closed.
    pub fn poll(
        &self,
        sys: &mut System,
        sim: &mut Sim<System>,
        waker: impl FnOnce(&mut System, &mut Sim<System>) + 'static,
    ) -> Result<(), MemifError> {
        self.poll_event(sys, sim, SimEvent::call(waker))
    }

    /// Event-valued `poll()`: schedules `event` when a completion is (or
    /// becomes) available. This is the typed form [`poll`](Self::poll)
    /// wraps; use it directly to keep the event log free of opaque
    /// thunks.
    ///
    /// # Errors
    ///
    /// [`MemifError::NoSuchDevice`] if the instance has been closed.
    pub fn poll_event(
        &self,
        sys: &mut System,
        sim: &mut Sim<System>,
        event: SimEvent,
    ) -> Result<(), MemifError> {
        let device = sys.device(self.device).ok_or(MemifError::NoSuchDevice)?;
        let ready = !device.region.is_empty(QueueId::CompletionErr)
            || !device.region.is_empty(QueueId::CompletionOk);
        if ready {
            sim.schedule_after(sys.cost.queue_op, event);
        } else if let Some(device) = sys.device_mut(self.device) {
            device.pollers.push(event);
        }
        Ok(())
    }
}

/// Waits on several memif instances at once — the `poll(fdset)` of
/// Figure 2 with more than one descriptor in the set. `waker` runs as
/// soon as *any* instance has (or produces) a completion; it receives
/// the ready instance. Like the syscall, this is one-shot: re-arm after
/// handling.
///
/// # Examples
///
/// ```
/// use memif::{poll_any, Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};
///
/// let mut sys = System::keystone_ii();
/// let mut sim = Sim::new();
/// let space = sys.new_space();
/// let a = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
/// let b = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
/// let va = sys.mmap(space, 4, PageSize::Small4K, NodeId(0)).unwrap();
/// b.submit(&mut sys, &mut sim, MoveSpec::migrate(va, 4, PageSize::Small4K, NodeId(1))).unwrap();
/// poll_any(&mut sys, &mut sim, &[a, b], move |sys, _sim, ready| {
///     assert_eq!(ready.device(), b.device());
///     assert!(ready.retrieve_completed(sys).unwrap().unwrap().status.is_ok());
/// }).unwrap();
/// sim.run(&mut sys);
/// ```
///
/// # Errors
///
/// [`MemifError::NoSuchDevice`] if any handle's instance has been
/// closed.
pub fn poll_any(
    sys: &mut System,
    sim: &mut Sim<System>,
    handles: &[Memif],
    waker: impl FnOnce(&mut System, &mut Sim<System>, Memif) + 'static,
) -> Result<(), MemifError> {
    use memif_lockfree::QueueId as Q;
    // Fast path: something is already queued.
    for h in handles {
        let device = sys.device(h.device()).ok_or(MemifError::NoSuchDevice)?;
        if !device.region.is_empty(Q::CompletionErr) || !device.region.is_empty(Q::CompletionOk) {
            let h = *h;
            let cost = sys.cost.queue_op;
            sim.schedule_after(cost, SimEvent::call(move |sys, sim| waker(sys, sim, h)));
            return Ok(());
        }
    }
    // Register a shared one-shot waker with every instance; whichever
    // notifies first consumes it, the rest become no-ops.
    type Waker = Box<dyn FnOnce(&mut System, &mut Sim<System>, Memif)>;
    let cell: std::rc::Rc<std::cell::RefCell<Option<Waker>>> =
        std::rc::Rc::new(std::cell::RefCell::new(Some(Box::new(waker))));
    for h in handles {
        let h = *h;
        let cell = std::rc::Rc::clone(&cell);
        h.poll(sys, sim, move |sys, sim| {
            if let Some(w) = cell.borrow_mut().take() {
                w(sys, sim, h);
            }
        })?;
    }
    Ok(())
}

impl System {
    /// A CPU store to `vaddr` in `space` with proceed-and-recover
    /// semantics: a write-protection trap invokes the memif fault
    /// handler (aborting the covering migration) and the store retries
    /// against the restored mapping, exactly as on real hardware.
    ///
    /// # Errors
    ///
    /// Any non-recoverable [`Fault`].
    pub fn cpu_write(
        &mut self,
        sim: &mut Sim<System>,
        space: SpaceId,
        vaddr: VirtAddr,
        data: &[u8],
    ) -> Result<(), Fault> {
        match self.spaces[space.0].access(vaddr, AccessKind::Write) {
            Ok(pa) => {
                self.phys.write(pa, data);
                Ok(())
            }
            Err(Fault::WriteProtected(va)) => {
                if driver::fault::handle_write_fault(self, sim, space, va) {
                    let pa = self.spaces[space.0].access(vaddr, AccessKind::Write)?;
                    self.phys.write(pa, data);
                    Ok(())
                } else {
                    Err(Fault::WriteProtected(va))
                }
            }
            Err(other) => Err(other),
        }
    }
}
