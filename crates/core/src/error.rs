//! Error types of the memif service.

use memif_lockfree::RegionError;
use memif_mm::VirtAddr;

/// Errors surfaced by the memif user API and driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemifError {
    /// No free request slots: too many requests in flight for the
    /// region's capacity.
    Exhausted,
    /// The device id does not name an open instance.
    NoSuchDevice,
    /// The calling process does not own the device (one memif device is
    /// owned by one process, §4.2).
    NotOwner,
    /// The device still has queued or in-flight work (close refused).
    Busy,
    /// A request region is not covered by one mapped VMA.
    BadRange(VirtAddr),
    /// A request address is not aligned to its page size.
    Unaligned(VirtAddr),
    /// The request's page size disagrees with the region's VMA.
    PageSizeMismatch(VirtAddr),
    /// The migration destination node is unknown or offline.
    BadNode(u16),
    /// A request covers zero pages.
    EmptyRequest,
    /// Source and destination of a replication overlap.
    Overlap,
    /// A shared-region slot failed validation.
    Region(RegionError),
    /// A DMA transfer exceeded its watchdog deadline and was declared
    /// lost (its completion interrupt never arrived).
    Timeout,
    /// The DMA engine failed the transfer and every retry was exhausted.
    DmaFailed,
    /// The request was served, but by the degraded CPU-copy path rather
    /// than the DMA engine.
    Degraded,
}

impl From<RegionError> for MemifError {
    fn from(e: RegionError) -> Self {
        match e {
            RegionError::Exhausted => MemifError::Exhausted,
            other => MemifError::Region(other),
        }
    }
}

impl std::fmt::Display for MemifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemifError::Exhausted => f.write_str("no free request slots"),
            MemifError::NoSuchDevice => f.write_str("no such memif device"),
            MemifError::NotOwner => f.write_str("device owned by another process"),
            MemifError::Busy => f.write_str("device has queued or in-flight work"),
            MemifError::BadRange(va) => write!(f, "region at {va} not mapped by one VMA"),
            MemifError::Unaligned(va) => write!(f, "address {va} unaligned for its page size"),
            MemifError::PageSizeMismatch(va) => {
                write!(f, "request page size disagrees with the VMA at {va}")
            }
            MemifError::BadNode(n) => write!(f, "unknown destination node {n}"),
            MemifError::EmptyRequest => f.write_str("request covers zero pages"),
            MemifError::Overlap => f.write_str("replication source and destination overlap"),
            MemifError::Region(e) => write!(f, "shared region: {e}"),
            MemifError::Timeout => f.write_str("DMA transfer watchdog expired"),
            MemifError::DmaFailed => f.write_str("DMA transfer failed after all retries"),
            MemifError::Degraded => f.write_str("request served by the degraded CPU-copy path"),
        }
    }
}

impl std::error::Error for MemifError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert_eq!(
            MemifError::from(RegionError::Exhausted),
            MemifError::Exhausted
        );
        let e = MemifError::from(RegionError::InvalidSlot(9));
        assert!(matches!(e, MemifError::Region(_)));
        assert!(!MemifError::Overlap.to_string().is_empty());
        assert!(MemifError::BadRange(VirtAddr::new(0x123))
            .to_string()
            .contains("0x123"));
        for e in [
            MemifError::Timeout,
            MemifError::DmaFailed,
            MemifError::Degraded,
        ] {
            assert!(!e.to_string().is_empty());
            let as_std: &dyn std::error::Error = &e;
            assert!(as_std.source().is_none());
        }
    }
}
