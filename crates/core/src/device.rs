//! memif device instances and their driver-side state.
//!
//! Each open device corresponds to one `/dev/memifN` file in the paper:
//! it is owned by exactly one process, holds the shared lock-free region
//! (Figure 3), and carries the driver bookkeeping — the in-flight
//! transfer, statistics, completion log, and registered pollers.

use std::collections::{BTreeMap, HashMap};

use memif_hwsim::dma::TransferId;
use memif_hwsim::{PhaseBreakdown, PhysAddr, SimTime};
use memif_lockfree::{MovReq, MoveKind, MoveStatus, Region};
use memif_mm::{PageSize, Pte, VirtAddr};

use crate::config::MemifConfig;
use crate::error::MemifError;
use crate::event::SimEvent;
use crate::system::{SpaceId, System};

/// Handle to an open memif device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub usize);

/// One entry of the driver's completion log (the raw material for the
/// latency and throughput figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionRecord {
    /// Request id.
    pub req_id: u64,
    /// Replication or migration.
    pub kind: MoveKind,
    /// Bytes the request covered.
    pub bytes: u64,
    /// When the application submitted it.
    pub submitted_at: SimTime,
    /// When its DMA transfer started (`None` if rejected before launch).
    pub dma_started_at: Option<SimTime>,
    /// When the completion notification was enqueued.
    pub completed_at: SimTime,
    /// Terminal status.
    pub status: MoveStatus,
}

impl CompletionRecord {
    /// Submission-to-notification latency.
    #[must_use]
    pub fn latency(&self) -> memif_hwsim::SimDuration {
        self.completed_at.since(self.submitted_at)
    }
}

/// Driver activity counters for one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Requests submitted by the application.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with a failure status.
    pub failed: u64,
    /// `ioctl(MOV_ONE)` kick-start syscalls made.
    pub ioctls: u64,
    /// Completions taken through the interrupt path.
    pub interrupts: u64,
    /// Completions taken through the kernel thread's polling mode.
    pub polled: u64,
    /// Kernel-thread wakeups.
    pub kthread_wakeups: u64,
    /// Pages whose Release CAS detected a race.
    pub races_detected: u64,
    /// Migrations aborted by the proceed-and-recover fault handler.
    pub aborts: u64,
    /// Watchdog expiries: transfers declared lost after the deadline.
    pub timeouts: u64,
    /// DMA error interrupts taken (mid-flight engine failures).
    pub dma_errors: u64,
    /// DMA re-issues after an error, timeout, or chaos exhaustion.
    pub retries: u64,
    /// Requests that degraded to the costed CPU-copy path after
    /// exhausting their DMA retries.
    pub fallbacks: u64,
    /// Bytes successfully moved.
    pub bytes_moved: u64,
    /// Requests issued as part of a multi-request chained batch (counts
    /// every request in a batch of two or more, never solo launches).
    pub requests_batched: u64,
    /// Scatter-gather segments eliminated by merging physically
    /// contiguous neighbors into one descriptor.
    pub segments_coalesced: u64,
    /// PaRAM descriptors actually programmed (full or reuse-patched),
    /// across first launches and retries.
    pub descriptors_written: u64,
    /// Uncached descriptor field writes avoided by coalescing
    /// (eliminated segments × the PaRAM set's field count).
    pub descriptor_writes_saved: u64,
    /// Requests held back at issue because their address range overlaps
    /// a still-in-flight request (same-region hazard guard).
    pub requests_deferred: u64,
    /// The subset of `requests_deferred` whose conflicting in-flight
    /// request was issued by a *different* shard — overlaps the
    /// region-affinity routing could not co-locate, caught by the
    /// cross-shard span index. Always 0 at `issue_shards = 1`.
    pub cross_shard_deferred: u64,
    /// Write-ahead journal records appended for this device's requests
    /// (0 unless the device was opened with `journal = true`).
    pub journal_records: u64,
    /// Journaled requests that were in flight at a crash and terminated
    /// by [`crate::System::recover`] (`rolled_back + redriven`).
    pub recovered_requests: u64,
    /// Recovered requests rolled back to their original mapping (sealed
    /// `Aborted`: the payload had not reached the destination).
    pub rolled_back: u64,
    /// Recovered requests rolled forward to completion (sealed `Done`:
    /// the payload was already in place, only the release was lost).
    pub redriven: u64,
    /// Driver cost per phase (Figure 6 columns).
    pub phases: PhaseBreakdown,
    /// Successful migrations whose pages landed *on* each node, keyed by
    /// node id (the per-tier `moves_in` of `stats --json`).
    pub node_moves_in: BTreeMap<u16, u64>,
    /// Successful migrations whose pages left each node.
    pub node_moves_out: BTreeMap<u16, u64>,
}

/// Per-page migration bookkeeping carried across the DMA window.
#[derive(Debug, Clone)]
pub(crate) struct PagePlan {
    pub vaddr: VirtAddr,
    pub old_frame: PhysAddr,
    pub new_frame: PhysAddr,
    /// The entry found before Remap (for proceed-and-recover restore).
    pub original: Pte,
    /// The entry installed by Remap (semi-final / migration entry).
    pub installed: Pte,
    /// The entry Release swaps in on success.
    pub final_pte: Pte,
    /// Mappings of the same frame in *other* address spaces (shared
    /// pages, §6.7). During the transfer they hold migration entries;
    /// Release rewrites them to the new frame.
    pub remote: Vec<(crate::system::SpaceId, VirtAddr)>,
}

/// An in-flight request. Up to `pipeline_depth` coexist per device: the
/// kernel thread prepares the next request while the previous transfer
/// is still on the engine.
#[derive(Debug)]
pub(crate) struct Inflight {
    /// Driver-internal identity (find-by-token across events).
    pub token: u64,
    pub req: MovReq,
    pub slot: memif_lockfree::SlotIndex,
    /// Set once the DMA transfer is launched.
    pub transfer: Option<TransferId>,
    /// The transfer-controller channel the launch was admitted onto.
    /// Taken (exactly once) at the release point, so every terminal
    /// path frees the controller slot without double-releasing.
    pub tc: Option<usize>,
    /// The programmed transfer, consumed at launch time.
    pub cfg: Option<memif_hwsim::dma::ConfiguredTransfer>,
    pub segments: Vec<memif_hwsim::dma::SgSegment>,
    pub pages: Vec<PagePlan>,
    pub page_size: PageSize,
    pub interrupt_mode: bool,
    /// When the DMA transfer started.
    pub dma_started_at: Option<SimTime>,
    /// The transfer finished; Release is pending. The request stays
    /// registered so a trapping write can still abort it, but it no
    /// longer occupies the pipeline (the engine is free).
    pub completed: bool,
    /// DMA issues consumed so far (0 = first attempt). Drives the
    /// bounded-retry/backoff policy under fault injection.
    pub attempt: u32,
    /// The armed per-request watchdog event, cancelled on completion.
    /// `None` on the fault-free path (watchdogs are chaos-only).
    pub watchdog: Option<memif_hwsim::EventId>,
    /// Tokens of the member requests riding this request's chained
    /// scatter-gather launch, in chain order. Non-empty only on a batch
    /// leader while the combined transfer is outstanding; completion or
    /// failure disbands the batch.
    pub batch_members: Vec<u64>,
    /// For a batch member: the token of the leader whose transfer
    /// carries this request's segments.
    pub batch_leader: Option<u64>,
    /// Byte offset of this request's first segment within the launched
    /// chain (0 for solo requests and leaders). A mid-chain DMA error
    /// reporting `bytes_done` completed exactly the requests whose
    /// `chain_offset + own bytes <= bytes_done`.
    pub chain_offset: u64,
    /// The issue shard whose worker planned and launched this request;
    /// its release/poll work returns to the same worker's CPU.
    pub shard: usize,
}

/// Reusable per-device working buffers for request planning. Taken out
/// of the device for the duration of one plan (sidestepping borrow
/// conflicts with the address-space walks) and put back afterwards, so
/// steady-state planning allocates nothing beyond the exact-size
/// vectors that outlive the plan on the in-flight record.
#[derive(Debug, Default)]
pub(crate) struct PlanScratch {
    /// Gang-lookup results (migration source / replication source).
    pub ptes: Vec<Option<Pte>>,
    /// Gang-lookup results for replication's destination region.
    pub dst_ptes: Vec<Option<Pte>>,
    /// Scatter-gather build area; coalescing runs in place here before
    /// the exact-size copy that rides the in-flight record.
    pub segments: Vec<memif_hwsim::dma::SgSegment>,
}

/// Per-shard kernel-worker state. Each issue shard owns one worker: its
/// own CPU-occupancy model, deferred FIFO, and planning scratch, so S
/// shards prepare requests on S simulated CPUs concurrently while still
/// contending for the shared transfer controllers and descriptor pool.
#[derive(Debug, Default)]
pub(crate) struct IssueShard {
    /// Dequeued requests parked because their address range overlaps a
    /// still-in-flight request: planning them now would overwrite the
    /// in-flight remap's semi-final PTEs and turn a driver-visible
    /// ordering hazard into a spurious `Raced`. Re-examined (FIFO) every
    /// worker round; a parked request issues once its conflict retires.
    pub deferred: Vec<memif_lockfree::Dequeued>,
    /// Planning scratch buffers, reused across this shard's requests.
    pub scratch: PlanScratch,
    /// This shard's worker CPU is occupied until this instant (a worker
    /// prepares requests one at a time even when transfers overlap).
    pub busy_until: SimTime,
    /// Instant of the last wakeup counted in `stats.kthread_wakeups`.
    /// Several `KthreadRun` events can land on one shard at the same
    /// instant (a retire wake colliding with a peer wake); on real
    /// hardware `wake_up()` on an already-running thread is a no-op, so
    /// the counter must record one wakeup per instant, not per event.
    pub last_counted_wakeup: Option<SimTime>,
}

/// An open memif device.
pub struct MemifDevice {
    /// Device id.
    pub id: DeviceId,
    /// Owning process.
    pub owner: SpaceId,
    /// Instance configuration.
    pub config: MemifConfig,
    /// The shared lock-free region (Figure 3).
    pub region: Region,
    /// Driver counters.
    pub stats: DriverStats,
    /// Completion log.
    pub log: Vec<CompletionRecord>,
    pub(crate) inflight: Vec<Inflight>,
    /// Per-shard worker state; length = `config.issue_shards` (min 1).
    pub(crate) shards: Vec<IssueShard>,
    /// Byte spans of every in-flight request (source, plus replication
    /// destination), device-wide. The issue-time hazard check consults
    /// this instead of rescanning `inflight`, which also makes it catch
    /// overlaps across shards.
    pub(crate) spans: memif_lockfree::InflightIndex,
    pub(crate) next_req_id: u64,
    pub(crate) next_token: u64,
    pub(crate) submit_times: HashMap<u64, SimTime>,
    /// Source/destination node of each planned migration, keyed by
    /// request id; consumed at retirement to credit the per-node move
    /// counters (the plan knows the source node, the retire site no
    /// longer does).
    pub(crate) routes: HashMap<u64, (u16, u16)>,
    pub(crate) pollers: Vec<SimEvent>,
}

impl std::fmt::Debug for MemifDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemifDevice")
            .field("id", &self.id)
            .field("owner", &self.owner)
            .field("inflight", &self.inflight.len())
            .field("pollers", &self.pollers.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemifDevice {
    pub(crate) fn new(
        id: DeviceId,
        owner: SpaceId,
        config: MemifConfig,
    ) -> Result<Self, MemifError> {
        let shard_count = config.issue_shards.max(1);
        let region = Region::new_sharded(config.queue_capacity, shard_count)?;
        Ok(MemifDevice {
            id,
            owner,
            config,
            region,
            stats: DriverStats::default(),
            log: Vec::new(),
            inflight: Vec::new(),
            shards: (0..shard_count).map(|_| IssueShard::default()).collect(),
            spans: memif_lockfree::InflightIndex::new(),
            next_req_id: 0,
            next_token: 0,
            submit_times: HashMap::new(),
            routes: HashMap::new(),
            pollers: Vec::new(),
        })
    }

    /// Removes the in-flight record at `index`, dropping its byte spans
    /// from the cross-shard overlap index in the same motion. Every
    /// terminal path (release, abort, failure teardown) retires records
    /// through here so the index can never leak a span.
    pub(crate) fn take_inflight(&mut self, index: usize) -> Inflight {
        let inflight = self.inflight.remove(index);
        self.spans.remove(inflight.token);
        inflight
    }

    /// The poll threshold in effect (§5.4): config override or the cost
    /// model's 512 KB default.
    #[must_use]
    pub fn poll_threshold(&self, default_bytes: u64) -> u64 {
        self.config.poll_threshold_bytes.unwrap_or(default_bytes)
    }

    /// True if the device has neither queued nor in-flight work.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        use memif_lockfree::QueueId;
        self.inflight.is_empty()
            && self.region.is_empty(QueueId::Staging)
            && self.region.is_empty(QueueId::Submission)
    }
}

impl System {
    /// The device `id`, if open.
    #[must_use]
    pub fn device(&self, id: DeviceId) -> Option<&MemifDevice> {
        self.devices.get(id.0).and_then(Option::as_ref)
    }

    /// Mutable access to device `id`, if open.
    pub fn device_mut(&mut self, id: DeviceId) -> Option<&mut MemifDevice> {
        self.devices.get_mut(id.0).and_then(Option::as_mut)
    }

    pub(crate) fn open_device(
        &mut self,
        owner: SpaceId,
        config: MemifConfig,
    ) -> Result<DeviceId, MemifError> {
        let id = DeviceId(self.devices.len());
        let dev = MemifDevice::new(id, owner, config)?;
        self.devices.push(Some(dev));
        Ok(id)
    }

    pub(crate) fn close_device(&mut self, id: DeviceId) -> Result<MemifDevice, MemifError> {
        let slot = self.devices.get_mut(id.0).ok_or(MemifError::NoSuchDevice)?;
        match slot.take() {
            Some(dev) => Ok(dev),
            None => Err(MemifError::NoSuchDevice),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_lifecycle() {
        let mut sys = System::keystone_ii();
        let space = sys.new_space();
        let id = sys.open_device(space, MemifConfig::default()).unwrap();
        assert!(sys.device(id).is_some());
        assert!(sys.device(id).unwrap().is_idle());
        let dev = sys.close_device(id).unwrap();
        assert_eq!(dev.id, id);
        assert!(sys.device(id).is_none());
        assert!(matches!(
            sys.close_device(id),
            Err(MemifError::NoSuchDevice)
        ));
    }

    #[test]
    fn poll_threshold_resolution() {
        let mut sys = System::keystone_ii();
        let space = sys.new_space();
        let id = sys.open_device(space, MemifConfig::default()).unwrap();
        assert_eq!(
            sys.device(id).unwrap().poll_threshold(512 * 1024),
            512 * 1024
        );
        let forced = MemifConfig {
            poll_threshold_bytes: Some(0),
            ..MemifConfig::default()
        };
        let id2 = sys.open_device(space, forced).unwrap();
        assert_eq!(sys.device(id2).unwrap().poll_threshold(512 * 1024), 0);
    }

    #[test]
    fn devices_have_isolated_regions() {
        let mut sys = System::keystone_ii();
        let space = sys.new_space();
        let a = sys.open_device(space, MemifConfig::default()).unwrap();
        let b = sys.open_device(space, MemifConfig::default()).unwrap();
        let slot = sys.device(a).unwrap().region.alloc_slot().unwrap();
        let _ = slot;
        assert_eq!(
            sys.device(a).unwrap().region.stats().free + 1,
            sys.device(b).unwrap().region.stats().free,
            "allocating in one device leaves the other untouched"
        );
    }
}
