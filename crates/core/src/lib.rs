//! # memif — programming heterogeneous memory asynchronously
//!
//! A library reproduction of *memif: Towards Programming Heterogeneous
//! Memory Asynchronously* (Lin & Liu, ASPLOS 2016): a protected OS
//! service for asynchronous, DMA-accelerated memory move — replication
//! and migration of virtual memory regions across the pseudo-NUMA nodes
//! of a heterogeneous memory hierarchy.
//!
//! The paper's prototype is a Linux kernel module on a TI KeyStone II
//! SoC. This crate rebuilds the complete service against simulated
//! hardware ([`memif_hwsim`]) and a from-scratch memory manager
//! ([`memif_mm`]), with the user/kernel interface running on real
//! lock-free structures ([`memif_lockfree`]), including the paper's
//! novel red–blue queue. All design elements are implemented:
//!
//! * the asynchronous user API — submit without batching, retrieve
//!   without syscalls, sleep in `poll()` (§4.1);
//! * the `SubmitRequest` flush protocol over the red–blue staging queue,
//!   with the single `ioctl(MOV_ONE)` kick-start (§4.4);
//! * gang page lookup (§5.1);
//! * lightweight race *detection* via semi-final PTEs and a young-bit
//!   CAS, plus the proceed-and-recover alternative and a Linux-style
//!   prevention mode for ablation (§5.2);
//! * minimal DMA engine reconfiguration through descriptor-chain reuse
//!   (§5.3);
//! * the three-path driver execution — syscall, interrupt, kernel
//!   thread — with the interrupt/polling mode switch at 512 KB (§5.4).
//!
//! Start with [`System`] (the simulated machine) and [`Memif`] (the
//! per-process handle); the crate-level example on [`Memif`] shows the
//! complete open → submit → poll → retrieve flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod chain;
mod config;
mod device;
mod driver;
mod error;
mod event;
mod journal;
mod recover;
mod system;

pub use api::{poll_any, Completion, CompletionStatus, Memif, MoveSpec, ReqId};
pub use chain::{ChainStep, MoveChain};
pub use config::{MemifConfig, RaceMode};
pub use device::{CompletionRecord, DeviceId, DriverStats, MemifDevice};
pub use driver::fault::handle_write_fault;
pub use error::MemifError;
pub use event::{HookId, SimEvent};
pub use journal::{JournalMilestone, JournalPage, JournalRecord, MoveJournal, RecoveryReport};
pub use system::{Resources, SpaceId, System, TierUsage, TraceEntry};

// Re-export the building blocks user code needs at the API boundary.
pub use memif_hwsim::{
    Brownout, Context, CrashPlan, CrashPoint, FaultPlan, FaultStats, NodeId, Phase, Sim,
    SimDuration, SimTime, TierRank,
};
pub use memif_lockfree::{FailReason, MoveKind, MoveStatus};
pub use memif_mm::{PageSize, VirtAddr};
