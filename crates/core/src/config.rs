//! memif instance configuration.

use memif_hwsim::SimDuration;

/// How the driver handles CPU/DMA races during migration (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RaceMode {
    /// **Proceed and fail** (the paper's default): Remap installs a
    /// semi-final PTE with the young bit set; Release CASes in the final
    /// PTE and treats a failed CAS as a program error, delivering a
    /// SEGFAULT-equivalent failure notification.
    #[default]
    DetectFail,
    /// **Proceed and recover** (the paper's alternative): migrating pages
    /// are additionally write-watched; a trapping write aborts the
    /// migration, restores the original mapping, drops the DMA transfer,
    /// and delivers an `Aborted` notification. Higher complexity and
    /// overhead, but the racing write is preserved.
    DetectRecover,
    /// **Prevent** (ablation A3): the Linux-baseline behavior grafted
    /// onto memif — install migration entries that block accessors, and
    /// pay the second PTE+TLB update in Release. Shows what the
    /// detection design buys.
    Prevent,
}

/// Per-instance tunables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemifConfig {
    /// Usable request slots in the shared region.
    pub queue_capacity: usize,
    /// Race handling for migrations.
    pub race_mode: RaceMode,
    /// Use gang page lookup (§5.1). Off = per-page vertical walks
    /// (ablation A2).
    pub gang_lookup: bool,
    /// Reuse DMA descriptor chains (§5.3). Off = full reconfiguration
    /// every transfer (ablation A1).
    pub descriptor_reuse: bool,
    /// Requests below this size complete via the kernel thread's polling
    /// mode instead of an interrupt (§5.4; the paper uses 512 KB).
    /// `None` inherits the cost model's threshold. `Some(0)` forces
    /// interrupts always; `Some(u64::MAX)` forces polling always
    /// (ablation A4).
    pub poll_threshold_bytes: Option<u64>,
    /// Maximum transfers the driver keeps in flight per device. At 2
    /// (default) the kernel thread prepares and issues the next request
    /// while the previous transfer is still on the engine — the EDMA3's
    /// multiple transfer controllers make this free — pipelining CPU
    /// work with DMA time. 1 reproduces strictly serial service
    /// (ablation A5).
    pub pipeline_depth: usize,
    /// How many times the driver re-issues a request whose DMA path
    /// failed (engine error, watchdog timeout, descriptor exhaustion
    /// under chaos) before degrading. Only consulted when a fault plan
    /// is installed; the fault-free hot path never retries this way.
    pub max_dma_retries: u32,
    /// Base backoff before a retry; attempt *k* waits
    /// `retry_backoff * 2^k`. Also the (fixed) descriptor-exhaustion
    /// backoff on the fault-free path.
    pub retry_backoff: SimDuration,
    /// Watchdog deadline multiplier: a transfer is declared lost after
    /// `expected_time * watchdog_factor + watchdog_slack`, where the
    /// expected time comes from the transfer's bytes at the engine's
    /// demand bandwidth plus the per-descriptor overhead. The watchdog
    /// is armed only when a fault plan is installed.
    pub watchdog_factor: u32,
    /// Constant slack added to every watchdog deadline (absorbs queueing
    /// behind other tenants' transfers).
    pub watchdog_slack: SimDuration,
    /// When DMA retries are exhausted, fall back to a costed CPU copy
    /// (4 µs/page-class memcpy charged to the kernel thread) instead of
    /// failing the request. Off = deliver `MoveStatus::Failed`.
    pub cpu_fallback: bool,
    /// How many compatible queued requests (same kind, same page size)
    /// the kernel thread may drain into one chained scatter-gather
    /// launch per scheduling round. The batch completes with a single
    /// interrupt whose handler fans status back out per request. 1
    /// (default) reproduces the classic one-request-per-wake issue path
    /// exactly.
    pub batch_max: usize,
    /// Merge adjacent scatter-gather segments whose source and
    /// destination frames are both physically contiguous into one larger
    /// descriptor, so descriptor-write cost is paid per merged
    /// descriptor. Off by default: the seed figures dedicate one
    /// descriptor per page.
    pub coalesce: bool,
    /// Number of issue shards: staging/submission queue pairs, each
    /// drained by its own kernel worker on its own simulated CPU.
    /// Submissions are routed by a region-affinity hash of the request's
    /// covering VMA, so requests that could overlap land on the same
    /// shard and keep per-region FIFO order; a cross-shard in-flight
    /// span index catches the residue. 1 (default) reproduces the
    /// single-queue, single-worker issue path exactly.
    pub issue_shards: usize,
    /// Write-ahead journal every issued move to persistent media so a
    /// crash mid-move is recoverable by [`crate::System::recover`].
    /// Each issue pays one `journal_write` from the cost model. Off by
    /// default: moves are volatile, exactly as the paper's prototype,
    /// and the hot path pays nothing.
    pub journal: bool,
}

impl Default for MemifConfig {
    fn default() -> Self {
        MemifConfig {
            queue_capacity: 64,
            race_mode: RaceMode::DetectFail,
            gang_lookup: true,
            descriptor_reuse: true,
            poll_threshold_bytes: None,
            pipeline_depth: 2,
            max_dma_retries: 3,
            retry_backoff: SimDuration::from_us(20),
            watchdog_factor: 8,
            watchdog_slack: SimDuration::from_us(100),
            cpu_fallback: true,
            batch_max: 1,
            coalesce: false,
            issue_shards: 1,
            journal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MemifConfig::default();
        assert_eq!(c.race_mode, RaceMode::DetectFail);
        assert!(c.gang_lookup);
        assert!(c.descriptor_reuse);
        assert_eq!(c.poll_threshold_bytes, None);
        assert!(c.queue_capacity > 0);
        assert_eq!(c.pipeline_depth, 2);
    }

    #[test]
    fn hardening_defaults() {
        let c = MemifConfig::default();
        assert_eq!(c.max_dma_retries, 3);
        assert_eq!(c.retry_backoff, SimDuration::from_us(20));
        assert_eq!(c.watchdog_factor, 8);
        assert_eq!(c.watchdog_slack, SimDuration::from_us(100));
        assert!(c.cpu_fallback);
    }

    #[test]
    fn batching_defaults_preserve_seed_behaviour() {
        let c = MemifConfig::default();
        assert_eq!(c.batch_max, 1, "one request per wake, as the seed");
        assert!(!c.coalesce, "one descriptor per page, as the seed");
    }

    #[test]
    fn sharding_default_preserves_seed_behaviour() {
        let c = MemifConfig::default();
        assert_eq!(
            c.issue_shards, 1,
            "one staging queue, one kernel worker, as the seed"
        );
    }

    #[test]
    fn journal_default_preserves_seed_behaviour() {
        let c = MemifConfig::default();
        assert!(!c.journal, "moves are volatile by default, as the seed");
    }
}
