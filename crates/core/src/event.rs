//! The typed event vocabulary of the simulated machine.
//!
//! Every continuation the driver schedules — DMA completions, launch
//! points, watchdogs, kernel-thread wakeups, brownout transitions — is a
//! [`SimEvent`] value, and [`System`]'s [`EventWorld`] implementation is
//! the single place they are interpreted. The event queue therefore
//! stores *data, not code*: a run can log every event it executes (see
//! [`System::enable_event_log`]), compare two logs byte-for-byte, and
//! replay a scenario deterministically.
//!
//! The one escape hatch is [`SimEvent::Thunk`]: applications and test
//! harnesses (not the driver) may still schedule an arbitrary one-shot
//! closure via [`SimEvent::call`]. Thunks appear in event logs as opaque
//! `"thunk"` records; all driver-internal events are fully structured.

use memif_hwsim::{
    DmaOutcome, EventWorld, FlowSystem, ResourceId, Sim, SimDuration, SimTime, TransferId,
};
use memif_lockfree::{Color, Dequeued, FailReason, MovReq, SlotIndex};

use crate::device::DeviceId;
use crate::driver::{complete, exec, kthread};
use crate::system::System;

/// A one-shot closure scheduled as an event (application/test escape
/// hatch; the driver itself schedules only structured variants).
pub type Thunk = Box<dyn FnOnce(&mut System, &mut Sim<System>)>;

/// Handle to a callback registered with [`System::register_hook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HookId(pub(crate) usize);

type HookFn = Box<dyn FnMut(&mut System, &mut Sim<System>, u64)>;

/// The registered hook callbacks (see [`System::register_hook`]). A slot
/// is `None` while its hook is executing (take–call–restore), so a hook
/// that re-enters the system never aliases itself.
#[derive(Default)]
pub(crate) struct Hooks(Vec<Option<HookFn>>);

impl std::fmt::Debug for Hooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hooks").field("len", &self.0.len()).finish()
    }
}

/// Everything that can sit on the simulated machine's event queue.
///
/// Variants map one-to-one onto the driver's continuation points
/// (§5.4's three execution paths plus the chaos-hardening machinery);
/// the names follow the driver functions they dispatch to.
pub enum SimEvent {
    /// The flow network's next-completion timer.
    FlowTick,
    /// An opaque one-shot closure ([`SimEvent::call`]).
    Thunk(Thunk),
    /// A DMA completion (or error) interrupt for `transfer`.
    DmaDone {
        /// Device whose transfer completed.
        device: DeviceId,
        /// The engine transfer.
        transfer: TransferId,
        /// How the transfer ended.
        outcome: DmaOutcome,
    },
    /// A completion interrupt injected-fault-delayed by `delay`: the
    /// bytes have arrived, the interrupt fires later.
    DmaIrqDelayed {
        /// Device whose transfer completed.
        device: DeviceId,
        /// The engine transfer.
        transfer: TransferId,
        /// How the late interrupt will report the transfer.
        outcome: DmaOutcome,
        /// Injected interrupt latency.
        delay: SimDuration,
    },
    /// A completion interrupt silently lost to fault injection: the
    /// bytes arrived but the driver is never told (only the watchdog
    /// can reclaim the transfer). Dispatching this is a no-op; it exists
    /// so the loss is visible in event logs.
    DmaIrqLost {
        /// Device whose interrupt was lost.
        device: DeviceId,
        /// The engine transfer.
        transfer: TransferId,
    },
    /// Launch the programmed transfer of in-flight request `token` (ops
    /// 1–3 CPU time has elapsed).
    Launch {
        /// Owning device.
        device: DeviceId,
        /// In-flight request token.
        token: u64,
    },
    /// Re-issue a request whose previous DMA attempt failed: reprogram
    /// the chain from retained segments, then launch.
    RetryLaunch {
        /// Owning device.
        device: DeviceId,
        /// In-flight request token.
        token: u64,
    },
    /// Re-run operations 1–3 for a request that found the descriptor
    /// pool exhausted (the whole request retries after a backoff).
    ExecRetry {
        /// Owning device.
        device: DeviceId,
        /// The request's queue slot.
        slot: SlotIndex,
        /// The request.
        req: MovReq,
        /// The queue color observed at dequeue.
        color: Color,
        /// The execution context charged for the retry.
        ctx: memif_hwsim::Context,
        /// Attempt number (drives the bounded-retry budget under chaos).
        attempt: u32,
        /// The issue shard whose worker owns the retry.
        shard: usize,
    },
    /// The per-request watchdog deadline expired (chaos mode only).
    WatchdogFire {
        /// Owning device.
        device: DeviceId,
        /// In-flight request token.
        token: u64,
    },
    /// Retry budget exhausted: degrade the request to the CPU-copy path
    /// or fail it.
    DegradeOrFail {
        /// Owning device.
        device: DeviceId,
        /// In-flight request token.
        token: u64,
        /// Why the DMA path gave up.
        reason: FailReason,
    },
    /// Release + Notify for a request served by the degraded CPU-copy
    /// fallback (runs when the worker's CPU frees up).
    DegradedRelease {
        /// Owning device.
        device: DeviceId,
        /// In-flight request token.
        token: u64,
    },
    /// Release + Notify in the completion interrupt handler (§5.4
    /// interrupt path; legal because detection removed sleepable locks).
    IrqRelease {
        /// Owning device.
        device: DeviceId,
        /// In-flight request token.
        token: u64,
    },
    /// Release + Notify on the kernel thread after its timed poll sleep
    /// (§5.4 polling path).
    PollRelease {
        /// Owning device.
        device: DeviceId,
        /// In-flight request token.
        token: u64,
    },
    /// Wake one issue shard's kernel worker (counts a wakeup if the
    /// round actually runs).
    KthreadRun {
        /// Device whose worker wakes.
        device: DeviceId,
        /// The issue shard whose worker wakes (0 when unsharded).
        shard: usize,
    },
    /// The worker's continuation after preparing a request (does not
    /// re-count a wakeup).
    KthreadContinue {
        /// Device whose worker continues.
        device: DeviceId,
        /// The issue shard whose worker continues (0 when unsharded).
        shard: usize,
    },
    /// A bandwidth-brownout transition: set `resource`'s capacity.
    SetCapacity {
        /// The flow resource (a node bus).
        resource: ResourceId,
        /// The new capacity in GB/s.
        gbps: f64,
    },
    /// Invoke the registered hook `hook` with `arg` (runtime-layer
    /// continuations: stream chunk stages, swap daemon ticks).
    Hook {
        /// The registered callback.
        hook: HookId,
        /// Opaque argument interpreted by the hook.
        arg: u64,
    },
}

impl SimEvent {
    /// Wraps a one-shot closure as a schedulable event.
    pub fn call(f: impl FnOnce(&mut System, &mut Sim<System>) + 'static) -> Self {
        SimEvent::Thunk(Box::new(f))
    }

    /// One JSON-lines record describing this event at instant `now`
    /// (the event-log format of `memifctl --trace-events`). Hand-rolled
    /// so the format is stable and dependency-free; every value is
    /// deterministic across runs of the same scenario.
    #[must_use]
    pub fn to_record(&self, now: SimTime) -> String {
        let t = now.as_ns();
        match self {
            SimEvent::FlowTick => format!("{{\"t\":{t},\"type\":\"flow_tick\"}}"),
            SimEvent::Thunk(_) => format!("{{\"t\":{t},\"type\":\"thunk\"}}"),
            SimEvent::DmaDone {
                device,
                transfer,
                outcome,
            } => format!(
                "{{\"t\":{t},\"type\":\"dma_done\",\"device\":{},\"transfer\":{},\"outcome\":{}}}",
                device.0,
                transfer.as_u64(),
                outcome_json(*outcome),
            ),
            SimEvent::DmaIrqDelayed {
                device,
                transfer,
                outcome,
                delay,
            } => format!(
                "{{\"t\":{t},\"type\":\"dma_irq_delayed\",\"device\":{},\"transfer\":{},\"outcome\":{},\"delay_ns\":{}}}",
                device.0,
                transfer.as_u64(),
                outcome_json(*outcome),
                delay.as_ns(),
            ),
            SimEvent::DmaIrqLost { device, transfer } => format!(
                "{{\"t\":{t},\"type\":\"dma_irq_lost\",\"device\":{},\"transfer\":{}}}",
                device.0,
                transfer.as_u64(),
            ),
            SimEvent::Launch { device, token } => format!(
                "{{\"t\":{t},\"type\":\"launch\",\"device\":{},\"token\":{token}}}",
                device.0
            ),
            SimEvent::RetryLaunch { device, token } => format!(
                "{{\"t\":{t},\"type\":\"retry_launch\",\"device\":{},\"token\":{token}}}",
                device.0
            ),
            SimEvent::ExecRetry {
                device,
                req,
                attempt,
                shard,
                ..
            } => format!(
                "{{\"t\":{t},\"type\":\"exec_retry\",\"device\":{},\"req\":{},\"attempt\":{attempt}{}}}",
                device.0,
                req.id,
                shard_json(*shard),
            ),
            SimEvent::WatchdogFire { device, token } => format!(
                "{{\"t\":{t},\"type\":\"watchdog_fire\",\"device\":{},\"token\":{token}}}",
                device.0
            ),
            SimEvent::DegradeOrFail {
                device,
                token,
                reason,
            } => format!(
                "{{\"t\":{t},\"type\":\"degrade_or_fail\",\"device\":{},\"token\":{token},\"reason\":\"{reason:?}\"}}",
                device.0
            ),
            SimEvent::DegradedRelease { device, token } => format!(
                "{{\"t\":{t},\"type\":\"degraded_release\",\"device\":{},\"token\":{token}}}",
                device.0
            ),
            SimEvent::IrqRelease { device, token } => format!(
                "{{\"t\":{t},\"type\":\"irq_release\",\"device\":{},\"token\":{token}}}",
                device.0
            ),
            SimEvent::PollRelease { device, token } => format!(
                "{{\"t\":{t},\"type\":\"poll_release\",\"device\":{},\"token\":{token}}}",
                device.0
            ),
            SimEvent::KthreadRun { device, shard } => format!(
                "{{\"t\":{t},\"type\":\"kthread_run\",\"device\":{}{}}}",
                device.0,
                shard_json(*shard),
            ),
            SimEvent::KthreadContinue { device, shard } => format!(
                "{{\"t\":{t},\"type\":\"kthread_continue\",\"device\":{}{}}}",
                device.0,
                shard_json(*shard),
            ),
            SimEvent::SetCapacity { resource, gbps } => format!(
                "{{\"t\":{t},\"type\":\"set_capacity\",\"resource\":{},\"gbps\":{gbps}}}",
                resource.index()
            ),
            SimEvent::Hook { hook, arg } => format!(
                "{{\"t\":{t},\"type\":\"hook\",\"hook\":{},\"arg\":{arg}}}",
                hook.0
            ),
        }
    }
}

/// Shard-index record fragment. Shard 0 is omitted so unsharded runs
/// (and replays of pre-sharding traces) keep the exact seed record
/// shapes, byte for byte.
fn shard_json(shard: usize) -> String {
    if shard == 0 {
        String::new()
    } else {
        format!(",\"shard\":{shard}")
    }
}

fn outcome_json(outcome: DmaOutcome) -> String {
    match outcome {
        DmaOutcome::Completed => "\"completed\"".to_owned(),
        DmaOutcome::Error { bytes_done } => {
            format!("{{\"error\":{{\"bytes_done\":{bytes_done}}}}}")
        }
    }
}

impl std::fmt::Debug for SimEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The JSON record minus the timestamp is the best single-line
        // description we have; reuse it.
        f.write_str(&self.to_record(SimTime::ZERO))
    }
}

impl EventWorld for System {
    type Event = SimEvent;

    /// The central dispatcher: the only place scheduled events are
    /// interpreted. Events against a closed device are dropped here
    /// (drivers may race a close with their own stale continuations).
    fn dispatch(&mut self, sim: &mut Sim<System>, event: SimEvent) {
        if self.crashed {
            // The world has halted: volatile events die undelivered (and
            // unlogged — they never happened as far as the record shows).
            return;
        }
        if self.event_log.is_some() {
            let line = event.to_record(sim.now());
            if let Some(log) = &mut self.event_log {
                log.push(line);
            }
        }
        match event {
            SimEvent::FlowTick => FlowSystem::on_tick(self, sim, |sys| &mut sys.flows),
            SimEvent::Thunk(f) => f(self, sim),
            SimEvent::DmaDone {
                device,
                transfer,
                outcome,
            } => {
                if self.device(device).is_some() {
                    complete::on_dma_complete(self, sim, device, transfer, outcome);
                }
            }
            SimEvent::DmaIrqDelayed {
                device,
                transfer,
                outcome,
                delay,
            } => {
                sim.schedule_after(
                    delay,
                    SimEvent::DmaDone {
                        device,
                        transfer,
                        outcome,
                    },
                );
            }
            SimEvent::DmaIrqLost { .. } => {}
            SimEvent::Launch { device, token } => exec::launch(self, sim, device, token),
            SimEvent::RetryLaunch { device, token } => {
                exec::retry_launch(self, sim, device, token);
            }
            SimEvent::ExecRetry {
                device,
                slot,
                req,
                color,
                ctx,
                attempt,
                shard,
            } => {
                if self.device(device).is_some() {
                    let deq = Dequeued { slot, req, color };
                    let _ = exec::execute_attempt(self, sim, device, deq, ctx, attempt, shard);
                }
            }
            SimEvent::WatchdogFire { device, token } => {
                exec::watchdog_fire(self, sim, device, token);
            }
            SimEvent::DegradeOrFail {
                device,
                token,
                reason,
            } => {
                if self.device(device).is_some() {
                    exec::degrade_or_fail(self, sim, device, token, reason);
                }
            }
            SimEvent::DegradedRelease { device, token } => {
                exec::degraded_release(self, sim, device, token);
            }
            SimEvent::IrqRelease { device, token } => {
                complete::irq_release(self, sim, device, token);
            }
            SimEvent::PollRelease { device, token } => {
                complete::poll_release(self, sim, device, token);
            }
            SimEvent::KthreadRun { device, shard } => kthread::run(self, sim, device, shard),
            SimEvent::KthreadContinue { device, shard } => {
                kthread::run_continue(self, sim, device, shard);
            }
            SimEvent::SetCapacity { resource, gbps } => {
                self.flows.set_capacity(sim, resource, gbps);
            }
            SimEvent::Hook { hook, arg } => {
                let Some(slot) = self.hooks.0.get_mut(hook.0) else {
                    return;
                };
                let Some(mut f) = slot.take() else {
                    return; // the hook re-entered itself; drop the nested call
                };
                f(self, sim, arg);
                if let Some(slot) = self.hooks.0.get_mut(hook.0) {
                    if slot.is_none() {
                        *slot = Some(f);
                    }
                }
            }
        }
    }
}

impl System {
    /// Registers a reusable callback and returns its handle; schedule it
    /// with [`SimEvent::Hook`]. Unlike a [`SimEvent::call`] thunk a hook
    /// is `FnMut` and survives any number of invocations, so the runtime
    /// layer can drive multi-stage state machines (streaming chunks,
    /// swap-daemon scans) through a fixed, loggable event shape.
    pub fn register_hook(
        &mut self,
        f: impl FnMut(&mut System, &mut Sim<System>, u64) + 'static,
    ) -> HookId {
        self.hooks.0.push(Some(Box::new(f)));
        HookId(self.hooks.0.len() - 1)
    }

    /// Starts recording every dispatched event as a JSON-lines record.
    /// Costs nothing when off (the default).
    pub fn enable_event_log(&mut self) {
        self.event_log = Some(Vec::new());
    }

    /// The recorded event log, if enabled.
    #[must_use]
    pub fn event_log(&self) -> &[String] {
        self.event_log.as_deref().unwrap_or(&[])
    }

    /// Takes the recorded event log, leaving recording enabled.
    pub fn take_event_log(&mut self) -> Vec<String> {
        match &mut self.event_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }
}
