//! The NUMA-migration syscall surface: `mbind`/`move_pages`-style
//! batched, synchronous entry points.
//!
//! The comparison app of §6.4 submits move requests through these:
//! either one request per syscall (low latency, high crossing overhead)
//! or several batched into one (amortized overhead, but every batched
//! request completes only when its turn inside the long syscall comes,
//! and the *caller* regains the CPU only at the very end).

use memif_hwsim::{
    Context, CostModel, NodeId, Phase, PhaseBreakdown, PhysMem, SimDuration, UsageMeter,
};
use memif_mm::{AddressSpace, FrameAllocator, PageSize, VirtAddr};

use crate::migrate::{migrate_region, MigrateOutcome, PageFailure};

/// One region to migrate, as named by the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionRequest {
    /// First virtual address (page aligned).
    pub start: VirtAddr,
    /// Pages to move.
    pub pages: u32,
    /// Page granularity.
    pub page_size: PageSize,
    /// Destination node.
    pub dst_node: NodeId,
}

/// Result of one batched migration syscall.
#[derive(Debug, Clone, Default)]
pub struct SyscallOutcome {
    /// Wall/CPU time of the whole syscall (they coincide: the baseline is
    /// synchronous and CPU-bound).
    pub duration: SimDuration,
    /// When each batched request finished, relative to syscall entry.
    /// A request's *latency* as the application perceives it is the
    /// syscall-exit time, but this is when its pages became resident.
    pub completion_offsets: Vec<SimDuration>,
    /// Pages moved across all requests.
    pub moved: u32,
    /// Per-page failures across all requests.
    pub failed: Vec<PageFailure>,
    /// Phase breakdown including the syscall crossing.
    pub phases: PhaseBreakdown,
}

/// Executes one `mbind`-style syscall migrating every region in
/// `requests`, in order, on the caller's CPU. Charges the crossing and
/// all per-page work to `meter` under [`Context::Syscall`].
pub fn mbind(
    space: &mut AddressSpace,
    alloc: &mut FrameAllocator,
    phys: &mut PhysMem,
    cost: &CostModel,
    meter: &mut UsageMeter,
    requests: &[RegionRequest],
) -> SyscallOutcome {
    let mut out = SyscallOutcome::default();
    let mut elapsed = cost.syscall;
    out.phases.add(Phase::Interface, cost.syscall);
    for req in requests {
        let MigrateOutcome {
            moved,
            failed,
            cpu_time,
            phases,
        } = migrate_region(
            space,
            alloc,
            phys,
            cost,
            req.start,
            req.pages,
            req.page_size,
            req.dst_node,
        );
        elapsed += cpu_time;
        out.completion_offsets.push(elapsed);
        out.moved += moved;
        out.failed.extend(failed);
        out.phases.merge(&phases);
    }
    out.duration = elapsed;
    meter.charge(Context::Syscall, elapsed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif_hwsim::Topology;

    fn setup() -> (AddressSpace, FrameAllocator, PhysMem, CostModel, UsageMeter) {
        let mut topo = Topology::keystone_ii();
        topo.complete_boot();
        (
            AddressSpace::new(),
            FrameAllocator::new(&topo),
            PhysMem::new(),
            CostModel::keystone_ii(),
            UsageMeter::new(),
        )
    }

    fn region(space: &mut AddressSpace, alloc: &mut FrameAllocator, pages: u32) -> RegionRequest {
        let start = space
            .mmap_anonymous(alloc, pages, PageSize::Small4K, NodeId(0))
            .unwrap();
        RegionRequest {
            start,
            pages,
            page_size: PageSize::Small4K,
            dst_node: NodeId(1),
        }
    }

    #[test]
    fn batching_amortizes_one_crossing() {
        let (mut space, mut alloc, mut phys, cost, mut meter) = setup();
        let reqs: Vec<_> = (0..4).map(|_| region(&mut space, &mut alloc, 16)).collect();
        let out = mbind(&mut space, &mut alloc, &mut phys, &cost, &mut meter, &reqs);
        assert_eq!(out.moved, 64);
        assert_eq!(
            out.phases.get(Phase::Interface),
            cost.syscall,
            "one crossing for the batch"
        );
        assert_eq!(out.completion_offsets.len(), 4);
    }

    #[test]
    fn batched_requests_complete_serially() {
        let (mut space, mut alloc, mut phys, cost, mut meter) = setup();
        let reqs: Vec<_> = (0..3).map(|_| region(&mut space, &mut alloc, 16)).collect();
        let out = mbind(&mut space, &mut alloc, &mut phys, &cost, &mut meter, &reqs);
        assert!(out.completion_offsets[0] < out.completion_offsets[1]);
        assert!(out.completion_offsets[1] < out.completion_offsets[2]);
        assert_eq!(*out.completion_offsets.last().unwrap(), out.duration);
        // Roughly equal spacing: same work per request.
        let gap1 = out.completion_offsets[1].saturating_sub(out.completion_offsets[0]);
        let gap2 = out.completion_offsets[2].saturating_sub(out.completion_offsets[1]);
        assert_eq!(gap1, gap2);
    }

    #[test]
    fn cpu_meter_charged_in_syscall_context() {
        let (mut space, mut alloc, mut phys, cost, mut meter) = setup();
        let reqs = [region(&mut space, &mut alloc, 8)];
        let out = mbind(&mut space, &mut alloc, &mut phys, &cost, &mut meter, &reqs);
        assert_eq!(
            meter.busy(Context::Syscall),
            out.duration,
            "fully CPU-bound"
        );
        assert_eq!(meter.cpu_busy(), out.duration);
    }

    #[test]
    fn empty_batch_costs_one_crossing() {
        let (mut space, mut alloc, mut phys, cost, mut meter) = setup();
        let out = mbind(&mut space, &mut alloc, &mut phys, &cost, &mut meter, &[]);
        assert_eq!(out.duration, cost.syscall);
        assert_eq!(out.moved, 0);
    }
}
