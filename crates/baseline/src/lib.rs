//! The comparator: Linux page migration for NUMA, as of Linux 3.10.
//!
//! The memif paper's baseline throughout §6 is the kernel's synchronous
//! page-migration path driven through `mbind`/`move_pages`, plus the
//! `migspeed` utility from `numactl` for throughput runs. This crate
//! rebuilds that stack over the same [`memif_mm`] substrate memif uses,
//! with the *baseline* column of Table 1 as the per-page workflow:
//! per-page table walks, migration-entry race prevention with two
//! PTE+TLB updates per page, CPU byte copy, and cache maintenance.
//!
//! Keeping baseline and memif on identical substrates and cost constants
//! means every measured difference comes from the *designs* — interface
//! asynchrony, gang lookup, race detection, DMA offload, descriptor
//! reuse — not from modeling asymmetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod migrate;
pub mod migspeed;
pub mod syscalls;

pub use migrate::{migrate_region, MigrateOutcome, PageFailure};
pub use migspeed::{run_migspeed, MigspeedConfig, MigspeedReport};
pub use syscalls::{mbind, RegionRequest, SyscallOutcome};
