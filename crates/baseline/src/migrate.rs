//! The Linux page-migration workflow (Table 1, baseline column).
//!
//! Faithfully sequenced after `migrate_pages()` in Linux 3.10, the kernel
//! the paper built against, at the granularity the paper models:
//!
//! 1. **Prep** — for *each page*, look up the physical page descriptor
//!    from the virtual address (a full table walk per page — no gang
//!    lookup);
//! 2. **Remap** — allocate a page on the destination node and replace the
//!    PTE with a special *migration entry* so "any process trying to
//!    access the page will be blocked until the migration ends" (race
//!    *prevention*); flush the TLB;
//! 3. **Copy** — the CPU copies the bytes (≈1 GB/s effective) and
//!    performs cache maintenance;
//! 4. **Release** — replace the migration entry with the final PTE,
//!    flush the TLB again, and free the old page.
//!
//! Everything is synchronous and CPU-bound: the caller burns every
//! nanosecond this module accounts.

use memif_hwsim::{CostModel, NodeId, Phase, PhaseBreakdown, PhysMem, SimDuration};
use memif_mm::{AddressSpace, FrameAllocator, PageSize, Pte, VirtAddr};

/// Why a page failed to migrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFailure {
    /// The virtual page had no present mapping.
    NotPresent(VirtAddr),
    /// The destination node could not supply a page.
    OutOfMemory(VirtAddr),
}

/// Result of migrating one virtual region.
#[derive(Debug, Clone, Default)]
pub struct MigrateOutcome {
    /// Pages successfully moved.
    pub moved: u32,
    /// Pages that failed (with reasons).
    pub failed: Vec<PageFailure>,
    /// Total CPU time consumed.
    pub cpu_time: SimDuration,
    /// Cost per driver phase (Figure 6 columns).
    pub phases: PhaseBreakdown,
}

/// Migrates `pages` pages of `page_size` starting at `start` to
/// `dst_node`, synchronously, on the caller's CPU.
///
/// Pages already resident on `dst_node` are still moved (matching
/// `MPOL_MF_MOVE` behavior with a forced destination — and matching what
/// `migspeed` measures). Pages that fail are skipped, the rest proceed.
#[allow(clippy::too_many_arguments)]
pub fn migrate_region(
    space: &mut AddressSpace,
    alloc: &mut FrameAllocator,
    phys: &mut PhysMem,
    cost: &CostModel,
    start: VirtAddr,
    pages: u32,
    page_size: PageSize,
    dst_node: NodeId,
) -> MigrateOutcome {
    let mut out = MigrateOutcome::default();
    for i in 0..pages {
        let vaddr = start.offset(u64::from(i) * page_size.bytes());
        migrate_one(
            space, alloc, phys, cost, vaddr, page_size, dst_node, &mut out,
        );
    }
    out.cpu_time = out.phases.total();
    out
}

#[allow(clippy::too_many_arguments)]
fn migrate_one(
    space: &mut AddressSpace,
    alloc: &mut FrameAllocator,
    phys: &mut PhysMem,
    cost: &CostModel,
    vaddr: VirtAddr,
    page_size: PageSize,
    dst_node: NodeId,
    out: &mut MigrateOutcome,
) {
    let bytes = page_size.bytes();

    // 1. Prep: per-page vertical walk + descriptor bookkeeping.
    let (pte, _) = space.table().lookup(vaddr, page_size);
    out.phases
        .add(Phase::Prep, cost.pt_walk_vertical + cost.page_bookkeeping);
    let old = match pte.filter(|p| p.is_present()) {
        Some(p) => p,
        None => {
            out.failed.push(PageFailure::NotPresent(vaddr));
            return;
        }
    };

    // 2. Remap: allocate on destination, install the migration entry,
    //    flush the TLB so no stale translation survives.
    let new_frame = match alloc.alloc(dst_node, page_size) {
        Ok(f) => f,
        Err(_) => {
            out.failed.push(PageFailure::OutOfMemory(vaddr));
            return;
        }
    };
    space
        .table_mut()
        .replace(vaddr, Pte::migration_entry(page_size))
        .expect("entry present above");
    space.tlb_mut().flush_page(vaddr, page_size);
    out.phases
        .add(Phase::Remap, cost.page_alloc + cost.pte_update_with_flush());

    // 3. Copy: CPU memcpy plus cache maintenance. The flush is charged
    //    once per page: the paper emulates large pages by "moving extra
    //    bytes while keeping other operations unchanged" (§6.2), and we
    //    mirror that emulation.
    phys.copy(old.frame(), new_frame, bytes);
    out.phases.add(Phase::Copy, cost.cpu_copy(bytes));
    out.phases.add(Phase::CacheMaint, cost.cache_flush_page);

    // 4. Release: final PTE (young, as Linux re-installs an accessed
    //    mapping), another TLB flush, free the old page.
    let final_pte = old.with_frame(new_frame).with_young(true);
    space
        .table_mut()
        .replace(vaddr, final_pte)
        .expect("migration entry present");
    space.tlb_mut().flush_page(vaddr, page_size);
    alloc.free(old.frame()).expect("old frame was live");
    phys.discard(old.frame(), bytes);
    out.phases.add(
        Phase::Release,
        cost.pte_update_with_flush() + cost.page_free,
    );

    out.moved += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif_hwsim::Topology;

    fn setup() -> (AddressSpace, FrameAllocator, PhysMem, CostModel) {
        let mut topo = Topology::keystone_ii();
        topo.complete_boot();
        (
            AddressSpace::new(),
            FrameAllocator::new(&topo),
            PhysMem::new(),
            CostModel::keystone_ii(),
        )
    }

    #[test]
    fn migration_moves_data_and_mapping() {
        let (mut space, mut alloc, mut phys, cost) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 4, PageSize::Small4K, NodeId(0))
            .unwrap();
        let data: Vec<u8> = (0..4 * 4096u64).map(|i| (i % 253) as u8).collect();
        space.write_bytes(&mut phys, va, &data).unwrap();
        let before = phys.checksum(space.translate(va).unwrap(), 4096);

        let out = migrate_region(
            &mut space,
            &mut alloc,
            &mut phys,
            &cost,
            va,
            4,
            PageSize::Small4K,
            NodeId(1),
        );
        assert_eq!(out.moved, 4);
        assert!(out.failed.is_empty());

        let new_pa = space.translate(va).unwrap();
        assert!(new_pa.as_u64() < 0x8_0000_0000, "now backed by SRAM");
        assert_eq!(phys.checksum(new_pa, 4096), before, "bytes preserved");
        let mut back = vec![0u8; data.len()];
        space.read_bytes(&phys, va, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn per_page_cost_matches_section_2_2() {
        let (mut space, mut alloc, mut phys, cost) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 100, PageSize::Small4K, NodeId(0))
            .unwrap();
        let out = migrate_region(
            &mut space,
            &mut alloc,
            &mut phys,
            &cost,
            va,
            100,
            PageSize::Small4K,
            NodeId(1),
        );
        let per_page_us = out.cpu_time.as_us_f64() / 100.0;
        assert!(
            (13.0..17.0).contains(&per_page_us),
            "≈15 µs per page (§2.2), got {per_page_us:.2}"
        );
        let copy_us = out.phases.get(Phase::Copy).as_us_f64() / 100.0;
        assert!(
            (3.5..4.5).contains(&copy_us),
            "≈4 µs of that is byte copy, got {copy_us:.2}"
        );
    }

    #[test]
    fn old_frames_are_freed() {
        let (mut space, mut alloc, mut phys, cost) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 8, PageSize::Small4K, NodeId(0))
            .unwrap();
        let live_before = alloc.live_frames();
        let _ = migrate_region(
            &mut space,
            &mut alloc,
            &mut phys,
            &cost,
            va,
            8,
            PageSize::Small4K,
            NodeId(1),
        );
        assert_eq!(
            alloc.live_frames(),
            live_before,
            "one-for-one frame exchange"
        );
        assert_eq!(alloc.free_bytes(NodeId(1)), (6 << 20) - 8 * 4096);
    }

    #[test]
    fn unmapped_pages_fail_gracefully() {
        let (mut space, mut alloc, mut phys, cost) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 2, PageSize::Small4K, NodeId(0))
            .unwrap();
        // Migrate a 4-page range where only 2 exist.
        let out = migrate_region(
            &mut space,
            &mut alloc,
            &mut phys,
            &cost,
            va,
            4,
            PageSize::Small4K,
            NodeId(1),
        );
        assert_eq!(out.moved, 2);
        assert_eq!(out.failed.len(), 2);
        assert!(matches!(out.failed[0], PageFailure::NotPresent(_)));
    }

    #[test]
    fn destination_exhaustion_fails_pages() {
        let (mut space, mut alloc, mut phys, cost) = setup();
        // 1537 pages cannot fit in the 1536-page SRAM.
        let va = space
            .mmap_anonymous(&mut alloc, 1_537, PageSize::Small4K, NodeId(0))
            .unwrap();
        let out = migrate_region(
            &mut space,
            &mut alloc,
            &mut phys,
            &cost,
            va,
            1_537,
            PageSize::Small4K,
            NodeId(1),
        );
        assert_eq!(out.moved, 1_536);
        assert_eq!(out.failed.len(), 1);
        assert!(matches!(out.failed[0], PageFailure::OutOfMemory(_)));
    }

    #[test]
    fn large_pages_cost_more_copy() {
        let (mut space, mut alloc, mut phys, cost) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 1, PageSize::Large2M, NodeId(0))
            .unwrap();
        let out = migrate_region(
            &mut space,
            &mut alloc,
            &mut phys,
            &cost,
            va,
            1,
            PageSize::Large2M,
            NodeId(1),
        );
        assert_eq!(out.moved, 1);
        // 2 MiB at 1 GB/s ≈ 2.1 ms of CPU copy: dominates everything.
        assert!(out.phases.get(Phase::Copy) > out.phases.overhead());
    }

    #[test]
    fn tlb_flushed_twice_per_page() {
        let (mut space, mut alloc, mut phys, cost) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 5, PageSize::Small4K, NodeId(0))
            .unwrap();
        let before = space.tlb().stats().page_flushes;
        let _ = migrate_region(
            &mut space,
            &mut alloc,
            &mut phys,
            &cost,
            va,
            5,
            PageSize::Small4K,
            NodeId(1),
        );
        assert_eq!(
            space.tlb().stats().page_flushes - before,
            10,
            "Remap + Release each flush"
        );
    }
}
