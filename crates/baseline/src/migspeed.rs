//! A `migspeed`-style throughput utility.
//!
//! `migspeed` ships with `numactl` and measures page-migration
//! throughput; §6.5 uses it as the Linux-side comparator for Figure 8,
//! and §2.2's motivating measurements (0.30 GB/s on the ARM SoC for 1500
//! 4 KiB pages in one `mbind`) are the same experiment.

use memif_hwsim::{CostModel, NodeId, PhysMem, SimDuration, Topology, UsageMeter};
use memif_mm::{AddressSpace, FrameAllocator, PageSize};

use crate::syscalls::{mbind, RegionRequest};

/// Configuration of one migspeed run.
#[derive(Debug, Clone, Copy)]
pub struct MigspeedConfig {
    /// Pages migrated per syscall batch.
    pub pages_per_syscall: u32,
    /// Number of syscall batches.
    pub batches: u32,
    /// Page granularity.
    pub page_size: PageSize,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
}

/// A migspeed measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigspeedReport {
    /// Pages moved.
    pub pages: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total time (== CPU time: the path is synchronous).
    pub elapsed: SimDuration,
    /// Throughput in GB/s.
    pub throughput_gbps: f64,
    /// Mean cost per page in microseconds.
    pub per_page_us: f64,
}

/// Runs migspeed on a fresh address space over `topo`.
///
/// Regions are allocated on `from` and migrated to `to` batch by batch.
/// To keep the small `to` node (6 MiB SRAM) from overflowing, each batch
/// is migrated back to `from` before the next begins — exactly how
/// migspeed ping-pongs pages; only the forward direction is timed.
///
/// # Panics
///
/// Panics if a page fails to migrate (the benchmark setup guarantees
/// mapped pages and capacity).
#[must_use]
pub fn run_migspeed(topo: &Topology, cost: &CostModel, config: MigspeedConfig) -> MigspeedReport {
    let mut space = AddressSpace::new();
    let mut alloc = FrameAllocator::new(topo);
    let mut phys = PhysMem::new();
    let mut meter = UsageMeter::new();

    let region = space
        .mmap_anonymous(
            &mut alloc,
            config.pages_per_syscall,
            config.page_size,
            config.from,
        )
        .expect("benchmark region fits the source node");

    let mut elapsed = SimDuration::ZERO;
    for _ in 0..config.batches {
        let forward = RegionRequest {
            start: region,
            pages: config.pages_per_syscall,
            page_size: config.page_size,
            dst_node: config.to,
        };
        let out = mbind(
            &mut space,
            &mut alloc,
            &mut phys,
            cost,
            &mut meter,
            &[forward],
        );
        assert!(
            out.failed.is_empty(),
            "migspeed pages must all move: {:?}",
            out.failed
        );
        elapsed += out.duration;

        // Untimed return trip to reset placement.
        let back = RegionRequest {
            dst_node: config.from,
            ..forward
        };
        let out = mbind(&mut space, &mut alloc, &mut phys, cost, &mut meter, &[back]);
        assert!(out.failed.is_empty());
    }

    let pages = u64::from(config.pages_per_syscall) * u64::from(config.batches);
    let bytes = pages * config.page_size.bytes();
    MigspeedReport {
        pages,
        bytes,
        elapsed,
        throughput_gbps: bytes as f64 / elapsed.as_ns() as f64,
        per_page_us: elapsed.as_us_f64() / pages as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted() -> Topology {
        let mut t = Topology::keystone_ii();
        t.complete_boot();
        t
    }

    /// §2.2: "In migrating 1500 4KB pages with one mbind() syscall, a
    /// server-class ARM SoC shows a throughput of 0.30 GB/sec."
    #[test]
    fn arm_microbench_matches_paper() {
        let report = run_migspeed(
            &booted(),
            &CostModel::keystone_ii(),
            MigspeedConfig {
                pages_per_syscall: 1_500,
                batches: 1,
                page_size: PageSize::Small4K,
                from: NodeId(0),
                to: NodeId(1),
            },
        );
        assert!(
            (0.25..0.35).contains(&report.throughput_gbps),
            "paper: 0.30 GB/s; got {:.3}",
            report.throughput_gbps
        );
        assert!(
            (13.0..17.0).contains(&report.per_page_us),
            "paper: ≈15 µs/page; got {:.1}",
            report.per_page_us
        );
        // Well below 10% of the 6.2 GB/s DDR bandwidth — the paper's point.
        assert!(report.throughput_gbps < 0.62);
    }

    /// §2.2 Xeon numbers: 0.66 GB/s at 1500 pages per syscall.
    #[test]
    fn xeon_microbench_matches_paper() {
        let report = run_migspeed(
            &booted(),
            &CostModel::xeon_e5(),
            MigspeedConfig {
                pages_per_syscall: 1_500,
                batches: 1,
                page_size: PageSize::Small4K,
                from: NodeId(0),
                to: NodeId(1),
            },
        );
        assert!(
            (0.5..0.9).contains(&report.throughput_gbps),
            "paper: 0.66 GB/s; got {:.3}",
            report.throughput_gbps
        );
    }

    #[test]
    fn throughput_improves_with_page_size() {
        let topo = booted();
        let cost = CostModel::keystone_ii();
        let small = run_migspeed(
            &topo,
            &cost,
            MigspeedConfig {
                pages_per_syscall: 64,
                batches: 2,
                page_size: PageSize::Small4K,
                from: NodeId(0),
                to: NodeId(1),
            },
        );
        let large = run_migspeed(
            &topo,
            &cost,
            MigspeedConfig {
                pages_per_syscall: 2,
                batches: 2,
                page_size: PageSize::Large2M,
                from: NodeId(0),
                to: NodeId(1),
            },
        );
        assert!(large.throughput_gbps > small.throughput_gbps);
        // But still bounded by the ≈1 GB/s CPU copy rate.
        assert!(large.throughput_gbps < cost.cpu_copy_bw_gbps * 1.01);
    }

    #[test]
    fn repeated_batches_accumulate() {
        let report = run_migspeed(
            &booted(),
            &CostModel::keystone_ii(),
            MigspeedConfig {
                pages_per_syscall: 100,
                batches: 5,
                page_size: PageSize::Small4K,
                from: NodeId(0),
                to: NodeId(1),
            },
        );
        assert_eq!(report.pages, 500);
        assert_eq!(report.bytes, 500 * 4096);
    }
}
