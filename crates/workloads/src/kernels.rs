//! Data-level implementations of the ported kernels.
//!
//! The [`profiles`](crate::profiles) module models each kernel's *time*;
//! this module implements what they *compute*, over little-endian `f64`
//! arrays in raw byte buffers — the representation data has after a DMA
//! replication out of simulated physical memory. Tests use these to
//! verify that moving data through memif (prefetch buffers, migrations,
//! writebacks) preserves numerical results bit-for-bit.

/// Reads an `f64` array view over a byte slice.
///
/// # Panics
///
/// Panics if the slice length is not a multiple of 8.
#[must_use]
pub fn as_f64_vec(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len().is_multiple_of(8), "not an f64 array");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Writes an `f64` slice into a byte buffer.
///
/// # Panics
///
/// Panics if `out` is not exactly `8 * values.len()` bytes.
pub fn write_f64(out: &mut [u8], values: &[f64]) {
    assert_eq!(out.len(), values.len() * 8, "size mismatch");
    for (chunk, v) in out.chunks_exact_mut(8).zip(values) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// `STREAM.add`: `a[i] = b[i] + c[i]` over raw byte arrays.
///
/// # Panics
///
/// Panics on length mismatches or non-`f64`-sized inputs.
#[must_use]
pub fn stream_add(b: &[u8], c: &[u8]) -> Vec<u8> {
    let (b, c) = (as_f64_vec(b), as_f64_vec(c));
    assert_eq!(b.len(), c.len());
    let mut out = vec![0u8; b.len() * 8];
    let a: Vec<f64> = b.iter().zip(&c).map(|(x, y)| x + y).collect();
    write_f64(&mut out, &a);
    out
}

/// `STREAM.triad`: `a[i] = b[i] + s · c[i]` over raw byte arrays.
///
/// # Panics
///
/// Panics on length mismatches or non-`f64`-sized inputs.
#[must_use]
pub fn stream_triad(b: &[u8], c: &[u8], scalar: f64) -> Vec<u8> {
    let (b, c) = (as_f64_vec(b), as_f64_vec(c));
    assert_eq!(b.len(), c.len());
    let mut out = vec![0u8; b.len() * 8];
    let a: Vec<f64> = b.iter().zip(&c).map(|(x, y)| x + scalar * y).collect();
    write_f64(&mut out, &a);
    out
}

/// `StreamCluster.pgain` (the kernel's arithmetic core): given a stream
/// of points and a candidate center, computes the total cost *gain* of
/// opening the candidate — the sum over points of
/// `max(0, d(point, assigned) − d(point, candidate))`.
///
/// Points are packed as `dim` consecutive `f64`s each, followed by one
/// `f64` holding the point's current assignment cost (its distance to
/// its present center) — `dim + 1` values per point.
///
/// # Panics
///
/// Panics if `candidate.len() != dim` or the byte stream is not a whole
/// number of points.
#[must_use]
pub fn pgain(points: &[u8], candidate: &[f64], dim: usize) -> f64 {
    assert_eq!(candidate.len(), dim);
    let values = as_f64_vec(points);
    let stride = dim + 1;
    assert!(values.len().is_multiple_of(stride), "torn point stream");
    let mut gain = 0.0;
    for p in values.chunks_exact(stride) {
        let coords = &p[..dim];
        let assigned_cost = p[dim];
        let d2: f64 = coords
            .iter()
            .zip(candidate)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let to_candidate = d2.sqrt();
        gain += (assigned_cost - to_candidate).max(0.0);
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(values: &[f64]) -> Vec<u8> {
        let mut out = vec![0u8; values.len() * 8];
        write_f64(&mut out, values);
        out
    }

    #[test]
    fn f64_roundtrip() {
        let v = [1.5, -2.25, f64::MAX, 0.0];
        assert_eq!(as_f64_vec(&bytes_of(&v)), v);
    }

    #[test]
    fn add_and_triad() {
        let b = bytes_of(&[1.0, 2.0, 3.0]);
        let c = bytes_of(&[10.0, 20.0, 30.0]);
        assert_eq!(as_f64_vec(&stream_add(&b, &c)), vec![11.0, 22.0, 33.0]);
        assert_eq!(
            as_f64_vec(&stream_triad(&b, &c, 3.0)),
            vec![31.0, 62.0, 93.0]
        );
    }

    #[test]
    fn pgain_counts_only_improvements() {
        // Two 2-D points: one close to the candidate (improves), one far
        // (no improvement, clamped to zero).
        let points = bytes_of(&[
            0.0, 0.0, 5.0, // at origin, currently costing 5.0
            9.0, 0.0, 1.0, // far away, currently costing 1.0
        ]);
        let g = pgain(&points, &[0.0, 0.0], 2);
        // First point: 5.0 - 0.0 = 5.0 gain; second: 1.0 - 9.0 < 0 -> 0.
        assert!((g - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "torn point stream")]
    fn pgain_rejects_torn_streams() {
        let points = bytes_of(&[1.0, 2.0]);
        let _ = pgain(&points, &[0.0, 0.0], 2);
    }
}
