//! Move-request stream generators for the evaluation harnesses.
//!
//! Figures 6–8 sweep requests over page sizes and pages-per-request;
//! stress tests additionally want randomized mixes. A generator emits
//! abstract [`RequestShape`]s; the harness materializes them against
//! regions it has mapped.

use memif_mm::PageSize;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Kind of move, abstractly (mirrors `memif::MoveKind` without a
/// dependency on the core crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    /// Replication (asynchronous memcpy).
    Replicate,
    /// Migration to another node.
    Migrate,
}

/// One abstract request: its shape, not its addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestShape {
    /// Replication or migration.
    pub kind: ShapeKind,
    /// Pages covered.
    pub pages: u32,
    /// Page granularity.
    pub page_size: PageSize,
}

impl RequestShape {
    /// Bytes covered by the request.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        u64::from(self.pages) * self.page_size.bytes()
    }
}

/// The pages-per-request sweep used by the figures: powers of two.
#[must_use]
pub fn pow2_sweep(max: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut n = 1;
    while n <= max {
        v.push(n);
        n *= 2;
    }
    v
}

/// A uniform stream of identical requests (the Figure 7/8 pattern).
#[must_use]
pub fn uniform_stream(shape: RequestShape, count: usize) -> Vec<RequestShape> {
    vec![shape; count]
}

/// A randomized mix of request shapes, for stress testing. Page counts
/// are log-uniform in `[1, max_pages]`; kinds split per `migrate_frac`.
#[must_use]
pub fn random_mix(
    seed: u64,
    count: usize,
    max_pages: u32,
    page_size: PageSize,
    migrate_frac: f64,
) -> Vec<RequestShape> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_log = (max_pages as f64).log2();
    (0..count)
        .map(|_| {
            let pages = 2f64.powf(rng.random_range(0.0..=max_log)).round() as u32;
            let kind = if rng.random_bool(migrate_frac.clamp(0.0, 1.0)) {
                ShapeKind::Migrate
            } else {
                ShapeKind::Replicate
            };
            RequestShape {
                kind,
                pages: pages.clamp(1, max_pages),
                page_size,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(pow2_sweep(64), vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(pow2_sweep(1), vec![1]);
        assert_eq!(pow2_sweep(100), vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn uniform_stream_repeats() {
        let shape = RequestShape {
            kind: ShapeKind::Migrate,
            pages: 16,
            page_size: PageSize::Small4K,
        };
        let s = uniform_stream(shape, 8);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|r| *r == shape));
        assert_eq!(shape.bytes(), 16 * 4096);
    }

    #[test]
    fn random_mix_is_seeded_and_bounded() {
        let a = random_mix(7, 100, 64, PageSize::Small4K, 0.5);
        let b = random_mix(7, 100, 64, PageSize::Small4K, 0.5);
        assert_eq!(a, b, "deterministic for a given seed");
        assert!(a.iter().all(|r| (1..=64).contains(&r.pages)));
        assert!(a.iter().any(|r| r.kind == ShapeKind::Migrate));
        assert!(a.iter().any(|r| r.kind == ShapeKind::Replicate));
        let c = random_mix(8, 100, 64, PageSize::Small4K, 0.5);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn migrate_frac_extremes() {
        assert!(random_mix(1, 50, 8, PageSize::Small4K, 0.0)
            .iter()
            .all(|r| r.kind == ShapeKind::Replicate));
        assert!(random_mix(1, 50, 8, PageSize::Small4K, 1.0)
            .iter()
            .all(|r| r.kind == ShapeKind::Migrate));
    }
}
