//! Kernel profiles of the paper's case study (§6.6, Table 4).
//!
//! Three compute kernels ported from STREAM \[43\] and StreamCluster \[6\].
//! The profiles encode each kernel's memory/compute shape for the mini
//! runtime; the pure-compute and access-efficiency constants are
//! calibrated so that the *Linux* rows of Table 4 come out of the
//! `SlowOnly` placement on the KeyStone II cost model (the memif rows
//! then emerge from the runtime's prefetch dynamics — see
//! EXPERIMENTS.md).

use memif_runtime::KernelProfile;

/// `STREAM.triad`: `a[i] = b[i] + s·c[i]`.
///
/// Per 8-byte element: reads `b` and `c` (16 B, the prefetchable input),
/// writes `a` (8 B), with a negligible fused multiply-add. Table 4
/// Linux: 2384.1 MB/s; memif: 3184.4 MB/s (+33.6%).
#[must_use]
pub fn stream_triad() -> KernelProfile {
    KernelProfile {
        name: "STREAM.triad".to_owned(),
        read_bytes_per_input: 1.0,
        write_bytes_per_input: 0.5,
        compute_ns_per_input: 0.01,
        fast_efficiency: 1.0,
    }
}

/// `STREAM.add`: `a[i] = b[i] + c[i]`.
///
/// The same memory shape as triad without the scalar multiply. Table 4
/// Linux: 2390.1 MB/s; memif: 3186.9 MB/s (+33.3%).
#[must_use]
pub fn stream_add() -> KernelProfile {
    KernelProfile {
        name: "STREAM.add".to_owned(),
        read_bytes_per_input: 1.0,
        write_bytes_per_input: 0.5,
        compute_ns_per_input: 0.005,
        fast_efficiency: 1.0,
    }
}

/// `StreamCluster.pgain`: evaluates the cost gain of opening a new
/// cluster center over all points.
///
/// Reads point coordinates and per-point assignment costs (the input
/// stream); writes almost nothing (per-center accumulators live in
/// cache); burns real floating-point per byte (distance computations),
/// and its strided point layout streams less efficiently than STREAM.
/// Table 4 Linux: 1440.1 MB/s; memif: 1778.4 MB/s (+23.5%).
#[must_use]
pub fn streamcluster_pgain() -> KernelProfile {
    KernelProfile {
        name: "StreamCluster.pgain".to_owned(),
        read_bytes_per_input: 1.0,
        write_bytes_per_input: 0.0,
        compute_ns_per_input: 0.278,
        fast_efficiency: 0.45,
    }
}

/// All Table 4 kernels, in the table's column order.
#[must_use]
pub fn table4_kernels() -> Vec<KernelProfile> {
    vec![streamcluster_pgain(), stream_triad(), stream_add()]
}

/// A wordcount-like kernel: heavy per-byte compute (hashing, hash-table
/// probes against a cache-resident table).
///
/// §6.7's *negative* result: "In testing a variety of data-intensive
/// applications, e.g., wordcount and psearchy, we find many of them see
/// little performance gain from memif" — because on KeyStone II the
/// workloads whose working sets fit the 6 MB fast memory "are also
/// likely cache-friendly", leaving compute (not the memory stream) as
/// the bottleneck. This profile reproduces that outcome.
#[must_use]
pub fn wordcount_like() -> KernelProfile {
    KernelProfile {
        name: "wordcount-like".to_owned(),
        read_bytes_per_input: 1.0,
        write_bytes_per_input: 0.02, // tiny output (counts)
        compute_ns_per_input: 2.0,   // hash + probe per byte, 4 cores
        fast_efficiency: 0.5,        // pointer-chasing access pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_sane() {
        for k in table4_kernels() {
            assert!(k.read_bytes_per_input >= 1.0, "{}: input is read", k.name);
            assert!(k.write_bytes_per_input >= 0.0);
            assert!(k.compute_ns_per_input >= 0.0);
            assert!((0.0..=1.0).contains(&k.fast_efficiency));
        }
    }

    #[test]
    fn triad_and_add_share_a_shape() {
        let t = stream_triad();
        let a = stream_add();
        assert_eq!(t.read_bytes_per_input, a.read_bytes_per_input);
        assert_eq!(t.write_bytes_per_input, a.write_bytes_per_input);
    }

    #[test]
    fn wordcount_is_compute_dominated() {
        let w = wordcount_like();
        // Memory time per byte at slow-node streaming is ~0.42 ns; the
        // compute share dwarfs it, which is why prefetching barely helps.
        assert!(w.compute_ns_per_input > 1.0);
        assert!(w.write_bytes_per_input < 0.1);
    }

    #[test]
    fn pgain_is_the_compute_heavy_one() {
        let p = streamcluster_pgain();
        assert!(p.compute_ns_per_input > stream_triad().compute_ns_per_input * 10.0);
        assert!(p.fast_efficiency < 1.0);
    }
}
