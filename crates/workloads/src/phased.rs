//! Phased hot-set workloads for the placement-policy evaluation (E14).
//!
//! The policy daemon's thesis workload: an application whose working
//! set is a rotating *hot subset* of a larger region pool. Within a
//! phase the hot regions are streamed over and over; at phase
//! boundaries the hot set shifts, so a placement policy must notice the
//! change (sampling), move the new hot regions toward fast memory
//! (promotion) and retire the old ones (demotion). The generator emits
//! only the *schedule* — which regions are hot in which phase — so the
//! harness decides how regions are sized and touched.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic phase schedule over a pool of `regions` regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// Number of regions in the pool.
    pub regions: usize,
    /// Hot region indices per phase, each sorted ascending.
    pub phases: Vec<Vec<usize>>,
}

impl PhaseSchedule {
    /// Indices hot in `phase` but not in the previous one (the pages a
    /// policy must promote at this boundary).
    #[must_use]
    pub fn entering(&self, phase: usize) -> Vec<usize> {
        let prev: &[usize] = if phase == 0 {
            &[]
        } else {
            &self.phases[phase - 1]
        };
        self.phases[phase]
            .iter()
            .copied()
            .filter(|r| !prev.contains(r))
            .collect()
    }
}

/// Builds a phased hot-set schedule: `phases` phases over a pool of
/// `regions` regions, each phase keeping `carry` regions from the
/// previous hot set (temporal locality) and drawing the rest fresh from
/// the cold pool. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics when `hot > regions` or `carry > hot` — the schedule would be
/// unsatisfiable.
#[must_use]
pub fn phased_hot_set(
    seed: u64,
    regions: usize,
    phases: usize,
    hot: usize,
    carry: usize,
) -> PhaseSchedule {
    assert!(hot <= regions, "hot set larger than the region pool");
    assert!(carry <= hot, "cannot carry more than the hot set");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(phases);
    for p in 0..phases {
        let mut phase: Vec<usize> = Vec::with_capacity(hot);
        if p > 0 {
            // Keep `carry` survivors of the previous hot set.
            let mut prev = out[p - 1].clone();
            for _ in 0..carry {
                let k = rng.random_range(0..prev.len() as u64) as usize;
                phase.push(prev.swap_remove(k));
            }
        }
        // Fill from the regions not already chosen this phase.
        let mut cold: Vec<usize> = (0..regions).filter(|r| !phase.contains(r)).collect();
        while phase.len() < hot {
            let k = rng.random_range(0..cold.len() as u64) as usize;
            phase.push(cold.swap_remove(k));
        }
        phase.sort_unstable();
        out.push(phase);
    }
    PhaseSchedule {
        regions,
        phases: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let a = phased_hot_set(11, 24, 6, 8, 2);
        let b = phased_hot_set(11, 24, 6, 8, 2);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, phased_hot_set(12, 24, 6, 8, 2), "seeds differ");
        for phase in &a.phases {
            assert_eq!(phase.len(), 8);
            assert!(phase.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(phase.iter().all(|&r| r < 24));
        }
    }

    #[test]
    fn carry_preserves_temporal_locality() {
        let s = phased_hot_set(3, 16, 5, 6, 3);
        for p in 1..s.phases.len() {
            let kept = s.phases[p]
                .iter()
                .filter(|r| s.phases[p - 1].contains(r))
                .count();
            assert!(kept >= 3, "phase {p} kept only {kept} of the hot set");
        }
    }

    #[test]
    fn entering_lists_the_promotion_work() {
        let s = phased_hot_set(7, 12, 4, 4, 2);
        assert_eq!(s.entering(0), s.phases[0], "everything enters at start");
        for p in 1..4 {
            for r in s.entering(p) {
                assert!(s.phases[p].contains(&r));
                assert!(!s.phases[p - 1].contains(&r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "hot set larger")]
    fn oversized_hot_set_panics() {
        let _ = phased_hot_set(0, 4, 2, 8, 0);
    }
}
