//! Phased hot-set workloads for the placement-policy evaluation (E14).
//!
//! The policy daemon's thesis workload: an application whose working
//! set is a rotating *hot subset* of a larger region pool. Within a
//! phase the hot regions are streamed over and over; at phase
//! boundaries the hot set shifts, so a placement policy must notice the
//! change (sampling), move the new hot regions toward fast memory
//! (promotion) and retire the old ones (demotion). The generator emits
//! only the *schedule* — which regions are hot in which phase — so the
//! harness decides how regions are sized and touched.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic phase schedule over a pool of `regions` regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// Number of regions in the pool.
    pub regions: usize,
    /// Hot region indices per phase, each sorted ascending.
    pub phases: Vec<Vec<usize>>,
}

impl PhaseSchedule {
    /// Indices hot in `phase` but not in the previous one (the pages a
    /// policy must promote at this boundary).
    #[must_use]
    pub fn entering(&self, phase: usize) -> Vec<usize> {
        let prev: &[usize] = if phase == 0 {
            &[]
        } else {
            &self.phases[phase - 1]
        };
        self.phases[phase]
            .iter()
            .copied()
            .filter(|r| !prev.contains(r))
            .collect()
    }
}

/// Builds a phased hot-set schedule: `phases` phases over a pool of
/// `regions` regions, each phase keeping `carry` regions from the
/// previous hot set (temporal locality) and drawing the rest fresh from
/// the cold pool. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics when `hot > regions` or `carry > hot` — the schedule would be
/// unsatisfiable.
#[must_use]
pub fn phased_hot_set(
    seed: u64,
    regions: usize,
    phases: usize,
    hot: usize,
    carry: usize,
) -> PhaseSchedule {
    assert!(hot <= regions, "hot set larger than the region pool");
    assert!(carry <= hot, "cannot carry more than the hot set");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(phases);
    for p in 0..phases {
        let mut phase: Vec<usize> = Vec::with_capacity(hot);
        if p > 0 {
            // Keep `carry` survivors of the previous hot set.
            let mut prev = out[p - 1].clone();
            for _ in 0..carry {
                let k = rng.random_range(0..prev.len() as u64) as usize;
                phase.push(prev.swap_remove(k));
            }
        }
        // Fill from the regions not already chosen this phase.
        let mut cold: Vec<usize> = (0..regions).filter(|r| !phase.contains(r)).collect();
        while phase.len() < hot {
            let k = rng.random_range(0..cold.len() as u64) as usize;
            phase.push(cold.swap_remove(k));
        }
        phase.sort_unstable();
        out.push(phase);
    }
    PhaseSchedule {
        regions,
        phases: out,
    }
}

/// A phase schedule with *two* working-set classes per phase: the hot
/// regions streamed every tick, and a warm halo touched only
/// occasionally. On a ranked hierarchy the classes should settle on
/// different tiers — hot at the top, warm one rank down, everything
/// else sinking toward the floor — so this is the waterfall
/// evaluation's workload (E16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredSchedule {
    /// Number of regions in the pool.
    pub regions: usize,
    /// Hot region indices per phase, each sorted ascending.
    pub hot: Vec<Vec<usize>>,
    /// Warm region indices per phase, sorted, disjoint from that
    /// phase's hot set.
    pub warm: Vec<Vec<usize>>,
}

/// Builds a tiered phase schedule: the hot sets are exactly
/// [`phased_hot_set`]'s (same seed, same pool — the workloads nest),
/// plus `warm` regions per phase drawn from the remaining pool.
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics when `hot + warm > regions` or `carry > hot`.
#[must_use]
pub fn tiered_phased_hot_set(
    seed: u64,
    regions: usize,
    phases: usize,
    hot: usize,
    carry: usize,
    warm: usize,
) -> TieredSchedule {
    assert!(
        hot + warm <= regions,
        "hot + warm sets larger than the region pool"
    );
    let base = phased_hot_set(seed, regions, phases, hot, carry);
    // A separate stream so the hot sets stay identical to the untired
    // schedule for the same seed.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let warm_sets = base
        .phases
        .iter()
        .map(|hot_set| {
            let mut pool: Vec<usize> = (0..regions).filter(|r| !hot_set.contains(r)).collect();
            let mut w = Vec::with_capacity(warm);
            for _ in 0..warm {
                let k = rng.random_range(0..pool.len() as u64) as usize;
                w.push(pool.swap_remove(k));
            }
            w.sort_unstable();
            w
        })
        .collect();
    TieredSchedule {
        regions,
        hot: base.phases,
        warm: warm_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let a = phased_hot_set(11, 24, 6, 8, 2);
        let b = phased_hot_set(11, 24, 6, 8, 2);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, phased_hot_set(12, 24, 6, 8, 2), "seeds differ");
        for phase in &a.phases {
            assert_eq!(phase.len(), 8);
            assert!(phase.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(phase.iter().all(|&r| r < 24));
        }
    }

    #[test]
    fn carry_preserves_temporal_locality() {
        let s = phased_hot_set(3, 16, 5, 6, 3);
        for p in 1..s.phases.len() {
            let kept = s.phases[p]
                .iter()
                .filter(|r| s.phases[p - 1].contains(r))
                .count();
            assert!(kept >= 3, "phase {p} kept only {kept} of the hot set");
        }
    }

    #[test]
    fn entering_lists_the_promotion_work() {
        let s = phased_hot_set(7, 12, 4, 4, 2);
        assert_eq!(s.entering(0), s.phases[0], "everything enters at start");
        for p in 1..4 {
            for r in s.entering(p) {
                assert!(s.phases[p].contains(&r));
                assert!(!s.phases[p - 1].contains(&r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "hot set larger")]
    fn oversized_hot_set_panics() {
        let _ = phased_hot_set(0, 4, 2, 8, 0);
    }

    #[test]
    fn tiered_schedule_nests_the_plain_one() {
        let plain = phased_hot_set(11, 24, 6, 8, 2);
        let tiered = tiered_phased_hot_set(11, 24, 6, 8, 2, 6);
        assert_eq!(tiered.hot, plain.phases, "hot sets identical per seed");
        assert_eq!(tiered, tiered_phased_hot_set(11, 24, 6, 8, 2, 6));
        for (hot, warm) in tiered.hot.iter().zip(&tiered.warm) {
            assert_eq!(warm.len(), 6);
            assert!(warm.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(warm.iter().all(|r| !hot.contains(r)), "classes disjoint");
            assert!(warm.iter().all(|&r| r < 24));
        }
    }

    #[test]
    #[should_panic(expected = "hot + warm")]
    fn oversized_tiered_pool_panics() {
        let _ = tiered_phased_hot_set(0, 8, 2, 6, 0, 4);
    }
}
