//! Evaluation workloads for the memif reproduction.
//!
//! * [`profiles`] — the Table 4 streaming kernels (STREAM add/triad,
//!   StreamCluster pgain) as [`memif_runtime::KernelProfile`]s;
//! * [`kernels`] — data-level implementations of the same kernels (real
//!   `f64` arithmetic over byte buffers) for numerical validation of the
//!   move paths;
//! * [`generator`] — move-request stream generators for the Figure 6–8
//!   sweeps and randomized stress tests;
//! * [`phased`] — phased hot-set schedules for the placement-policy
//!   evaluation (E14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod kernels;
pub mod phased;
pub mod profiles;

pub use generator::{pow2_sweep, random_mix, uniform_stream, RequestShape, ShapeKind};
pub use phased::{phased_hot_set, tiered_phased_hot_set, PhaseSchedule, TieredSchedule};
pub use profiles::{stream_add, stream_triad, streamcluster_pgain, table4_kernels, wordcount_like};
