//! Exactly-once crash recovery over the persistent NVM tier.
//!
//! A crash point halts the world mid-move and drops all volatile state;
//! `System::recover` must then terminate every journaled request in
//! exactly one terminal status — no lost moves, no doubled moves — and
//! the post-crash application protocol (re-drive everything without a
//! durable `Done`) must land the machine byte-identical to a run that
//! never crashed. The proptest sweeps crash point × firing index ×
//! {batch, coalesce, shards} configurations; a second proptest drives
//! the same crash points through the placement daemon's background
//! traffic; deterministic tests pin a promoted-heir chain crash and the
//! all-points smoke matrix that CI runs.

use std::cell::RefCell;
use std::rc::Rc;

use memif::{
    CrashPlan, CrashPoint, FaultPlan, HookId, Memif, MemifConfig, MoveSpec, MoveStatus, NodeId,
    RaceMode, Sim, SimDuration, SimEvent, System, VirtAddr,
};
use memif_bench::{crash_migrate_nvm, nvm_topology, CrashOutcome};
use memif_hwsim::CostModel;
use memif_mm::{AccessKind, PageSize};
use memif_policy::{PolicyConfig, PolicyDaemon};
use proptest::prelude::*;

const PAGE: PageSize = PageSize::Small4K;
const PAGES: u32 = 8;

fn config_for(batch_max: usize, coalesce: bool, issue_shards: usize) -> MemifConfig {
    MemifConfig {
        batch_max,
        coalesce,
        issue_shards,
        journal: true,
        ..MemifConfig::default()
    }
}

/// The equality the tentpole promises: after recovery plus the WAL
/// re-drive protocol, a crashed run is indistinguishable from one that
/// never crashed.
fn assert_matches_reference(crashed: &CrashOutcome, reference: &CrashOutcome, label: &str) {
    for (cookie, status) in &crashed.statuses {
        assert_eq!(
            *status,
            MoveStatus::Done,
            "{label}: cookie {cookie} did not end Done: {status:?}"
        );
    }
    assert_eq!(
        crashed.statuses.len(),
        reference.statuses.len(),
        "{label}: request count diverged"
    );
    assert_eq!(
        crashed.placement, reference.placement,
        "{label}: final placement diverged"
    );
    assert_eq!(
        crashed.fingerprint, reference.fingerprint,
        "{label}: final memory diverged"
    );
    assert_eq!(
        crashed.free_bytes, reference.free_bytes,
        "{label}: allocator balance diverged (lost or doubled frames)"
    );
    if let Some(report) = &crashed.recovery {
        assert_eq!(
            report.recovered_requests,
            report.rolled_back + report.redriven,
            "{label}: recovery counters inconsistent"
        );
    }
}

proptest! {
    // Each case runs a reference and a crashed+recovered stream from
    // scratch; keep the count in tier-2 smoke territory.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every crash point × firing index × issue-path configuration,
    /// recovery terminates every journaled request exactly once and the
    /// re-driven run converges to the uncrashed reference.
    #[test]
    fn exactly_once_recovery(
        point_sel in 0usize..5,
        nth in 1u64..8,
        cfg_sel in 0usize..4,
        count in 4usize..10,
    ) {
        let point = CrashPoint::ALL[point_sel];
        let (batch, coalesce, shards) =
            [(1, false, 1), (4, false, 1), (4, true, 1), (3, true, 2)][cfg_sel];
        let cost = CostModel::keystone_ii();
        let config = config_for(batch, coalesce, shards);
        let reference = crash_migrate_nvm(&cost, config.clone(), PAGE, PAGES, count, None);
        prop_assert!(!reference.crashed);
        let crashed = crash_migrate_nvm(
            &cost, config, PAGE, PAGES, count, Some(CrashPlan::at(point, nth)),
        );
        assert_matches_reference(
            &crashed,
            &reference,
            &format!("{}#{nth} batch={batch} coalesce={coalesce} shards={shards}", point.as_str()),
        );
    }

    /// The same crash points landing inside the placement daemon's
    /// background traffic: every journaled policy move seals exactly
    /// once, and data the journal durably calls `Done` is intact on the
    /// persistent node.
    #[test]
    fn policy_traffic_crash_recovers_exactly_once(
        point_sel in 0usize..5,
        nth in 1u64..4,
    ) {
        let point = CrashPoint::ALL[point_sel];
        policy_crash_run(Some(CrashPlan::at(point, nth)));
    }
}

/// Deterministic all-points matrix — the CI tier-2 smoke entry point
/// (`cargo test -p memif-bench --release --test recovery`).
#[test]
fn every_crash_point_recovers_under_batching_and_sharding() {
    let cost = CostModel::keystone_ii();
    let config = config_for(4, true, 2);
    let reference = crash_migrate_nvm(&cost, config.clone(), PAGE, PAGES, 8, None);
    let mut fired = 0;
    for point in CrashPoint::ALL {
        for nth in 1..=3 {
            let crashed = crash_migrate_nvm(
                &cost,
                config.clone(),
                PAGE,
                PAGES,
                8,
                Some(CrashPlan::at(point, nth)),
            );
            fired += usize::from(crashed.crashed);
            assert_matches_reference(&crashed, &reference, &format!("{}#{nth}", point.as_str()));
        }
    }
    assert!(
        fired >= 10,
        "most plans in the matrix must actually fire: {fired}"
    );
}

/// A crash plan that never fires (its point is never crossed) leaves
/// the run byte-identical to no plan at all.
#[test]
fn unfired_crash_plan_is_invisible() {
    let cost = CostModel::keystone_ii();
    // batch_max=1: no chains, so mid-chain is never crossed.
    let config = config_for(1, false, 1);
    let reference = crash_migrate_nvm(&cost, config.clone(), PAGE, PAGES, 6, None);
    let unfired = crash_migrate_nvm(
        &cost,
        config,
        PAGE,
        PAGES,
        6,
        Some(CrashPlan::at(CrashPoint::MidChain, 1)),
    );
    assert!(!unfired.crashed);
    assert!(unfired.recovery.is_none());
    assert_eq!(unfired.resubmitted, 0);
    assert_eq!(
        unfired.wall, reference.wall,
        "unfired plan perturbed timing"
    );
    assert_matches_reference(&unfired, &reference, "unfired mid-chain");
}

/// Crash points inside a batched chain whose leader was aborted by a
/// racing write: the journal's leader/member linkage must survive heir
/// promotion, and recovery must classify the heir (`CopyDone`, NVM
/// destination → roll forward) differently from the members (`Issued`
/// → roll back) — the satellite-c scenario.
#[test]
fn midchain_crash_with_promoted_heir_recovers_exactly_once() {
    const COUNT: usize = 4;
    let mut sys = System::with_profile(nvm_topology(), CostModel::keystone_ii());
    let mut sim = Sim::new();
    let space = sys.new_space();
    let config = MemifConfig {
        journal: true,
        batch_max: COUNT,
        race_mode: RaceMode::DetectRecover,
        ..MemifConfig::default()
    };
    let memif = Memif::open(&mut sys, space, config).unwrap();
    sys.install_faults(&mut sim, FaultPlan::crash_at(CrashPoint::MidChain, 1));

    let regions: Vec<VirtAddr> = (0..COUNT)
        .map(|_| sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap())
        .collect();
    let fill = |sys: &mut System, r: usize| {
        for p in 0..PAGES {
            let page = regions[r].offset(u64::from(p) * PAGE.bytes());
            let pa = sys.space(space).translate(page).unwrap();
            sys.phys
                .fill(pa, PAGE.bytes(), 1 + (r as u8) * 31 + (p as u8) * 7);
        }
    };
    for r in 0..COUNT {
        fill(&mut sys, r);
    }
    // Background submission: all four stage on the blue queue and the
    // kernel worker drains them into a single chained launch (a
    // foreground `submit` would issue the first request inline, solo).
    for (i, va) in regions.iter().enumerate() {
        memif
            .submit_background(
                &mut sys,
                &mut sim,
                MoveSpec::migrate(*va, PAGES, PAGE, NodeId(1)).with_user_data(i as u64),
            )
            .unwrap();
    }

    // Step until the chain's descriptors are on the engine, then land a
    // racing store on the chain leader's first page: DetectRecover
    // aborts the leader mid-flight and promotes the next member to
    // heir, rewriting the journal linkage.
    let mut guard = 0;
    while sys
        .device(memif.device())
        .unwrap()
        .stats
        .descriptors_written
        == 0
    {
        let until = sim.now() + SimDuration::from_us(1);
        sim.run_until(&mut sys, until);
        guard += 1;
        assert!(guard < 100_000, "chain never launched");
    }
    sys.cpu_write(&mut sim, space, regions[0].offset(64), &[0xEE])
        .unwrap();

    // Promotion happened synchronously in the fault path: check the
    // journal linkage before the chain completes.
    let recs = sys.journal().records().to_vec();
    assert_eq!(recs.len(), COUNT);
    let by_cookie = |cookie: u64| recs.iter().find(|r| r.req.user_data == cookie).unwrap();
    let old_leader = by_cookie(0);
    let heir = by_cookie(1);
    assert_eq!(
        old_leader.sealed,
        Some(MoveStatus::Aborted),
        "racing write aborts the leader"
    );
    assert_eq!(heir.batch_leader, None, "heir took over the chain");
    for cookie in 2..COUNT as u64 {
        assert_eq!(
            by_cookie(cookie).batch_leader,
            Some(heir.token),
            "member {cookie} must follow the promoted heir"
        );
    }

    sim.run(&mut sys);
    assert!(sys.crashed(), "mid-chain crash fired on the heir's chain");

    let report = sys.recover(&mut sim);
    assert_eq!(report.journal_records, COUNT as u64);
    assert_eq!(report.recovered_requests, 3, "heir + two members");
    assert_eq!(report.redriven, 1, "heir was CopyDone onto NVM");
    assert_eq!(report.rolled_back, 2, "members had no bytes in place");
    let status_of = |cookie: u64| {
        let matches: Vec<MoveStatus> = report
            .statuses
            .iter()
            .filter(|(_, _, ud)| *ud == cookie)
            .map(|(_, s, _)| *s)
            .collect();
        assert_eq!(matches.len(), 1, "cookie {cookie} must seal exactly once");
        matches[0]
    };
    assert_eq!(status_of(0), MoveStatus::Aborted);
    assert_eq!(status_of(1), MoveStatus::Done);
    assert_eq!(status_of(2), MoveStatus::Aborted);
    assert_eq!(status_of(3), MoveStatus::Aborted);

    // WAL re-drive: restore source data for the three non-Done requests
    // and resubmit; everything must converge onto NVM with the original
    // pattern (the heir's pages untouched by the second pass).
    for cookie in [0usize, 2, 3] {
        fill(&mut sys, cookie);
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::migrate(regions[cookie], PAGES, PAGE, NodeId(1))
                    .with_user_data(cookie as u64),
            )
            .unwrap();
    }
    sim.run(&mut sys);
    let mut redriven = 0;
    while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
        assert!(c.status.is_ok(), "re-drive failed: {:?}", c.status);
        redriven += 1;
    }
    assert_eq!(redriven, 3);
    for (r, va) in regions.iter().enumerate() {
        for p in 0..PAGES {
            let page = va.offset(u64::from(p) * PAGE.bytes());
            let pa = sys.space(space).translate(page).expect("page mapped");
            assert_eq!(sys.node_of(pa), Some(NodeId(1)), "region {r} on NVM");
            let expect = 1 + (r as u8) * 31 + (p as u8) * 7;
            let mut byte = [0u8];
            sys.phys.read(pa, &mut byte);
            assert_eq!(byte[0], expect, "region {r} page {p} content");
        }
    }
    for rec in sys.journal().records() {
        assert!(rec.sealed.is_some(), "record left unsealed after re-drive");
    }
}

/// Drives the placement daemon on the NVM topology with an optional
/// crash plan: hot regions promote into the persistent node, the crash
/// lands inside that background traffic, and recovery must seal every
/// journaled policy move exactly once with persistent-resident data
/// intact.
fn policy_crash_run(crash: Option<CrashPlan>) {
    const REGIONS: usize = 4;
    const POLICY_PAGES: u32 = 32;
    let mut sys = System::with_profile(nvm_topology(), CostModel::keystone_ii());
    let mut sim = Sim::new();
    let space = sys.new_space();
    let config = MemifConfig {
        journal: true,
        race_mode: RaceMode::DetectRecover,
        ..MemifConfig::default()
    };
    let memif = Memif::open(&mut sys, space, config).unwrap();
    if let Some(plan) = crash {
        sys.install_faults(
            &mut sim,
            FaultPlan {
                crash: Some(plan),
                ..FaultPlan::default()
            },
        );
    }
    let daemon = PolicyDaemon::launch(&mut sys, &mut sim, memif, space, PolicyConfig::default());
    let regions: Vec<VirtAddr> = (0..REGIONS)
        .map(|_| sys.mmap(space, POLICY_PAGES, PAGE, NodeId(0)).unwrap())
        .collect();
    for (r, va) in regions.iter().enumerate() {
        for p in 0..POLICY_PAGES {
            let page = va.offset(u64::from(p) * PAGE.bytes());
            let pa = sys.space(space).translate(page).unwrap();
            sys.phys
                .fill(pa, PAGE.bytes(), 1 + (r as u8) * 29 + (p as u8) * 5);
        }
        daemon.track(&sys, *va, POLICY_PAGES, PAGE);
    }

    // The app: touch the first two regions every 400 µs so the daemon
    // promotes them into NVM; stop after ten ticks.
    let d2 = daemon.clone();
    let hot = [regions[0], regions[1]];
    let touch: Rc<RefCell<Option<HookId>>> = Rc::new(RefCell::new(None));
    let touch2 = Rc::clone(&touch);
    let id = sys.register_hook(move |sys, sim, tick| {
        for va in hot {
            for p in 0..POLICY_PAGES {
                let page = va.offset(u64::from(p) * PAGE.bytes());
                let _ = sys.space_mut(space).access(page, AccessKind::Read);
            }
        }
        if tick < 10 {
            let hook = touch2.borrow().expect("set before run");
            sim.schedule_after(
                SimDuration::from_ns(400_000),
                SimEvent::Hook {
                    hook,
                    arg: tick + 1,
                },
            );
        } else {
            d2.stop();
        }
    });
    *touch.borrow_mut() = Some(id);
    sim.schedule_after(SimDuration::from_ns(0), SimEvent::Hook { hook: id, arg: 1 });
    sim.run(&mut sys);

    if sys.crashed() {
        let report = sys.recover(&mut sim);
        assert_eq!(
            report.recovered_requests,
            report.rolled_back + report.redriven
        );
        // Exactly one terminal status per journaled policy move.
        let mut seen = std::collections::HashSet::new();
        for (req_id, status, _) in &report.statuses {
            assert!(seen.insert(*req_id), "request {req_id} reported twice");
            assert!(
                matches!(
                    status,
                    MoveStatus::Done
                        | MoveStatus::Aborted
                        | MoveStatus::Failed(_)
                        | MoveStatus::Raced
                ),
                "non-terminal status {status:?}"
            );
        }
        assert_eq!(report.statuses.len() as u64, report.journal_records);
    } else {
        // The plan's point was crossed fewer than `nth` times: the run
        // simply completed; the journal must still be fully sealed.
        assert!(daemon.stats().epochs > 0, "daemon ran even without a crash");
    }
    for rec in sys.journal().records() {
        assert!(
            rec.sealed.is_some(),
            "policy move {} left unsealed",
            rec.req.id
        );
    }
    // Every page still mapped, and data the system placed on the
    // persistent node survived the crash byte-for-byte.
    for (r, va) in regions.iter().enumerate() {
        for p in 0..POLICY_PAGES {
            let page = va.offset(u64::from(p) * PAGE.bytes());
            let pa = sys.space(space).translate(page).expect("page still mapped");
            if sys.node_of(pa) == Some(NodeId(1)) {
                let mut byte = [0u8];
                sys.phys.read(pa, &mut byte);
                assert_eq!(
                    byte[0],
                    1 + (r as u8) * 29 + (p as u8) * 5,
                    "NVM-resident region {r} page {p} lost its bytes"
                );
            }
        }
    }
}

/// The policy run must also hold up with no crash at all (reference
/// behaviour for the proptest above).
#[test]
fn policy_traffic_reference_run_is_clean() {
    policy_crash_run(None);
}
