//! Determinism guarantees for the typed event core.
//!
//! The refactor from opaque closures to typed [`memif::SimEvent`]s is
//! only safe if the simulation stays bit-deterministic: the same seed
//! and fault plan must produce the same event stream, and the default
//! single-controller configuration must reproduce the pre-refactor
//! figures exactly. These tests pin both properties.

use memif::{FaultPlan, MemifConfig};
use memif_bench::{stream_memif, stream_memif_logged};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_policy::{run_scenario, Mode, PolicyStats, ScenarioConfig};
use memif_workloads::ShapeKind;
use proptest::prelude::*;

const PAGE: PageSize = PageSize::Small4K;
const PAGES: u32 = 64;
const WINDOW: usize = 8;
const COUNT: usize = 24;

fn chaos_plan(seed: u64, error: f64, drop: f64, delay: f64) -> FaultPlan {
    FaultPlan {
        dma_error_rate: error,
        drop_rate: drop,
        delay_rate: delay,
        ..FaultPlan::new(seed)
    }
}

proptest! {
    // Each case replays a faulted stream twice from scratch; keep the
    // case count small so the suite stays in tier-2 smoke territory.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + same fault plan ⇒ byte-identical event logs and
    /// terminal statuses, for any fault mix the generator produces.
    #[test]
    fn same_seed_same_event_log(
        seed in 0u64..1_000,
        error_ppm in 0u32..50_000,
        drop_ppm in 0u32..10_000,
        delay_ppm in 0u32..20_000,
        kind_sel in 0u32..2,
    ) {
        let kind = if kind_sel == 1 { ShapeKind::Migrate } else { ShapeKind::Replicate };
        let plan = chaos_plan(
            seed,
            f64::from(error_ppm) * 1e-6,
            f64::from(drop_ppm) * 1e-6,
            f64::from(delay_ppm) * 1e-6,
        );
        let cost = CostModel::keystone_ii();
        let a = stream_memif_logged(
            &cost, MemifConfig::default(), kind, PAGE, PAGES, COUNT, WINDOW,
            Some(plan.clone()),
        );
        let b = stream_memif_logged(
            &cost, MemifConfig::default(), kind, PAGE, PAGES, COUNT, WINDOW,
            Some(plan),
        );
        prop_assert_eq!(&a.events, &b.events, "event logs diverged");
        prop_assert_eq!(&a.statuses, &b.statuses, "terminal statuses diverged");
        prop_assert!(!a.events.is_empty(), "event log must record the run");
    }
}

fn policy_config(mode: Mode, schedule_seed: u64, faults: Option<FaultPlan>) -> ScenarioConfig {
    ScenarioConfig {
        mode,
        seed: schedule_seed,
        phases: 3,
        ticks_per_phase: 16,
        faults,
        log_events: true,
        ..ScenarioConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The policy daemon's epoch loop is deterministic: identical
    /// schedule seeds and fault plans replay to byte-identical event
    /// logs, policy counters, and wall clocks — in both placement
    /// regimes and under chaos.
    #[test]
    fn policy_same_seed_same_event_log(
        schedule_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        error_ppm in 0u32..50_000,
        drop_ppm in 0u32..10_000,
        sync_sel in 0u32..2,
    ) {
        let mode = if sync_sel == 1 { Mode::Sync } else { Mode::Async };
        let plan = chaos_plan(fault_seed, f64::from(error_ppm) * 1e-6, f64::from(drop_ppm) * 1e-6, 0.0);
        let cfg = policy_config(mode, schedule_seed, Some(plan));
        let cost = CostModel::keystone_ii();
        let a = run_scenario(&cost, &cfg);
        let b = run_scenario(&cost, &cfg);
        prop_assert_eq!(&a.events, &b.events, "policy event logs diverged");
        prop_assert_eq!(&a.statuses, &b.statuses, "policy terminal statuses diverged");
        prop_assert_eq!(a.policy, b.policy, "policy counters diverged");
        prop_assert_eq!(a.wall, b.wall, "wall clocks diverged");
        prop_assert!(!a.events.is_empty(), "event log must record the run");
    }
}

/// Policy off ([`Mode::None`]) leaves the simulated system exactly as
/// it was before the policy subsystem existed: no memif device is
/// opened, no driver events reach the log (only the application's own
/// hook ticks), and every policy counter stays zero. Together with
/// `golden_single_tc_figures` this pins that the disabled-by-default
/// daemon cannot perturb seed behaviour.
#[test]
fn policy_off_adds_no_driver_events() {
    let cost = CostModel::keystone_ii();
    let r = run_scenario(&cost, &policy_config(Mode::None, 42, None));
    assert_eq!(r.policy, PolicyStats::default());
    assert_eq!(r.driver, memif::DriverStats::default());
    assert!(r.statuses.is_empty());
    assert!(!r.events.is_empty());
    for e in &r.events {
        assert!(
            e.contains("\"type\":\"hook\""),
            "policy-off run logged a non-hook event: {e}"
        );
    }
}

/// `dma_tc_count = 1` (the explicit value) behaves byte-for-byte like
/// the default cost model: the multi-TC scheduler is invisible until
/// more channels are configured.
#[test]
fn explicit_tc1_matches_default() {
    let default_cost = CostModel::keystone_ii();
    let mut explicit = CostModel::keystone_ii();
    explicit.dma_tc_count = 1;
    let plan = || Some(chaos_plan(7, 1e-2, 1e-3, 1e-3));
    let a = stream_memif_logged(
        &default_cost,
        MemifConfig::default(),
        ShapeKind::Migrate,
        PAGE,
        PAGES,
        COUNT,
        WINDOW,
        plan(),
    );
    let b = stream_memif_logged(
        &explicit,
        MemifConfig::default(),
        ShapeKind::Migrate,
        PAGE,
        PAGES,
        COUNT,
        WINDOW,
        plan(),
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.statuses, b.statuses);
}

/// Golden pin: the fault-free single-TC replication figure from the
/// pre-refactor scheduler, to the nanosecond. If this moves, the typed
/// event core changed simulated behaviour, not just representation.
#[test]
fn golden_single_tc_figures() {
    let cost = CostModel::keystone_ii();
    let run = stream_memif(
        &cost,
        MemifConfig::default(),
        ShapeKind::Replicate,
        PAGE,
        PAGES,
        COUNT,
        WINDOW,
    );
    assert_eq!(run.requests, COUNT);
    assert_eq!(run.bytes, u64::from(PAGES) * PAGE.bytes() * COUNT as u64);
    assert_eq!(run.failed, 0);
    assert_eq!(run.wall.as_ns(), GOLDEN_WALL_NS, "wall clock drifted");
}

/// Pinned against the pre-refactor closure scheduler (same inputs);
/// re-pin with `cargo test -p memif-bench print_golden_probe -- --ignored --nocapture`.
const GOLDEN_WALL_NS: u64 = 3_493_595;

#[test]
#[ignore]
fn print_golden_probe() {
    let cost = CostModel::keystone_ii();
    let run = stream_memif(
        &cost,
        MemifConfig::default(),
        ShapeKind::Replicate,
        PAGE,
        PAGES,
        COUNT,
        WINDOW,
    );
    println!(
        "wall_ns={} gbps={:.6}",
        run.wall.as_ns(),
        run.throughput_gbps
    );
}

/// Four transfer controllers must beat one on aggregate DMA throughput
/// for a deep window of large requests — the whole point of multi-TC
/// dispatch.
#[test]
fn four_tcs_outrun_one() {
    let one = CostModel::keystone_ii();
    let mut four = CostModel::keystone_ii();
    four.dma_tc_count = 4;
    let pages = 256;
    let a = stream_memif(
        &one,
        MemifConfig::default(),
        ShapeKind::Replicate,
        PAGE,
        pages,
        COUNT,
        WINDOW,
    );
    let b = stream_memif(
        &four,
        MemifConfig::default(),
        ShapeKind::Replicate,
        PAGE,
        pages,
        COUNT,
        WINDOW,
    );
    assert!(
        b.throughput_gbps > a.throughput_gbps * 1.05,
        "4 TCs ({:.3} GB/s) should clearly beat 1 TC ({:.3} GB/s)",
        b.throughput_gbps,
        a.throughput_gbps
    );
}

/// A bandwidth brownout on the middle tier (DRAM, rank 1 of the
/// four-tier ladder) must degrade the waterfall gracefully — moves
/// route through or wait, every issued hop reaches exactly one
/// terminal status — and deterministically: the run is pinned
/// byte-for-byte by its event trace across replays.
#[test]
fn middle_tier_brownout_replays_byte_identically() {
    use std::collections::HashSet;

    use memif::{Brownout, NodeId, SimDuration, SimTime};

    let browned = ScenarioConfig {
        mode: Mode::Async,
        tiers: 4,
        regions: 24,
        hot: 4,
        warm: 8,
        carry: 2,
        phases: 2,
        ticks_per_phase: 12,
        log_events: true,
        faults: Some(FaultPlan {
            brownouts: vec![Brownout {
                node: NodeId(0),
                start: SimTime::from_ns(1_000_000),
                duration: SimDuration::from_ns(6_000_000),
                factor: 0.2,
            }],
            ..FaultPlan::default()
        }),
        ..ScenarioConfig::default()
    };
    let clean = ScenarioConfig {
        faults: None,
        ..browned.clone()
    };

    let cost = CostModel::keystone_ii();
    let a = run_scenario(&cost, &browned);
    let b = run_scenario(&cost, &browned);

    // Event-trace pin: same config, same bytes.
    assert!(!a.events.is_empty(), "the trace actually recorded");
    assert_eq!(a.events, b.events, "brownout runs must replay identically");
    assert_eq!(a.statuses, b.statuses);
    assert_eq!(a.wall, b.wall);

    // Graceful degradation: the application does all its work, the
    // brownout only slows the middle tier down.
    // (Wall clock is *not* monotone in the fault: throttling a tier
    // redirects the placement trajectory, which can win back more than
    // the lost bandwidth — so only work conservation is asserted.)
    let reference = run_scenario(&cost, &clean);
    assert_eq!(a.ticks, reference.ticks, "no application work lost");
    assert_ne!(
        a.events, reference.events,
        "the brownout must be visible in the trace"
    );

    // Exactly-once: every issued hop reaches one terminal status, and
    // none reaches two.
    let distinct: HashSet<u64> = a.statuses.iter().map(|(id, _)| *id).collect();
    assert_eq!(distinct.len(), a.statuses.len(), "no request retires twice");
    assert_eq!(
        a.statuses.len() as u64,
        a.driver.completed + a.driver.failed,
        "no request is lost: {:?}",
        a.driver
    );
}
