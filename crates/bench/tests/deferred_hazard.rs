//! Issue-time overlap hazard guard regression (found by chaos testing).
//!
//! A batched migrate stream whose combined completion interrupt is lost
//! leaves 16 requests parked on their (large, combined-byte-scaled)
//! watchdog while younger batches finish. The streaming application
//! legally reuses a region slot as soon as *any* completion frees a
//! window slot, so a new migration of the stuck requests' region
//! arrives while they are still in flight. Without the guard the new
//! request's plan overwrites the stuck request's semi-final PTEs and
//! every member of the stuck batch terminates `Raced`; with it, the
//! conflicting request defers until the in-flight one retires.

use memif::{FaultPlan, MemifConfig};
use memif_bench::stream_memif_with_faults;
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

/// The exact chaos mix that exposed the hazard: 20% mid-flight DMA
/// errors plus 1% lost completion interrupts, seed 9. Deterministic.
#[test]
fn lost_batch_completion_does_not_race_region_reuse() {
    let cost = CostModel::keystone_ii();
    let config = MemifConfig {
        batch_max: 16,
        coalesce: true,
        ..MemifConfig::default()
    };
    let plan = FaultPlan {
        dma_error_rate: 0.2,
        drop_rate: 0.01,
        ..FaultPlan::new(9)
    };
    let run = stream_memif_with_faults(
        &cost,
        config,
        ShapeKind::Migrate,
        PageSize::Small4K,
        16,
        256,
        32,
        Some(plan),
    );
    assert_eq!(run.requests, 256, "every request reaches a terminal state");
    assert_eq!(
        run.failed, 0,
        "a lost completion must never fail requests that only raced \
         with the driver's own recovery"
    );
    assert!(
        run.stats.requests_deferred > 0,
        "the scenario must actually exercise the hazard guard \
         (a region reused while its previous request was in flight)"
    );
}

/// With the submission window comfortably wider than the batch, in-order
/// (fault-free) completions never create an overlap hazard, so the
/// guard is invisible to the default and E12 measurement paths. (A
/// window no wider than the batch *can* defer fault-free: the batch
/// retires its members one release event at a time, and a resubmission
/// landing between two of them overlaps a not-yet-released member —
/// precisely the hazard the guard serializes.)
#[test]
fn fault_free_streams_never_defer() {
    let cost = CostModel::keystone_ii();
    for (batch_max, coalesce) in [(1, false), (16, true)] {
        let config = MemifConfig {
            batch_max,
            coalesce,
            ..MemifConfig::default()
        };
        let run = stream_memif_with_faults(
            &cost,
            config,
            ShapeKind::Migrate,
            PageSize::Small4K,
            16,
            128,
            32,
            None,
        );
        assert_eq!(run.failed, 0);
        assert_eq!(
            run.stats.requests_deferred, 0,
            "in-order completions never create an overlap hazard"
        );
    }
}
