//! E17: event-core dispatch speed — the timing wheel vs the old heap.
//!
//! Two tables:
//!
//! * **E17a — microbench, the asserted bar.** A dispatch-dominated
//!   steady state at 10⁶ pending events: every iteration pops the
//!   earliest event and schedules a short-horizon replacement, plus
//!   four cancel+reschedules of a fixed ring of rearm timers (the
//!   flow-network rearm pattern, the dominant cancel workload in real
//!   runs). The identical deterministic op script drives both the
//!   production hierarchical timing wheel (`memif_hwsim::Sim`) and a
//!   private copy of the pre-PR-8 `BinaryHeap` + tombstone-set
//!   scheduler. The acceptance bar asserts the wheel dispatches **≥ 5×**
//!   faster — a relative bar, so it holds across host speeds. `--quick`
//!   trims the measured iteration count but keeps the 10⁶ pending pool,
//!   so CI exercises the same regime.
//!
//! * **E17b — macro rows.** Fig8-class streaming workloads timed with
//!   the host clock, reporting simulated events per host-second plus
//!   the new scheduler counters (`events_executed`, `events_cancelled`,
//!   `peak_pending`) so the metronome's speed is pinned in the same
//!   table family as every other experiment.
//!
//! Expected shape: the heap pays ~log₂(10⁶) ≈ 20 cache-missing sift
//! steps per pop plus tombstone churn on every cancel; the wheel pays a
//! bitmap scan and an O(1) unlink, so the micro gap is well past the
//! 5× bar. The macro rows show the other side of the story: once
//! events carry real driver work, the scheduler stops being the
//! bottleneck at all — which is exactly what the refactor buys.

use std::time::Instant;

use memif::MemifConfig;
use memif_bench::{stream_memif, Table};
use memif_hwsim::{CostModel, EventWorld, Sim, SimDuration, SimTime};
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

/// Pending-pool size for the microbench (the bar's "at 10⁶ pending").
const PENDING: usize = 1_000_000;
/// Rearm-timer ring size: a fixed set of timers that are cancelled and
/// rescheduled, modelling the flow network's completion timers.
const CHURN_WINDOW: usize = 4096;
/// Cancel+reschedule pairs per dispatched event. The flow network
/// rearms its completion timer on every start/finish/capacity change,
/// so in real runs most scheduled timers are cancelled before firing;
/// 4:1 mirrors that regime.
const CHURN_PER_DISPATCH: usize = 4;
/// How far ahead rearm timers land. Far enough that a ring slot is
/// almost always rearmed again before it fires (its mean rearm period
/// is ~2 µs of virtual time), near enough that the heap baseline's
/// tombstones are eventually popped — the comparison measures dispatch
/// and churn, not the old scheduler's unbounded tombstone leak.
const TIMER_HORIZON_NS: u64 = 10_000;

/// Deterministic 64-bit LCG (same constants as PCG's state update);
/// the bench must not depend on `rand`, and both schedulers must see
/// the identical op script.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// The pre-PR-8 scheduler, verbatim in spirit: `BinaryHeap` ordered by
/// `(time, insertion id)` with a `HashSet` tombstone set consulted on
/// every pop. Kept here as the measured baseline (the differential
/// *correctness* oracle lives in `memif_hwsim::sim`'s tests).
mod heap_baseline {
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    use memif_hwsim::SimTime;

    struct Scheduled {
        time: SimTime,
        id: u64,
    }

    impl PartialEq for Scheduled {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.id == other.id
        }
    }
    impl Eq for Scheduled {}
    impl PartialOrd for Scheduled {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Scheduled {
        fn cmp(&self, other: &Self) -> Ordering {
            other.time.cmp(&self.time).then(other.id.cmp(&self.id))
        }
    }

    #[derive(Default)]
    pub struct HeapSim {
        now: SimTime,
        heap: BinaryHeap<Scheduled>,
        next_id: u64,
        cancelled: HashSet<u64>,
        pub executed: u64,
    }

    impl HeapSim {
        pub fn schedule_at(&mut self, at: SimTime) -> u64 {
            let id = self.next_id;
            self.next_id += 1;
            self.heap.push(Scheduled { time: at, id });
            id
        }

        pub fn cancel(&mut self, id: u64) {
            self.cancelled.insert(id);
        }

        pub fn step(&mut self) -> bool {
            while let Some(ev) = self.heap.pop() {
                if self.cancelled.remove(&ev.id) {
                    continue;
                }
                self.now = ev.time;
                self.executed += 1;
                return true;
            }
            false
        }

        pub fn now(&self) -> SimTime {
            self.now
        }
    }
}

/// Minimal world for the wheel side: dispatch counts and nothing else,
/// so the measurement isolates the scheduler.
#[derive(Default)]
struct CountWorld {
    dispatched: u64,
}

impl EventWorld for CountWorld {
    type Event = ();
    fn dispatch(&mut self, _sim: &mut Sim<Self>, (): ()) {
        self.dispatched += 1;
    }
}

/// Spread for the initial 10⁶-event pool (≈ 0.5 events/ns), and the
/// short horizon for steady-state dispatch-pool replacements.
fn ramp_at(rng: &mut Lcg) -> u64 {
    1 + rng.next() % 2_000_000
}
fn rearm_delta(rng: &mut Lcg) -> u64 {
    1 + rng.next() % 2_048
}

/// One measured steady-state run over the wheel. Returns elapsed
/// host-seconds for `measure` dispatches over a constant 10⁶-event
/// pending pool: every dispatch schedules a replacement, and each of
/// the ring's rearm timers is cancelled+rescheduled before it fires,
/// so the pool neither drains nor drifts.
fn drive_wheel(measure: u64) -> (f64, Sim<CountWorld>) {
    let mut sim: Sim<CountWorld> = Sim::new();
    let mut world = CountWorld::default();
    let mut rng = Lcg(42);
    for _ in 0..PENDING {
        sim.schedule_at(SimTime::from_ns(ramp_at(&mut rng)), ());
    }
    let mut timers: Vec<_> = (0..CHURN_WINDOW)
        .map(|_| {
            let at = SimTime::from_ns(TIMER_HORIZON_NS + rearm_delta(&mut rng));
            sim.schedule_at(at, ())
        })
        .collect();
    assert_eq!(
        sim.pending(),
        PENDING + CHURN_WINDOW,
        "pool must hold 10^6 pending"
    );
    let t0 = Instant::now();
    for _ in 0..measure {
        assert!(sim.step(&mut world));
        let at = sim.now() + SimDuration::from_ns(rearm_delta(&mut rng));
        sim.schedule_at(at, ());
        for _ in 0..CHURN_PER_DISPATCH {
            let t = rng.next() as usize % CHURN_WINDOW;
            sim.cancel(timers[t]);
            let at = sim.now() + SimDuration::from_ns(TIMER_HORIZON_NS + rearm_delta(&mut rng));
            timers[t] = sim.schedule_at(at, ());
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(world.dispatched, measure);
    (secs, sim)
}

/// The identical op script over the heap baseline.
fn drive_heap(measure: u64) -> (f64, heap_baseline::HeapSim) {
    let mut sim = heap_baseline::HeapSim::default();
    let mut rng = Lcg(42);
    for _ in 0..PENDING {
        sim.schedule_at(SimTime::from_ns(ramp_at(&mut rng)));
    }
    let mut timers: Vec<_> = (0..CHURN_WINDOW)
        .map(|_| {
            let at = SimTime::from_ns(TIMER_HORIZON_NS + rearm_delta(&mut rng));
            sim.schedule_at(at)
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..measure {
        assert!(sim.step());
        let at = sim.now() + SimDuration::from_ns(rearm_delta(&mut rng));
        sim.schedule_at(at);
        for _ in 0..CHURN_PER_DISPATCH {
            let t = rng.next() as usize % CHURN_WINDOW;
            sim.cancel(timers[t]);
            let at = sim.now() + SimDuration::from_ns(TIMER_HORIZON_NS + rearm_delta(&mut rng));
            timers[t] = sim.schedule_at(at);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(sim.executed, measure);
    (secs, sim)
}

fn main() {
    // `--quick` trims the measured iterations for CI smoke runs but
    // keeps the 10^6-event pool and the same acceptance bar.
    let quick = std::env::args().any(|a| a == "--quick");
    let measure: u64 = if quick { 200_000 } else { 2_000_000 };

    // E17a: dispatch-dominated micro, wheel vs heap on one op script.
    let (heap_secs, heap) = drive_heap(measure);
    let (wheel_secs, wheel) = drive_wheel(measure);
    // Both ran the same script, so virtual time must agree exactly —
    // a correctness tripwire inside the perf bench.
    assert_eq!(
        wheel.now(),
        heap.now(),
        "schedulers diverged on the same op script"
    );
    let speedup = heap_secs / wheel_secs;

    let mut micro = Table::new(
        format!("E17a: dispatch throughput at 10^6 pending ({measure} dispatches, rearm churn)"),
        &["scheduler", "Mdisp/s", "host-ms", "speedup"],
    );
    for (name, secs) in [("binary-heap", heap_secs), ("timing-wheel", wheel_secs)] {
        micro.row(&[
            name.to_owned(),
            format!("{:.2}", measure as f64 / secs / 1e6),
            format!("{:.1}", secs * 1e3),
            format!("{:.1}x", heap_secs / secs),
        ]);
    }
    micro.print();
    micro.write_csv("e17_simspeed_micro");
    // The asserted perf bar: scheduler regressions fail CI like any
    // other experiment regression.
    assert!(
        speedup >= 5.0,
        "timing wheel is only {speedup:.1}x the heap at 10^6 pending \
         (bar: >= 5x)"
    );

    // E17b: fig8-class macro rows, host-clocked. The single-page
    // unbatched stream is the most event-dense shape the figure family
    // has (every request exercises the full ioctl → launch → DMA →
    // completion chain plus flow-timer rearms); the batched 64-page
    // stream shows the other extreme, where each event carries a whole
    // batch and the scheduler is far from the bottleneck.
    let cost = CostModel::keystone_ii();
    let mut macro_table = Table::new(
        "E17b: fig8-class macro runs, host-clocked",
        &[
            "config",
            "GB/s",
            "sim-events",
            "cancelled",
            "peak-pending",
            "kev/s-host",
        ],
    );
    let shapes: &[(&str, MemifConfig, ShapeKind, u32, usize, usize)] = &[
        (
            "migrate 4K x 1 page",
            MemifConfig::default(),
            ShapeKind::Migrate,
            1,
            if quick { 2_048 } else { 16_384 },
            32,
        ),
        (
            "replicate 4K x 64, batch 16",
            MemifConfig {
                batch_max: 16,
                coalesce: true,
                ..MemifConfig::default()
            },
            ShapeKind::Replicate,
            64,
            if quick { 192 } else { 1_024 },
            16,
        ),
    ];
    let mut dense_run = None;
    for (label, config, kind, pages, count, window) in shapes {
        let t0 = Instant::now();
        let run = stream_memif(
            &cost,
            config.clone(),
            *kind,
            PageSize::Small4K,
            *pages,
            *count,
            *window,
        );
        let host_secs = t0.elapsed().as_secs_f64();
        assert_eq!(run.requests, *count, "every request terminates");
        assert!(run.events_executed > 0, "macro run must execute events");
        assert!(run.peak_pending > 0, "macro run must queue events");
        macro_table.row(&[
            format!("{label} x{count}"),
            format!("{:.2}", run.throughput_gbps),
            run.events_executed.to_string(),
            run.events_cancelled.to_string(),
            run.peak_pending.to_string(),
            format!("{:.0}", run.events_executed as f64 / host_secs / 1e3),
        ]);
        if dense_run.is_none() {
            dense_run = Some((run, host_secs));
        }
    }
    macro_table.print();
    macro_table.write_csv("e17_simspeed_macro");
    let (run, host_secs) = dense_run.expect("macro rows ran");

    println!(
        "Shape checks: at a 10^6-event pending pool the timing wheel dispatches \
         {speedup:.1}x faster than the old binary heap (bar: 5x) while agreeing \
         with it tick-for-tick, and the event-dense fig8-class stream executes \
         {} simulated events at {:.0}k events per host-second.",
        run.events_executed,
        run.events_executed as f64 / host_secs / 1e3,
    );
}
