//! E16: the N-tier memory waterfall — ranked placement vs the classic
//! two-tier policy on the same four-tier machine.
//!
//! The machine is the ranked ladder ([`memif_hwsim::Topology::ranked`]):
//! SRAM (tier 0), DRAM (tier 1), NVM (tier 2), and a compressed zram
//! floor (tier 3). The workload is a tiered phased hot-set: a region
//! pool homed on NVM with a hot set streamed every tick and a warm halo
//! touched every fourth tick — together larger than SRAM, so placement
//! faces genuine capacity pressure. Three regimes run the identical
//! application:
//!
//! * **none** — no policy; everything streams from NVM;
//! * **2-tier** — the classic fast/slow daemon (SRAM + NVM home): the
//!   hot set is served well, but the warm halo has nowhere to go once
//!   SRAM's watermark fills;
//! * **4-tier** — the waterfall over all ranks: hot climbs to SRAM,
//!   the warm overflow settles on DRAM, and frozen regions sink to the
//!   compressed floor (paying costed compress/decompress work) via
//!   chained multi-hop moves with cascade retries.
//!
//! A brownout row repeats the 4-tier run with the DRAM tier browned out
//! mid-run: the waterfall degrades gracefully — no lost or doubled
//! terminal statuses.
//!
//! Acceptance: 4-tier must beat 2-tier and no-policy outright on
//! end-to-end runtime under the capacity-pressure cascade, and the
//! 4-tier run must show nonzero compress time in the meter's
//! attribution (the floor is actually exercised).

use std::collections::HashSet;

use memif::{Brownout, FaultPlan, NodeId, SimDuration, SimTime};
use memif_bench::Table;
use memif_hwsim::CostModel;
use memif_policy::{run_scenario, Mode, ScenarioConfig, ScenarioResult};

/// The capacity-pressure workload: 12 MiB pool on NVM, 2 MiB hot set,
/// 6 MiB warm halo — hot + warm exceed SRAM's 5.4 MiB watermark, so
/// the warm class needs a middle tier to live on.
fn scenario(quick: bool, policy_tiers: usize) -> ScenarioConfig {
    let (phases, ticks_per_phase) = if quick { (3, 16) } else { (6, 32) };
    ScenarioConfig {
        mode: if policy_tiers == 1 {
            Mode::None
        } else {
            Mode::Async
        },
        tiers: 4,
        policy_tiers,
        regions: 48,
        hot: 4,
        warm: 24,
        carry: 2,
        phases,
        ticks_per_phase,
        policy: memif_policy::PolicyConfig {
            // Ticks here are ~25x slower than E14's while everything
            // still streams from NVM; the epoch must comfortably cover
            // one hot-set rotation or promoted regions alias cold.
            epoch: memif::SimDuration::from_ns(4_000_000),
            ..memif_policy::PolicyConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

fn row(table: &mut Table, label: &str, r: &ScenarioResult, base: &ScenarioResult) {
    table.row(&[
        label.to_owned(),
        format!("{:.2}", r.wall.as_ns() as f64 / 1e6),
        format!("{:.2}x", base.wall.as_ns() as f64 / r.wall.as_ns() as f64),
        r.tier_ticks
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/"),
        format!("{}+{}", r.policy.promotions, r.policy.demotions),
        r.policy.cascades.to_string(),
        format!("{:.2}", r.compress_busy.as_ns() as f64 / 1e6),
        format!("{:.2}", r.decompress_busy.as_ns() as f64 / 1e6),
    ]);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cost = CostModel::keystone_ii();

    let none = run_scenario(&cost, &scenario(quick, 1));
    let two = run_scenario(&cost, &scenario(quick, 2));
    let four = run_scenario(&cost, &scenario(quick, 0));
    let browned = {
        let mut cfg = scenario(quick, 0);
        // DRAM (node 0, tier 1) browns out to quarter speed mid-run.
        cfg.faults = Some(FaultPlan {
            brownouts: vec![Brownout {
                node: NodeId(0),
                start: SimTime::from_ns(2_000_000),
                duration: SimDuration::from_ns(4_000_000),
                factor: 0.25,
            }],
            ..FaultPlan::default()
        });
        run_scenario(&cost, &cfg)
    };

    let mut table = Table::new(
        "E16: tiered phased hot-set by placement regime (4-tier ladder)",
        &[
            "regime",
            "wall ms",
            "vs none",
            "ticks@tier0-3",
            "pro+dem",
            "cascades",
            "comp ms",
            "decomp ms",
        ],
    );
    row(&mut table, "none", &none, &none);
    row(&mut table, "2-tier", &two, &none);
    row(&mut table, "4-tier", &four, &none);
    row(&mut table, "4-tier+brownout", &browned, &none);
    table.print();
    table.write_csv("e16_waterfall");

    for (label, r) in [("none", &none), ("2-tier", &two), ("4-tier", &four)] {
        assert_eq!(
            r.policy.moves_failed, 0,
            "{label}: fault-free runs must not fail moves"
        );
        assert_eq!(r.ticks, none.ticks, "{label}: identical application work");
    }
    assert_eq!(none.fast_ticks, 0, "no policy leaves everything on NVM");
    assert!(
        four.policy.cascades > 0,
        "the waterfall cascaded under pressure: {:?}",
        four.policy
    );
    assert!(
        four.compress_busy.as_ns() > 0,
        "the compressed floor was exercised and its codec work priced"
    );
    assert!(
        four.tiers
            .iter()
            .any(|t| t.kind == "compressed" && t.moves_in > 0),
        "moves actually landed on the floor: {:?}",
        four.tiers
    );

    // The acceptance bars: more ranks must pay for themselves.
    assert!(
        four.wall < two.wall,
        "4-tier ({:?}) must beat the classic 2-tier policy ({:?})",
        four.wall,
        two.wall,
    );
    assert!(
        four.wall < none.wall,
        "4-tier ({:?}) must beat no policy ({:?})",
        four.wall,
        none.wall,
    );
    // Brownouts degrade bandwidth, never correctness: every issued hop
    // reaches exactly one terminal status.
    let distinct: HashSet<u64> = browned.statuses.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        distinct.len(),
        browned.statuses.len(),
        "no request retires twice"
    );
    assert_eq!(
        browned.statuses.len() as u64,
        browned.driver.completed + browned.driver.failed,
        "no request is lost: {:?}",
        browned.driver
    );

    println!(
        "Shape checks: the waterfall serves {}/{} streams from SRAM+DRAM \
         (vs {} under the 2-tier policy), sinks frozen regions to zram \
         ({:.2} ms of codec time), and beats the 2-tier regime {:.2}x \
         end-to-end.",
        four.tier_ticks[0] + four.tier_ticks[1],
        four.tier_ticks.iter().sum::<u64>(),
        two.tier_ticks[0] + two.tier_ticks[1],
        (four.compress_busy.as_ns() + four.decompress_busy.as_ns()) as f64 / 1e6,
        two.wall.as_ns() as f64 / four.wall.as_ns() as f64,
    );
}
