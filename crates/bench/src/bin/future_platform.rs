//! E9: the paper's forward-looking prediction, tested.
//!
//! §6.7: "We expect the limitations to disappear from emerging
//! platforms as large fast memory and medium/large pages become
//! pervasive. For instance, fast memory is expected to be as large as
//! 1/8 of the main memory. With them, memif will substantially benefit
//! a much wider range of applications."
//!
//! This binary runs the Table 4 streaming workloads on three platforms:
//!
//! 1. **KeyStone II** as evaluated (6 MiB fast bank, 4 KiB pages);
//! 2. the same machine with **medium (64 KiB) pages** available to the
//!    runtime — the per-page driver cost amortizes 16×;
//! 3. a **future platform**: fast memory = 1/8 of an 8 GiB main memory
//!    (1 GiB, die-stacked-DRAM-like bandwidth) *and* 64 KiB pages, with
//!    a correspondingly faster DMA path.

use memif::{Memif, MemifConfig, NodeId, Sim, System};
use memif_bench::{mbs, Table};
use memif_hwsim::{CostModel, MemoryKind, MemoryNode, PhysAddr, TierRank, Topology};
use memif_mm::PageSize;
use memif_runtime::{KernelProfile, Placement, StreamConfig, StreamRuntime};
use memif_workloads::table4_kernels;

fn future_topology() -> Topology {
    Topology::must_custom(
        vec![
            MemoryNode {
                id: NodeId(0),
                name: "ddr4".to_owned(),
                kind: MemoryKind::Slow,
                tier: TierRank(1),
                base: PhysAddr::new(0x8_0000_0000),
                bytes: 8 << 30,
                bandwidth_gbps: 6.2,
                boot_visible: true,
            },
            MemoryNode {
                id: NodeId(1),
                name: "stacked-dram".to_owned(),
                kind: MemoryKind::Fast,
                tier: TierRank(0),
                base: PhysAddr::new(0x0C00_0000),
                bytes: 1 << 30, // 1/8 of main memory, as the paper expects
                bandwidth_gbps: 48.0,
                boot_visible: false,
            },
        ],
        4,
    )
}

fn future_cost() -> CostModel {
    // Same software stack; the hardware path to the stacked DRAM is
    // wider (the EDMA successor sustains more m2m bandwidth), and the
    // CPUs stream faster from it.
    CostModel {
        name: "future-platform".to_owned(),
        dma_engine_bw_gbps: 5.5,
        cpu_stream_fast_gbps: 16.0,
        ..CostModel::keystone_ii()
    }
}

fn run(
    sys_factory: &dyn Fn() -> System,
    placement: Placement,
    page_size: PageSize,
    kernel: KernelProfile,
) -> f64 {
    let mut sys = sys_factory();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = match placement {
        Placement::MemifPrefetch => {
            Some(Memif::open(&mut sys, space, MemifConfig::default()).unwrap())
        }
        Placement::SlowOnly => None,
    };
    // Keep the buffer array at 2 MiB regardless of page size.
    let buffer_pages = (2u64 << 20) / 8 / page_size.bytes();
    let config = StreamConfig {
        placement,
        page_size,
        buffer_pages: buffer_pages as u32,
        num_buffers: 8,
        total_input: 64 << 20,
        cores: 4,
    };
    let rt = StreamRuntime::launch(&mut sys, &mut sim, space, memif, config, kernel);
    sim.run(&mut sys);
    rt.report().traffic_gbps
}

fn main() {
    let keystone = || System::keystone_ii();
    let future = || System::with_profile(future_topology(), future_cost());

    let mut table = Table::new(
        "E9: the paper's future-platform prediction (workload MB/s)",
        &["kernel", "platform", "linux", "memif", "gain"],
    );
    type Factory<'a> = &'a dyn Fn() -> System;
    let platforms: &[(&str, Factory, PageSize)] = &[
        ("keystone-ii / 4KB", &keystone, PageSize::Small4K),
        ("keystone-ii / 64KB", &keystone, PageSize::Medium64K),
        ("future (1GiB fast) / 64KB", &future, PageSize::Medium64K),
    ];

    for kernel in table4_kernels() {
        for (name, factory, page_size) in platforms {
            let linux = run(factory, Placement::SlowOnly, *page_size, kernel.clone());
            let memif_run = run(
                factory,
                Placement::MemifPrefetch,
                *page_size,
                kernel.clone(),
            );
            table.row(&[
                kernel.name.clone(),
                (*name).to_owned(),
                mbs(linux),
                mbs(memif_run),
                format!("{:+.1}%", (memif_run / linux - 1.0) * 100.0),
            ]);
        }
    }
    table.print();
    table.write_csv("future_platform");

    println!(
        "Prediction check (§6.7): moving from 4 KiB to 64 KiB pages amortizes the\n\
         per-page driver cost 16x and lifts every gain; the future platform's wider\n\
         fast-memory path lifts them further. memif's benefit widens exactly as the\n\
         authors expected."
    );
}
