//! E15: crash-detectable moves over the persistent NVM tier.
//!
//! Two questions, two tables:
//!
//! * **E15a — what does the journal cost when nothing crashes?** The
//!   Figure 8 streaming workload ping-pongs between DDR and the NVM
//!   node with the write-ahead move journal off vs on. Every issued
//!   request pays two persistent `journal_write`s (append at issue,
//!   seal at retire), so the bar is a small constant per request; the
//!   asserted acceptance is **< 15% wall-clock overhead** at 4 KB × 16
//!   pages — the worst case in the sweep, since smaller requests
//!   amortize the least.
//!
//! * **E15b — does recovery terminate every move exactly once?** For
//!   each crash point a journaled run is crashed mid-stream, recovered
//!   (`System::recover`), and re-driven per the WAL contract; the run
//!   must converge to the uncrashed reference: every request `Done`
//!   exactly once, identical final placement, byte-identical region
//!   contents, balanced allocator. These are the same invariants the
//!   `recovery` proptest sweeps; here they gate the experiment binary
//!   so a regression fails CI's tier-2 smoke (`e15_recovery --quick`).
//!
//! Expected shape: journaling costs low-single-digit percent;
//! submit/post-launch crashes roll everything back (nothing reached the
//! destination), pre-retire crashes roll forward (bytes already on
//! NVM), post-retire crashes only re-report sealed statuses.

use memif::{CrashPlan, CrashPoint, MemifConfig, MoveStatus};
use memif_bench::{crash_migrate_nvm, stream_memif_nvm, CrashOutcome, Table};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

const PAGE: PageSize = PageSize::Small4K;
const PAGES: u32 = 16;
const WINDOW: usize = 8;

fn journal_config(journal: bool) -> MemifConfig {
    MemifConfig {
        journal,
        batch_max: 4,
        coalesce: true,
        ..MemifConfig::default()
    }
}

fn main() {
    // `--quick` trims the workload for CI smoke runs; the default run
    // is untouched so published tables stay reproducible byte-for-byte.
    let quick = std::env::args().any(|a| a == "--quick");
    let cost = CostModel::keystone_ii();
    let count = if quick { 48 } else { 256 };

    // E15a: journaling overhead on the fault-free hot path.
    let mut overhead = Table::new(
        "E15a: write-ahead journal overhead (DDR<->NVM stream, 4K x 16 pages/req)",
        &["journal", "GB/s", "wall-ms", "overhead", "cpu"],
    );
    let mut base_wall = 0u64;
    for journal in [false, true] {
        let run = stream_memif_nvm(
            &cost,
            journal_config(journal),
            ShapeKind::Migrate,
            PAGE,
            PAGES,
            count,
            WINDOW,
        );
        assert_eq!(run.requests, count, "every request terminates");
        assert_eq!(run.failed, 0, "fault-free runs must not fail requests");
        let wall = run.wall.as_ns();
        if !journal {
            base_wall = wall;
        }
        let over = wall as f64 / base_wall.max(1) as f64 - 1.0;
        overhead.row(&[
            journal.to_string(),
            format!("{:.2}", run.throughput_gbps),
            format!("{:.2}", wall as f64 / 1e6),
            format!("{:+.2}%", over * 100.0),
            format!("{:.2}", run.cpu_usage),
        ]);
        // The asserted recovery-overhead bar: durable exactly-once
        // moves for under 15% of the hot path.
        assert!(
            over < 0.15,
            "journaling overhead {:.1}% exceeds the 15% acceptance bar",
            over * 100.0
        );
    }
    overhead.print();
    overhead.write_csv("e15_recovery_overhead");

    // E15b: crash at every lifecycle point, recover, re-drive, and
    // compare against the uncrashed reference run.
    let crash_count = if quick { 8 } else { 16 };
    let config = journal_config(true);
    let reference = crash_migrate_nvm(&cost, config.clone(), PAGE, PAGES, crash_count, None);
    let mut crashes = Table::new(
        "E15b: crash -> recover -> re-drive, per crash point (nth=2)",
        &[
            "crash-point",
            "fired",
            "records",
            "sealed-pre",
            "rolled-back",
            "redriven",
            "resubmitted",
            "wall-us",
        ],
    );
    for point in CrashPoint::ALL {
        let run = crash_migrate_nvm(
            &cost,
            config.clone(),
            PAGE,
            PAGES,
            crash_count,
            Some(CrashPlan::at(point, 2)),
        );
        assert_outcome_converged(&run, &reference, point);
        let (records, rolled_back, redriven, sealed_pre) =
            run.recovery.as_ref().map_or((0, 0, 0, 0), |r| {
                (
                    r.journal_records,
                    r.rolled_back,
                    r.redriven,
                    r.journal_records - r.recovered_requests,
                )
            });
        crashes.row(&[
            point.as_str().to_owned(),
            run.crashed.to_string(),
            records.to_string(),
            sealed_pre.to_string(),
            rolled_back.to_string(),
            redriven.to_string(),
            run.resubmitted.to_string(),
            format!("{:.1}", run.wall.as_ns() as f64 / 1e3),
        ]);
    }
    crashes.print();
    crashes.write_csv("e15_recovery_crash");

    println!(
        "Shape checks: journaling stays under the 15% overhead bar while every \
         crash point recovers to the uncrashed reference — each journaled move \
         reaches exactly one terminal status, rolled-back work is re-driven \
         once, roll-forward completes copies that already reached the NVM tier, \
         and final placement, contents, and allocator balance are identical."
    );
}

/// The exactly-once acceptance: a crashed-and-recovered run ends
/// indistinguishable from the reference.
fn assert_outcome_converged(run: &CrashOutcome, reference: &CrashOutcome, point: CrashPoint) {
    let label = point.as_str();
    for (cookie, status) in &run.statuses {
        assert_eq!(
            *status,
            MoveStatus::Done,
            "{label}: request {cookie} did not converge to Done"
        );
    }
    assert_eq!(
        run.placement, reference.placement,
        "{label}: final placement diverged from the uncrashed reference"
    );
    assert_eq!(
        run.fingerprint, reference.fingerprint,
        "{label}: final memory diverged from the uncrashed reference"
    );
    assert_eq!(
        run.free_bytes, reference.free_bytes,
        "{label}: allocator balance diverged (lost or doubled frames)"
    );
}
