//! E13: issue-path sharding — aggregate move rate vs `issue_shards`.
//!
//! The single kernel worker is the issue-side bottleneck for streams of
//! *small* requests: each 4-page move is far below the 512 KB polling
//! threshold, so the worker's CPU pays prep + remap + DMA config *and*
//! the timed-sleep completion poll for every request, while the
//! transfer itself is over in microseconds. Sharding the staging/
//! submission pair and the worker S ways gives the device S issue CPUs
//! that contend only for the shared transfer controllers and the
//! descriptor pool.
//!
//! The workload is the disjoint-region multi-tenant stream: a window of
//! independent mmapped regions, each request touching exactly one.
//! Region-affinity routing spreads the regions across shards, so
//! shards=1 reproduces the seed driver and shards=4 issues four
//! requests' kernel work concurrently (4 transfer-controller channels
//! keep the engine out of the way).
//!
//! Expected shape: aggregate completed-moves/sec scales to >= 2x at
//! shards=4 (the acceptance assertion), per-shard worker busy time
//! stays balanced, and `cross_shard_deferred` stays 0 — disjoint
//! regions never hit the cross-shard hazard guard. E13b pins the other
//! side: a single-region stream routes every request to one shard, so
//! extra shards must *not* break same-region FIFO serialization (the
//! move rate stays flat and the idle shards stay idle).

use memif::{MemifConfig, SimDuration};
use memif_bench::{stream_memif_with_faults, Table};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

const PAGE: PageSize = PageSize::Small4K;
const PAGES: u32 = 4; // 16 KB per request: firmly in polling territory
const WINDOW: usize = 32;

fn config(issue_shards: usize) -> MemifConfig {
    MemifConfig {
        issue_shards,
        ..MemifConfig::default()
    }
}

fn moves_per_sec(run: &memif_bench::StreamResult) -> f64 {
    run.requests as f64 / (run.wall.as_ns().max(1) as f64 / 1e9)
}

fn worker_spread(busy: &[SimDuration]) -> String {
    if busy.is_empty() {
        return "-".to_owned();
    }
    let max = busy.iter().max().copied().unwrap_or_default();
    let min = busy.iter().min().copied().unwrap_or_default();
    format!(
        "{:.0}/{:.0}us",
        min.as_ns() as f64 / 1e3,
        max.as_ns() as f64 / 1e3
    )
}

fn main() {
    // `--quick` trims the sweep for CI smoke runs; the default run is
    // untouched so published tables stay reproducible byte-for-byte.
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cost = CostModel::keystone_ii();
    // Four independent transfer-controller channels, so the engine is
    // never the reason issue-side scaling stalls (E11 studies TCs).
    cost.dma_tc_count = 4;
    let count = if quick { 128 } else { 512 };
    let sweep: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut table = Table::new(
        "E13: move rate vs issue_shards (disjoint regions, 4K x 4 pages/req)",
        &[
            "shards",
            "moves/s",
            "speedup",
            "GB/s",
            "worker-busy min/max",
            "deferred",
            "cross-shard",
            "wakeups",
        ],
    );

    let mut base_rate = 0.0f64;
    let mut base_bytes = 0u64;
    let mut rate_at_4 = 0.0f64;
    for &shards in sweep {
        let run = stream_memif_with_faults(
            &cost,
            config(shards),
            ShapeKind::Migrate,
            PAGE,
            PAGES,
            count,
            WINDOW,
            None,
        );
        assert_eq!(
            run.requests, count,
            "every request reaches a terminal state"
        );
        assert_eq!(run.failed, 0, "fault-free runs must not fail requests");
        assert_eq!(
            run.stats.cross_shard_deferred, 0,
            "disjoint regions must never defer across shards"
        );
        let rate = moves_per_sec(&run);
        if shards == 1 {
            base_rate = rate;
            base_bytes = run.stats.bytes_moved;
        } else {
            assert_eq!(
                run.stats.bytes_moved, base_bytes,
                "sharded runs must move the same bytes"
            );
        }
        if shards == 4 {
            rate_at_4 = rate;
        }
        table.row(&[
            shards.to_string(),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate.max(1e-9)),
            format!("{:.2}", run.throughput_gbps),
            worker_spread(&run.worker_busy),
            run.stats.requests_deferred.to_string(),
            run.stats.cross_shard_deferred.to_string(),
            run.stats.kthread_wakeups.to_string(),
        ]);
    }
    // The acceptance bar: four issue shards must at least double the
    // aggregate move rate on the disjoint-region stream.
    assert!(
        rate_at_4 >= 2.0 * base_rate,
        "shards=4 move rate {rate_at_4:.0}/s must be >= 2x the single-worker \
         rate {base_rate:.0}/s"
    );
    table.print();
    table.write_csv("e13_issue_scaling");

    // E13b: one region, every request serialized behind its
    // predecessor's in-flight spans. Affinity routing sends the whole
    // stream to one shard, so adding shards must change neither the
    // rate (beyond noise) nor correctness — the serialization tests in
    // `deferred_hazard.rs` pin the same invariant under faults.
    let mut single = Table::new(
        "E13b: single-region stream (window=1) — sharding must not help",
        &["shards", "moves/s", "vs-1", "deferred", "cross-shard"],
    );
    let count_b = count / 4;
    let mut base_b = 0.0f64;
    for &shards in if quick {
        &[1usize, 4][..]
    } else {
        &[1usize, 4, 8][..]
    } {
        let run = stream_memif_with_faults(
            &cost,
            config(shards),
            ShapeKind::Migrate,
            PAGE,
            PAGES,
            count_b,
            1,
            None,
        );
        assert_eq!(run.requests, count_b);
        assert_eq!(run.failed, 0);
        assert_eq!(
            run.stats.cross_shard_deferred, 0,
            "a single region lives on a single shard"
        );
        let rate = moves_per_sec(&run);
        if shards == 1 {
            base_b = rate;
        } else {
            // Same-region FIFO means the extra shards sit idle: the
            // rate must not exceed the single-worker rate (identical
            // routing, identical schedule).
            assert!(
                (rate - base_b).abs() / base_b.max(1e-9) < 1e-6,
                "single-region stream must be shard-count invariant \
                 ({rate:.0}/s vs {base_b:.0}/s)"
            );
        }
        single.row(&[
            shards.to_string(),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_b.max(1e-9)),
            run.stats.requests_deferred.to_string(),
            run.stats.cross_shard_deferred.to_string(),
        ]);
    }
    single.print();
    single.write_csv("e13_issue_scaling_single");

    println!(
        "Shape checks: the disjoint-region stream scales superlinearly in issue \
         CPUs until the shared engine bounds it, per-shard worker busy stays \
         balanced under region-affinity routing, and the single-region stream is \
         shard-count invariant — same-region FIFO and the hazard guard never \
         relax."
    );
}
