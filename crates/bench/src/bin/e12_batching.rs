//! E12: request batching and segment coalescing in the DMA issue path.
//!
//! Sweeps `batch_max` x coalescing over the Figure 8 streaming workload
//! (4 KB pages, 16 pages per request, a deep submission window so the
//! kernel thread actually finds compatible neighbors to drain). Regions
//! come from the harness's fresh per-request mmaps, so each request's
//! frames are physically ascending-contiguous — the best case the
//! EDMA3's PaRAM sets were built for.
//!
//! The study measures *issue-side CPU*: the DmaConfig + Interface phase
//! time the driver spends programming descriptors and crossing the
//! user/kernel boundary. Batching amortizes the crossing and the
//! completion interrupt over the whole batch; coalescing collapses each
//! run of contiguous pages into one descriptor so the uncached PaRAM
//! writes shrink with it.
//!
//! Expected shape: batch_max=1 without coalescing reproduces the seed
//! driver exactly (same descriptors, same interrupts). At batch_max=16
//! with coalescing the issue-side CPU drops by well over 2x while
//! throughput holds and every request still reaches the same terminal
//! state — including under an injected DMA error rate (E12b).

use memif::{FaultPlan, MemifConfig, Phase, SimDuration};
use memif_bench::{stream_memif_with_faults, Table};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

const SEED: u64 = 0xE12;
const PAGE: PageSize = PageSize::Small4K;
const PAGES: u32 = 16;
const WINDOW: usize = 32;

fn config(batch_max: usize, coalesce: bool) -> MemifConfig {
    MemifConfig {
        batch_max,
        coalesce,
        ..MemifConfig::default()
    }
}

fn issue_cpu(run: &memif_bench::StreamResult) -> SimDuration {
    run.stats.phases.get(Phase::DmaConfig) + run.stats.phases.get(Phase::Interface)
}

fn main() {
    // `--quick` trims the sweep for CI smoke runs; the default run is
    // untouched so published tables stay reproducible byte-for-byte.
    let quick = std::env::args().any(|a| a == "--quick");
    let cost = CostModel::keystone_ii();
    let bytes_per_req = u64::from(PAGES) * PAGE.bytes();
    let count = if quick {
        64
    } else {
        ((64u64 << 20) / bytes_per_req).clamp(64, 1024) as usize
    };
    let sweep: &[(usize, bool)] = if quick {
        &[(1, false), (16, true)]
    } else {
        &[
            (1, false),
            (1, true),
            (4, false),
            (4, true),
            (16, false),
            (16, true),
        ]
    };

    let mut table = Table::new(
        "E12: issue-side cost vs batch_max x coalescing (4K x 16 pages/req)",
        &[
            "shape",
            "batch",
            "coalesce",
            "GB/s",
            "issue-cpu-us",
            "vs-base",
            "descs",
            "coalesced",
            "batched",
            "irqs+polls",
        ],
    );

    for kind in [ShapeKind::Replicate, ShapeKind::Migrate] {
        let shape = match kind {
            ShapeKind::Replicate => "replicate",
            ShapeKind::Migrate => "migrate",
        };
        let mut base_issue = SimDuration::ZERO;
        let mut base_bytes = 0u64;
        let mut best_issue = SimDuration::ZERO;
        for &(batch, coalesce) in sweep {
            let run = stream_memif_with_faults(
                &cost,
                config(batch, coalesce),
                kind,
                PAGE,
                PAGES,
                count,
                WINDOW,
                None,
            );
            assert_eq!(
                run.requests, count,
                "every request reaches a terminal state"
            );
            assert_eq!(run.failed, 0, "fault-free runs must not fail requests");
            let issue = issue_cpu(&run);
            if batch == 1 && !coalesce {
                base_issue = issue;
                base_bytes = run.stats.bytes_moved;
            } else {
                assert_eq!(
                    run.stats.bytes_moved, base_bytes,
                    "batched/coalesced runs must move the same bytes"
                );
            }
            if batch == 16 && coalesce {
                best_issue = issue;
            }
            table.row(&[
                shape.to_owned(),
                batch.to_string(),
                coalesce.to_string(),
                format!("{:.2}", run.throughput_gbps),
                format!("{:.1}", issue.as_ns() as f64 / 1e3),
                format!(
                    "{:.2}x",
                    base_issue.as_ns() as f64 / issue.as_ns().max(1) as f64
                ),
                run.stats.descriptors_written.to_string(),
                run.stats.segments_coalesced.to_string(),
                run.stats.requests_batched.to_string(),
                (run.interrupts + run.polled).to_string(),
            ]);
        }
        // The acceptance bar: batching + coalescing must at least halve
        // the issue-side CPU on the contiguous-frame workload.
        assert!(
            best_issue.as_ns() * 2 <= base_issue.as_ns(),
            "{shape}: batch 16 + coalesce issue cpu {best_issue} must be \
             <= half of the sequential path's {base_issue}"
        );
    }
    table.print();
    table.write_csv("e12_batching");

    // E12b: the same batched configuration under injected DMA errors.
    // Mid-chain failures must be attributed per request — only requests
    // whose segments had not completed retry (or degrade to the CPU
    // copy); finished batch members keep their success.
    let mut chaos = Table::new(
        "E12b: batch 16 + coalesce under injected DMA errors (replicate)",
        &[
            "error-rate",
            "GB/s",
            "retries",
            "fallbacks",
            "batched",
            "failed",
        ],
    );
    let rates: &[f64] = if quick { &[1e-3] } else { &[1e-4, 1e-3, 1e-2] };
    for &rate in rates {
        let run = stream_memif_with_faults(
            &cost,
            config(16, true),
            ShapeKind::Replicate,
            PAGE,
            PAGES,
            count,
            WINDOW,
            Some(FaultPlan::dma_errors(SEED, rate)),
        );
        assert_eq!(run.requests, count, "no request may be lost or wedged");
        assert_eq!(run.failed, 0, "CPU fallback must keep requests succeeding");
        chaos.row(&[
            format!("{rate:.0e}"),
            format!("{:.2}", run.throughput_gbps),
            run.retries.to_string(),
            run.fallbacks.to_string(),
            run.stats.requests_batched.to_string(),
            run.failed.to_string(),
        ]);
    }
    chaos.print();
    chaos.write_csv("e12_batching_chaos");

    println!(
        "Shape checks: batch 1 without coalescing matches the seed driver; the \
         issue-side CPU (descriptor programming + crossings) falls superlinearly as \
         batching amortizes the ioctl/interrupt pair and coalescing collapses each \
         16-page run into one PaRAM set; all configurations move identical bytes and \
         lose zero requests, with or without injected DMA errors."
    );
}
