//! §2.2 microbenchmark: Linux page-migration throughput.
//!
//! Paper: "In migrating 1500 4KB pages with one mbind() syscall, a
//! server-class ARM SoC shows a throughput of 0.30 GB/sec. On a 2×8
//! Xeon E5-4650 NUMA machine, the same test shows a throughput of
//! 0.66 GB/sec; even when we migrate 1 million pages in one syscall,
//! the throughput is only 1.41 GB/Sec. All observed throughputs are
//! below 10% of the corresponding memory bandwidths."

use memif_baseline::{run_migspeed, MigspeedConfig};
use memif_bench::Table;
use memif_hwsim::{CostModel, NodeId, Topology};
use memif_mm::PageSize;

fn main() {
    let mut table = Table::new(
        "Section 2.2: Linux page migration microbenchmark",
        &[
            "platform",
            "pages/syscall",
            "GB/s",
            "us/page",
            "paper GB/s",
            "% of mem bw",
        ],
    );

    let mut arm_topo = Topology::keystone_ii();
    arm_topo.complete_boot();
    let arm = CostModel::keystone_ii();
    let xeon = CostModel::xeon_e5();

    let mut run = |name: &str, cost: &CostModel, pages: u32, batches: u32, paper: &str| {
        let report = run_migspeed(
            &arm_topo,
            cost,
            MigspeedConfig {
                pages_per_syscall: pages.min(1_500),
                batches: batches.max(pages / pages.min(1_500)),
                page_size: PageSize::Small4K,
                from: NodeId(0),
                to: NodeId(1),
            },
        );
        let pct = report.throughput_gbps / cost.slow_bw_gbps * 100.0;
        table.row(&[
            name.to_owned(),
            pages.to_string(),
            format!("{:.2}", report.throughput_gbps),
            format!("{:.1}", report.per_page_us),
            paper.to_owned(),
            format!("{pct:.1}%"),
        ]);
    };

    run("keystone-ii (ARM)", &arm, 1_500, 1, "0.30");
    run("xeon-e5-4650", &xeon, 1_500, 1, "0.66");
    // The paper's 1 M-page Xeon case benefits from kernel batching
    // effects our constant-cost model does not capture; we run a scaled
    // 24k-page stand-in and report the model's (flat) number. See
    // EXPERIMENTS.md.
    run("xeon-e5-4650", &xeon, 24_000, 16, "1.41");

    table.print();
    let path = table.write_csv("sec2_microbench");
    println!("csv: {}", path.display());
    println!("Check: all throughputs are below 10% of the slow-node bandwidth, the paper's point.");
}
