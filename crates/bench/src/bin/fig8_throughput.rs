//! Figure 8: memory-move throughput across page granularities.
//!
//! Three series per page size, as in the paper: `migspeed` (Linux),
//! memif migration, and memif replication, sweeping pages-per-request.
//! Expected shape (§6.5): except at one 4 KB page per request, memif
//! beats migspeed by at least ~40% for small pages and up to ~3× for
//! large ones; replication exceeds migration because it skips virtual
//! memory management entirely.

use memif::MemifConfig;
use memif_bench::{stream_linux, stream_memif, Table};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

fn main() {
    let cost = CostModel::keystone_ii();
    let sweeps: &[(PageSize, &[u32])] = &[
        (PageSize::Small4K, &[1, 4, 16, 64, 256]),
        (PageSize::Medium64K, &[1, 4, 16, 64]),
        (PageSize::Large2M, &[1, 4, 8]),
    ];

    let mut table = Table::new(
        "Figure 8: move throughput (GB/s)",
        &[
            "page",
            "pages/req",
            "migspeed",
            "memif-migrate",
            "memif-replicate",
            "mig/linux",
        ],
    );

    for (page_size, page_counts) in sweeps {
        for &pages in *page_counts {
            // Move ~64 MiB per point (min 24 requests) to amortize warmup.
            let bytes_per_req = u64::from(pages) * page_size.bytes();
            let count = ((64u64 << 20) / bytes_per_req).clamp(24, 512) as usize;

            let linux = stream_linux(&cost, *page_size, pages, count, 1);
            let mig = stream_memif(
                &cost,
                MemifConfig::default(),
                ShapeKind::Migrate,
                *page_size,
                pages,
                count,
                8,
            );
            let rep = stream_memif(
                &cost,
                MemifConfig::default(),
                ShapeKind::Replicate,
                *page_size,
                pages,
                count,
                8,
            );
            table.row(&[
                page_size.to_string(),
                pages.to_string(),
                format!("{:.2}", linux.throughput_gbps),
                format!("{:.2}", mig.throughput_gbps),
                format!("{:.2}", rep.throughput_gbps),
                format!("{:.2}x", mig.throughput_gbps / linux.throughput_gbps),
            ]);
        }
    }
    table.print();
    table.write_csv("fig8_throughput");

    println!(
        "Shape checks: migspeed is pinned near the ~1 GB/s CPU-copy rate (0.3 GB/s at 4KB \
         once per-page management is added); memif replication > memif migration; the \
         memif advantage grows with page size."
    );
}
