//! Table 4: throughputs of streaming workloads on the mini runtime.
//!
//! Three kernels (StreamCluster.pgain, STREAM.triad, STREAM.add) run
//! twice each: with all data in slow memory ("Linux") and with the
//! memif-backed prefetch-buffer runtime ("Memif"). Paper numbers:
//!
//! |       | pgain  | triad  | add    |
//! |-------|--------|--------|--------|
//! | Linux | 1440.1 | 2384.1 | 2390.1 |
//! | Memif | 1778.4 | 3184.4 | 3186.9 |

use memif::{Memif, MemifConfig, Sim, System};
use memif_bench::{mbs, Table};
use memif_runtime::{KernelProfile, Placement, StreamConfig, StreamReport, StreamRuntime};
use memif_workloads::table4_kernels;

fn run(placement: Placement, kernel: KernelProfile) -> StreamReport {
    // The real 6 MiB SRAM: the buffer array (8 × 256 KiB = 2 MiB) must
    // fit the capacity-limited fast bank, as in the paper.
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = match placement {
        Placement::MemifPrefetch => {
            Some(Memif::open(&mut sys, space, MemifConfig::default()).unwrap())
        }
        Placement::SlowOnly => None,
    };
    let config = StreamConfig {
        placement,
        total_input: 64 << 20,
        ..StreamConfig::default()
    };
    let rt = StreamRuntime::launch(&mut sys, &mut sim, space, memif, config, kernel);
    sim.run(&mut sys);
    rt.report()
}

fn main() {
    let paper: &[(&str, f64, f64)] = &[
        ("StreamCluster.pgain", 1440.1, 1778.4),
        ("STREAM.triad", 2384.1, 3184.4),
        ("STREAM.add", 2390.1, 3186.9),
    ];

    let mut table = Table::new(
        "Table 4: streaming workload throughputs (MB/s)",
        &[
            "kernel",
            "linux",
            "memif",
            "gain",
            "paper-linux",
            "paper-memif",
            "paper-gain",
            "fallback%",
        ],
    );
    for (kernel, (_, p_linux, p_memif)) in table4_kernels().into_iter().zip(paper) {
        let linux = run(Placement::SlowOnly, kernel.clone());
        let memif_run = run(Placement::MemifPrefetch, kernel.clone());
        let gain = memif_run.traffic_gbps / linux.traffic_gbps - 1.0;
        let paper_gain = p_memif / p_linux - 1.0;
        table.row(&[
            kernel.name.clone(),
            mbs(linux.traffic_gbps),
            mbs(memif_run.traffic_gbps),
            format!("{:+.1}%", gain * 100.0),
            format!("{p_linux:.1}"),
            format!("{p_memif:.1}"),
            format!("{:+.1}%", paper_gain * 100.0),
            format!(
                "{:.0}%",
                memif_run.fallback_bytes as f64 / memif_run.input_bytes.max(1) as f64 * 100.0
            ),
        ]);
    }
    table.print();
    table.write_csv("tab4_streaming");

    println!(
        "Shape checks: every kernel gains from the memif runtime; the bandwidth-bound \
         STREAM kernels gain the most; pgain's compute share caps its improvement."
    );
}
