//! E10: throughput under injected DMA faults (degraded-mode study).
//!
//! Repeats the Figure 8 replication/migration workload (4 KB pages,
//! 64 pages per request) while a seeded [`FaultPlan`] errors out a
//! fraction of DMA transfers mid-flight. The hardened driver re-issues
//! each failed transfer up to `max_dma_retries` times with exponential
//! backoff and then falls back to the costed CPU copy (4 µs/page), so
//! every request still completes — the study measures how much
//! throughput survives as the error rate grows.
//!
//! Expected shape: at 1e-4 the retry path absorbs nearly everything and
//! throughput stays within a few percent of fault-free; at 1e-2 repeated
//! retries and CPU-copy fallbacks cost real bandwidth, but *zero*
//! requests are lost or wedged.

use memif::{FaultPlan, MemifConfig};
use memif_bench::{stream_memif, stream_memif_with_faults, Table};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

const SEED: u64 = 0xE10;
const PAGE: PageSize = PageSize::Small4K;
const PAGES: u32 = 64;
const WINDOW: usize = 8;

fn main() {
    // `--quick` trims the sweep for CI smoke runs; the default run is
    // untouched so published tables stay reproducible byte-for-byte.
    let quick = std::env::args().any(|a| a == "--quick");
    let cost = CostModel::keystone_ii();
    let bytes_per_req = u64::from(PAGES) * PAGE.bytes();
    let count = if quick {
        24
    } else {
        ((64u64 << 20) / bytes_per_req).clamp(24, 512) as usize
    };
    let rates: &[f64] = if quick {
        &[0.0, 1e-2]
    } else {
        &[0.0, 1e-4, 1e-3, 1e-2]
    };

    let mut table = Table::new(
        "E10: throughput under injected DMA errors (4K x 64 pages/req)",
        &[
            "shape",
            "error-rate",
            "GB/s",
            "retained",
            "retries",
            "fallbacks",
            "failed",
        ],
    );

    for kind in [ShapeKind::Replicate, ShapeKind::Migrate] {
        let shape = match kind {
            ShapeKind::Replicate => "replicate",
            ShapeKind::Migrate => "migrate",
        };
        // Fault-free baseline for the "retained" column.
        let base = stream_memif(
            &cost,
            MemifConfig::default(),
            kind,
            PAGE,
            PAGES,
            count,
            WINDOW,
        );
        for &rate in rates {
            let plan = (rate > 0.0).then(|| FaultPlan::dma_errors(SEED, rate));
            let run = stream_memif_with_faults(
                &cost,
                MemifConfig::default(),
                kind,
                PAGE,
                PAGES,
                count,
                WINDOW,
                plan,
            );
            assert_eq!(
                run.requests, count,
                "every submitted request must reach a terminal state"
            );
            assert_eq!(run.failed, 0, "CPU fallback must keep requests succeeding");
            table.row(&[
                shape.to_owned(),
                format!("{rate:.0e}"),
                format!("{:.2}", run.throughput_gbps),
                format!("{:.1}%", 100.0 * run.throughput_gbps / base.throughput_gbps),
                run.retries.to_string(),
                run.fallbacks.to_string(),
                run.failed.to_string(),
            ]);
        }
    }
    table.print();
    table.write_csv("e10_degraded");

    // Second study: fault modes beyond clean error interrupts, on the
    // replication workload. Dropped completions exercise the watchdog;
    // the no-retry configuration forces the CPU-copy fallback so its
    // costed degradation is visible in the throughput column.
    let base = stream_memif(
        &cost,
        MemifConfig::default(),
        ShapeKind::Replicate,
        PAGE,
        PAGES,
        count,
        WINDOW,
    );
    let drops = FaultPlan {
        drop_rate: 1e-3,
        ..FaultPlan::new(SEED)
    };
    let mix = FaultPlan {
        dma_error_rate: 1e-3,
        drop_rate: 1e-3,
        delay_rate: 1e-2,
        desc_exhaust_rate: 1e-2,
        ..FaultPlan::new(SEED)
    };
    let no_retry = MemifConfig {
        max_dma_retries: 0,
        ..MemifConfig::default()
    };
    let scenarios: &[(&str, MemifConfig, FaultPlan)] = &[
        ("dropped-irqs 1e-3", MemifConfig::default(), drops),
        ("chaos mix", MemifConfig::default(), mix),
        (
            "errors 1e-2, no retries",
            no_retry,
            FaultPlan::dma_errors(SEED, 1e-2),
        ),
    ];
    let mut modes = Table::new(
        "E10b: fault modes, replicate (4K x 64 pages/req)",
        &[
            "scenario",
            "GB/s",
            "retained",
            "retries",
            "timeouts",
            "dma-errs",
            "fallbacks",
            "failed",
        ],
    );
    for (name, config, plan) in scenarios {
        let run = stream_memif_with_faults(
            &cost,
            config.clone(),
            ShapeKind::Replicate,
            PAGE,
            PAGES,
            count,
            WINDOW,
            Some(plan.clone()),
        );
        assert_eq!(run.requests, count, "no request may be lost or wedged");
        assert_eq!(run.failed, 0, "CPU fallback must keep requests succeeding");
        modes.row(&[
            (*name).to_owned(),
            format!("{:.2}", run.throughput_gbps),
            format!("{:.1}%", 100.0 * run.throughput_gbps / base.throughput_gbps),
            run.retries.to_string(),
            run.timeouts.to_string(),
            run.dma_errors.to_string(),
            run.fallbacks.to_string(),
            run.failed.to_string(),
        ]);
    }
    modes.print();
    modes.write_csv("e10_degraded_modes");

    println!(
        "Shape checks: throughput retained decreases monotonically-ish with the error \
         rate; rare faults (1e-4) cost almost nothing; all requests complete (failed=0) \
         because exhausted retries degrade to the costed CPU copy instead of dropping \
         the request."
    );
}
