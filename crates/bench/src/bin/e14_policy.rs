//! E14: automatic hot/cold placement — no policy vs synchronous
//! migration vs the async memif daemon.
//!
//! The workload is a phased hot-set application: a 6 MiB pool of
//! 256 KiB regions on DDR, of which a rotating subset is streamed each
//! phase. The placement policy (identical sampling, heat, and
//! watermark logic in every run) repairs placement at epoch boundaries;
//! only *how* its moves execute differs:
//!
//! * **none** — no moves; every tick streams from DDR;
//! * **sync** — moves via memif DMA, but the application parks while
//!   any policy move is outstanding (the `mbind`-style comparator:
//!   placement change costs application time);
//! * **async** — moves ride the blue staging queue as background work
//!   and the application keeps computing (the paper's thesis applied
//!   to a policy daemon).
//!
//! Acceptance: async must beat sync by >= 1.3x on end-to-end runtime
//! and must beat no-policy outright; policy runs must be fault-free
//! deterministic (no failed moves without a fault plan).

use memif_bench::Table;
use memif_hwsim::CostModel;
use memif_policy::{run_scenario, Mode, ScenarioConfig, ScenarioResult};

fn scenario(quick: bool, mode: Mode) -> ScenarioConfig {
    if quick {
        ScenarioConfig {
            mode,
            phases: 3,
            ticks_per_phase: 16,
            ..ScenarioConfig::default()
        }
    } else {
        ScenarioConfig {
            mode,
            ..ScenarioConfig::default()
        }
    }
}

fn row(table: &mut Table, label: &str, r: &ScenarioResult, base: &ScenarioResult) {
    table.row(&[
        label.to_owned(),
        format!("{:.2}", r.wall.as_ns() as f64 / 1e6),
        format!("{:.2}x", base.wall.as_ns() as f64 / r.wall.as_ns() as f64),
        format!("{}/{}", r.fast_ticks, r.ticks),
        r.policy.epochs.to_string(),
        format!("{}+{}", r.policy.promotions, r.policy.demotions),
        r.policy.moves_failed.to_string(),
        format!("{:.2}", r.cpu_usage),
    ]);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cost = CostModel::keystone_ii();

    let none = run_scenario(&cost, &scenario(quick, Mode::None));
    let sync = run_scenario(&cost, &scenario(quick, Mode::Sync));
    let async_ = run_scenario(&cost, &scenario(quick, Mode::Async));

    let mut table = Table::new(
        "E14: phased hot-set runtime by placement regime (KeyStone II)",
        &[
            "regime",
            "wall ms",
            "vs none",
            "fast-ticks",
            "epochs",
            "pro+dem",
            "failed",
            "cpu",
        ],
    );
    row(&mut table, "none", &none, &none);
    row(&mut table, "sync", &sync, &none);
    row(&mut table, "async", &async_, &none);
    table.print();
    table.write_csv("e14_policy");

    for (label, r) in [("none", &none), ("sync", &sync), ("async", &async_)] {
        assert_eq!(
            r.policy.moves_failed, 0,
            "{label}: fault-free policy runs must not fail moves"
        );
        assert_eq!(r.ticks, none.ticks, "{label}: identical application work");
    }
    assert_eq!(none.fast_ticks, 0, "no policy leaves everything on DDR");
    assert!(
        async_.policy.promotions > 0 && async_.policy.demotions > 0,
        "the async daemon both promoted and demoted: {:?}",
        async_.policy
    );

    // The acceptance bars: overlap must pay for itself.
    let sync_ns = sync.wall.as_ns() as f64;
    let async_ns = async_.wall.as_ns() as f64;
    assert!(
        async_ns * 1.3 <= sync_ns,
        "async ({:.2} ms) must beat synchronous migration ({:.2} ms) by >= 1.3x",
        async_ns / 1e6,
        sync_ns / 1e6,
    );
    assert!(
        async_.wall < none.wall,
        "async policy ({:?}) must beat no policy ({:?})",
        async_.wall,
        none.wall,
    );

    println!(
        "Shape checks: the daemon's background moves shift {} of {} ticks onto \
         SRAM while the application never blocks, beating both the stalled \
         synchronous comparator ({:.2}x) and static DDR placement ({:.2}x).",
        async_.fast_ticks,
        async_.ticks,
        sync_ns / async_ns,
        none.wall.as_ns() as f64 / async_ns,
    );
}
