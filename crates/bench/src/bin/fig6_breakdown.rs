//! Figure 6: time breakdown (columns) and CPU usage (lines) in
//! fulfilling a single `mov_req`, per page size (4 KB / 64 KB / 2 MB)
//! and pages-per-request.
//!
//! Three systems, as in the paper: Linux page migration, memif
//! migration, and memif replication. Times are per-phase microseconds;
//! CPU usage is busy-time over the request's wall time (1.0 = one core
//! saturated — the synchronous Linux path by construction).

use memif::MemifConfig;
use memif_bench::{probe_linux_once, probe_memif_once, Table};
use memif_hwsim::{CostModel, Phase};
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

fn main() {
    let cost = CostModel::keystone_ii();
    let sweeps: &[(PageSize, &[u32])] = &[
        (PageSize::Small4K, &[1, 4, 16, 64, 256]),
        (PageSize::Medium64K, &[1, 4, 16, 64]),
        (PageSize::Large2M, &[1, 4, 16]),
    ];

    for (page_size, page_counts) in sweeps {
        let mut table = Table::new(
            format!("Figure 6: single mov_req breakdown — {page_size} pages"),
            &[
                "pages",
                "system",
                "prep",
                "remap",
                "dma-cfg",
                "copy",
                "release",
                "notify",
                "iface",
                "cache",
                "total(us)",
                "cpu",
            ],
        );
        for &pages in *page_counts {
            let linux = probe_linux_once(&cost, *page_size, pages);
            let mig = probe_memif_once(
                &cost,
                MemifConfig::default(),
                ShapeKind::Migrate,
                *page_size,
                pages,
                2,
            );
            let rep = probe_memif_once(
                &cost,
                MemifConfig::default(),
                ShapeKind::Replicate,
                *page_size,
                pages,
                2,
            );
            for (name, probe) in [
                ("linux", &linux),
                ("memif-migrate", &mig),
                ("memif-replicate", &rep),
            ] {
                let us = |p: Phase| format!("{:.1}", probe.phases.get(p).as_us_f64());
                table.row(&[
                    pages.to_string(),
                    name.to_owned(),
                    us(Phase::Prep),
                    us(Phase::Remap),
                    us(Phase::DmaConfig),
                    us(Phase::Copy),
                    us(Phase::Release),
                    us(Phase::Notify),
                    us(Phase::Interface),
                    us(Phase::CacheMaint),
                    format!("{:.1}", probe.wall.as_us_f64()),
                    format!("{:.2}", probe.cpu_usage),
                ]);
            }
        }
        table.print();
        table.write_csv(&format!("fig6_{page_size}"));
    }

    println!(
        "Shape checks (paper §6.3): memif needs far less CPU; with 4KB pages \
         management overheads dominate and memif loses only at 1 page/request; \
         at 64KB/2MB byte copy dominates and DMA wins everywhere."
    );
}
