//! Figure 7: latency in completing a sequence of eight migration
//! requests, each covering sixteen 4 KB pages.
//!
//! memif receives each notification soon after the corresponding
//! request completes, with a single `ioctl` for the whole sequence. The
//! Linux comparator batches 1, 4, or 8 requests per syscall: small
//! batches pay crossing overhead per request; large batches delay every
//! completion to the end of the long syscall.

use memif::MemifConfig;
use memif_bench::{stream_linux, stream_memif, Table};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

fn main() {
    let cost = CostModel::keystone_ii();
    let (pages, count) = (16u32, 8usize);

    let memif_run = stream_memif(
        &cost,
        MemifConfig::default(),
        ShapeKind::Migrate,
        PageSize::Small4K,
        pages,
        count,
        count, // all eight submitted up front, as in the paper
    );
    let linux: Vec<(usize, _)> = [1usize, 4, 8]
        .iter()
        .map(|&b| (b, stream_linux(&cost, PageSize::Small4K, pages, count, b)))
        .collect();

    let mut table = Table::new(
        "Figure 7: completion time of 8 migration requests x 16 4KB pages (us since start)",
        &[
            "request#",
            "memif",
            "linux-batch1",
            "linux-batch4",
            "linux-batch8",
        ],
    );
    for i in 0..count {
        let mut row = vec![(i + 1).to_string()];
        row.push(format!(
            "{:.1}",
            memif_run.completion_times[i].as_ns() as f64 / 1_000.0
        ));
        for (_, run) in &linux {
            row.push(format!(
                "{:.1}",
                run.completion_times[i].as_ns() as f64 / 1_000.0
            ));
        }
        table.row(&row);
    }
    table.print();
    table.write_csv("fig7_latency");

    let mut summary = Table::new(
        "Figure 7 summary",
        &[
            "system",
            "syscalls",
            "last-completion(us)",
            "mean-latency(us)",
        ],
    );
    let mean = |times: &[memif::SimTime]| {
        times.iter().map(|t| t.as_ns() as f64).sum::<f64>() / times.len() as f64 / 1_000.0
    };
    summary.row(&[
        "memif".to_owned(),
        memif_run.ioctls.to_string(),
        format!(
            "{:.1}",
            memif_run.completion_times[count - 1].as_ns() as f64 / 1_000.0
        ),
        format!("{:.1}", mean(&memif_run.completion_times)),
    ]);
    for (b, run) in &linux {
        summary.row(&[
            format!("linux-batch{b}"),
            run.ioctls.to_string(),
            format!(
                "{:.1}",
                run.completion_times[count - 1].as_ns() as f64 / 1_000.0
            ),
            format!("{:.1}", mean(&run.completion_times)),
        ]);
    }
    summary.print();
    summary.write_csv("fig7_summary");

    // The paper's headline: up to 63% latency reduction while making
    // only one syscall.
    let best_linux_mean = linux
        .iter()
        .map(|(_, r)| mean(&r.completion_times))
        .fold(f64::INFINITY, f64::min);
    let memif_mean = mean(&memif_run.completion_times);
    println!(
        "memif mean latency {:.1} us vs best Linux {:.1} us ({:.0}% lower), with {} syscall(s).",
        memif_mean,
        best_linux_mean,
        (1.0 - memif_mean / best_linux_mean) * 100.0,
        memif_run.ioctls
    );
}
