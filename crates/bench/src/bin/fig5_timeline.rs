//! Figure 5 reconstruction: an example execution timeline of the memif
//! driver across its three kernel contexts.
//!
//! Two small migration requests are submitted back-to-back (small ⇒ the
//! kernel thread's polling mode, exactly the scenario Figure 5 draws):
//! the first is served on the syscall path after the single
//! `ioctl(MOV_ONE)`; its completion is detected by the sleeping kernel
//! thread, which performs Release+Notify and issues the second request —
//! whose preparation overlapped the first transfer.

use memif::{Context, Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};

fn main() {
    let mut sys = System::keystone_ii();
    sys.enable_tracing();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();

    for _ in 0..2 {
        let va = sys.mmap(space, 16, PageSize::Small4K, NodeId(0)).unwrap();
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::migrate(va, 16, PageSize::Small4K, NodeId(1)),
            )
            .unwrap();
    }
    sim.run(&mut sys);
    while memif.retrieve_completed(&mut sys).unwrap().is_some() {}

    // Render: one lane per context, proportional bars.
    let trace = sys.trace().to_vec();
    let end = trace
        .iter()
        .map(|e| e.at + e.duration)
        .max()
        .expect("trace non-empty")
        .as_ns();
    const WIDTH: usize = 72;
    let scale = |ns: u64| (ns as usize * WIDTH / end as usize).min(WIDTH);

    println!("Figure 5 reconstruction: two 16-page migrations, polling mode");
    println!(
        "time: 0 .. {:.1} us; numbers are the driver ops of Table 1\n",
        end as f64 / 1e3
    );

    for ctx in [
        Context::Syscall,
        Context::KernelThread,
        Context::DmaEngine,
        Context::Interrupt,
    ] {
        let mut lane = [b' '; WIDTH + 1];
        for e in trace.iter().filter(|e| e.ctx == ctx) {
            let (s, t) = (scale(e.at.as_ns()), scale((e.at + e.duration).as_ns()));
            let glyph = match () {
                _ if e.label.contains("ops 1-3") => b'1',
                _ if e.label.contains("ops 4-5") => b'4',
                _ if e.label.contains("DMA transfer") => b'#',
                _ if e.label.contains("ioctl") => b'S',
                _ if e.label.contains("interrupt") => b'I',
                _ if e.label.contains("wakes") => b'w',
                _ if e.label.contains("blue") => b'z',
                _ => b'.',
            };
            for c in lane.iter_mut().take(t.max(s + 1)).skip(s) {
                *c = glyph;
            }
        }
        println!(
            "{:>8} |{}|",
            ctx.to_string(),
            String::from_utf8_lossy(&lane[..WIDTH])
        );
    }

    println!("\nlegend: S=ioctl crossing  1=ops1-3 (prep/remap/cfg)  #=DMA transfer");
    println!("        w=kthread timed-sleep wake  4=ops4-5 (release/notify)  z=recolor blue\n");

    println!("event log:");
    for e in &trace {
        println!(
            "  {:>9.1} us  {:>8}  {:<52} {}",
            e.at.as_ns() as f64 / 1e3,
            e.ctx.to_string(),
            e.label,
            e.req.map(|r| format!("req {r}")).unwrap_or_default()
        );
    }

    // The Figure 5 story, asserted:
    let ops13: Vec<_> = trace
        .iter()
        .filter(|e| e.label.contains("ops 1-3"))
        .collect();
    let dma: Vec<_> = trace
        .iter()
        .filter(|e| e.label.contains("DMA transfer"))
        .collect();
    assert_eq!(ops13.len(), 2);
    assert_eq!(dma.len(), 2);
    assert_eq!(
        ops13[0].ctx,
        Context::Syscall,
        "first request on the syscall path"
    );
    assert_eq!(
        ops13[1].ctx,
        Context::KernelThread,
        "second on the kernel thread"
    );
    assert!(
        ops13[1].at < dma[0].at + dma[0].duration,
        "request 2's CPU work overlaps request 1's transfer (pipelining)"
    );
    println!("\nchecks: syscall path served request 0; the kernel thread prepared request 1");
    println!("during request 0's transfer; completions were polled, not interrupt-driven.");
}
