//! Multi-application scaling — the evaluation the paper did not run.
//!
//! §6.7: "although by design memif is capable of serving multiple
//! concurrent applications, we have not evaluated the feature." This
//! binary does: N tenants (each its own process, address space, and
//! memif device) stream migrations concurrently; we report per-tenant
//! and aggregate throughput, fairness, and how the shared engine
//! saturates.

use std::cell::RefCell;
use std::rc::Rc;

use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, SimTime, System, VirtAddr};
use memif_bench::{bigfast_topology, Table};
use memif_hwsim::CostModel;

const REQUESTS: usize = 64;
const PAGES: u32 = 64; // 256 KiB per request

struct Tenant {
    memif: Memif,
    regions: Vec<(VirtAddr, NodeId)>,
    submitted: usize,
    completed: usize,
    finished_at: SimTime,
}

fn run(tenants: usize) -> (Vec<f64>, f64, f64) {
    let mut sys = System::with_profile(bigfast_topology(), CostModel::keystone_ii());
    let mut sim = Sim::new();

    let states: Vec<Rc<RefCell<Tenant>>> = (0..tenants)
        .map(|_| {
            let space = sys.new_space();
            let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
            let regions = (0..2)
                .map(|_| {
                    (
                        sys.mmap(space, PAGES, PageSize::Small4K, NodeId(0))
                            .unwrap(),
                        NodeId(0),
                    )
                })
                .collect();
            Rc::new(RefCell::new(Tenant {
                memif,
                regions,
                submitted: 0,
                completed: 0,
                finished_at: SimTime::ZERO,
            }))
        })
        .collect();

    /// Submits the next migration *for a specific region slot*: a region
    /// must never have two moves in flight (the driver would correctly
    /// flag the overlap as a race), so each completion re-arms only its
    /// own slot.
    fn submit_for_slot(
        t: &Rc<RefCell<Tenant>>,
        slot: usize,
        sys: &mut System,
        sim: &mut Sim<System>,
    ) {
        let (memif, spec) = {
            let mut tt = t.borrow_mut();
            if tt.submitted >= REQUESTS {
                return;
            }
            tt.submitted += 1;
            let (va, node) = tt.regions[slot];
            let target = if node == NodeId(0) {
                NodeId(1)
            } else {
                NodeId(0)
            };
            tt.regions[slot].1 = target;
            (
                tt.memif,
                MoveSpec::migrate(va, PAGES, PageSize::Small4K, target).with_user_data(slot as u64),
            )
        };
        memif.submit(sys, sim, spec).expect("submit");
    }

    fn pump(t: Rc<RefCell<Tenant>>, sys: &mut System, sim: &mut Sim<System>) {
        let memif = t.borrow().memif;
        while let Some(c) = memif.retrieve_completed(sys).expect("retrieve") {
            assert!(c.status.is_ok(), "tenant request failed: {:?}", c.status);
            let mut tt = t.borrow_mut();
            tt.completed += 1;
            if tt.completed == REQUESTS {
                tt.finished_at = sim.now();
            }
            drop(tt);
            submit_for_slot(&t, c.user_data as usize, sys, sim);
        }
        if t.borrow().completed < REQUESTS {
            let t2 = Rc::clone(&t);
            memif
                .poll(sys, sim, move |sys, sim| pump(t2, sys, sim))
                .expect("tenant device open for the run");
        }
    }

    for t in &states {
        submit_for_slot(t, 0, &mut sys, &mut sim);
        submit_for_slot(t, 1, &mut sys, &mut sim);
        pump(Rc::clone(t), &mut sys, &mut sim);
    }
    sim.run(&mut sys);

    let bytes_per_tenant = (REQUESTS as u64) * u64::from(PAGES) * 4096;
    let mut per_tenant = Vec::new();
    let mut end = SimTime::ZERO;
    for t in &states {
        let tt = t.borrow();
        assert_eq!(tt.completed, REQUESTS);
        per_tenant.push(bytes_per_tenant as f64 / tt.finished_at.as_ns() as f64);
        end = end.max(tt.finished_at);
    }
    let aggregate = (bytes_per_tenant * tenants as u64) as f64 / end.as_ns() as f64;
    let fairness = {
        // Jain's fairness index over per-tenant throughputs.
        let s: f64 = per_tenant.iter().sum();
        let s2: f64 = per_tenant.iter().map(|x| x * x).sum();
        s * s / (per_tenant.len() as f64 * s2)
    };
    (per_tenant, aggregate, fairness)
}

fn main() {
    let mut table = Table::new(
        "Multi-tenant scaling: N apps x 64 migrations x 64 pages (4KB)",
        &[
            "tenants",
            "aggregate GB/s",
            "per-tenant GB/s (min..max)",
            "Jain fairness",
        ],
    );
    for n in [1usize, 2, 3, 4, 6, 8] {
        let (per, agg, fair) = run(n);
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per.iter().copied().fold(0.0f64, f64::max);
        table.row(&[
            n.to_string(),
            format!("{agg:.2}"),
            format!("{min:.2}..{max:.2}"),
            format!("{fair:.3}"),
        ]);
    }
    table.print();
    table.write_csv("multi_tenant_scaling");
    println!(
        "Expected shape: aggregate grows with tenants until the engine's 3 GB/s m2m\n\
         rate (or the per-tenant kthread CPU) saturates; fairness stays near 1.0 —\n\
         per-device queues isolate tenants while the flow network splits bandwidth."
    );
}
