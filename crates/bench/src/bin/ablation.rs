//! Ablations of the design choices called out in DESIGN.md.
//!
//! * `descriptor-reuse` (A1, §5.3): chain reuse on/off.
//! * `gang-lookup` (A2, §5.1): gang vs per-page vertical walks.
//! * `race-mode` (A3, §5.2): detection vs Linux-style prevention, and
//!   the proceed-and-recover alternative.
//! * `poll-threshold` (A4, §5.4): interrupt/poll switch point.
//! * `pipeline-depth` (A5): transfers kept in flight per device — 1 is
//!   strictly serial service, 2 overlaps the next request's CPU
//!   preparation with the current DMA transfer.
//!
//! Run all with no argument, or pass one name.

use memif::{MemifConfig, RaceMode};
use memif_bench::{stream_memif, Table};
use memif_hwsim::CostModel;
use memif_mm::PageSize;
use memif_workloads::ShapeKind;

fn throughput(config: MemifConfig, kind: ShapeKind, pages: u32) -> f64 {
    let cost = CostModel::keystone_ii();
    let count = ((32u64 << 20) / (u64::from(pages) * 4096)).clamp(16, 256) as usize;
    stream_memif(&cost, config, kind, PageSize::Small4K, pages, count, 8).throughput_gbps
}

fn descriptor_reuse() {
    let mut table = Table::new(
        "A1: DMA descriptor-chain reuse (§5.3) — migration throughput (GB/s)",
        &["pages/req", "reuse on", "reuse off", "speedup"],
    );
    for pages in [4u32, 16, 64, 256] {
        let on = throughput(MemifConfig::default(), ShapeKind::Migrate, pages);
        let off = throughput(
            MemifConfig {
                descriptor_reuse: false,
                ..MemifConfig::default()
            },
            ShapeKind::Migrate,
            pages,
        );
        table.row(&[
            pages.to_string(),
            format!("{on:.2}"),
            format!("{off:.2}"),
            format!("{:.2}x", on / off),
        ]);
    }
    table.print();
    table.write_csv("ablation_descriptor_reuse");
}

fn gang_lookup() {
    let mut table = Table::new(
        "A2: gang page lookup (§5.1) — migration throughput (GB/s)",
        &["pages/req", "gang", "per-page", "speedup"],
    );
    for pages in [4u32, 16, 64, 256] {
        let on = throughput(MemifConfig::default(), ShapeKind::Migrate, pages);
        let off = throughput(
            MemifConfig {
                gang_lookup: false,
                ..MemifConfig::default()
            },
            ShapeKind::Migrate,
            pages,
        );
        table.row(&[
            pages.to_string(),
            format!("{on:.2}"),
            format!("{off:.2}"),
            format!("{:.2}x", on / off),
        ]);
    }
    table.print();
    table.write_csv("ablation_gang_lookup");
}

fn race_mode() {
    // Run strictly serial (depth 1) so Release sits on the critical
    // path: with the default pipelining, release costs hide under the
    // next request's preparation and all three modes tie — itself a
    // result worth knowing (see EXPERIMENTS.md).
    let base = MemifConfig {
        pipeline_depth: 1,
        ..MemifConfig::default()
    };
    let mut table = Table::new(
        "A3: race handling (§5.2) — serial migration throughput (GB/s)",
        &[
            "pages/req",
            "detect-fail",
            "detect-recover",
            "prevent (Linux-style)",
        ],
    );
    for pages in [4u32, 16, 64, 256] {
        let detect = throughput(base.clone(), ShapeKind::Migrate, pages);
        let recover = throughput(
            MemifConfig {
                race_mode: RaceMode::DetectRecover,
                ..base.clone()
            },
            ShapeKind::Migrate,
            pages,
        );
        let prevent = throughput(
            MemifConfig {
                race_mode: RaceMode::Prevent,
                ..base.clone()
            },
            ShapeKind::Migrate,
            pages,
        );
        table.row(&[
            pages.to_string(),
            format!("{detect:.2}"),
            format!("{recover:.2}"),
            format!("{prevent:.2}"),
        ]);
    }
    table.print();
    table.write_csv("ablation_race_mode");
}

fn poll_threshold() {
    let mut table = Table::new(
        "A4: kernel-thread poll threshold (§5.4) — 128 x 4-page migrations",
        &[
            "threshold",
            "interrupts",
            "polled",
            "mean latency (us)",
            "throughput (GB/s)",
        ],
    );
    let cost = CostModel::keystone_ii();
    for (name, thr) in [
        ("always-interrupt (0)", Some(0u64)),
        ("512KB (paper)", None),
        ("always-poll (max)", Some(u64::MAX)),
    ] {
        let config = MemifConfig {
            poll_threshold_bytes: thr,
            ..MemifConfig::default()
        };
        let run = stream_memif(
            &cost,
            config.clone(),
            ShapeKind::Migrate,
            PageSize::Small4K,
            4,
            128,
            8,
        );
        let mean = run
            .completion_times
            .iter()
            .map(|t| t.as_ns() as f64)
            .sum::<f64>()
            / run.completion_times.len() as f64
            / 1_000.0;
        table.row(&[
            name.to_owned(),
            run.interrupts.to_string(),
            run.polled.to_string(),
            format!("{mean:.1}"),
            format!("{:.2}", run.throughput_gbps),
        ]);
    }
    table.print();
    table.write_csv("ablation_poll_threshold");
}

fn pipeline_depth() {
    let mut table = Table::new(
        "A5: driver pipeline depth — replication throughput (GB/s)",
        &["pages/req", "depth 1 (serial)", "depth 2", "depth 4"],
    );
    // Depth x pages is capped by the 512-entry PaRAM (depth 4 x 128
    // descriptors fills the pool exactly).
    for pages in [8u32, 32, 128] {
        let cells: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&d| {
                let config = MemifConfig {
                    pipeline_depth: d,
                    ..MemifConfig::default()
                };
                format!("{:.2}", throughput(config, ShapeKind::Replicate, pages))
            })
            .collect();
        table.row(&[
            pages.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    table.print();
    table.write_csv("ablation_pipeline_depth");
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("descriptor-reuse") => descriptor_reuse(),
        Some("gang-lookup") => gang_lookup(),
        Some("race-mode") => race_mode(),
        Some("poll-threshold") => poll_threshold(),
        Some("pipeline-depth") => pipeline_depth(),
        Some(other) => {
            eprintln!("unknown ablation '{other}'");
            eprintln!(
                "choices: descriptor-reuse gang-lookup race-mode poll-threshold pipeline-depth"
            );
            std::process::exit(2);
        }
        None => {
            descriptor_reuse();
            gang_lookup();
            race_mode();
            poll_threshold();
            pipeline_depth();
        }
    }
}
