//! Table 3 analogue: source-line inventory of this reproduction.
//!
//! The paper reports its implementation as 6.6 KSLoC (library 0.8,
//! driver 3.3, DMA 0.8, test 1.7). Our reproduction additionally builds
//! the hardware and the kernel substrates the paper got "for free", so
//! the totals are larger; this binary maps our crates onto the paper's
//! rows where a correspondence exists.

use std::fs;
use std::path::Path;

use memif_bench::Table;

fn sloc(dir: &Path) -> (usize, usize) {
    // (code lines, test lines): a line counts as code when non-empty and
    // not a pure comment; files under tests/ and #[cfg(test)] modules
    // are attributed to tests by a coarse heuristic (the `mod tests`
    // marker splits a file).
    let mut code = 0;
    let mut test = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(p) = stack.pop() {
        let Ok(meta) = fs::metadata(&p) else { continue };
        if meta.is_dir() {
            if let Ok(rd) = fs::read_dir(&p) {
                for e in rd.flatten() {
                    stack.push(e.path());
                }
            }
            continue;
        }
        if p.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let Ok(content) = fs::read_to_string(&p) else {
            continue;
        };
        let in_test_dir = p.components().any(|c| c.as_os_str() == "tests");
        let mut in_tests_mod = false;
        for line in content.lines() {
            let t = line.trim();
            if t.contains("mod tests") {
                in_tests_mod = true;
            }
            if t.is_empty() || t.starts_with("//") {
                continue;
            }
            if in_test_dir || in_tests_mod {
                test += 1;
            } else {
                code += 1;
            }
        }
    }
    (code, test)
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let rows: &[(&str, &str, &str)] = &[
        (
            "crates/lockfree",
            "library (lock-free interface)",
            "0.8 (Library)",
        ),
        ("crates/core", "memif driver", "3.3 (Driver)"),
        ("crates/hwsim", "DMA engine + simulated SoC", "0.8 (DMA)"),
        ("crates/mm", "kernel mm substrate", "— (Linux provided)"),
        (
            "crates/baseline",
            "Linux migration comparator",
            "— (Linux provided)",
        ),
        ("crates/runtime", "mini streaming runtime", "0.4 (§6.6)"),
        ("crates/workloads", "workloads", "— (ported benchmarks)"),
        ("crates/bench", "evaluation harness", "1.7 (Test)"),
        (
            "crates/cli",
            "memifctl command-line tool",
            "— (numactl-analogue)",
        ),
        ("tests", "cross-crate integration tests", "1.7 (Test)"),
        ("examples", "examples", "—"),
    ];

    let mut table = Table::new(
        "Table 3 analogue: source lines of this reproduction",
        &["component", "role", "code", "test", "paper KSLoC row"],
    );
    let (mut tot_code, mut tot_test) = (0, 0);
    for (dir, role, paper) in rows {
        let (code, test) = sloc(&root.join(dir));
        tot_code += code;
        tot_test += test;
        table.row(&[
            (*dir).to_owned(),
            (*role).to_owned(),
            code.to_string(),
            test.to_string(),
            (*paper).to_owned(),
        ]);
    }
    table.row(&[
        "TOTAL".to_owned(),
        String::new(),
        tot_code.to_string(),
        tot_test.to_string(),
        "6.6 total".to_owned(),
    ]);
    table.print();
    table.write_csv("tab3_sloc");
}
