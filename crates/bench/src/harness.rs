//! Experiment drivers shared by the figure/table binaries.
//!
//! Two families:
//!
//! * **single-request probes** ([`probe_memif_once`], [`probe_linux_once`])
//!   — Figure 6's per-request time breakdown and CPU usage;
//! * **streaming drivers** ([`stream_memif`], [`stream_linux`]) — the
//!   continuous-request workloads behind Figures 7 and 8 (completion
//!   timelines and throughput).
//!
//! Capacity note: the real KeyStone II fast node holds only 6 MiB, which
//! the paper worked around by *emulating* larger pages (§6.2). We instead
//! run the page-size sweeps on a topology with an enlarged fast bank of
//! identical bandwidth ([`bigfast_topology`]) — per-request costs do not
//! depend on bank capacity — and keep the true 6 MiB bank for the
//! capacity-sensitive experiments (Table 4, microbenches).

use std::cell::RefCell;
use std::rc::Rc;

use memif::{
    FaultPlan, Memif, MemifConfig, MoveSpec, MoveStatus, NodeId, PageSize, RecoveryReport, Sim,
    SimDuration, SimTime, System,
};
use memif_baseline::{mbind, RegionRequest};
use memif_hwsim::{
    CostModel, CrashPlan, MemoryKind, MemoryNode, PhaseBreakdown, PhysAddr, TierRank, Topology,
};
use memif_workloads::ShapeKind;

/// A topology with KeyStone II bandwidths but a 256 MiB fast bank, for
/// sweeps whose working sets exceed 6 MiB (see module docs).
#[must_use]
pub fn bigfast_topology() -> Topology {
    Topology::must_custom(
        vec![
            MemoryNode {
                id: NodeId(0),
                name: "ddr3".to_owned(),
                kind: MemoryKind::Slow,
                tier: TierRank(1),
                base: PhysAddr::new(0x8_0000_0000),
                bytes: 8 << 30,
                bandwidth_gbps: 6.2,
                boot_visible: true,
            },
            MemoryNode {
                id: NodeId(1),
                name: "fast-bank".to_owned(),
                kind: MemoryKind::Fast,
                tier: TierRank(0),
                base: PhysAddr::new(0x0C00_0000),
                bytes: 256 << 20,
                bandwidth_gbps: 24.0,
                boot_visible: false,
            },
        ],
        4,
    )
}

/// A two-tier topology for the crash-consistency experiments (E15): a
/// DDR3 bank plus an NVM-like persistent node of equal read bandwidth.
/// The NVM node's contents survive a simulated crash; its writes are
/// throttled separately by `CostModel::nvm_write_bw_gbps`.
#[must_use]
pub fn nvm_topology() -> Topology {
    Topology::must_custom(
        vec![
            MemoryNode {
                id: NodeId(0),
                name: "ddr3".to_owned(),
                kind: MemoryKind::Slow,
                tier: TierRank(0),
                base: PhysAddr::new(0x8_0000_0000),
                bytes: 8 << 30,
                bandwidth_gbps: 6.2,
                boot_visible: true,
            },
            MemoryNode {
                id: NodeId(1),
                name: "nvm".to_owned(),
                kind: MemoryKind::Nvm,
                tier: TierRank(1),
                base: PhysAddr::new(0x10_0000_0000),
                bytes: 1 << 30,
                bandwidth_gbps: 6.2,
                boot_visible: false,
            },
        ],
        4,
    )
}

/// Result of a single-request probe (one Figure 6 data point).
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Time from submission to completion notification.
    pub wall: SimDuration,
    /// Driver/kernel cost per phase for this request.
    pub phases: PhaseBreakdown,
    /// CPU busy time over the request's lifetime, as a fraction of one
    /// core (the Figure 6 line series).
    pub cpu_usage: f64,
}

/// Probes one memif request of `pages`×`page_size` (replication or
/// migration), after `warmup` identical requests that warm the
/// descriptor chains. Runs on [`bigfast_topology`].
///
/// # Panics
///
/// Panics if any request fails (probe setups are always valid).
#[must_use]
pub fn probe_memif_once(
    cost: &CostModel,
    memif_config: MemifConfig,
    kind: ShapeKind,
    page_size: PageSize,
    pages: u32,
    warmup: u32,
) -> ProbeResult {
    let mut sys = System::with_profile(bigfast_topology(), cost.clone());
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, memif_config).unwrap();

    let run_one = |sys: &mut System, sim: &mut Sim<System>| {
        let src = sys.mmap(space, pages, page_size, NodeId(0)).unwrap();
        let spec = match kind {
            ShapeKind::Replicate => {
                let dst = sys.mmap(space, pages, page_size, NodeId(1)).unwrap();
                MoveSpec::replicate(src, dst, pages, page_size)
            }
            ShapeKind::Migrate => MoveSpec::migrate(src, pages, page_size, NodeId(1)),
        };
        memif.submit(sys, sim, spec).unwrap();
        sim.run(sys);
        let c = memif.retrieve_completed(sys).unwrap().expect("completed");
        assert!(c.status.is_ok(), "probe request failed: {:?}", c.status);
    };

    for _ in 0..warmup {
        run_one(&mut sys, &mut sim);
    }

    let phases_before = sys.device(memif.device()).unwrap().stats.phases.clone();
    let cpu_before = sys.meter.cpu_busy();
    let t0 = sim.now();
    run_one(&mut sys, &mut sim);
    let record = *sys.device(memif.device()).unwrap().log.last().unwrap();
    let wall = record.completed_at.since(t0);
    // CPU usage is measured over the request's full footprint, including
    // the trailing kernel-thread work after the notification.
    let window = sim.now().max(record.completed_at).since(t0);
    let mut phases = sys.device(memif.device()).unwrap().stats.phases.clone();
    // Per-request delta.
    let mut delta = PhaseBreakdown::new();
    for (phase, cost_after) in phases.iter() {
        delta.add(phase, cost_after.saturating_sub(phases_before.get(phase)));
    }
    phases = delta;
    // Add the DMA transfer itself as the Copy column (memif offloads it).
    phases.add(
        memif_hwsim::Phase::Copy,
        record
            .completed_at
            .since(record.dma_started_at.unwrap_or(record.completed_at)),
    );
    let cpu_busy = sys.meter.cpu_busy().saturating_sub(cpu_before);
    ProbeResult {
        wall,
        phases,
        cpu_usage: cpu_busy.as_ns() as f64 / window.as_ns().max(1) as f64,
    }
}

/// Probes one Linux `mbind` migration of the same shape.
#[must_use]
pub fn probe_linux_once(cost: &CostModel, page_size: PageSize, pages: u32) -> ProbeResult {
    let mut sys = System::with_profile(bigfast_topology(), cost.clone());
    let space = sys.new_space();
    let start = sys.mmap(space, pages, page_size, NodeId(0)).unwrap();
    let mut meter = memif_hwsim::UsageMeter::new();
    let out = {
        let (spaces, alloc, phys) = split_mm(&mut sys);
        mbind(
            &mut spaces[space.0],
            alloc,
            phys,
            cost,
            &mut meter,
            &[RegionRequest {
                start,
                pages,
                page_size,
                dst_node: NodeId(1),
            }],
        )
    };
    ProbeResult {
        wall: out.duration,
        phases: out.phases,
        cpu_usage: 1.0, // synchronous and CPU-bound by construction
    }
}

fn split_mm(
    sys: &mut System,
) -> (
    &mut Vec<memif_mm::AddressSpace>,
    &mut memif_mm::FrameAllocator,
    &mut memif_hwsim::PhysMem,
) {
    // The baseline path runs outside the DES against the same machine.
    sys.split_for_baseline()
}

/// Result of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Requests completed.
    pub requests: usize,
    /// Bytes moved.
    pub bytes: u64,
    /// Wall time from first submission to last completion.
    pub wall: SimDuration,
    /// Move throughput, GB/s.
    pub throughput_gbps: f64,
    /// Completion time of each request, in submission order.
    pub completion_times: Vec<SimTime>,
    /// Total `ioctl(MOV_ONE)` syscalls the application made.
    pub ioctls: u64,
    /// Completions taken through the interrupt path.
    pub interrupts: u64,
    /// Completions taken through the kernel thread's polling mode.
    pub polled: u64,
    /// CPU usage over the run (fraction of one core).
    pub cpu_usage: f64,
    /// DMA re-issues after an error, timeout, or descriptor exhaustion
    /// (nonzero only under fault injection).
    pub retries: u64,
    /// Requests served by the degraded CPU-copy path.
    pub fallbacks: u64,
    /// Watchdog expiries.
    pub timeouts: u64,
    /// DMA error interrupts taken.
    pub dma_errors: u64,
    /// Requests that reached a `Failed` terminal status.
    pub failed: u64,
    /// The device's full driver counters at the end of the run
    /// (batching/coalescing analysis reads `requests_batched`,
    /// `segments_coalesced`, `descriptors_written`,
    /// `descriptor_writes_saved`, and the phase breakdown from here).
    pub stats: memif::DriverStats,
    /// Kernel-worker busy time per issue shard (index = shard). Empty
    /// when the run recorded no worker-attributed time (e.g. the Linux
    /// baseline).
    pub worker_busy: Vec<SimDuration>,
    /// Per-tier occupancy and migration counts at the end of the run
    /// ([`memif::System::tier_usage`]). Empty for the Linux baseline,
    /// which models no tiered machine.
    pub tiers: Vec<memif::TierUsage>,
    /// Events the DES scheduler executed over the run. Zero for the
    /// Linux baseline, which is computed closed-form without the DES.
    pub events_executed: u64,
    /// Pending events cancelled before firing (flow-timer rearms,
    /// watchdog disarms).
    pub events_cancelled: u64,
    /// High-water mark of concurrently pending scheduler events.
    pub peak_pending: usize,
}

/// Streams `count` identical memif requests, keeping up to `window`
/// outstanding, and measures throughput and the completion timeline.
///
/// Migrations ping-pong their regions between the nodes so the fast bank
/// never overflows (only forward-direction bytes are counted — both
/// directions cost the same, so throughput is unaffected).
///
/// # Panics
///
/// Panics if any request fails.
#[must_use]
pub fn stream_memif(
    cost: &CostModel,
    memif_config: MemifConfig,
    kind: ShapeKind,
    page_size: PageSize,
    pages: u32,
    count: usize,
    window: usize,
) -> StreamResult {
    stream_memif_with_faults(
        cost,
        memif_config,
        kind,
        page_size,
        pages,
        count,
        window,
        None,
    )
}

/// [`stream_memif`] with an optional fault plan installed before the
/// first submission (the E10 chaos workloads). With a plan, failed
/// completions are tolerated and counted instead of panicking; every
/// request must still reach a terminal state or the run asserts.
///
/// # Panics
///
/// Panics if any request fails while no fault plan is installed, or if
/// any request never completes.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn stream_memif_with_faults(
    cost: &CostModel,
    memif_config: MemifConfig,
    kind: ShapeKind,
    page_size: PageSize,
    pages: u32,
    count: usize,
    window: usize,
    faults: Option<memif::FaultPlan>,
) -> StreamResult {
    run_stream(
        bigfast_topology(),
        cost,
        memif_config,
        kind,
        page_size,
        pages,
        count,
        window,
        faults,
        false,
    )
    .result
}

/// [`stream_memif`] on [`nvm_topology`] instead of the big fast bank:
/// requests ping-pong between DDR and the persistent NVM node, so the
/// run exercises the asymmetric-write tier (and, with
/// `MemifConfig::journal` set, the write-ahead journal costs). The E15
/// overhead bar compares this with journaling on and off.
///
/// # Panics
///
/// Panics if any request fails or never completes.
#[must_use]
pub fn stream_memif_nvm(
    cost: &CostModel,
    memif_config: MemifConfig,
    kind: ShapeKind,
    page_size: PageSize,
    pages: u32,
    count: usize,
    window: usize,
) -> StreamResult {
    run_stream(
        nvm_topology(),
        cost,
        memif_config,
        kind,
        page_size,
        pages,
        count,
        window,
        None,
        false,
    )
    .result
}

/// A streaming run captured in full: the [`StreamResult`], the typed
/// event log (one JSON record per dispatched event, in execution order),
/// and each request's terminal status in completion order. Two runs of
/// the same scenario — same cost model, config, shape, and fault plan —
/// produce byte-identical logs; `memifctl` builds its trace dump and
/// replay check on this.
#[derive(Debug, Clone)]
pub struct LoggedStream {
    /// The measurements, as from [`stream_memif_with_faults`].
    pub result: StreamResult,
    /// JSON-lines event log of the whole run.
    pub events: Vec<String>,
    /// `(req_id, terminal MoveStatus)` per request, completion order.
    pub statuses: Vec<(u64, String)>,
}

/// [`stream_memif_with_faults`] with the typed event log enabled.
///
/// # Panics
///
/// Panics if any request fails while no fault plan is installed, or if
/// any request never completes.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn stream_memif_logged(
    cost: &CostModel,
    memif_config: MemifConfig,
    kind: ShapeKind,
    page_size: PageSize,
    pages: u32,
    count: usize,
    window: usize,
    faults: Option<memif::FaultPlan>,
) -> LoggedStream {
    run_stream(
        bigfast_topology(),
        cost,
        memif_config,
        kind,
        page_size,
        pages,
        count,
        window,
        faults,
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_stream(
    topo: Topology,
    cost: &CostModel,
    memif_config: MemifConfig,
    kind: ShapeKind,
    page_size: PageSize,
    pages: u32,
    count: usize,
    window: usize,
    faults: Option<memif::FaultPlan>,
    log_events: bool,
) -> LoggedStream {
    struct State {
        memif: Memif,
        kind: ShapeKind,
        page_size: PageSize,
        pages: u32,
        submitted: usize,
        completed: usize,
        count: usize,
        // Region pool; for migration, tracks which node each sits on.
        regions: Vec<(memif::VirtAddr, memif::VirtAddr, NodeId)>,
        completion_times: Vec<SimTime>,
        finished_at: Option<SimTime>,
        chaos: bool,
        failed: u64,
    }

    let mut sys = System::with_profile(topo, cost.clone());
    if log_events {
        sys.enable_event_log();
    }
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, memif_config).unwrap();
    let chaos = faults.is_some();
    if let Some(plan) = faults {
        sys.install_faults(&mut sim, plan);
    }

    let window = window.min(count).max(1);
    let mut regions = Vec::new();
    for _ in 0..window {
        let src = sys.mmap(space, pages, page_size, NodeId(0)).unwrap();
        let dst = match kind {
            ShapeKind::Replicate => sys.mmap(space, pages, page_size, NodeId(1)).unwrap(),
            ShapeKind::Migrate => memif::VirtAddr::new(0),
        };
        regions.push((src, dst, NodeId(0)));
    }

    let state = Rc::new(RefCell::new(State {
        memif,
        kind,
        page_size,
        pages,
        submitted: 0,
        completed: 0,
        count,
        regions,
        completion_times: vec![SimTime::ZERO; count],
        finished_at: None,
        chaos,
        failed: 0,
    }));

    fn submit_next(state: &Rc<RefCell<State>>, sys: &mut System, sim: &mut Sim<System>) {
        let (memif, spec, idx) = {
            let mut st = state.borrow_mut();
            if st.submitted >= st.count {
                return;
            }
            let idx = st.submitted;
            st.submitted += 1;
            let slot = idx % st.regions.len();
            let (src, dst, node) = st.regions[slot];
            let spec = match st.kind {
                ShapeKind::Replicate => MoveSpec::replicate(src, dst, st.pages, st.page_size),
                ShapeKind::Migrate => {
                    let target = if node == NodeId(0) {
                        NodeId(1)
                    } else {
                        NodeId(0)
                    };
                    st.regions[slot].2 = target;
                    MoveSpec::migrate(src, st.pages, st.page_size, target)
                }
            }
            .with_user_data(idx as u64);
            (st.memif, spec, idx)
        };
        let _ = idx;
        let (_, _cpu) = spec_submit(state, memif, sys, sim, spec);
    }

    fn spec_submit(
        state: &Rc<RefCell<State>>,
        memif: Memif,
        sys: &mut System,
        sim: &mut Sim<System>,
        spec: MoveSpec,
    ) -> (memif::ReqId, SimDuration) {
        let _ = state;
        memif.submit(sys, sim, spec).expect("stream submission")
    }

    fn pump(state: Rc<RefCell<State>>, sys: &mut System, sim: &mut Sim<System>) {
        let memif = state.borrow().memif;
        while let Some(c) = memif.retrieve_completed(sys).expect("region healthy") {
            let mut st = state.borrow_mut();
            if !c.status.is_ok() {
                assert!(
                    st.chaos,
                    "stream request failed without faults: {:?}",
                    c.status
                );
                st.failed += 1;
            }
            let idx = c.user_data as usize;
            st.completion_times[idx] = sim.now();
            st.completed += 1;
            if st.completed == st.count {
                st.finished_at = Some(sim.now());
                return;
            }
            drop(st);
            submit_next(&state, sys, sim);
        }
        let st2 = Rc::clone(&state);
        memif
            .poll(sys, sim, move |sys, sim| pump(st2, sys, sim))
            .expect("bench device open");
    }

    for _ in 0..window {
        submit_next(&state, &mut sys, &mut sim);
    }
    let t0 = sim.now();
    pump(Rc::clone(&state), &mut sys, &mut sim);
    sim.run(&mut sys);

    let st = state.borrow();
    let finished = st.finished_at.expect("all requests completed");
    let wall = finished.since(t0);
    let bytes = u64::from(pages) * page_size.bytes() * count as u64;
    let dev = sys.device(st.memif.device()).unwrap();
    let statuses = dev
        .log
        .iter()
        .map(|r| (r.req_id, format!("{:?}", r.status)))
        .collect();
    let result = StreamResult {
        requests: count,
        bytes,
        wall,
        throughput_gbps: bytes as f64 / wall.as_ns().max(1) as f64,
        completion_times: st.completion_times.clone(),
        ioctls: dev.stats.ioctls,
        interrupts: dev.stats.interrupts,
        polled: dev.stats.polled,
        cpu_usage: sys.meter.cpu_busy().as_ns() as f64 / wall.as_ns().max(1) as f64,
        retries: dev.stats.retries,
        fallbacks: dev.stats.fallbacks,
        timeouts: dev.stats.timeouts,
        dma_errors: dev.stats.dma_errors,
        failed: st.failed,
        stats: dev.stats.clone(),
        worker_busy: sys.meter.workers().to_vec(),
        tiers: sys.tier_usage(),
        events_executed: sim.executed(),
        events_cancelled: sim.cancelled(),
        peak_pending: sim.peak_pending(),
    };
    drop(st);
    LoggedStream {
        result,
        events: sys.take_event_log(),
        statuses,
    }
}

/// Outcome of a [`crash_migrate_nvm`] run: every request's terminal
/// status (exactly one each), the final placement and byte contents of
/// every region, and the allocator balance — everything the
/// exactly-once proptest compares against an uncrashed reference run.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// Whether the crash plan actually fired.
    pub crashed: bool,
    /// The recovery report, when a crash fired.
    pub recovery: Option<RecoveryReport>,
    /// Requests the post-crash application re-submitted (journal showed
    /// no `Done` terminal for them).
    pub resubmitted: usize,
    /// `(cookie, status)` — the single terminal status the application
    /// attributes to each request, in cookie order.
    pub statuses: Vec<(u64, MoveStatus)>,
    /// Final memory node of each region, in region order.
    pub placement: Vec<NodeId>,
    /// Per-page virtual-memory checksums, region order.
    pub fingerprint: Vec<u64>,
    /// Free bytes per memory node, node-id order (a doubled or leaked
    /// move unbalances the allocator).
    pub free_bytes: Vec<u64>,
    /// Journal records appended over the whole run, including
    /// re-submissions.
    pub journal_records: u64,
    /// Simulated time when the run quiesced.
    pub wall: SimDuration,
}

/// Runs `count` journaled migrations on [`nvm_topology`] — even cookies
/// DDR→NVM, odd cookies NVM→DDR, one region each, alternating
/// `submit`/`submit_background` — optionally crashing per `crash`, then
/// recovering and driving every request to exactly one terminal status.
///
/// The post-crash application protocol is the write-ahead-log contract:
/// requests the recovery report shows as `Done` are **not** re-driven;
/// everything else (rolled back, or vanished before journaling) has its
/// source data restored — volatile payload is the application's
/// durability problem, the journal only makes the *move* exactly-once —
/// and is re-submitted. `journal` is forced on.
///
/// # Panics
///
/// Panics if any request fails or the run does not quiesce.
#[must_use]
pub fn crash_migrate_nvm(
    cost: &CostModel,
    memif_config: MemifConfig,
    page_size: PageSize,
    pages: u32,
    count: usize,
    crash: Option<CrashPlan>,
) -> CrashOutcome {
    crash_migrate_nvm_inner(cost, memif_config, page_size, pages, count, crash, false).0
}

/// [`crash_migrate_nvm`] with the typed event log enabled: returns the
/// outcome plus the JSON-lines event log spanning the crash, the
/// recovery (one `"recover"` record), and the post-crash re-drive. Two
/// runs of the same scenario produce byte-identical logs; `memifctl
/// recover --trace-events` and its replay check build on this.
///
/// # Panics
///
/// As [`crash_migrate_nvm`].
#[must_use]
pub fn crash_migrate_nvm_logged(
    cost: &CostModel,
    memif_config: MemifConfig,
    page_size: PageSize,
    pages: u32,
    count: usize,
    crash: Option<CrashPlan>,
) -> (CrashOutcome, Vec<String>) {
    crash_migrate_nvm_inner(cost, memif_config, page_size, pages, count, crash, true)
}

fn crash_migrate_nvm_inner(
    cost: &CostModel,
    mut memif_config: MemifConfig,
    page_size: PageSize,
    pages: u32,
    count: usize,
    crash: Option<CrashPlan>,
    log_events: bool,
) -> (CrashOutcome, Vec<String>) {
    memif_config.journal = true;
    let mut sys = System::with_profile(nvm_topology(), cost.clone());
    if log_events {
        sys.enable_event_log();
    }
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, memif_config).unwrap();
    if let Some(plan) = crash {
        sys.install_faults(
            &mut sim,
            FaultPlan {
                crash: Some(plan),
                ..FaultPlan::default()
            },
        );
    }

    // One region per request; even cookies start on DDR and migrate to
    // NVM, odd cookies the other way.
    let src_node = |cookie: usize| NodeId((cookie % 2) as u16);
    let dst_node = |cookie: usize| NodeId(1 - (cookie % 2) as u16);
    let regions: Vec<memif::VirtAddr> = (0..count)
        .map(|i| sys.mmap(space, pages, page_size, src_node(i)).unwrap())
        .collect();
    let fill = |sys: &mut System, region: usize| {
        let va = regions[region];
        for p in 0..pages {
            let page = va.offset(u64::from(p) * page_size.bytes());
            let pa = sys.space(space).translate(page).unwrap();
            let pattern = 1u8
                .wrapping_add((region as u8).wrapping_mul(31))
                .wrapping_add((p as u8).wrapping_mul(7));
            sys.phys.fill(pa, page_size.bytes(), pattern);
        }
    };
    for r in 0..count {
        fill(&mut sys, r);
    }

    let spec_for = |cookie: usize| {
        MoveSpec::migrate(regions[cookie], pages, page_size, dst_node(cookie))
            .with_user_data(cookie as u64)
    };
    for cookie in 0..count {
        // Alternate the two submission entry points so the `submit`
        // crash hook is exercised on both.
        if cookie % 2 == 0 {
            memif.submit(&mut sys, &mut sim, spec_for(cookie)).unwrap();
        } else {
            memif
                .submit_background(&mut sys, &mut sim, spec_for(cookie))
                .unwrap();
        }
    }
    sim.run(&mut sys);

    let mut statuses: Vec<Option<MoveStatus>> = vec![None; count];
    let mut resubmitted = 0usize;
    let crashed = sys.crashed();
    let mut recovery = None;
    if crashed {
        let report = sys.recover(&mut sim);
        for &(_, status, cookie) in &report.statuses {
            let slot = &mut statuses[cookie as usize];
            assert!(
                slot.is_none(),
                "journal reported cookie {cookie} twice: {slot:?} then {status:?}"
            );
            *slot = Some(status);
        }
        recovery = Some(report);
        // The WAL contract: everything without a durable `Done` is the
        // application's to re-drive. Restore its (volatile) source data
        // first, then resubmit. Requests that completed onto a volatile
        // node are durably *moved* but their payload died with the
        // crash — reconstructing volatile data after a reboot is the
        // application's job, never the journal's promise — so restore
        // those in place without re-driving.
        for cookie in 0..count {
            if statuses[cookie] == Some(MoveStatus::Done) {
                let pa = sys.space(space).translate(regions[cookie]).unwrap();
                let node = sys.node_of(pa).and_then(|n| sys.topo.node(n));
                if node.is_some_and(|n| !n.kind.is_persistent()) {
                    fill(&mut sys, cookie);
                }
                continue;
            }
            statuses[cookie] = None; // superseded by the re-drive below
            fill(&mut sys, cookie);
            memif.submit(&mut sys, &mut sim, spec_for(cookie)).unwrap();
            resubmitted += 1;
        }
        sim.run(&mut sys);
    }
    while let Some(c) = memif.retrieve_completed(&mut sys).unwrap() {
        let slot = &mut statuses[c.user_data as usize];
        assert!(
            slot.is_none(),
            "cookie {} completed twice: {:?} then {:?}",
            c.user_data,
            slot,
            c.status.0
        );
        *slot = Some(c.status.0);
    }
    assert!(!sys.crashed(), "a crash plan fires at most once");

    let statuses: Vec<(u64, MoveStatus)> = statuses
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            (
                i as u64,
                s.unwrap_or_else(|| panic!("cookie {i} never terminal")),
            )
        })
        .collect();
    let mut placement = Vec::with_capacity(count);
    let mut fingerprint = Vec::with_capacity(count * pages as usize);
    for va in &regions {
        let pa = sys.space(space).translate(*va).expect("region mapped");
        placement.push(sys.node_of(pa).expect("on a known node"));
        for p in 0..pages {
            let page = va.offset(u64::from(p) * page_size.bytes());
            let pa = sys.space(space).translate(page).expect("page mapped");
            fingerprint.push(sys.phys.checksum(pa, page_size.bytes()));
        }
    }
    let free_bytes = sys
        .topo
        .all_nodes()
        .iter()
        .map(|n| sys.alloc.free_bytes(n.id))
        .collect();
    let journal_records = sys.journal().len() as u64;
    for rec in sys.journal().records() {
        assert!(
            rec.sealed.is_some(),
            "journal record for request {} left unsealed",
            rec.req.id
        );
    }
    let outcome = CrashOutcome {
        crashed,
        recovery,
        resubmitted,
        statuses,
        placement,
        fingerprint,
        free_bytes,
        journal_records,
        wall: sim.now().since(SimTime::ZERO),
    };
    let events = if log_events {
        sys.take_event_log()
    } else {
        Vec::new()
    };
    (outcome, events)
}

/// Streams `count` migrations through Linux `mbind`, batching `batch`
/// requests per syscall — the §6.4 comparator.
///
/// # Panics
///
/// Panics if any page fails to migrate.
#[must_use]
pub fn stream_linux(
    cost: &CostModel,
    page_size: PageSize,
    pages: u32,
    count: usize,
    batch: usize,
) -> StreamResult {
    let mut sys = System::with_profile(bigfast_topology(), cost.clone());
    let space = sys.new_space();
    let mut meter = memif_hwsim::UsageMeter::new();

    // Region pool ping-pongs like the memif driver above.
    let pool = batch.max(1);
    let mut regions: Vec<(memif::VirtAddr, NodeId)> = (0..pool)
        .map(|_| {
            (
                sys.mmap(space, pages, page_size, NodeId(0)).unwrap(),
                NodeId(0),
            )
        })
        .collect();

    let mut now = SimTime::ZERO;
    let mut completion_times = Vec::with_capacity(count);
    let mut syscalls = 0u64;
    let mut done = 0usize;
    while done < count {
        let n = batch.min(count - done);
        let mut reqs = Vec::with_capacity(n);
        for r in regions.iter_mut().take(n) {
            let target = if r.1 == NodeId(0) {
                NodeId(1)
            } else {
                NodeId(0)
            };
            reqs.push(RegionRequest {
                start: r.0,
                pages,
                page_size,
                dst_node: target,
            });
            r.1 = target;
        }
        let out = {
            let (spaces, alloc, phys) = sys.split_for_baseline();
            mbind(&mut spaces[space.0], alloc, phys, cost, &mut meter, &reqs)
        };
        assert!(out.failed.is_empty(), "baseline failures: {:?}", out.failed);
        syscalls += 1;
        // Requests complete inside the syscall, but the *application*
        // only learns at syscall exit — which is what latency means to
        // it (§6.4).
        for _ in 0..n {
            completion_times.push(now + out.duration);
        }
        now += out.duration;
        done += n;
    }

    let bytes = u64::from(pages) * page_size.bytes() * count as u64;
    let wall = now.since(SimTime::ZERO);
    StreamResult {
        requests: count,
        bytes,
        wall,
        throughput_gbps: bytes as f64 / wall.as_ns().max(1) as f64,
        completion_times,
        ioctls: syscalls,
        interrupts: 0,
        polled: 0,
        cpu_usage: 1.0,
        retries: 0,
        fallbacks: 0,
        timeouts: 0,
        dma_errors: 0,
        failed: 0,
        stats: memif::DriverStats::default(),
        worker_busy: Vec::new(),
        tiers: Vec::new(),
        events_executed: 0,
        events_cancelled: 0,
        peak_pending: 0,
    }
}
