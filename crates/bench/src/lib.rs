//! Benchmark harness for the memif reproduction.
//!
//! Each table and figure of the paper's evaluation has a binary here:
//!
//! | target | experiment |
//! |---|---|
//! | `sec2_microbench` | §2.2 Linux page-migration throughput (ARM + Xeon) |
//! | `fig6_breakdown`  | Figure 6: per-request time breakdown + CPU usage |
//! | `fig7_latency`    | Figure 7: completion latency, memif vs batched mbind |
//! | `fig8_throughput` | Figure 8: move throughput across page granularities |
//! | `tab4_streaming`  | Table 4: streaming workloads on the mini runtime |
//! | `tab3_sloc`       | Table 3 analogue: source-line inventory |
//! | `ablation`        | A1–A4: descriptor reuse, gang lookup, race mode, poll threshold |
//! | `e10_degraded`    | E10: throughput under injected DMA faults (degraded mode) |
//! | `e12_batching`    | E12: request batching + segment coalescing on the issue path |
//! | `e13_issue_scaling` | E13: aggregate move rate vs issue shards |
//! | `e14_policy`      | E14: hot/cold placement — none vs sync vs async daemon |
//! | `e15_recovery`    | E15: journal overhead + crash/recover exactly-once convergence |
//!
//! Criterion micro-benches (`cargo bench`) cover the real data
//! structures: the red–blue queue, gang lookup, DMA configuration, and
//! an end-to-end simulated move.
//!
//! All binaries print aligned tables and drop CSVs into `./results`
//! (override with `MEMIF_RESULTS_DIR`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod table;

pub use harness::{
    bigfast_topology, crash_migrate_nvm, crash_migrate_nvm_logged, nvm_topology, probe_linux_once,
    probe_memif_once, stream_linux, stream_memif, stream_memif_logged, stream_memif_nvm,
    stream_memif_with_faults, CrashOutcome, LoggedStream, ProbeResult, StreamResult,
};
pub use table::{mbs, results_dir, Table};
