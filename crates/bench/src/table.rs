//! Fixed-width table rendering and CSV emission for experiment output.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes the table as CSV into the experiment results directory,
    /// returning the path.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be created or written.
    pub fn write_csv(&self, name: &str) -> PathBuf {
        let dir = results_dir();
        fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        fs::write(&path, out).expect("write csv");
        path
    }
}

/// Where experiment CSVs land (`MEMIF_RESULTS_DIR` or `./results`).
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var_os("MEMIF_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

/// Formats a GB/s value as the MB/s convention of Table 4.
#[must_use]
pub fn mbs(gbps: f64) -> String {
    format!("{:.1}", gbps * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["much-longer-name".into(), "23456".into()]);
        let r = t.render();
        assert!(r.contains("=== demo ==="));
        assert!(r.contains("much-longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "alignment");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("memif-bench-test-{}", std::process::id()));
        std::env::set_var("MEMIF_RESULTS_DIR", &dir);
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into(), "with,comma".into()]);
        let path = t.write_csv("unit_test");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,\"with,comma\"\n");
        std::env::remove_var("MEMIF_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mbs_formatting() {
        assert_eq!(mbs(2.3841), "2384.1");
    }
}
