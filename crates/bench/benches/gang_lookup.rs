//! Criterion micro-benchmarks of page-table lookup: gang walk (§5.1)
//! vs per-page vertical walks, on the real radix table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memif_hwsim::PhysAddr;
use memif_mm::{PageSize, PageTable, Pte, VirtAddr};

fn build_table(pages: u32) -> (PageTable, VirtAddr) {
    let mut t = PageTable::new();
    let base = VirtAddr::new(0x4000_0000);
    for i in 0..u64::from(pages) {
        t.map(
            base.offset(i * 4096),
            Pte::mapping(PhysAddr::new(0x8_0000_0000 + i * 4096), PageSize::Small4K),
        )
        .unwrap();
    }
    (t, base)
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_lookup");
    for pages in [16u32, 64, 256, 512] {
        let (table, base) = build_table(pages);
        g.throughput(Throughput::Elements(u64::from(pages)));
        g.bench_with_input(BenchmarkId::new("gang", pages), &pages, |b, &n| {
            b.iter(|| {
                let (entries, stats) = table.lookup_range(base, n, PageSize::Small4K, true);
                assert_eq!(
                    stats.vertical as u64 + stats.horizontal as u64,
                    u64::from(n)
                );
                entries.len()
            });
        });
        g.bench_with_input(BenchmarkId::new("per_page", pages), &pages, |b, &n| {
            b.iter(|| {
                let (entries, _) = table.lookup_range(base, n, PageSize::Small4K, false);
                entries.len()
            });
        });
    }
    g.finish();
}

fn bench_pte_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("pte_ops");
    g.bench_function("compare_exchange_success", |b| {
        let (mut table, base) = build_table(1);
        let young = Pte::mapping(PhysAddr::new(0x8_0000_0000), PageSize::Small4K);
        let done = young.with_young(false);
        b.iter(|| {
            table.compare_exchange(base, young, done).unwrap();
            table.replace(base, young).unwrap();
        });
    });
    g.bench_function("map_unmap", |b| {
        let mut table = PageTable::new();
        let va = VirtAddr::new(0x10_0000);
        let pte = Pte::mapping(PhysAddr::new(0x8_0000_0000), PageSize::Small4K);
        b.iter(|| {
            table.map(va, pte).unwrap();
            table.unmap(va, PageSize::Small4K).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_pte_ops);
criterion_main!(benches);
