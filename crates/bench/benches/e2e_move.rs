//! Criterion benchmark of the end-to-end simulated move pipeline: how
//! fast the *simulator* executes a full submit → DMA → release → notify
//! round trip (host wall-clock per simulated request). Useful to track
//! simulator performance regressions; the simulated-time results live
//! in the figure binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};

fn one_round(pages: u32) {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    let va = sys
        .mmap(space, pages, PageSize::Small4K, NodeId(0))
        .unwrap();
    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(va, pages, PageSize::Small4K, NodeId(1)),
        )
        .unwrap();
    sim.run(&mut sys);
    let c = memif.retrieve_completed(&mut sys).unwrap().unwrap();
    assert!(c.status.is_ok());
}

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_simulated_move");
    for pages in [1u32, 16, 128] {
        g.throughput(Throughput::Elements(u64::from(pages)));
        g.bench_with_input(BenchmarkId::new("migrate", pages), &pages, |b, &n| {
            b.iter(|| one_round(n));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
