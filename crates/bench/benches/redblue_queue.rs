//! Criterion micro-benchmarks of the red–blue lock-free queue — real
//! wall-clock measurements of the actual data structure, not simulated
//! costs. The paper's claim: "Compared to the classic design, the
//! overhead added by coloring is negligible" (§4.3) — compare the
//! `enqueue_dequeue` and `submit_protocol` timings against any classic
//! MPMC queue to see the same order of magnitude.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memif_lockfree::{Color, MovReq, QueueId, Region};

fn req(id: u64) -> MovReq {
    MovReq {
        id,
        nr_pages: 16,
        page_shift: 12,
        ..MovReq::default()
    }
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("redblue_queue");
    g.throughput(Throughput::Elements(1));

    g.bench_function("enqueue_dequeue", |b| {
        let region = Region::new(64).unwrap();
        let mut slot = region.alloc_slot().unwrap();
        let mut i = 0u64;
        b.iter(|| {
            region.enqueue(QueueId::Staging, slot, &req(i)).unwrap();
            let d = region.dequeue(QueueId::Staging).unwrap().unwrap();
            slot = d.slot;
            i += 1;
            d.req.id
        });
    });

    g.bench_function("alloc_free_slot", |b| {
        let region = Region::new(64).unwrap();
        b.iter(|| {
            let s = region.alloc_slot().unwrap();
            region.free_slot(s).unwrap();
        });
    });

    g.bench_function("set_color_empty", |b| {
        let region = Region::new(8).unwrap();
        let mut color = Color::Red;
        b.iter(|| {
            region.set_color(QueueId::Staging, color).unwrap();
            color = color.flipped();
        });
    });

    // The full §4.4 SubmitRequest protocol: enqueue + flush + recolor,
    // minus the ioctl (the syscall is simulated elsewhere).
    g.bench_function("submit_protocol", |b| {
        let region = Region::new(64).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let slot = region.alloc_slot().unwrap();
            let color = region.enqueue(QueueId::Staging, slot, &req(i)).unwrap();
            i += 1;
            if color == Color::Blue {
                while let Some(d) = region.dequeue(QueueId::Staging).unwrap() {
                    region.enqueue(QueueId::Submission, d.slot, &d.req).unwrap();
                }
                let _ = region.set_color(QueueId::Staging, Color::Red);
            }
            // Kernel side drains and recolors blue.
            while let Some(d) = region.dequeue(QueueId::Submission).unwrap() {
                region.free_slot(d.slot).unwrap();
            }
            let _ = region.set_color(QueueId::Staging, Color::Blue);
        });
    });

    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut g = c.benchmark_group("redblue_queue_contended");
    g.throughput(Throughput::Elements(1));
    g.bench_function("mpmc_2p2c", |b| {
        b.iter_custom(|iters| {
            let region = Arc::new(Region::new(128).unwrap());
            let stop = Arc::new(AtomicBool::new(false));
            // Background pair keeps the queue contended.
            let bg: Vec<_> = (0..2)
                .map(|_| {
                    let region = Arc::clone(&region);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            if let Ok(s) = region.alloc_slot() {
                                region.enqueue(QueueId::Submission, s, &req(0)).unwrap();
                            }
                            if let Some(d) = region.dequeue(QueueId::Submission).unwrap() {
                                region.free_slot(d.slot).unwrap();
                            }
                        }
                    })
                })
                .collect();

            let start = std::time::Instant::now();
            let mut slot = region.alloc_slot().unwrap();
            for i in 0..iters {
                region.enqueue(QueueId::Staging, slot, &req(i)).unwrap();
                let d = loop {
                    if let Some(d) = region.dequeue(QueueId::Staging).unwrap() {
                        break d;
                    }
                };
                slot = d.slot;
            }
            let elapsed = start.elapsed();
            region.free_slot(slot).unwrap();
            stop.store(true, Ordering::Relaxed);
            for t in bg {
                t.join().unwrap();
            }
            elapsed
        });
    });
    // Four producers hammering ONE staging queue against the measuring
    // thread acting as the single dequeuer — the seed's issue-path shape
    // at its most contended. Compare with `mpsc_4p_sharded`, where the
    // same producer population is spread over four shards: per-queue CAS
    // contention drops and dequeue throughput rises, the effect the
    // sharded issue path exploits.
    g.bench_function("mpsc_4p_single_queue", |b| {
        b.iter_custom(|iters| mpsc_throughput(1, iters));
    });
    g.bench_function("mpsc_4p_sharded", |b| {
        b.iter_custom(|iters| mpsc_throughput(4, iters));
    });
    g.finish();
}

/// Times `iters` dequeues by one consumer while 4 producers enqueue into
/// `shards` staging shards (producer `p` pinned to shard `p % shards`).
fn mpsc_throughput(shards: usize, iters: u64) -> std::time::Duration {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let region = Arc::new(Region::new_sharded(128, shards).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let producers: Vec<_> = (0..4usize)
        .map(|p| {
            let region = Arc::clone(&region);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let shard = p % shards;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(s) = region.alloc_slot() {
                        region
                            .enqueue_sharded(QueueId::Staging, shard, s, &req(i))
                            .unwrap();
                        i += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();

    let start = std::time::Instant::now();
    let mut drained = 0u64;
    let mut shard = 0usize;
    while drained < iters {
        if let Some(d) = region.dequeue_sharded(QueueId::Staging, shard).unwrap() {
            region.free_slot(d.slot).unwrap();
            drained += 1;
        }
        shard = (shard + 1) % shards;
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    for t in producers {
        t.join().unwrap();
    }
    elapsed
}

criterion_group!(benches, bench_queue_ops, bench_contended);
criterion_main!(benches);
