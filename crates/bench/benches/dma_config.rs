//! Criterion micro-benchmarks of DMA-engine configuration: fresh
//! descriptor programming vs chain reuse (§5.3), on the real chain
//! manager and PaRAM model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memif_hwsim::dma::{DmaEngine, SgSegment};
use memif_hwsim::{CostModel, PhysAddr};

fn segments(n: u64) -> Vec<SgSegment> {
    (0..n)
        .map(|i| SgSegment {
            src: PhysAddr::new(0x8_0000_0000 + i * 4096),
            dst: PhysAddr::new(0x0C00_0000 + i * 4096),
            bytes: 4096,
        })
        .collect()
}

fn bench_configure(c: &mut Criterion) {
    let cost = CostModel::keystone_ii();
    let mut g = c.benchmark_group("dma_configure");
    for n in [4u64, 32, 128] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("reuse", n), &n, |b, &n| {
            let mut engine = DmaEngine::new();
            // Warm the chain once.
            let t = engine.configure(segments(n), &cost).unwrap();
            engine_release(&mut engine, t.chain);
            b.iter(|| {
                let t = engine.configure(segments(n), &cost).unwrap();
                let chain = t.chain;
                let cost_ns = t.config_cost.as_ns();
                engine_release(&mut engine, chain);
                cost_ns
            });
        });
        g.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, &n| {
            let mut engine = DmaEngine::new();
            engine.set_reuse_enabled(false);
            b.iter(|| {
                let t = engine.configure(segments(n), &cost).unwrap();
                let chain = t.chain;
                let cost_ns = t.config_cost.as_ns();
                engine_release(&mut engine, chain);
                cost_ns
            });
        });
    }
    g.finish();
}

fn engine_release(engine: &mut DmaEngine, chain: memif_hwsim::dma::ChainId) {
    engine.release_chain(chain);
}

criterion_group!(benches, bench_configure);
criterion_main!(benches);
