//! Tests of the automatic fast-memory swap-out manager ([`FastPool`]).

use memif::{Memif, MemifConfig, NodeId, PageSize, Sim, SpaceId, System};
use memif_runtime::{FastPool, PoolRegion};

const REGION_PAGES: u32 = 256; // 1 MiB per region; SRAM holds 6 MiB

struct Setup {
    sys: System,
    sim: Sim<System>,
    space: SpaceId,
    pool: FastPool,
    regions: Vec<PoolRegion>,
}

fn setup(n_regions: usize, headroom: u64) -> Setup {
    let mut sys = System::keystone_ii();
    let sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
    let pool = FastPool::new(&sys, memif, headroom);
    let regions = (0..n_regions)
        .map(|i| {
            let vaddr = sys
                .mmap(space, REGION_PAGES, PageSize::Small4K, NodeId(0))
                .unwrap();
            let data = vec![i as u8 + 1; (REGION_PAGES as usize) * 4096];
            sys.write_user(space, vaddr, &data).unwrap();
            PoolRegion {
                space,
                vaddr,
                pages: REGION_PAGES,
                page_size: PageSize::Small4K,
            }
        })
        .collect();
    Setup {
        sys,
        sim,
        space,
        pool,
        regions,
    }
}

fn node_of(s: &Setup, r: &PoolRegion) -> NodeId {
    s.sys
        .node_of(s.sys.space(r.space).translate(r.vaddr).unwrap())
        .unwrap()
}

#[test]
fn promotions_within_capacity_just_migrate() {
    let mut s = setup(3, 0);
    for r in s.regions.clone() {
        s.pool.promote(&mut s.sys, &mut s.sim, r);
    }
    s.sim.run(&mut s.sys);
    assert!(s.pool.is_quiescent());
    for r in &s.regions {
        assert!(s.pool.is_resident(r));
        assert_eq!(node_of(&s, r), NodeId(1));
    }
    let stats = s.pool.stats();
    assert_eq!(stats.promotions, 3);
    assert_eq!(stats.evictions, 0);
    assert_eq!(s.pool.resident_bytes(), 3 << 20);
}

#[test]
fn overcommit_evicts_lru() {
    // 8 x 1 MiB promotions through a 6 MiB bank (minus 1 MiB headroom):
    // the oldest promotions get swapped back out automatically.
    let mut s = setup(8, 1 << 20);
    for r in s.regions.clone() {
        s.pool.promote(&mut s.sys, &mut s.sim, r);
        s.sim.run(&mut s.sys);
    }
    assert!(s.pool.is_quiescent());
    let stats = s.pool.stats();
    assert_eq!(stats.promotions, 8, "every promotion eventually landed");
    assert!(
        stats.evictions >= 3,
        "early residents were swapped out: {stats:?}"
    );

    // The most recent regions are in fast memory; the earliest are back
    // in slow — and all data survived the round trips.
    assert!(s.pool.is_resident(&s.regions[7]));
    assert!(!s.pool.is_resident(&s.regions[0]));
    assert_eq!(node_of(&s, &s.regions[7]), NodeId(1));
    assert_eq!(node_of(&s, &s.regions[0]), NodeId(0));
    for (i, r) in s.regions.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        s.sys.read_user(s.space, r.vaddr, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == i as u8 + 1),
            "region {i} data intact"
        );
    }
    // Headroom respected.
    assert!(s.sys.alloc.free_bytes(NodeId(1)) >= 1 << 20);
}

#[test]
fn touch_changes_the_victim() {
    let mut s = setup(6, 1 << 20);
    // Fill the pool with regions 0..5 (5 MiB fits under 6 - 1 headroom).
    for r in s.regions[..5].iter().copied() {
        s.pool.promote(&mut s.sys, &mut s.sim, r);
        s.sim.run(&mut s.sys);
    }
    // Region 0 is LRU; touching it makes region 1 the victim instead.
    s.pool.touch(s.regions[0]);
    s.pool.promote(&mut s.sys, &mut s.sim, s.regions[5]);
    s.sim.run(&mut s.sys);
    assert!(s.pool.is_quiescent());
    assert!(s.pool.is_resident(&s.regions[0]), "touched region survived");
    assert!(
        !s.pool.is_resident(&s.regions[1]),
        "untouched LRU was evicted"
    );
    assert!(s.pool.is_resident(&s.regions[5]));
}

#[test]
fn impossible_promotion_is_dropped_not_deadlocked() {
    let mut s = setup(1, 0);
    // A region larger than the whole fast bank can never fit.
    let huge_va = s
        .sys
        .mmap(s.space, 2_000, PageSize::Small4K, NodeId(0))
        .unwrap();
    let huge = PoolRegion {
        space: s.space,
        vaddr: huge_va,
        pages: 2_000,
        page_size: PageSize::Small4K,
    };
    s.pool.promote(&mut s.sys, &mut s.sim, huge);
    s.sim.run(&mut s.sys);
    assert!(s.pool.is_quiescent(), "no deadlock");
    assert!(!s.pool.is_resident(&huge));
    // The pool still works afterwards.
    s.pool.promote(&mut s.sys, &mut s.sim, s.regions[0]);
    s.sim.run(&mut s.sys);
    assert!(s.pool.is_resident(&s.regions[0]));
}

#[test]
fn repeated_promotion_is_idempotent() {
    let mut s = setup(2, 0);
    for _ in 0..3 {
        s.pool.promote(&mut s.sys, &mut s.sim, s.regions[0]);
        s.sim.run(&mut s.sys);
    }
    let stats = s.pool.stats();
    assert_eq!(
        stats.promotions, 1,
        "re-promoting a resident region is a touch"
    );
    assert_eq!(s.pool.resident_bytes(), 1 << 20);
}

#[test]
fn working_set_rotation_thrashes_gracefully() {
    // Rotate through 8 regions twice with a 5 MiB effective pool: the
    // pool keeps serving, evicting as needed, and every region's data
    // survives the churn.
    let mut s = setup(8, 1 << 20);
    for round in 0..2 {
        for r in s.regions.clone() {
            s.pool.promote(&mut s.sys, &mut s.sim, r);
            s.sim.run(&mut s.sys);
        }
        let _ = round;
    }
    assert!(s.pool.is_quiescent());
    let stats = s.pool.stats();
    assert!(
        stats.promotions >= 13,
        "second round re-promotes evicted regions: {stats:?}"
    );
    for (i, r) in s.regions.iter().enumerate() {
        let mut buf = vec![0u8; 64];
        s.sys.read_user(s.space, r.vaddr, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == i as u8 + 1));
    }
}
