//! The mini streaming runtime (§6.6).
//!
//! "The runtime is based on a simple idea: using the fast memory as an
//! array of prefetch buffers and managing outstanding moves just like
//! asynchronous I/O requests." On start it fills every buffer with
//! memif replications from slow memory; whenever a buffer is ready the
//! compute kernel consumes it from fast memory; the moment a buffer is
//! consumed, a refill is submitted. If every prefetched chunk is spent
//! while moves are still in flight, compute falls back to consuming
//! input directly from slow memory — exactly the policy of the paper.
//!
//! The baseline mode (`Placement::SlowOnly`) runs the same kernel with
//! all data resident in slow memory and no memif involvement — the
//! "Linux" rows of Table 4.

use std::cell::RefCell;
use std::rc::Rc;

use memif::{Memif, MoveSpec, Sim, SimDuration, SimEvent, SimTime, SpaceId, System};
use memif_hwsim::{Context, MemoryKind, ResourceId};
use memif_mm::{PageSize, VirtAddr};

use crate::kernel::KernelProfile;

/// Where the working data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Everything in slow memory; no moves (the Linux baseline rows).
    SlowOnly,
    /// memif prefetch buffers in fast memory.
    MemifPrefetch,
}

/// Streaming-run configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Data placement strategy.
    pub placement: Placement,
    /// Pages per prefetch buffer.
    pub buffer_pages: u32,
    /// Page granularity (the paper's platform allows only 4 KiB).
    pub page_size: PageSize,
    /// Number of prefetch buffers in the array.
    pub num_buffers: usize,
    /// Total input bytes to stream through.
    pub total_input: u64,
    /// Compute cores (profiles are calibrated at 4).
    pub cores: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            placement: Placement::MemifPrefetch,
            buffer_pages: 64, // 256 KiB buffers
            page_size: PageSize::Small4K,
            num_buffers: 8,
            total_input: 64 << 20,
            cores: 4,
        }
    }
}

impl StreamConfig {
    /// Bytes per buffer/chunk.
    #[must_use]
    pub fn chunk_bytes(&self) -> u64 {
        u64::from(self.buffer_pages) * self.page_size.bytes()
    }
}

/// Result of a streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamReport {
    /// Input bytes consumed.
    pub input_bytes: u64,
    /// Total memory traffic generated (the STREAM-style figure).
    pub traffic_bytes: u64,
    /// Wall time.
    pub elapsed: SimDuration,
    /// Input consumption rate, GB/s.
    pub input_gbps: f64,
    /// Traffic rate, GB/s — the MB/s numbers of Table 4 (×1000).
    pub traffic_gbps: f64,
    /// Input consumed from slow memory because no buffer was ready.
    pub fallback_bytes: u64,
    /// Fill requests submitted.
    pub fills: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufferState {
    Idle,
    Filling,
    Ready,
    /// The fill is still in flight but compute already consumed this
    /// chunk straight from its slow-memory source (the §6.6 fallback);
    /// the arriving data is discarded and the buffer refilled with
    /// fresh input.
    Stale,
}

struct Inner {
    config: StreamConfig,
    kernel: KernelProfile,
    memif: Option<Memif>,
    fast_res: ResourceId,
    slow_res: ResourceId,
    /// Prefetch buffers in fast memory.
    buffers: Vec<(VirtAddr, BufferState)>,
    /// Source windows in slow memory (one per buffer).
    windows: Vec<VirtAddr>,
    /// Input bytes handed to fills so far.
    dispatched: u64,
    /// Input bytes fully consumed by compute.
    consumed: u64,
    traffic: u64,
    fallback: u64,
    fills: u64,
    compute_busy: bool,
    poll_armed: bool,
    started_at: SimTime,
    finished_at: Option<SimTime>,
}

/// Handle to a launched streaming run.
pub struct StreamRuntime {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for StreamRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("StreamRuntime")
            .field("kernel", &inner.kernel.name)
            .field("consumed", &inner.consumed)
            .field("finished", &inner.finished_at.is_some())
            .finish()
    }
}

impl StreamRuntime {
    /// Launches a streaming run. In [`Placement::MemifPrefetch`] mode a
    /// memif instance must be supplied; buffers are allocated in the
    /// fast node and refilled with asynchronous replications.
    ///
    /// Drive the simulation to completion, then call
    /// [`StreamRuntime::report`].
    ///
    /// # Panics
    ///
    /// Panics if the topology lacks a fast or slow node, if allocation
    /// of buffers fails, or if `MemifPrefetch` mode lacks a memif
    /// handle.
    pub fn launch(
        sys: &mut System,
        sim: &mut Sim<System>,
        space: SpaceId,
        memif: Option<Memif>,
        config: StreamConfig,
        kernel: KernelProfile,
    ) -> StreamRuntime {
        let fast_node = sys
            .topo
            .node_of_kind(MemoryKind::Fast)
            .expect("fast node")
            .id;
        let slow_node = sys
            .topo
            .node_of_kind(MemoryKind::Slow)
            .expect("slow node")
            .id;
        let fast_res = sys.resources.node(fast_node);
        let slow_res = sys.resources.node(slow_node);

        let prefetch = config.placement == Placement::MemifPrefetch;
        assert!(
            !prefetch || memif.is_some(),
            "MemifPrefetch mode needs a memif instance"
        );

        let mut buffers = Vec::new();
        let mut windows = Vec::new();
        if prefetch {
            for _ in 0..config.num_buffers {
                let buf = sys
                    .mmap(space, config.buffer_pages, config.page_size, fast_node)
                    .expect("fast memory holds the buffer array");
                buffers.push((buf, BufferState::Idle));
                let win = sys
                    .mmap(space, config.buffer_pages, config.page_size, slow_node)
                    .expect("slow memory holds the stream window");
                windows.push(win);
            }
        }

        let inner = Rc::new(RefCell::new(Inner {
            config,
            kernel,
            memif,
            fast_res,
            slow_res,
            buffers,
            windows,
            dispatched: 0,
            consumed: 0,
            traffic: 0,
            fallback: 0,
            fills: 0,
            compute_busy: false,
            poll_armed: false,
            started_at: sim.now(),
            finished_at: None,
        }));

        let rt = StreamRuntime {
            inner: Rc::clone(&inner),
        };
        if prefetch {
            // "As soon as one application starts, the runtime fills all
            // buffers by replicating data from the slow memory
            // asynchronously."
            let n = inner.borrow().config.num_buffers;
            for i in 0..n {
                Self::submit_fill(&inner, sys, sim, i);
            }
            Self::arm_poll(&inner, sys, sim);
        }
        Self::schedule_compute(&inner, sys, sim);
        rt
    }

    /// The run's results.
    ///
    /// # Panics
    ///
    /// Panics if the run has not finished (drive the sim first).
    #[must_use]
    pub fn report(&self) -> StreamReport {
        let inner = self.inner.borrow();
        let finished = inner.finished_at.expect("run finished");
        let elapsed = finished.since(inner.started_at);
        let ns = elapsed.as_ns().max(1) as f64;
        StreamReport {
            input_bytes: inner.consumed,
            traffic_bytes: inner.traffic,
            elapsed,
            input_gbps: inner.consumed as f64 / ns,
            traffic_gbps: inner.traffic as f64 / ns,
            fallback_bytes: inner.fallback,
            fills: inner.fills,
        }
    }

    fn remaining_unclaimed(inner: &Inner) -> u64 {
        inner.config.total_input.saturating_sub(inner.dispatched)
    }

    fn submit_fill(
        inner: &Rc<RefCell<Inner>>,
        sys: &mut System,
        sim: &mut Sim<System>,
        idx: usize,
    ) {
        let (memif, spec) = {
            let mut me = inner.borrow_mut();
            let chunk = me.config.chunk_bytes().min(Self::remaining_unclaimed(&me));
            if chunk < me.config.page_size.bytes() {
                return; // stream exhausted (partial pages fall back)
            }
            let pages = (chunk / me.config.page_size.bytes()) as u32;
            me.dispatched += u64::from(pages) * me.config.page_size.bytes();
            me.buffers[idx].1 = BufferState::Filling;
            me.fills += 1;
            let spec = MoveSpec::replicate(
                me.windows[idx],
                me.buffers[idx].0,
                pages,
                me.config.page_size,
            )
            .with_user_data(idx as u64);
            (me.memif.expect("prefetch mode"), spec)
        };
        memif.submit(sys, sim, spec).expect("fill submission");
    }

    fn arm_poll(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        {
            let mut me = inner.borrow_mut();
            if me.poll_armed || me.finished_at.is_some() {
                return;
            }
            me.poll_armed = true;
        }
        let memif = inner.borrow().memif.expect("prefetch mode");
        let inner2 = Rc::clone(inner);
        memif
            .poll(sys, sim, move |sys, sim| {
                inner2.borrow_mut().poll_armed = false;
                Self::drain_completions(&inner2, sys, sim);
            })
            .expect("device open for the run");
    }

    fn drain_completions(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        let memif = inner.borrow().memif.expect("prefetch mode");
        let mut refill = Vec::new();
        while let Some(c) = memif.retrieve_completed(sys).expect("region healthy") {
            assert!(
                c.status.is_ok(),
                "fills never race: buffers are runtime-private"
            );
            let idx = c.user_data as usize;
            let mut me = inner.borrow_mut();
            if me.buffers[idx].1 == BufferState::Stale {
                // Compute already took this chunk from slow memory; the
                // moved bytes are dead. Reuse the buffer for new input.
                me.buffers[idx].1 = BufferState::Idle;
                refill.push(idx);
            } else {
                me.buffers[idx].1 = BufferState::Ready;
            }
        }
        for idx in refill {
            Self::submit_fill(inner, sys, sim, idx);
        }
        Self::schedule_compute(inner, sys, sim);
        // Keep listening while fills remain outstanding.
        let outstanding = inner
            .borrow()
            .buffers
            .iter()
            .any(|(_, s)| *s == BufferState::Filling);
        if outstanding {
            Self::arm_poll(inner, sys, sim);
        }
    }

    /// Starts the compute engine on the next available work, if idle.
    fn schedule_compute(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        enum Work {
            Chunk {
                idx: Option<usize>,
                input: u64,
                from_fast: bool,
            },
            Wait,
            Done,
        }
        let work = {
            let mut me = inner.borrow_mut();
            if me.compute_busy || me.finished_at.is_some() {
                return;
            }
            if me.consumed >= me.config.total_input {
                me.finished_at = Some(sim.now());
                Work::Done
            } else if me.config.placement == Placement::SlowOnly {
                let input = me
                    .config
                    .chunk_bytes()
                    .min(me.config.total_input - me.consumed);
                me.compute_busy = true;
                Work::Chunk {
                    idx: None,
                    input,
                    from_fast: false,
                }
            } else if let Some(idx) = me
                .buffers
                .iter()
                .position(|(_, s)| *s == BufferState::Ready)
            {
                me.buffers[idx].1 = BufferState::Idle;
                let input = me
                    .config
                    .chunk_bytes()
                    .min(me.config.total_input - me.consumed);
                me.compute_busy = true;
                Work::Chunk {
                    idx: Some(idx),
                    input,
                    from_fast: true,
                }
            } else if let Some(idx) = me
                .buffers
                .iter()
                .position(|(_, s)| *s == BufferState::Filling)
            {
                // "If all prefetched data are consumed when memory move is
                // still in flight, the runtime invokes compute function to
                // consume data in the slow memory" (§6.6): take the next
                // in-flight chunk straight from its slow source; the fill's
                // bytes will arrive dead and the buffer is refilled.
                let input = me
                    .config
                    .chunk_bytes()
                    .min(me.config.total_input - me.consumed);
                me.buffers[idx].1 = BufferState::Stale;
                me.fallback += input;
                me.compute_busy = true;
                Work::Chunk {
                    idx: None,
                    input,
                    from_fast: false,
                }
            } else if Self::remaining_unclaimed(&me) > 0 {
                // Nothing prefetched and nothing in flight (start-up or
                // tail): consume directly from slow memory.
                let input = me.config.chunk_bytes().min(Self::remaining_unclaimed(&me));
                me.dispatched += input;
                me.fallback += input;
                me.compute_busy = true;
                Work::Chunk {
                    idx: None,
                    input,
                    from_fast: false,
                }
            } else {
                Work::Wait // fills in flight carry the rest of the input
            }
        };

        match work {
            Work::Done | Work::Wait => {}
            Work::Chunk {
                idx,
                input,
                from_fast,
            } => {
                Self::run_chunk(inner, sys, sim, idx, input, from_fast);
            }
        }
    }

    /// One chunk through the kernel: read stream, then write stream,
    /// then the pure-compute tail (additive, as on in-order cores).
    fn run_chunk(
        inner: &Rc<RefCell<Inner>>,
        sys: &mut System,
        sim: &mut Sim<System>,
        buffer: Option<usize>,
        input: u64,
        from_fast: bool,
    ) {
        let (read_bytes, write_bytes, compute_ns, read_res, read_demand, write_demand) = {
            let me = inner.borrow();
            let k = &me.kernel;
            let cores_scale = f64::from(me.config.cores) / 4.0;
            let read_bytes = (input as f64 * k.read_bytes_per_input) as u64;
            let write_bytes = (input as f64 * k.write_bytes_per_input) as u64;
            let compute_ns = (input as f64 * k.compute_ns_per_input / cores_scale).round() as u64;
            let (read_res, read_demand) = if from_fast {
                (
                    me.fast_res,
                    sys.cost.cpu_stream_fast_gbps * k.fast_efficiency,
                )
            } else {
                (me.slow_res, sys.cost.cpu_stream_slow_gbps)
            };
            (
                read_bytes,
                write_bytes,
                compute_ns,
                read_res,
                read_demand,
                sys.cost.cpu_stream_slow_gbps,
            )
        };

        let inner2 = Rc::clone(inner);
        let after_write = move |sys: &mut System, sim: &mut Sim<System>| {
            // Pure-compute tail, then chunk retirement.
            let inner3 = Rc::clone(&inner2);
            sys.meter
                .charge(Context::App, SimDuration::from_ns(compute_ns));
            sim.schedule_after(
                SimDuration::from_ns(compute_ns),
                SimEvent::call(move |sys, sim| {
                    {
                        let mut me = inner3.borrow_mut();
                        me.consumed += input;
                        me.traffic += read_bytes + write_bytes;
                        me.compute_busy = false;
                    }
                    // "Immediately after any buffer is consumed, the runtime
                    // requests to fill the buffer with fresh data again."
                    if let Some(idx) = buffer {
                        if Self::remaining_unclaimed(&inner3.borrow()) > 0 {
                            Self::submit_fill(&inner3, sys, sim, idx);
                            Self::arm_poll(&inner3, sys, sim);
                        }
                    }
                    Self::schedule_compute(&inner3, sys, sim);
                }),
            );
        };

        let slow_res = inner.borrow().slow_res;
        let charge_read = SimDuration::from_ns((read_bytes as f64 / read_demand) as u64);
        sys.meter.charge(Context::App, charge_read);
        let inner_w = Rc::clone(inner);
        let _ = inner_w;
        sys.flows.start_flow(
            sim,
            &[read_res],
            read_bytes.max(1),
            read_demand,
            SimEvent::call(move |sys, sim| {
                if write_bytes > 0 {
                    let charge_write =
                        SimDuration::from_ns((write_bytes as f64 / write_demand) as u64);
                    sys.meter.charge(Context::App, charge_write);
                    sys.flows.start_flow(
                        sim,
                        &[slow_res],
                        write_bytes,
                        write_demand,
                        SimEvent::call(after_write),
                    );
                } else {
                    after_write(sys, sim);
                }
            }),
        );
    }
}
