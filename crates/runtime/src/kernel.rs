//! Compute-kernel profiles: how a streaming workload consumes memory.
//!
//! The mini runtime is agnostic of what the compute function does; it
//! only needs the kernel's *memory shape*: how many bytes it reads and
//! writes per input byte, how much pure compute it burns, and how
//! efficiently its access pattern streams from the fast memory. The
//! three kernels of Table 4 are provided by `memif-workloads`.

/// The memory/compute shape of a streaming kernel.
///
/// All rates are aggregate over the evaluation platform's four cores.
/// An "input byte" is a byte of the prefetchable input stream (the data
/// the runtime moves through its buffers).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name (reporting).
    pub name: String,
    /// Bytes read per input byte (≥ 1.0: the input itself is read).
    pub read_bytes_per_input: f64,
    /// Bytes written per input byte (outputs stay in slow memory).
    pub write_bytes_per_input: f64,
    /// Pure compute time per input byte, in nanoseconds (aggregate over
    /// four cores); additive with memory time on the in-order A15s.
    pub compute_ns_per_input: f64,
    /// Fraction of the fast node's CPU streaming bandwidth this kernel's
    /// access pattern achieves (1.0 = perfectly sequential).
    pub fast_efficiency: f64,
}

impl KernelProfile {
    /// Total memory traffic per input byte (the rate STREAM-style
    /// benchmarks report).
    #[must_use]
    pub fn traffic_per_input(&self) -> f64 {
        self.read_bytes_per_input + self.write_bytes_per_input
    }

    /// A pure pass-through reader: 1 byte read per input byte, no
    /// writes, no compute. Useful in tests.
    #[must_use]
    pub fn reader(name: &str) -> Self {
        KernelProfile {
            name: name.to_owned(),
            read_bytes_per_input: 1.0,
            write_bytes_per_input: 0.0,
            compute_ns_per_input: 0.0,
            fast_efficiency: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accounts_reads_and_writes() {
        let mut k = KernelProfile::reader("r");
        assert!((k.traffic_per_input() - 1.0).abs() < 1e-12);
        k.write_bytes_per_input = 0.5;
        assert!((k.traffic_per_input() - 1.5).abs() < 1e-12);
    }
}
