//! Automatic swap-out of fast memory.
//!
//! The paper's prototype "cannot automatically swap out fast memory"
//! (§6.7); applications had to manage the capacity-limited bank by hand
//! (as the `hot_region_migration` example does). [`FastPool`] closes
//! that gap as a runtime-level policy atop the unmodified memif API: it
//! tracks which regions are resident in the fast node, and when a
//! promotion does not fit, it first migrates the least-recently-used
//! resident regions back to slow memory — all asynchronously, with the
//! promotion queued behind its evictions.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use memif::{Memif, MoveSpec, NodeId, Sim, SpaceId, System, VirtAddr};
use memif_hwsim::MemoryKind;
use memif_mm::PageSize;

/// A region tracked by the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRegion {
    /// Owning address space.
    pub space: SpaceId,
    /// Region start.
    pub vaddr: VirtAddr,
    /// Pages.
    pub pages: u32,
    /// Page granularity.
    pub page_size: PageSize,
}

impl PoolRegion {
    /// Region length in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        u64::from(self.pages) * self.page_size.bytes()
    }
}

/// Pool activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Regions promoted into fast memory.
    pub promotions: u64,
    /// Regions automatically evicted to make room.
    pub evictions: u64,
    /// Promotions that had to wait for evictions.
    pub stalls: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// A promotion waiting for capacity.
    Promote(PoolRegion),
}

struct Inner {
    memif: Memif,
    fast: NodeId,
    slow: NodeId,
    /// Resident regions, least-recently-used first.
    resident: VecDeque<PoolRegion>,
    /// Bytes being migrated *out* right now (already counted as free-to-be).
    evicting: Vec<PoolRegion>,
    /// Promotions queued behind capacity.
    pending: VecDeque<Pending>,
    /// Bytes the pool leaves unallocated as headroom for other users.
    headroom: u64,
    /// In-flight request ids → what they were (true = eviction).
    inflight: std::collections::HashMap<u64, (PoolRegion, bool)>,
    poll_armed: bool,
    stats: PoolStats,
}

/// An automatic fast-memory manager over one memif instance.
///
/// All pool traffic flows through the instance passed at construction;
/// the pool correlates completions by request id and re-arms `poll()`
/// while work is outstanding, so the owning application should not also
/// consume that instance's completion queue.
///
/// # Examples
///
/// ```
/// use memif::{Memif, MemifConfig, NodeId, PageSize, Sim, System};
/// use memif_runtime::{FastPool, PoolRegion};
///
/// let mut sys = System::keystone_ii();
/// let mut sim = Sim::new();
/// let space = sys.new_space();
/// let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
/// let pool = FastPool::new(&sys, memif, 0);
///
/// let vaddr = sys.mmap(space, 256, PageSize::Small4K, NodeId(0)).unwrap();
/// let region = PoolRegion { space, vaddr, pages: 256, page_size: PageSize::Small4K };
/// pool.promote(&mut sys, &mut sim, region);
/// sim.run(&mut sys);
/// assert!(pool.is_resident(&region)); // now in the 6 MiB fast bank
/// ```
pub struct FastPool {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for FastPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("FastPool")
            .field("resident", &inner.resident.len())
            .field("pending", &inner.pending.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl FastPool {
    /// Creates a pool over `memif`, keeping `headroom` bytes of the fast
    /// node unallocated.
    ///
    /// # Panics
    ///
    /// Panics if the topology lacks a fast or slow node.
    pub fn new(sys: &System, memif: Memif, headroom: u64) -> FastPool {
        let fast = sys
            .topo
            .node_of_kind(MemoryKind::Fast)
            .expect("fast node")
            .id;
        let slow = sys
            .topo
            .node_of_kind(MemoryKind::Slow)
            .expect("slow node")
            .id;
        FastPool {
            inner: Rc::new(RefCell::new(Inner {
                memif,
                fast,
                slow,
                resident: VecDeque::new(),
                evicting: Vec::new(),
                pending: VecDeque::new(),
                headroom,
                inflight: std::collections::HashMap::new(),
                poll_armed: false,
                stats: PoolStats::default(),
            })),
        }
    }

    /// Requests that `region` become resident in fast memory. If it does
    /// not fit, least-recently-used residents are evicted first and the
    /// promotion proceeds once room exists. Asynchronous: drive the sim.
    pub fn promote(&self, sys: &mut System, sim: &mut Sim<System>, region: PoolRegion) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.resident.contains(&region) {
                // Already resident: refresh recency.
                Self::touch_inner(&mut inner, region);
                return;
            }
            inner.pending.push_back(Pending::Promote(region));
        }
        Self::drain(&self.inner, sys, sim);
    }

    /// Marks a resident region recently used (moves it to the LRU tail).
    pub fn touch(&self, region: PoolRegion) {
        Self::touch_inner(&mut self.inner.borrow_mut(), region);
    }

    fn touch_inner(inner: &mut Inner, region: PoolRegion) {
        if let Some(pos) = inner.resident.iter().position(|r| *r == region) {
            let r = inner.resident.remove(pos).expect("position valid");
            inner.resident.push_back(r);
        }
    }

    /// True if `region` is currently resident in fast memory.
    #[must_use]
    pub fn is_resident(&self, region: &PoolRegion) -> bool {
        self.inner.borrow().resident.contains(region)
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// The memif instance the pool drives.
    #[must_use]
    pub fn memif(&self) -> Memif {
        self.inner.borrow().memif
    }

    /// Bytes currently resident through this pool.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.inner
            .borrow()
            .resident
            .iter()
            .map(PoolRegion::bytes)
            .sum()
    }

    /// True when no promotions or evictions are outstanding.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        let inner = self.inner.borrow();
        inner.pending.is_empty() && inner.inflight.is_empty()
    }

    /// Issues whatever work currently fits: evictions for the head
    /// pending promotion, or the promotion itself.
    fn drain(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        loop {
            let action = {
                let mut me = inner.borrow_mut();
                let Some(Pending::Promote(region)) = me.pending.front().copied() else {
                    break;
                };
                let free = sys.alloc.free_bytes(me.fast);
                if free >= region.bytes() + me.headroom {
                    me.pending.pop_front();
                    me.stats.promotions += 1;
                    Some((region, false))
                } else if let Some(victim) = me.resident.pop_front() {
                    // Evict the LRU resident and retry once it lands.
                    me.evicting.push(victim);
                    me.stats.evictions += 1;
                    me.stats.stalls += 1;
                    Some((victim, true))
                } else if me.inflight.values().any(|(_, evicting)| *evicting) {
                    None // room is on its way
                } else {
                    // Nothing left to evict: the promotion can never fit.
                    // Drop it rather than deadlock; callers observe via
                    // is_resident.
                    me.pending.pop_front();
                    continue;
                }
            };
            match action {
                None => break,
                Some((region, evicting)) => {
                    let (memif, node) = {
                        let me = inner.borrow();
                        (me.memif, if evicting { me.slow } else { me.fast })
                    };
                    let (req, _) = memif
                        .submit(
                            sys,
                            sim,
                            MoveSpec::migrate(region.vaddr, region.pages, region.page_size, node),
                        )
                        .expect("pool submission");
                    inner
                        .borrow_mut()
                        .inflight
                        .insert(req.0, (region, evicting));
                    if evicting {
                        break; // wait for room before issuing the promote
                    }
                }
            }
        }
        Self::arm_poll(inner, sys, sim);
    }

    fn arm_poll(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        {
            let mut me = inner.borrow_mut();
            if me.poll_armed || me.inflight.is_empty() {
                return;
            }
            me.poll_armed = true;
        }
        let memif = inner.borrow().memif;
        let inner2 = Rc::clone(inner);
        memif
            .poll(sys, sim, move |sys, sim| {
                inner2.borrow_mut().poll_armed = false;
                Self::on_completions(&inner2, sys, sim);
            })
            .expect("pool device open");
    }

    fn on_completions(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        let memif = inner.borrow().memif;
        while let Some(c) = memif.retrieve_completed(sys).expect("region healthy") {
            let mut me = inner.borrow_mut();
            let Some((region, evicting)) = me.inflight.remove(&c.req_id.0) else {
                continue; // not ours
            };
            assert!(c.status.is_ok(), "pool moves never race: {:?}", c.status);
            if evicting {
                me.evicting.retain(|r| *r != region);
            } else {
                me.resident.push_back(region);
            }
        }
        Self::drain(inner, sys, sim);
    }
}
