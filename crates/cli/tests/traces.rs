//! End-to-end checks on `memifctl`'s trace surface: truncated and
//! corrupt traces must die with a clear error and a nonzero exit (never
//! a panic), and a crashed-then-recovered run's trace must replay
//! bit-identically.

use std::path::PathBuf;
use std::process::{Command, Output};

fn memifctl(dir: &std::path::Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memifctl"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("memifctl runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memifctl-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

/// Asserts the invocation failed cleanly: exit code 2, a one-line
/// `memifctl: ...` diagnostic, and no panic backtrace.
fn assert_clean_failure(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected exit 2, got {:?}; stderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("memifctl:"),
        "diagnostic missing prefix: {stderr}"
    );
    assert!(
        stderr.contains(needle),
        "diagnostic should mention '{needle}': {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "tool panicked instead of failing cleanly: {stderr}"
    );
}

fn record_move_trace(dir: &std::path::Path) -> String {
    let out = memifctl(
        dir,
        &["move", "--count", "8", "--trace-events", "trace.jsonl"],
    );
    assert!(out.status.success(), "recording failed: {out:?}");
    std::fs::read_to_string(dir.join("trace.jsonl")).expect("trace written")
}

#[test]
fn truncated_trace_is_a_clean_error() {
    let dir = tempdir("truncated");
    let text = record_move_trace(&dir);
    // Cut the file mid-way: the tail events and every terminal-status
    // line are gone, and the last surviving line is sliced mid-record.
    let cut = &text[..text.len() / 2];
    std::fs::write(dir.join("cut.jsonl"), cut).unwrap();
    let out = memifctl(&dir, &["replay", "--from", "cut.jsonl"]);
    assert_clean_failure(&out, "diverge");
}

#[test]
fn trace_truncated_inside_the_header_is_a_clean_error() {
    let dir = tempdir("cut-header");
    let text = record_move_trace(&dir);
    let header_len = text.lines().next().expect("header line").len();
    std::fs::write(dir.join("cut.jsonl"), &text[..header_len / 2]).unwrap();
    let out = memifctl(&dir, &["replay", "--from", "cut.jsonl"]);
    assert_clean_failure(&out, "memifctl:");
}

#[test]
fn corrupt_header_values_are_clean_errors() {
    let dir = tempdir("corrupt");
    let text = record_move_trace(&dir);
    // A flipped digit can zero a count the harness would otherwise
    // trust; each must be rejected up front, not panic mid-run.
    for (from, to, needle) in [
        ("pages=16", "pages=0", "--pages"),
        ("count=8", "count=0", "--count"),
        ("window=8", "window=0", "--window"),
        ("page-size=4k", "page-size=9q", "--page-size"),
    ] {
        let bad = text.replacen(from, to, 1);
        assert_ne!(bad, text, "substitution '{from}' must apply");
        std::fs::write(dir.join("bad.jsonl"), bad).unwrap();
        let out = memifctl(&dir, &["replay", "--from", "bad.jsonl"]);
        assert_clean_failure(&out, needle);
    }
}

#[test]
fn binary_garbage_is_a_clean_error() {
    let dir = tempdir("garbage");
    std::fs::write(dir.join("bin.jsonl"), [0x80u8, 0xff, 0x00, 0x41]).unwrap();
    let out = memifctl(&dir, &["replay", "--from", "bin.jsonl"]);
    assert_clean_failure(&out, "UTF-8");
}

#[test]
fn recover_then_replay_round_trips_bit_identically() {
    let dir = tempdir("recover-replay");
    // A crash mid-chain plus recovery and re-drive, traced end to end.
    let out = memifctl(
        &dir,
        &[
            "recover",
            "--crash-point",
            "mid-chain",
            "--crash-nth",
            "2",
            "--count",
            "8",
            "--trace-events",
            "recover.jsonl",
        ],
    );
    assert!(out.status.success(), "recover run failed: {out:?}");
    let replay = memifctl(&dir, &["replay", "--from", "recover.jsonl"]);
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert!(
        replay.status.success() && stdout.contains("replay OK"),
        "recovered trace must replay bit-identically: {replay:?}"
    );
    // The trace carries the reboot marker between the crash and the
    // re-driven tail.
    let text = std::fs::read_to_string(dir.join("recover.jsonl")).unwrap();
    assert!(
        text.contains("\"type\":\"recover\""),
        "trace should record the recovery itself"
    );
}

#[test]
fn recover_json_reports_the_stable_counter_keys() {
    let dir = tempdir("recover-json");
    let out = memifctl(
        &dir,
        &[
            "recover",
            "--crash-point",
            "post-launch",
            "--count",
            "6",
            "--json",
            "true",
        ],
    );
    assert!(out.status.success(), "recover failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"crashed\":",
        "\"journal_records\":",
        "\"recovered_requests\":",
        "\"rolled_back\":",
        "\"redriven\":",
        "\"resubmitted\":",
        "\"wall_ns\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn stats_json_carries_the_scheduler_counters() {
    let dir = tempdir("stats-sched-json");
    let out = memifctl(&dir, &["stats", "--count", "4", "--json", "true"]);
    assert!(out.status.success(), "stats failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"events_executed\":",
        "\"events_cancelled\":",
        "\"peak_pending\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    // A real run executes events and holds several pending at once; the
    // counters must carry live values, not zero placeholders.
    let field = |key: &str| -> u64 {
        let at = stdout.find(key).unwrap() + key.len();
        stdout[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert!(field("\"events_executed\":") > 0, "no events executed?");
    assert!(field("\"peak_pending\":") > 0, "nothing ever pending?");
}

/// A trace captured on the PR 7 scheduler (BinaryHeap + tombstone set)
/// must replay bit-identically on the current one: the dispatch-order
/// contract `(time, insertion)` is part of the trace format's ABI.
#[test]
fn committed_pr7_trace_replays_bit_identically() {
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/waterfall_pr7.jsonl")
        .into_os_string()
        .into_string()
        .expect("utf-8 path");
    let dir = tempdir("pr7-fixture");
    let out = memifctl(&dir, &["replay", "--from", &fixture]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("replay OK"),
        "PR 7 fixture must replay bit-identically: {out:?}"
    );
    assert!(
        stdout.contains("1356 events") && stdout.contains("185 terminal statuses"),
        "fixture shape drifted: {stdout}"
    );
}

#[test]
fn stats_json_carries_the_recovery_counters() {
    let dir = tempdir("stats-json");
    let out = memifctl(&dir, &["stats", "--count", "4", "--json", "true"]);
    assert!(out.status.success(), "stats failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"journal_records\":",
        "\"recovered_requests\":",
        "\"rolled_back\":",
        "\"redriven\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}
