//! A minimal `--flag value` argument parser (the allowed dependency set
//! has no CLI crate; this keeps `memifctl --help` honest without one).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    opts: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args`-style input (program name excluded).
    ///
    /// # Errors
    ///
    /// Returns a message for a dangling `--flag` without a value or for
    /// stray positional arguments after the subcommand.
    pub fn parse(input: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = input.peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                args.opts.insert(key.to_owned(), value);
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
        }
        Ok(args)
    }

    /// Builds an `Args` from pre-parsed `key=value` pairs — the replay
    /// path reconstructs the original command line from a trace header.
    #[must_use]
    pub fn from_pairs(command: &str, pairs: impl IntoIterator<Item = (String, String)>) -> Args {
        Args {
            command: Some(command.to_owned()),
            opts: pairs.into_iter().collect(),
        }
    }

    /// String option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Page size option (`4k`, `64k`, `2m`).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown sizes.
    pub fn page_size(&self, default: memif_mm::PageSize) -> Result<memif_mm::PageSize, String> {
        match self.get("page-size") {
            None => Ok(default),
            Some("4k" | "4K") => Ok(memif_mm::PageSize::Small4K),
            Some("64k" | "64K") => Ok(memif_mm::PageSize::Medium64K),
            Some("2m" | "2M") => Ok(memif_mm::PageSize::Large2M),
            Some(other) => Err(format!("--page-size: unknown size '{other}' (4k|64k|2m)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn command_and_flags() {
        let a = parse("migspeed --pages 1500 --profile xeon").unwrap();
        assert_eq!(a.command.as_deref(), Some("migspeed"));
        assert_eq!(a.get("profile"), Some("xeon"));
        assert_eq!(a.get_or("pages", 0u32).unwrap(), 1500);
        assert_eq!(a.get_or("batches", 7u32).unwrap(), 7, "default applies");
    }

    #[test]
    fn errors() {
        assert!(parse("move --pages").is_err(), "dangling flag");
        assert!(parse("move extra").is_err(), "stray positional");
        assert!(parse("move --pages abc")
            .unwrap()
            .get_or("pages", 0u32)
            .is_err());
    }

    #[test]
    fn page_sizes() {
        use memif_mm::PageSize;
        assert_eq!(
            parse("x --page-size 64k")
                .unwrap()
                .page_size(PageSize::Small4K)
                .unwrap(),
            PageSize::Medium64K
        );
        assert_eq!(
            parse("x").unwrap().page_size(PageSize::Small4K).unwrap(),
            PageSize::Small4K
        );
        assert!(parse("x --page-size 1g")
            .unwrap()
            .page_size(PageSize::Small4K)
            .is_err());
    }
}
