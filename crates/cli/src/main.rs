//! `memifctl` — drive the simulated memif stack from the command line.
//!
//! ```text
//! memifctl topology [--profile keystone|xeon]
//! memifctl migspeed [--pages 1500] [--batches 1] [--page-size 4k] [--profile keystone|xeon]
//! memifctl move     [--kind migrate|replicate] [--pages 16] [--count 64]
//!                   [--page-size 4k] [--window 8] [--no-reuse true] [--no-gang true]
//!                   [--fault-seed N] [--dma-error-rate R] [--drop-rate R]
//!                   [--delay-rate R] [--desc-exhaust-rate R] [--max-retries N]
//!                   [--no-fallback true] [--tc-count N] [--trace-events PATH]
//!                   [--batch-max N] [--no-coalesce true] [--issue-shards S]
//! memifctl stats    [same flags as move] [--json true]
//! memifctl policy   [--mode none|sync|async] [--regions 24] [--pages 64]
//!                   [--phases 6] [--hot 8] [--carry 3] [--ticks 32]
//!                   [--tiers 2] [--policy-tiers 0] [--warm 0]
//!                   [--epoch-us 1000] [--max-inflight 4] [--seed 42]
//!                   [--fault-seed N] [--dma-error-rate R] [--drop-rate R]
//!                   [--trace-events PATH] [--json true]
//! memifctl recover  [--crash-point none|submit|post-launch|mid-chain|pre-retire|post-retire]
//!                   [--crash-nth N] [--pages 8] [--count 12] [--page-size 4k]
//!                   [--batch-max 4] [--no-coalesce true] [--issue-shards S]
//!                   [--trace-events PATH] [--json true]
//! memifctl replay   --from PATH
//! memifctl stream   [--kernel triad|add|pgain|all] [--placement memif|linux|both]
//!                   [--input-mib 64]
//! memifctl timeline [--pages 16] [--count 2]
//! ```

mod args;

use args::Args;
use memif::{
    Context, CrashPlan, CrashPoint, Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System,
};
use memif_baseline::{run_migspeed, MigspeedConfig};
use memif_bench::{crash_migrate_nvm_logged, stream_memif_with_faults, Table};
use memif_hwsim::{CostModel, Topology};
use memif_policy::{run_scenario, Mode, PolicyConfig, ScenarioConfig};
use memif_runtime::{Placement, StreamConfig, StreamRuntime};
use memif_workloads::{stream_add, stream_triad, streamcluster_pgain, wordcount_like, ShapeKind};

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => die(&e),
    };
    let result = match args.command.as_deref() {
        Some("topology") => topology(&args),
        Some("migspeed") => migspeed(&args),
        Some("move") => do_move(&args),
        Some("stats") => stats(&args),
        Some("policy") => policy(&args),
        Some("recover") => recover(&args),
        Some("replay") => replay(&args),
        Some("stream") => stream(&args),
        Some("timeline") => timeline(&args),
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n{HELP}")),
    };
    if let Err(e) = result {
        die(&e);
    }
}

const HELP: &str = "\
memifctl — drive the simulated memif stack

commands:
  topology   show the pseudo-NUMA memory topology
  migspeed   Linux page-migration throughput (the numactl utility)
  move       stream memif move requests and report throughput/latency
  stats      run a move scenario and dump the full driver counter set
  policy     run the hot/cold placement daemon over a phased workload
  recover    crash a journaled DDR<->NVM run, recover, and re-drive it
  replay     re-run a recorded trace and verify it is bit-identical
  stream     run a Table 4 streaming workload on the mini runtime
  timeline   trace a short run across the driver's execution contexts
  help       this text

common flags: --profile keystone|xeon, --page-size 4k|64k|2m

chaos mode (move): install a deterministic fault plan and watch the
hardened driver absorb it, e.g.
  memifctl move --fault-seed 7 --dma-error-rate 1e-3 --drop-rate 1e-4
flags: --fault-seed N, --dma-error-rate R, --drop-rate R, --delay-rate R,
--desc-exhaust-rate R, --max-retries N (default 3), --no-fallback true
(fail requests instead of degrading to the CPU copy).

multi-channel DMA (move): --tc-count N models N independent transfer-
controller bandwidth channels (default 1, the paper's configuration);
launches are routed to the least-loaded channel.

request batching (move/stats): --batch-max N lets the kernel thread
drain up to N compatible queued requests into one chained SG launch
with a single completion interrupt (default 1 = classic per-request
issue). Batched runs also coalesce physically contiguous segments into
one descriptor; --no-coalesce true keeps one descriptor per page.
`memifctl stats --batch-max 16` shows the issue-side savings.

sharded issue path (move/stats): --issue-shards S (default 1) splits
the staging/submission queue pair and the kernel worker into S shards,
each worker modelling its own CPU. Submissions are routed by the
covering VMA's base address, so same-region requests keep their FIFO
order on one shard while disjoint tenants issue in parallel; a
device-wide in-flight index still serializes the rare cross-shard
overlap (`cross_shard_deferred` in `memifctl stats`).

placement policy (policy): a kernel-style daemon samples PTE accessed
bits each --epoch-us, tracks exponentially-decayed per-region heat, and
repairs placement with demote-before-promote moves capped by
--max-inflight, all under the fast node's capacity watermark. --mode
selects how its moves execute: `async` (default) rides the blue
background queue while the app keeps computing; `sync` parks the app
whenever a move is outstanding (the mbind-style comparator); `none`
disables moves entirely. The phased workload is shaped by --regions,
--pages, --phases, --hot, --carry, --ticks, and --seed; chaos flags
apply as in move. `cargo run --bin e14_policy` compares all three.

ranked tiers (policy): --tiers N (default 2) sizes the machine. 2 runs
the classic KeyStone II fast/slow pair; 3 or 4 run the ranked ladder
SRAM > DRAM > NVM > compressed zram, where the daemon plays the
*waterfall*: hot regions climb one rank, cold regions sink one rank,
and frozen regions plunge to the compressed floor via chained
multi-hop moves (compress/decompress work is costed). --warm N adds a
warm halo to each phase (touched at quarter intensity every tick) so
the middle tiers have something to earn, and --policy-tiers M (default
0 = all) restricts the daemon to the top M-1 ranks plus the pool's
home tier — the classic 2-tier comparator on a tall machine. Per-tier
occupancy lands in `policy --json` under the stable `tiers` array.
Quickstart:
  memifctl policy --tiers 4 --warm 12 --regions 32 --json true
`cargo run --release -p memif-bench --bin e16_waterfall` compares the
regimes.

crash recovery (recover): runs a journaled migration stream that
ping-pongs between DDR and the persistent NVM node, optionally halting
the world at a deterministic lifecycle point (--crash-point, fired on
its --crash-nth crossing), then reboots via the write-ahead move
journal and re-drives every request to exactly one terminal status:
  memifctl recover --crash-point mid-chain --crash-nth 2
--crash-point none (the default) runs the uncrashed reference. The
journal counters also appear in `memifctl stats --json` under the
stable keys journal_records, recovered_requests, rolled_back, and
redriven.

machine-readable stats (stats/policy/recover): --json true prints the
run's counters as a single stable-key JSON object instead of a table,
for scripting and CI assertions. stats and policy objects also carry a
`tiers` array — one {rank, kind, used_bytes, capacity_bytes, moves_in,
moves_out} object per memory tier, rank 0 fastest.

event traces (move/policy): --trace-events <path> records the run's
typed event log as JSON lines (one `#!` header, one `#=`
terminal-status line per request). `memifctl replay --from <path>`
re-runs the scenario from the header and verifies every event and
terminal status byte-for-byte:
  memifctl move --fault-seed 7 --dma-error-rate 1e-3 --trace-events t.jsonl
  memifctl replay --from t.jsonl
Policy traces replay the same way, including the daemon's epoch hooks
and every policy move's terminal status. Recover traces span the
crash, the reboot ('recover' record), and the post-crash re-drive, and
must also replay byte-for-byte.

run `memifctl <command>` with defaults to see each report.
";

fn die(msg: &str) -> ! {
    eprintln!("memifctl: {msg}");
    std::process::exit(2);
}

fn cost_profile(args: &Args) -> Result<CostModel, String> {
    match args.get("profile") {
        None | Some("keystone") => Ok(CostModel::keystone_ii()),
        Some("xeon") => Ok(CostModel::xeon_e5()),
        Some(other) => Err(format!(
            "--profile: unknown profile '{other}' (keystone|xeon)"
        )),
    }
}

fn topology(args: &Args) -> Result<(), String> {
    let cost = cost_profile(args)?;
    let mut topo = Topology::keystone_ii();
    let mut table = Table::new(
        format!("memory topology (profile: {})", cost.name),
        &[
            "node",
            "name",
            "kind",
            "base",
            "size",
            "bandwidth",
            "boot-visible",
        ],
    );
    let booted = args.get_or("booted", true)?;
    if booted {
        topo.complete_boot();
    }
    for n in topo.all_nodes() {
        let online = topo.node(n.id).is_some();
        table.row(&[
            format!("{}{}", n.id, if online { "" } else { " (offline)" }),
            n.name.clone(),
            format!("{:?}", n.kind),
            format!("{:#x}", n.base.as_u64()),
            format!("{} MiB", n.bytes >> 20),
            format!("{:.1} GB/s", n.bandwidth_gbps),
            n.boot_visible.to_string(),
        ]);
    }
    table.print();
    println!(
        "cpus: {}   dma: EDMA3-class, {:.1} GB/s m2m, 512 descriptors",
        topo.cpu_count(),
        cost.dma_engine_bw_gbps
    );
    Ok(())
}

fn migspeed(args: &Args) -> Result<(), String> {
    let cost = cost_profile(args)?;
    let mut topo = Topology::keystone_ii();
    topo.complete_boot();
    let config = MigspeedConfig {
        pages_per_syscall: args.get_or("pages", 1_500u32)?,
        batches: args.get_or("batches", 1u32)?,
        page_size: args.page_size(PageSize::Small4K)?,
        from: NodeId(args.get_or("from", 0u16)?),
        to: NodeId(args.get_or("to", 1u16)?),
    };
    let r = run_migspeed(&topo, &cost, config);
    println!(
        "migrated {} pages ({} MiB) in {}: {:.3} GB/s, {:.1} us/page",
        r.pages,
        r.bytes >> 20,
        r.elapsed,
        r.throughput_gbps,
        r.per_page_us
    );
    println!(
        "({}% of the slow node's {:.1} GB/s)",
        (r.throughput_gbps / cost.slow_bw_gbps * 100.0).round(),
        cost.slow_bw_gbps
    );
    Ok(())
}

/// Everything a `move` run (or its replay) needs, resolved from flags
/// or from a trace header.
struct MoveScenario {
    cost: memif_hwsim::CostModel,
    config: MemifConfig,
    kind: ShapeKind,
    page_size: PageSize,
    pages: u32,
    count: usize,
    window: usize,
    plan: Option<memif::FaultPlan>,
}

fn move_scenario(args: &Args) -> Result<MoveScenario, String> {
    let mut cost = cost_profile(args)?;
    cost.dma_tc_count = args.get_or("tc-count", cost.dma_tc_count)?;
    let kind = match args.get("kind") {
        None | Some("migrate") => ShapeKind::Migrate,
        Some("replicate") => ShapeKind::Replicate,
        Some(other) => return Err(format!("--kind: unknown kind '{other}'")),
    };
    let batch_max = args.get_or("batch-max", 1usize)?;
    // Coalescing rides batching: a batched run merges physically
    // contiguous segments unless --no-coalesce true; the default
    // (batch-max 1) keeps the classic one-descriptor-per-page path.
    let no_coalesce = args.get_or("no-coalesce", false)?;
    let issue_shards = args.get_or("issue-shards", 1usize)?;
    if issue_shards == 0 || issue_shards > 64 {
        return Err(format!(
            "--issue-shards: {issue_shards} out of range (1..=64)"
        ));
    }
    let config = MemifConfig {
        descriptor_reuse: !args.get_or("no-reuse", false)?,
        gang_lookup: !args.get_or("no-gang", false)?,
        pipeline_depth: args.get_or("depth", 2usize)?,
        max_dma_retries: args.get_or("max-retries", 3u32)?,
        cpu_fallback: !args.get_or("no-fallback", false)?,
        batch_max,
        coalesce: batch_max > 1 && !no_coalesce,
        issue_shards,
        ..MemifConfig::default()
    };
    let plan = memif::FaultPlan {
        seed: args.get_or("fault-seed", 0u64)?,
        dma_error_rate: args.get_or("dma-error-rate", 0.0f64)?,
        drop_rate: args.get_or("drop-rate", 0.0f64)?,
        delay_rate: args.get_or("delay-rate", 0.0f64)?,
        desc_exhaust_rate: args.get_or("desc-exhaust-rate", 0.0f64)?,
        ..memif::FaultPlan::default()
    };
    let s = MoveScenario {
        cost,
        config,
        kind,
        page_size: args.page_size(PageSize::Small4K)?,
        pages: args.get_or("pages", 16u32)?,
        count: args.get_or("count", 64usize)?,
        window: args.get_or("window", 8usize)?,
        plan: (!plan.is_noop()).then_some(plan),
    };
    // Zeroes here would panic deep in the harness; catching them keeps
    // a corrupt or hand-edited trace header a clean error (replay
    // rebuilds its scenario through this same path).
    for (flag, value) in [
        ("pages", u64::from(s.pages)),
        ("count", s.count as u64),
        ("window", s.window as u64),
    ] {
        if value == 0 {
            return Err(format!("--{flag}: must be at least 1"));
        }
    }
    Ok(s)
}

/// The `#!` trace header: every flag replay needs to rebuild the run.
fn trace_header(args: &Args, s: &MoveScenario) -> String {
    let plan = s.plan.clone().unwrap_or_default();
    format!(
        "#! move kind={} page-size={} pages={} count={} window={} depth={} max-retries={} \
         no-fallback={} no-reuse={} no-gang={} profile={} tc-count={} fault-seed={} \
         dma-error-rate={} drop-rate={} delay-rate={} desc-exhaust-rate={} \
         batch-max={} no-coalesce={} issue-shards={}",
        match s.kind {
            ShapeKind::Migrate => "migrate",
            ShapeKind::Replicate => "replicate",
        },
        match s.page_size {
            PageSize::Small4K => "4k",
            PageSize::Medium64K => "64k",
            PageSize::Large2M => "2m",
        },
        s.pages,
        s.count,
        s.window,
        s.config.pipeline_depth,
        s.config.max_dma_retries,
        !s.config.cpu_fallback,
        !s.config.descriptor_reuse,
        !s.config.gang_lookup,
        args.get("profile").unwrap_or("keystone"),
        s.cost.dma_tc_count,
        plan.seed,
        plan.dma_error_rate,
        plan.drop_rate,
        plan.delay_rate,
        plan.desc_exhaust_rate,
        s.config.batch_max,
        s.config.batch_max > 1 && !s.config.coalesce,
        s.config.issue_shards,
    )
}

fn run_logged(s: &MoveScenario) -> memif_bench::LoggedStream {
    memif_bench::stream_memif_logged(
        &s.cost,
        s.config.clone(),
        s.kind,
        s.page_size,
        s.pages,
        s.count,
        s.window,
        s.plan.clone(),
    )
}

fn do_move(args: &Args) -> Result<(), String> {
    let s = move_scenario(args)?;
    let chaos = s.plan.is_some();
    let batch_max = s.config.batch_max;
    let (kind, pages, count) = (s.kind, s.pages, s.count);
    let page_size = s.page_size;

    let r = if let Some(path) = args.get("trace-events") {
        let logged = run_logged(&s);
        let mut out = String::new();
        out.push_str(&trace_header(args, &s));
        out.push('\n');
        for line in &logged.events {
            out.push_str(line);
            out.push('\n');
        }
        for (req, status) in &logged.statuses {
            out.push_str(&format!("#= {req} {status}\n"));
        }
        std::fs::write(path, out).map_err(|e| format!("--trace-events: {path}: {e}"))?;
        println!(
            "trace: {} events + {} terminal statuses -> {path}",
            logged.events.len(),
            logged.statuses.len()
        );
        logged.result
    } else {
        stream_memif_with_faults(
            &s.cost,
            s.config,
            s.kind,
            s.page_size,
            s.pages,
            s.count,
            s.window,
            s.plan,
        )
    };
    let mean_us = r
        .completion_times
        .iter()
        .map(|t| t.as_ns() as f64)
        .sum::<f64>()
        / r.completion_times.len() as f64
        / 1e3;
    println!(
        "{count} x {pages} {page_size} pages ({:?}): {:.3} GB/s, mean completion {:.1} us",
        kind, r.throughput_gbps, mean_us
    );
    println!(
        "syscalls: {}   interrupts: {}   polled: {}   cpu: {:.2} cores",
        r.ioctls, r.interrupts, r.polled, r.cpu_usage
    );
    if chaos {
        println!(
            "chaos: retries: {}   timeouts: {}   dma-errors: {}   fallbacks: {}   failed: {}",
            r.retries, r.timeouts, r.dma_errors, r.fallbacks, r.failed
        );
    }
    if batch_max > 1 {
        println!(
            "batching: batched: {}   coalesced: {}   descriptors: {}   writes saved: {}",
            r.stats.requests_batched,
            r.stats.segments_coalesced,
            r.stats.descriptors_written,
            r.stats.descriptor_writes_saved
        );
    }
    Ok(())
}

/// Renders `(key, value)` counter pairs as one stable-order JSON
/// object — the `--json true` output contract for scripts and CI.
fn json_object(rows: &[(&str, u64)]) -> String {
    let fields: Vec<String> = rows.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", fields.join(","))
}

/// [`json_object`] plus the stable-key per-tier occupancy array:
/// `"tiers":[{rank, kind, used_bytes, capacity_bytes, moves_in,
/// moves_out}, ...]`, rank 0 fastest.
fn json_object_with_tiers(rows: &[(&str, u64)], tiers: &[memif::TierUsage]) -> String {
    let flat = json_object(rows);
    let entries: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "{{\"rank\":{},\"kind\":\"{}\",\"used_bytes\":{},\"capacity_bytes\":{},\
                 \"moves_in\":{},\"moves_out\":{}}}",
                t.rank, t.kind, t.used_bytes, t.capacity_bytes, t.moves_in, t.moves_out
            )
        })
        .collect();
    format!(
        "{},\"tiers\":[{}]}}",
        &flat[..flat.len() - 1],
        entries.join(",")
    )
}

/// The human-readable per-tier occupancy lines shared by `stats` and
/// `policy` table output.
fn print_tiers(tiers: &[memif::TierUsage]) {
    for t in tiers {
        println!(
            "tier {} ({}): {:.2} / {:.2} MiB used, {} moves in, {} moves out",
            t.rank,
            t.kind,
            t.used_bytes as f64 / (1 << 20) as f64,
            t.capacity_bytes as f64 / (1 << 20) as f64,
            t.moves_in,
            t.moves_out,
        );
    }
}

/// Runs a `move` scenario and dumps every [`memif::DriverStats`]
/// counter, including the batching/coalescing set, as a table (or as
/// one JSON object with `--json true`).
fn stats(args: &Args) -> Result<(), String> {
    let s = move_scenario(args)?;
    let json = args.get_or("json", false)?;
    let title = format!(
        "driver stats: {} x {} {} pages ({:?}), batch-max {}{}",
        s.count,
        s.pages,
        s.page_size,
        s.kind,
        s.config.batch_max,
        if s.config.coalesce { " + coalesce" } else { "" },
    );
    let r = stream_memif_with_faults(
        &s.cost,
        s.config,
        s.kind,
        s.page_size,
        s.pages,
        s.count,
        s.window,
        s.plan,
    );
    let st = &r.stats;
    let issue_cpu = {
        use memif::Phase;
        st.phases.get(Phase::DmaConfig) + st.phases.get(Phase::Interface)
    };
    let rows: &[(&str, u64)] = &[
        ("submitted", st.submitted),
        ("completed", st.completed),
        ("failed", st.failed),
        ("ioctls", st.ioctls),
        ("interrupts", st.interrupts),
        ("polled", st.polled),
        ("kthread_wakeups", st.kthread_wakeups),
        ("races_detected", st.races_detected),
        ("aborts", st.aborts),
        ("timeouts", st.timeouts),
        ("dma_errors", st.dma_errors),
        ("retries", st.retries),
        ("fallbacks", st.fallbacks),
        ("bytes_moved", st.bytes_moved),
        ("requests_batched", st.requests_batched),
        ("segments_coalesced", st.segments_coalesced),
        ("descriptors_written", st.descriptors_written),
        ("descriptor_writes_saved", st.descriptor_writes_saved),
        ("requests_deferred", st.requests_deferred),
        ("cross_shard_deferred", st.cross_shard_deferred),
        ("journal_records", st.journal_records),
        ("recovered_requests", st.recovered_requests),
        ("rolled_back", st.rolled_back),
        ("redriven", st.redriven),
        ("events_executed", r.events_executed),
        ("events_cancelled", r.events_cancelled),
        ("peak_pending", r.peak_pending as u64),
        ("issue_cpu_ns", issue_cpu.as_ns()),
    ];
    if json {
        println!("{}", json_object_with_tiers(rows, &r.tiers));
        return Ok(());
    }
    let mut table = Table::new(title, &["counter", "value"]);
    for (name, value) in &rows[..rows.len() - 1] {
        table.row(&[(*name).to_owned(), value.to_string()]);
    }
    table.print();
    println!("issue-side cpu (DmaConfig + Interface): {issue_cpu}");
    print_tiers(&r.tiers);
    Ok(())
}

/// Resolves a `policy` command line (or a replayed `#! policy` header)
/// into a cost profile plus a [`ScenarioConfig`].
fn policy_scenario(args: &Args) -> Result<(CostModel, ScenarioConfig), String> {
    let cost = cost_profile(args)?;
    let mode = match args.get("mode") {
        None => Mode::Async,
        Some(m) => {
            Mode::parse(m).ok_or_else(|| format!("--mode: unknown mode '{m}' (none|sync|async)"))?
        }
    };
    let policy = PolicyConfig {
        epoch: memif::SimDuration::from_us(args.get_or("epoch-us", 1_000u64)?),
        max_inflight: args.get_or("max-inflight", 4usize)?,
        ..PolicyConfig::default()
    };
    let plan = memif::FaultPlan {
        seed: args.get_or("fault-seed", 0u64)?,
        dma_error_rate: args.get_or("dma-error-rate", 0.0f64)?,
        drop_rate: args.get_or("drop-rate", 0.0f64)?,
        delay_rate: args.get_or("delay-rate", 0.0f64)?,
        desc_exhaust_rate: args.get_or("desc-exhaust-rate", 0.0f64)?,
        ..memif::FaultPlan::default()
    };
    let cfg = ScenarioConfig {
        mode,
        seed: args.get_or("seed", 42u64)?,
        regions: args.get_or("regions", 24usize)?,
        pages_per_region: args.get_or("pages", 64u32)?,
        page_size: args.page_size(PageSize::Small4K)?,
        phases: args.get_or("phases", 6usize)?,
        hot: args.get_or("hot", 8usize)?,
        carry: args.get_or("carry", 3usize)?,
        ticks_per_phase: args.get_or("ticks", 32u32)?,
        tiers: args.get_or("tiers", 2usize)?,
        policy_tiers: args.get_or("policy-tiers", 0usize)?,
        warm: args.get_or("warm", 0usize)?,
        policy,
        faults: (!plan.is_noop()).then_some(plan),
        ..ScenarioConfig::default()
    };
    for (flag, value) in [
        ("regions", cfg.regions as u64),
        ("pages", u64::from(cfg.pages_per_region)),
        ("phases", cfg.phases as u64),
        ("ticks", u64::from(cfg.ticks_per_phase)),
    ] {
        if value == 0 {
            return Err(format!("--{flag}: must be at least 1"));
        }
    }
    if !(2..=4).contains(&cfg.tiers) {
        return Err(format!("--tiers: {} out of range (2..=4)", cfg.tiers));
    }
    if cfg.policy_tiers > cfg.tiers {
        return Err(format!(
            "--policy-tiers: {} exceeds the machine's {} tiers",
            cfg.policy_tiers, cfg.tiers
        ));
    }
    if cfg.hot + cfg.warm > cfg.regions {
        return Err(format!(
            "--warm: hot ({}) + warm ({}) working sets exceed the region pool ({})",
            cfg.hot, cfg.warm, cfg.regions
        ));
    }
    Ok((cost, cfg))
}

/// The `#!` header of a policy trace: every flag replay needs to
/// rebuild the run.
fn policy_trace_header(args: &Args, cfg: &ScenarioConfig) -> String {
    let plan = cfg.faults.clone().unwrap_or_default();
    format!(
        "#! policy mode={} seed={} regions={} pages={} page-size={} phases={} hot={} carry={} \
         ticks={} epoch-us={} max-inflight={} profile={} fault-seed={} dma-error-rate={} \
         drop-rate={} delay-rate={} desc-exhaust-rate={} tiers={} policy-tiers={} warm={}",
        cfg.mode.as_str(),
        cfg.seed,
        cfg.regions,
        cfg.pages_per_region,
        match cfg.page_size {
            PageSize::Small4K => "4k",
            PageSize::Medium64K => "64k",
            PageSize::Large2M => "2m",
        },
        cfg.phases,
        cfg.hot,
        cfg.carry,
        cfg.ticks_per_phase,
        cfg.policy.epoch.as_ns() / 1_000,
        cfg.policy.max_inflight,
        args.get("profile").unwrap_or("keystone"),
        plan.seed,
        plan.dma_error_rate,
        plan.drop_rate,
        plan.delay_rate,
        plan.desc_exhaust_rate,
        cfg.tiers,
        cfg.policy_tiers,
        cfg.warm,
    )
}

/// Runs the hot/cold placement daemon over the phased hot-set workload
/// and reports the application + daemon outcome.
fn policy(args: &Args) -> Result<(), String> {
    let (cost, mut cfg) = policy_scenario(args)?;
    let trace_path = args.get("trace-events");
    cfg.log_events = trace_path.is_some();
    let r = run_scenario(&cost, &cfg);

    if let Some(path) = trace_path {
        let mut out = String::new();
        out.push_str(&policy_trace_header(args, &cfg));
        out.push('\n');
        for line in &r.events {
            out.push_str(line);
            out.push('\n');
        }
        for (req, status) in &r.statuses {
            out.push_str(&format!("#= {req} {status}\n"));
        }
        std::fs::write(path, out).map_err(|e| format!("--trace-events: {path}: {e}"))?;
        println!(
            "trace: {} events + {} terminal statuses -> {path}",
            r.events.len(),
            r.statuses.len()
        );
    }

    let p = &r.policy;
    if args.get_or("json", false)? {
        println!(
            "{}",
            json_object_with_tiers(
                &[
                    ("wall_ns", r.wall.as_ns()),
                    ("ticks", r.ticks),
                    ("fast_ticks", r.fast_ticks),
                    ("slow_ticks", r.slow_ticks),
                    ("page_touches", r.page_touches),
                    ("epochs", p.epochs),
                    ("pages_scanned", p.pages_scanned),
                    ("pages_referenced", p.pages_referenced),
                    ("promotions", p.promotions),
                    ("demotions", p.demotions),
                    ("moves_ok", p.moves_ok),
                    ("moves_failed", p.moves_failed),
                    ("dropped", p.dropped),
                    ("cascades", p.cascades),
                    ("compress_busy_ns", r.compress_busy.as_ns()),
                    ("decompress_busy_ns", r.decompress_busy.as_ns()),
                    ("driver_submitted", r.driver.submitted),
                    ("driver_completed", r.driver.completed),
                    ("driver_failed", r.driver.failed),
                    ("driver_bytes_moved", r.driver.bytes_moved),
                ],
                &r.tiers,
            )
        );
        return Ok(());
    }
    println!(
        "{} mode: {} ticks ({} fast / {} slow) in {:.2} ms, cpu {:.2} cores",
        cfg.mode.as_str(),
        r.ticks,
        r.fast_ticks,
        r.slow_ticks,
        r.wall.as_ns() as f64 / 1e6,
        r.cpu_usage,
    );
    println!(
        "policy: {} epochs, {} pages scanned ({} referenced), {} promotions + {} demotions \
         ({} ok, {} failed, {} dropped at the watermark, {} cascade steps)",
        p.epochs,
        p.pages_scanned,
        p.pages_referenced,
        p.promotions,
        p.demotions,
        p.moves_ok,
        p.moves_failed,
        p.dropped,
        p.cascades,
    );
    println!(
        "driver: {} submitted, {} completed, {} failed, {} MiB moved",
        r.driver.submitted,
        r.driver.completed,
        r.driver.failed,
        r.driver.bytes_moved >> 20,
    );
    if r.compress_busy.as_ns() + r.decompress_busy.as_ns() > 0 {
        println!(
            "codec: {:.2} ms compressing, {:.2} ms decompressing",
            r.compress_busy.as_ns() as f64 / 1e6,
            r.decompress_busy.as_ns() as f64 / 1e6,
        );
    }
    print_tiers(&r.tiers);
    Ok(())
}

/// Everything a `recover` run (or its replay) needs: a journaled
/// DDR<->NVM migration stream plus an optional deterministic crash.
struct RecoverScenario {
    cost: CostModel,
    config: MemifConfig,
    page_size: PageSize,
    pages: u32,
    count: usize,
    crash: Option<CrashPlan>,
}

fn recover_scenario(args: &Args) -> Result<RecoverScenario, String> {
    let cost = cost_profile(args)?;
    let batch_max = args.get_or("batch-max", 4usize)?;
    let no_coalesce = args.get_or("no-coalesce", false)?;
    let issue_shards = args.get_or("issue-shards", 1usize)?;
    if issue_shards == 0 || issue_shards > 64 {
        return Err(format!(
            "--issue-shards: {issue_shards} out of range (1..=64)"
        ));
    }
    let config = MemifConfig {
        journal: true,
        batch_max,
        coalesce: batch_max > 1 && !no_coalesce,
        issue_shards,
        ..MemifConfig::default()
    };
    let crash = match args.get("crash-point") {
        None | Some("none") => None,
        Some(name) => {
            let point = CrashPoint::parse(name).ok_or_else(|| {
                let known: Vec<&str> = CrashPoint::ALL.iter().map(|p| p.as_str()).collect();
                format!(
                    "--crash-point: unknown point '{name}' (none|{})",
                    known.join("|")
                )
            })?;
            Some(CrashPlan::at(point, args.get_or("crash-nth", 1u64)?))
        }
    };
    let s = RecoverScenario {
        cost,
        config,
        page_size: args.page_size(PageSize::Small4K)?,
        pages: args.get_or("pages", 8u32)?,
        count: args.get_or("count", 12usize)?,
        crash,
    };
    for (flag, value) in [
        ("pages", u64::from(s.pages)),
        ("count", s.count as u64),
        ("batch-max", batch_max as u64),
    ] {
        if value == 0 {
            return Err(format!("--{flag}: must be at least 1"));
        }
    }
    Ok(s)
}

/// The `#!` header of a recover trace: every flag replay needs to
/// rebuild the run.
fn recover_trace_header(args: &Args, s: &RecoverScenario) -> String {
    format!(
        "#! recover crash-point={} crash-nth={} page-size={} pages={} count={} batch-max={} \
         no-coalesce={} issue-shards={} profile={}",
        s.crash.map_or("none", |c| c.point.as_str()),
        s.crash.map_or(1, |c| c.nth),
        match s.page_size {
            PageSize::Small4K => "4k",
            PageSize::Medium64K => "64k",
            PageSize::Large2M => "2m",
        },
        s.pages,
        s.count,
        s.config.batch_max,
        s.config.batch_max > 1 && !s.config.coalesce,
        s.config.issue_shards,
        args.get("profile").unwrap_or("keystone"),
    )
}

/// Crashes a journaled DDR<->NVM migration stream at a deterministic
/// lifecycle point, reboots through the write-ahead move journal, and
/// re-drives the survivors — then reports how every request reached
/// exactly one terminal status.
fn recover(args: &Args) -> Result<(), String> {
    let s = recover_scenario(args)?;
    let (r, events) = crash_migrate_nvm_logged(
        &s.cost,
        s.config.clone(),
        s.page_size,
        s.pages,
        s.count,
        s.crash,
    );

    if let Some(path) = args.get("trace-events") {
        let mut out = String::new();
        out.push_str(&recover_trace_header(args, &s));
        out.push('\n');
        for line in &events {
            out.push_str(line);
            out.push('\n');
        }
        for (cookie, status) in &r.statuses {
            out.push_str(&format!("#= {cookie} {status:?}\n"));
        }
        std::fs::write(path, out).map_err(|e| format!("--trace-events: {path}: {e}"))?;
        println!(
            "trace: {} events + {} terminal statuses -> {path}",
            events.len(),
            r.statuses.len()
        );
    }

    let rep = r.recovery.as_ref();
    if args.get_or("json", false)? {
        println!(
            "{}",
            json_object(&[
                ("crashed", u64::from(r.crashed)),
                ("journal_records", r.journal_records),
                (
                    "recovered_requests",
                    rep.map_or(0, |rep| rep.recovered_requests)
                ),
                ("rolled_back", rep.map_or(0, |rep| rep.rolled_back)),
                ("redriven", rep.map_or(0, |rep| rep.redriven)),
                ("resubmitted", r.resubmitted as u64),
                ("wall_ns", r.wall.as_ns()),
            ])
        );
        return Ok(());
    }

    println!(
        "{} x {} {} pages, DDR<->NVM ping-pong, journal on (batch-max {}{}, {} shard{})",
        s.count,
        s.pages,
        s.page_size,
        s.config.batch_max,
        if s.config.coalesce { " + coalesce" } else { "" },
        s.config.issue_shards,
        if s.config.issue_shards == 1 { "" } else { "s" },
    );
    match (s.crash, rep) {
        (Some(plan), Some(rep)) if r.crashed => {
            println!(
                "crash: {} fired on crossing {} — volatile state lost, {} journal record{} survived",
                plan.point.as_str(),
                plan.nth,
                rep.journal_records,
                if rep.journal_records == 1 { "" } else { "s" },
            );
            println!(
                "recovery: {} in-flight at the crash ({} rolled back, {} rolled forward); \
                 app re-submitted {}",
                rep.recovered_requests, rep.rolled_back, rep.redriven, r.resubmitted,
            );
        }
        (Some(plan), _) => println!(
            "crash: {} never crossed {} time{} — plan did not fire",
            plan.point.as_str(),
            plan.nth,
            if plan.nth == 1 { "" } else { "s" },
        ),
        _ => println!("no crash requested: uncrashed reference run"),
    }
    let done = r
        .statuses
        .iter()
        .filter(|(_, st)| *st == memif::MoveStatus::Done)
        .count();
    println!(
        "converged: {done}/{} requests Done exactly once, {} journal records all sealed, \
         {:.1} us simulated",
        s.count,
        r.journal_records,
        r.wall.as_ns() as f64 / 1e3,
    );
    Ok(())
}

/// Re-runs a `--trace-events` recording and verifies the new run is
/// byte-identical: same event log, same terminal status per request.
fn replay(args: &Args) -> Result<(), String> {
    let path = args.get("from").ok_or("replay needs --from <path>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("--from: {path}: {e}"))?;

    let mut header = None;
    let mut events = Vec::new();
    let mut statuses = Vec::new();
    for line in text.lines() {
        if let Some(h) = line.strip_prefix("#! ") {
            header = Some(h.to_owned());
        } else if let Some(s) = line.strip_prefix("#= ") {
            let (req, status) = s
                .split_once(' ')
                .ok_or_else(|| format!("malformed status line '{line}'"))?;
            let req: u64 = req
                .parse()
                .map_err(|_| format!("malformed request id in '{line}'"))?;
            statuses.push((req, status.to_owned()));
        } else if !line.is_empty() {
            events.push(line.to_owned());
        }
    }
    let header = header.ok_or("trace has no '#!' header line")?;
    let (cmd, flags) = header.split_once(' ').unwrap_or((header.as_str(), ""));
    let pairs: Vec<(String, String)> = flags
        .split_whitespace()
        .map(|kv| {
            kv.split_once('=')
                .map(|(k, v)| (k.to_owned(), v.to_owned()))
                .ok_or_else(|| format!("malformed header token '{kv}'"))
        })
        .collect::<Result<_, _>>()?;
    // Flags that shape the event stream (shard-tagged worker events,
    // the daemon's placement decisions) can never match when forced to
    // a different value than recorded: reject the mismatch up front
    // instead of reporting a divergence at record 0.
    let reject_override = |flag: &str, default: &str| -> Result<(), String> {
        if let Some(requested) = args.get(flag) {
            let recorded = pairs
                .iter()
                .find(|(k, _)| k == flag)
                .map_or(default, |(_, v)| v.as_str());
            if requested != recorded {
                return Err(format!(
                    "--{flag} {requested} conflicts with the trace (recorded with \
                     {flag}={recorded}); replay re-runs the recorded configuration"
                ));
            }
        }
        Ok(())
    };
    let (replayed_events, replayed_statuses) = match cmd {
        "move" => {
            reject_override("issue-shards", "1")?;
            let scenario = move_scenario(&Args::from_pairs("move", pairs))?;
            let logged = run_logged(&scenario);
            (logged.events, logged.statuses)
        }
        "policy" => {
            reject_override("mode", "async")?;
            // The machine shape and working-set mix drive every
            // placement decision in the trace; traces from before the
            // ranked-tier refactor recorded the 2-tier defaults.
            reject_override("tiers", "2")?;
            reject_override("policy-tiers", "0")?;
            reject_override("warm", "0")?;
            let (cost, mut cfg) = policy_scenario(&Args::from_pairs("policy", pairs))?;
            cfg.log_events = true;
            let r = run_scenario(&cost, &cfg);
            (r.events, r.statuses)
        }
        "recover" => {
            reject_override("crash-point", "none")?;
            reject_override("crash-nth", "1")?;
            let s = recover_scenario(&Args::from_pairs("recover", pairs))?;
            let (r, ev) = crash_migrate_nvm_logged(
                &s.cost,
                s.config.clone(),
                s.page_size,
                s.pages,
                s.count,
                s.crash,
            );
            let statuses = r
                .statuses
                .iter()
                .map(|(cookie, st)| (*cookie, format!("{st:?}")))
                .collect();
            (ev, statuses)
        }
        other => return Err(format!("cannot replay '{other}' traces")),
    };
    if replayed_events != events {
        let n = replayed_events
            .iter()
            .zip(&events)
            .take_while(|(a, b)| a == b)
            .count();
        return Err(format!(
            "event log diverges at record {n}:\n  recorded: {}\n  replayed: {}",
            events.get(n).map_or("<end of log>", String::as_str),
            replayed_events
                .get(n)
                .map_or("<end of log>", String::as_str),
        ));
    }
    if replayed_statuses != statuses {
        return Err(format!(
            "terminal statuses diverge:\n  recorded: {statuses:?}\n  replayed: {replayed_statuses:?}"
        ));
    }
    println!(
        "replay OK: {} events and {} terminal statuses identical ({path})",
        events.len(),
        statuses.len()
    );
    Ok(())
}

fn stream(args: &Args) -> Result<(), String> {
    let kernels = match args.get("kernel") {
        None | Some("all") => vec![streamcluster_pgain(), stream_triad(), stream_add()],
        Some("triad") => vec![stream_triad()],
        Some("add") => vec![stream_add()],
        Some("pgain") => vec![streamcluster_pgain()],
        Some("wordcount") => vec![wordcount_like()],
        Some(other) => return Err(format!("--kernel: unknown kernel '{other}'")),
    };
    let placements = match args.get("placement") {
        None | Some("both") => vec![Placement::SlowOnly, Placement::MemifPrefetch],
        Some("linux") => vec![Placement::SlowOnly],
        Some("memif") => vec![Placement::MemifPrefetch],
        Some(other) => return Err(format!("--placement: unknown placement '{other}'")),
    };
    let total = args.get_or("input-mib", 64u64)? << 20;

    let mut table = Table::new(
        "streaming throughput (MB/s)",
        &["kernel", "placement", "MB/s", "fallback%", "fills"],
    );
    for kernel in &kernels {
        for placement in &placements {
            let mut sys = System::keystone_ii();
            let mut sim = Sim::new();
            let space = sys.new_space();
            let memif = match placement {
                Placement::MemifPrefetch => Some(
                    Memif::open(&mut sys, space, MemifConfig::default())
                        .map_err(|e| e.to_string())?,
                ),
                Placement::SlowOnly => None,
            };
            let config = StreamConfig {
                placement: *placement,
                total_input: total,
                ..StreamConfig::default()
            };
            let rt =
                StreamRuntime::launch(&mut sys, &mut sim, space, memif, config, kernel.clone());
            sim.run(&mut sys);
            let r = rt.report();
            table.row(&[
                kernel.name.clone(),
                format!("{placement:?}"),
                format!("{:.1}", r.traffic_gbps * 1000.0),
                format!(
                    "{:.0}%",
                    r.fallback_bytes as f64 / r.input_bytes.max(1) as f64 * 100.0
                ),
                r.fills.to_string(),
            ]);
        }
    }
    table.print();
    Ok(())
}

fn timeline(args: &Args) -> Result<(), String> {
    let pages = args.get_or("pages", 16u32)?;
    let count = args.get_or("count", 2usize)?;
    let page_size = args.page_size(PageSize::Small4K)?;

    let mut sys = System::keystone_ii();
    sys.enable_tracing();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).map_err(|e| e.to_string())?;
    for _ in 0..count {
        let va = sys
            .mmap(space, pages, page_size, NodeId(0))
            .map_err(|e| e.to_string())?;
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::migrate(va, pages, page_size, NodeId(1)),
            )
            .map_err(|e| e.to_string())?;
    }
    sim.run(&mut sys);
    while memif
        .retrieve_completed(&mut sys)
        .map_err(|e| e.to_string())?
        .is_some()
    {}

    println!("driver timeline: {count} x {pages} {page_size} migrations\n");
    for e in sys.trace() {
        let ctx = match e.ctx {
            Context::Syscall => "syscall",
            Context::Interrupt => "irq",
            Context::KernelThread => "kthread",
            Context::DmaEngine => "dma",
            Context::App => "app",
        };
        println!(
            "  {:>9.1} us  +{:<9} {:>8}  {:<54} {}",
            e.at.as_ns() as f64 / 1e3,
            format!("{}", e.duration),
            ctx,
            e.label,
            e.req.map(|r| format!("req {r}")).unwrap_or_default()
        );
    }
    Ok(())
}
