//! Property-based model checking of the region against a reference model.
//!
//! A sequence of operations is applied both to the lock-free region and to
//! a trivially-correct sequential model (VecDeques + a color field); every
//! observable result must agree. This pins down the *sequential*
//! semantics; the stress tests cover concurrency.

use std::collections::VecDeque;

use proptest::prelude::*;

use memif_lockfree::{Color, MovReq, QueueId, Region, SlotIndex};

#[derive(Debug, Clone)]
enum Op {
    Alloc,
    Free(usize),
    Enqueue(usize, u8, u64),
    Dequeue(u8),
    SetColor(bool),
    ReadColor,
}

fn queue_id(sel: u8) -> QueueId {
    match sel % 4 {
        0 => QueueId::Staging,
        1 => QueueId::Submission,
        2 => QueueId::CompletionOk,
        _ => QueueId::CompletionErr,
    }
}

#[derive(Default)]
struct Model {
    queues: [VecDeque<u64>; 4],
    staging_color: Color,
    free: usize,
    owned: usize,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Alloc),
        (0usize..8).prop_map(Op::Free),
        ((0usize..8), any::<u8>(), any::<u64>()).prop_map(|(s, q, id)| Op::Enqueue(s, q, id)),
        any::<u8>().prop_map(Op::Dequeue),
        any::<bool>().prop_map(Op::SetColor),
        Just(Op::ReadColor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn region_matches_sequential_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let capacity = 6;
        let region = Region::new(capacity).unwrap();
        let mut model = Model { free: capacity, ..Model::default() };
        // Slots we currently own (outside any queue/free list).
        let mut owned_slots: Vec<SlotIndex> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc => {
                    let got = region.alloc_slot();
                    if model.free > 0 {
                        model.free -= 1;
                        model.owned += 1;
                        owned_slots.push(got.expect("model says a slot is free"));
                    } else {
                        prop_assert!(got.is_err());
                    }
                }
                Op::Free(i) => {
                    if !owned_slots.is_empty() {
                        let slot = owned_slots.remove(i % owned_slots.len());
                        region.free_slot(slot).unwrap();
                        model.owned -= 1;
                        model.free += 1;
                    }
                }
                Op::Enqueue(i, qsel, id) => {
                    if !owned_slots.is_empty() {
                        let slot = owned_slots.remove(i % owned_slots.len());
                        let qid = queue_id(qsel);
                        let req = MovReq { id, nr_pages: 1, page_shift: 12, ..MovReq::default() };
                        let color = region.enqueue(qid, slot, &req).unwrap();
                        if qid == QueueId::Staging {
                            prop_assert_eq!(color, model.staging_color);
                        }
                        model.owned -= 1;
                        model.queues[qsel as usize % 4].push_back(id);
                    }
                }
                Op::Dequeue(qsel) => {
                    let qid = queue_id(qsel);
                    let got = region.dequeue(qid).unwrap();
                    match model.queues[qsel as usize % 4].pop_front() {
                        Some(expect_id) => {
                            let d = got.expect("model says queue non-empty");
                            prop_assert_eq!(d.req.id, expect_id);
                            if qid == QueueId::Staging {
                                prop_assert_eq!(d.color, model.staging_color);
                            }
                            model.owned += 1;
                            owned_slots.push(d.slot);
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::SetColor(red) => {
                    let new = if red { Color::Red } else { Color::Blue };
                    let got = region.set_color(QueueId::Staging, new);
                    if model.queues[0].is_empty() {
                        prop_assert_eq!(got, Ok(model.staging_color));
                        model.staging_color = new;
                    } else {
                        prop_assert!(got.is_err());
                    }
                }
                Op::ReadColor => {
                    prop_assert_eq!(region.color(QueueId::Staging), model.staging_color);
                }
            }
            // Global invariant: slot conservation.
            let stats = region.stats();
            let total = stats.free + stats.staging + stats.submission
                + stats.completion_ok + stats.completion_err + owned_slots.len();
            prop_assert_eq!(total, capacity);
            prop_assert_eq!(stats.free, model.free);
        }
    }
}
