//! Real-thread stress tests for the lock-free region.
//!
//! These exercise the structures under genuine preemptive concurrency:
//! multi-producer/multi-consumer traffic, the full submit protocol with a
//! competing "kernel" drainer, and slot-recycling churn designed to
//! provoke ABA if the tag discipline were broken.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use memif_lockfree::{Color, MovReq, QueueId, Region};

fn req(id: u64) -> MovReq {
    MovReq {
        id,
        nr_pages: 1,
        page_shift: 12,
        ..MovReq::default()
    }
}

/// N producers push unique ids through alloc→staging; M consumers drain
/// staging→free. Every id must come out exactly once, and all slots must
/// return to the free list.
#[test]
fn mpmc_staging_roundtrip() {
    let region = Arc::new(Region::new(64).unwrap());
    let producers = 4;
    let consumers = 3;
    let per_producer = 5_000u64;
    let produced_total = producers as u64 * per_producer;
    let consumed = Arc::new(AtomicU64::new(0));
    let done_producing = Arc::new(AtomicBool::new(false));

    let mut seen: Vec<HashSet<u64>> = Vec::new();
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for p in 0..producers {
            let region = Arc::clone(&region);
            s.spawn(move |_| {
                for i in 0..per_producer {
                    let id = (p as u64) * per_producer + i;
                    // Spin until a slot is free: back-pressure, not failure.
                    let slot = loop {
                        match region.alloc_slot() {
                            Ok(s) => break s,
                            Err(_) => std::hint::spin_loop(),
                        }
                    };
                    region.enqueue(QueueId::Staging, slot, &req(id)).unwrap();
                }
            });
        }
        for _ in 0..consumers {
            let region = Arc::clone(&region);
            let consumed = Arc::clone(&consumed);
            let done = Arc::clone(&done_producing);
            handles.push(s.spawn(move |_| {
                let mut ids = HashSet::new();
                loop {
                    match region.dequeue(QueueId::Staging).unwrap() {
                        Some(d) => {
                            assert!(ids.insert(d.req.id), "duplicate id {}", d.req.id);
                            region.free_slot(d.slot).unwrap();
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if done.load(Ordering::Acquire)
                                && consumed.load(Ordering::Relaxed) == produced_total
                            {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                ids
            }));
        }
        // Wait for producers by joining them implicitly at scope end is not
        // possible before consumers exit, so track via a flag thread.
        let region2 = Arc::clone(&region);
        let done = Arc::clone(&done_producing);
        let consumed2 = Arc::clone(&consumed);
        s.spawn(move |_| {
            // Producers finish when all slots are home or all ids consumed.
            loop {
                if consumed2.load(Ordering::Relaxed) + region2.stats().staging as u64
                    >= produced_total
                {
                    // All ids are at least enqueued; producers are done or
                    // nearly done. Signal consumers to finish the drain.
                    done.store(true, Ordering::Release);
                    break;
                }
                std::thread::yield_now();
            }
        });
        for h in handles {
            seen.push(h.join().unwrap());
        }
    })
    .unwrap();

    assert_eq!(consumed.load(Ordering::Relaxed), produced_total);
    let mut all = HashSet::new();
    for set in seen {
        for id in set {
            assert!(all.insert(id), "id {id} consumed twice across threads");
        }
    }
    assert_eq!(all.len() as u64, produced_total);
    assert_eq!(region.stats().free, 64);
}

/// The full SubmitRequest protocol of §4.4 under contention: many app
/// threads submit; whichever observes BLUE flushes staging→submission and
/// recolors; a kernel thread drains submission and recolors back to BLUE
/// when idle. Checks that every request reaches the kernel exactly once
/// and that the "only one flusher calls ioctl" guarantee holds.
#[test]
fn submit_protocol_single_flusher() {
    let region = Arc::new(Region::new(128).unwrap());
    let app_threads = 4;
    let per_thread = 3_000u64;
    let total = app_threads as u64 * per_thread;
    let kicks = Arc::new(AtomicU64::new(0)); // ioctl(MOV_ONE) calls
    let drained = Arc::new(AtomicU64::new(0));
    let stop_kernel = Arc::new(AtomicBool::new(false));

    crossbeam::scope(|s| {
        // Kernel thread: whenever kicked (or periodically), drain
        // submission AND staging; when both empty, recolor staging BLUE.
        {
            let region = Arc::clone(&region);
            let drained = Arc::clone(&drained);
            let stop = Arc::clone(&stop_kernel);
            s.spawn(move |_| {
                let mut ids = HashSet::new();
                loop {
                    let mut moved = false;
                    while let Some(d) = region.dequeue(QueueId::Submission).unwrap() {
                        assert!(ids.insert(d.req.id), "kernel saw id {} twice", d.req.id);
                        region.free_slot(d.slot).unwrap();
                        drained.fetch_add(1, Ordering::Relaxed);
                        moved = true;
                    }
                    // Kernel also drains staging directly while RED.
                    while let Some(d) = region.dequeue(QueueId::Staging).unwrap() {
                        assert!(ids.insert(d.req.id), "kernel saw id {} twice", d.req.id);
                        region.free_slot(d.slot).unwrap();
                        drained.fetch_add(1, Ordering::Relaxed);
                        moved = true;
                    }
                    if !moved {
                        // Queues drained: hand flushing duty back to apps.
                        let _ = region.set_color(QueueId::Staging, Color::Blue);
                        if stop.load(Ordering::Acquire) && drained.load(Ordering::Relaxed) == total
                        {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }

        let mut producers = Vec::new();
        for t in 0..app_threads {
            let region = Arc::clone(&region);
            let kicks = Arc::clone(&kicks);
            producers.push(s.spawn(move |_| {
                for i in 0..per_thread {
                    let id = (t as u64) * per_thread + i;
                    let slot = loop {
                        match region.alloc_slot() {
                            Ok(s) => break s,
                            Err(_) => std::thread::yield_now(),
                        }
                    };
                    // SubmitRequest (§4.4).
                    let color = region.enqueue(QueueId::Staging, slot, &req(id)).unwrap();
                    if color == Color::Blue {
                        loop {
                            // flush:
                            while let Some(d) = region.dequeue(QueueId::Staging).unwrap() {
                                region.enqueue(QueueId::Submission, d.slot, &d.req).unwrap();
                            }
                            match region.set_color(QueueId::Staging, Color::Red) {
                                Err(_) => continue,      // queue refilled: re-flush
                                Ok(Color::Red) => break, // someone else kicked
                                Ok(Color::Blue) => {
                                    kicks.fetch_add(1, Ordering::Relaxed); // ioctl(MOV_ONE)
                                    break;
                                }
                            }
                        }
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        stop_kernel.store(true, Ordering::Release);
    })
    .unwrap();

    assert_eq!(drained.load(Ordering::Relaxed), total);
    assert!(
        kicks.load(Ordering::Relaxed) >= 1,
        "at least one kick-start syscall"
    );
    assert!(
        kicks.load(Ordering::Relaxed) <= total,
        "never more kicks than submissions"
    );
    assert_eq!(region.stats().free, 128);
}

/// Rapid recycling through free list and two queues from many threads —
/// the pattern most likely to expose ABA on the link words.
#[test]
fn aba_churn() {
    let region = Arc::new(Region::new(8).unwrap()); // tiny arena: maximal reuse
    let threads = 8;
    let iters = 20_000u64;
    crossbeam::scope(|s| {
        for t in 0..threads {
            let region = Arc::clone(&region);
            s.spawn(move |_| {
                for i in 0..iters {
                    if let Ok(slot) = region.alloc_slot() {
                        let id = (t as u64) << 32 | i;
                        let q = if i % 2 == 0 {
                            QueueId::Staging
                        } else {
                            QueueId::Submission
                        };
                        region.enqueue(q, slot, &req(id)).unwrap();
                    }
                    let q = if i % 3 == 0 {
                        QueueId::Staging
                    } else {
                        QueueId::Submission
                    };
                    if let Some(d) = region.dequeue(q).unwrap() {
                        region.free_slot(d.slot).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    // Drain what's left and account for every slot.
    let mut in_queues = 0;
    for q in [QueueId::Staging, QueueId::Submission] {
        while let Some(d) = region.dequeue(q).unwrap() {
            region.free_slot(d.slot).unwrap();
            in_queues += 1;
        }
    }
    let _ = in_queues;
    assert_eq!(
        region.stats().free,
        8,
        "all slots accounted for after churn"
    );
}

/// N producers against ONE dequeuer on a single staging queue. Each
/// producer tags its requests `(producer << 48) | seq` with `seq`
/// strictly increasing; the queue is MPSC-linearizable, so the dequeuer
/// must observe every producer's tags in order (per-producer FIFO) even
/// though the global interleave is arbitrary. Slot counts are conserved:
/// every slot returns to the free list.
#[test]
fn mpsc_per_producer_fifo() {
    let region = Arc::new(Region::new(64).unwrap());
    let producers = 4u64;
    let per_producer = 10_000u64;
    let total = producers * per_producer;

    crossbeam::scope(|s| {
        for p in 0..producers {
            let region = Arc::clone(&region);
            s.spawn(move |_| {
                for seq in 0..per_producer {
                    let slot = loop {
                        match region.alloc_slot() {
                            Ok(s) => break s,
                            Err(_) => std::hint::spin_loop(),
                        }
                    };
                    region
                        .enqueue(QueueId::Staging, slot, &req(p << 48 | seq))
                        .unwrap();
                }
            });
        }
        // The single dequeuer: checks per-producer order as it drains.
        let region = Arc::clone(&region);
        s.spawn(move |_| {
            let mut next_seq = vec![0u64; producers as usize];
            let mut drained = 0u64;
            while drained < total {
                match region.dequeue(QueueId::Staging).unwrap() {
                    Some(d) => {
                        let p = (d.req.id >> 48) as usize;
                        let seq = d.req.id & 0xffff_ffff_ffff;
                        assert_eq!(
                            seq, next_seq[p],
                            "producer {p} reordered: got seq {seq}, expected {}",
                            next_seq[p]
                        );
                        next_seq[p] += 1;
                        region.free_slot(d.slot).unwrap();
                        drained += 1;
                    }
                    None => std::hint::spin_loop(),
                }
            }
            for (p, n) in next_seq.iter().enumerate() {
                assert_eq!(*n, per_producer, "producer {p} short-counted");
            }
        });
    })
    .unwrap();
    assert_eq!(
        region.stats().free,
        64,
        "every slot returned to the free list"
    );
}

/// The sharded variant: producers are pinned to shards (as region-affine
/// routing pins requests), one dequeuer round-robins the shards. FIFO
/// must hold per producer because each producer's traffic stays on its
/// shard; slots are shared across shards through the one free list.
#[test]
fn sharded_mpsc_per_producer_fifo() {
    let shards = 2usize;
    let region = Arc::new(Region::new_sharded(32, shards).unwrap());
    let producers = 4u64;
    let per_producer = 5_000u64;
    let total = producers * per_producer;

    crossbeam::scope(|s| {
        for p in 0..producers {
            let region = Arc::clone(&region);
            s.spawn(move |_| {
                let shard = p as usize % shards;
                for seq in 0..per_producer {
                    let slot = loop {
                        match region.alloc_slot() {
                            Ok(s) => break s,
                            Err(_) => std::hint::spin_loop(),
                        }
                    };
                    region
                        .enqueue_sharded(QueueId::Staging, shard, slot, &req(p << 48 | seq))
                        .unwrap();
                }
            });
        }
        let region = Arc::clone(&region);
        s.spawn(move |_| {
            let mut next_seq = vec![0u64; producers as usize];
            let mut drained = 0u64;
            let mut shard = 0usize;
            while drained < total {
                match region.dequeue_sharded(QueueId::Staging, shard).unwrap() {
                    Some(d) => {
                        let p = (d.req.id >> 48) as usize;
                        let seq = d.req.id & 0xffff_ffff_ffff;
                        assert_eq!(seq, next_seq[p], "producer {p} reordered on shard {shard}");
                        next_seq[p] += 1;
                        region.free_slot(d.slot).unwrap();
                        drained += 1;
                    }
                    None => {
                        shard = (shard + 1) % shards;
                        std::hint::spin_loop();
                    }
                }
            }
        });
    })
    .unwrap();
    assert_eq!(region.stats().free, 32);
}

/// Concurrent set_color vs enqueue: the red-blue entanglement must never
/// let a color change land on a non-empty queue, and every element must
/// carry the color current at its enqueue.
#[test]
fn color_entanglement_under_contention() {
    let region = Arc::new(Region::new(32).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    crossbeam::scope(|s| {
        // Flipper: toggles the color whenever the queue is empty.
        {
            let region = Arc::clone(&region);
            let stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut color = Color::Red;
                while !stop.load(Ordering::Acquire) {
                    if region.set_color(QueueId::Staging, color).is_ok() {
                        color = color.flipped();
                    }
                    std::hint::spin_loop();
                }
            });
        }
        // Producer/consumer pair hammering the queue.
        {
            let region = Arc::clone(&region);
            let stop = Arc::clone(&stop);
            s.spawn(move |_| {
                for i in 0..30_000u64 {
                    let slot = loop {
                        match region.alloc_slot() {
                            Ok(s) => break s,
                            Err(_) => std::thread::yield_now(),
                        }
                    };
                    let enq_color = region.enqueue(QueueId::Staging, slot, &req(i)).unwrap();
                    let d = loop {
                        if let Some(d) = region.dequeue(QueueId::Staging).unwrap() {
                            break d;
                        }
                    };
                    // Single-producer/single-consumer on this queue (the
                    // flipper only touches empty queues), so FIFO gives us
                    // back our own element and the colors must agree.
                    assert_eq!(d.req.id, i);
                    assert_eq!(d.color, enq_color, "color torn from queue op at i={i}");
                    region.free_slot(d.slot).unwrap();
                }
                stop.store(true, Ordering::Release);
            });
        }
    })
    .unwrap();
}
