//! The shared request region (paper Figure 3).
//!
//! One region backs one memif instance. In the paper this is a set of
//! pinned kernel pages mapped into the application's address space; here
//! it is a single heap allocation shared by the "user" and "kernel" sides
//! through an `Arc`. Layout mirrors the paper: queue/list metadata
//! followed by an array of `mov_req` slots.
//!
//! The staging and submission queues may be **sharded** (one pair per
//! issue shard, [`Region::new_sharded`]): each shard is an independent
//! red–blue queue pair drained by its own kernel worker, while the free
//! list and the two completion queues stay region-global. Requests are
//! routed to shards by region affinity in the driver, so per-region FIFO
//! holds within a shard by construction; [`InflightIndex`] is the
//! cross-shard overlap net for the rare routing collision.

use std::fmt;

use crate::freelist::FreeList;
use crate::link::{Color, SlotIndex, MAX_SLOTS};
use crate::movreq::MovReq;
use crate::queue::{ColorQueue, Dequeued, SetColorError};
use crate::slot::Slot;

/// Identifies one of the region's queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueId {
    /// Holds submitted requests not yet known to the kernel. This is the
    /// red–blue queue; its color assigns flushing responsibility.
    Staging,
    /// Holds requests known to the kernel, waiting to be processed.
    Submission,
    /// Completed requests posted back to the application — successes.
    CompletionOk,
    /// Completed requests posted back to the application — failures.
    /// (The paper implements the completion queue "as two: one for
    /// successful moves and the other for failed ones".)
    CompletionErr,
}

impl QueueId {
    /// All queue identifiers, in layout order.
    pub const ALL: [QueueId; 4] = [
        QueueId::Staging,
        QueueId::Submission,
        QueueId::CompletionOk,
        QueueId::CompletionErr,
    ];
}

/// Errors arising from region operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The requested capacity was zero or above [`MAX_SLOTS`].
    BadCapacity(usize),
    /// The requested shard count was zero.
    BadShardCount(usize),
    /// A slot index failed kernel-side validation (out of bounds). The
    /// paper: indices "will be validated by the memif driver before use".
    InvalidSlot(SlotIndex),
    /// The free list was empty — too many requests in flight.
    Exhausted,
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::BadCapacity(n) => write!(f, "bad region capacity {n}"),
            RegionError::BadShardCount(n) => write!(f, "bad shard count {n}"),
            RegionError::InvalidSlot(i) => write!(f, "slot index {i} out of bounds"),
            RegionError::Exhausted => f.write_str("no free request slots"),
        }
    }
}

impl std::error::Error for RegionError {}

/// Occupancy snapshot of a region (diagnostics; quiescent only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionStats {
    /// Free request slots.
    pub free: usize,
    /// Requests staged but not yet flushed to the kernel (all shards).
    pub staging: usize,
    /// Requests queued for the kernel workers (all shards).
    pub submission: usize,
    /// Successful completions awaiting retrieval.
    pub completion_ok: usize,
    /// Failed completions awaiting retrieval.
    pub completion_err: usize,
}

/// The shared region: slot arena, free list, and the queues.
///
/// `capacity` request slots are usable by the application; `2·S + 2`
/// extra slots serve as the queues' initial dummies for `S` issue shards
/// (the dummy identity rotates as elements flow, but the total is
/// conserved). The single-shard layout is identical to the original
/// four-queue region.
pub struct Region {
    slots: Box<[Slot]>,
    capacity: usize,
    free: FreeList,
    staging: Vec<ColorQueue>,
    submission: Vec<ColorQueue>,
    completion_ok: ColorQueue,
    completion_err: ColorQueue,
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Region")
            .field("capacity", &self.capacity)
            .field("shards", &self.staging.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Region {
    /// Creates a region with `capacity` usable request slots and a single
    /// issue shard.
    ///
    /// The staging queue starts **blue**: with no kernel thread active,
    /// the first submitter is responsible for flushing and kicking the
    /// kernel (§4.4).
    ///
    /// # Errors
    ///
    /// [`RegionError::BadCapacity`] if `capacity` is zero or exceeds
    /// [`MAX_SLOTS`] − 4.
    pub fn new(capacity: usize) -> Result<Self, RegionError> {
        Self::new_sharded(capacity, 1)
    }

    /// Creates a region with `capacity` usable request slots and `shards`
    /// staging/submission queue pairs (one per issue shard).
    ///
    /// Every staging queue starts **blue** (first submitter flushes).
    ///
    /// # Errors
    ///
    /// [`RegionError::BadShardCount`] if `shards` is zero;
    /// [`RegionError::BadCapacity`] if `capacity` is zero or
    /// `capacity + 2·shards + 2` exceeds [`MAX_SLOTS`].
    pub fn new_sharded(capacity: usize, shards: usize) -> Result<Self, RegionError> {
        if shards == 0 {
            return Err(RegionError::BadShardCount(shards));
        }
        let dummies = 2 * shards + 2;
        if capacity == 0 || capacity > MAX_SLOTS.saturating_sub(dummies) {
            return Err(RegionError::BadCapacity(capacity));
        }
        let total = capacity + dummies;
        let slots: Box<[Slot]> = (0..total).map(|_| Slot::new()).collect();
        let free = FreeList::new();
        for i in 0..capacity {
            free.push(&slots, i as SlotIndex);
        }
        // Dummy layout: staging shards first, then submission shards,
        // then the two completion queues — at `shards == 1` this is the
        // original staging/submission/ok/err order, byte-identical.
        let dummy = |k: usize| (capacity + k) as SlotIndex;
        let staging = (0..shards)
            .map(|s| ColorQueue::new(&slots, dummy(s), Color::Blue))
            .collect();
        let submission = (0..shards)
            .map(|s| ColorQueue::new(&slots, dummy(shards + s), Color::Blue))
            .collect();
        let region = Region {
            completion_ok: ColorQueue::new(&slots, dummy(2 * shards), Color::Blue),
            completion_err: ColorQueue::new(&slots, dummy(2 * shards + 1), Color::Blue),
            staging,
            submission,
            slots,
            capacity,
            free,
        };
        Ok(region)
    }

    /// Usable request-slot capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of issue shards (staging/submission queue pairs).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.staging.len()
    }

    /// Resolves a queue id to a concrete queue. For the sharded queues
    /// (`Staging`, `Submission`) the `shard` index selects the pair; the
    /// completion queues are region-global and ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()` for a sharded queue id — shard
    /// routing is driver-internal and a bad index is a driver bug.
    fn queue_sharded(&self, id: QueueId, shard: usize) -> &ColorQueue {
        match id {
            QueueId::Staging => &self.staging[shard],
            QueueId::Submission => &self.submission[shard],
            QueueId::CompletionOk => &self.completion_ok,
            QueueId::CompletionErr => &self.completion_err,
        }
    }

    fn queue(&self, id: QueueId) -> &ColorQueue {
        self.queue_sharded(id, 0)
    }

    /// Validates a slot index as the kernel driver does before use.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidSlot`] if out of bounds.
    pub fn validate(&self, slot: SlotIndex) -> Result<(), RegionError> {
        if (slot as usize) < self.slots.len() {
            Ok(())
        } else {
            Err(RegionError::InvalidSlot(slot))
        }
    }

    /// Takes a blank slot from the free list (`AllocRequest`).
    ///
    /// # Errors
    ///
    /// [`RegionError::Exhausted`] when every slot is in flight.
    pub fn alloc_slot(&self) -> Result<SlotIndex, RegionError> {
        self.free.pop(&self.slots).ok_or(RegionError::Exhausted)
    }

    /// Returns a slot to the free list (`FreeRequest`).
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidSlot`] if out of bounds.
    pub fn free_slot(&self, slot: SlotIndex) -> Result<(), RegionError> {
        self.validate(slot)?;
        self.free.push(&self.slots, slot);
        Ok(())
    }

    /// Enqueues the caller-owned `slot` carrying `req` onto queue `id`
    /// (shard 0 for sharded queues), returning the observed queue color.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidSlot`] if out of bounds.
    pub fn enqueue(
        &self,
        id: QueueId,
        slot: SlotIndex,
        req: &MovReq,
    ) -> Result<Color, RegionError> {
        self.enqueue_sharded(id, 0, slot, req)
    }

    /// Enqueues onto shard `shard` of queue `id`.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidSlot`] if out of bounds.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for a sharded queue id.
    pub fn enqueue_sharded(
        &self,
        id: QueueId,
        shard: usize,
        slot: SlotIndex,
        req: &MovReq,
    ) -> Result<Color, RegionError> {
        self.validate(slot)?;
        Ok(self
            .queue_sharded(id, shard)
            .enqueue(&self.slots, slot, req))
    }

    /// Dequeues from queue `id` (shard 0 for sharded queues); `Ok(None)`
    /// means empty.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserves room for kernel-side
    /// validation failures.
    pub fn dequeue(&self, id: QueueId) -> Result<Option<Dequeued>, RegionError> {
        self.dequeue_sharded(id, 0)
    }

    /// Dequeues from shard `shard` of queue `id`; `Ok(None)` means empty.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserves room for kernel-side
    /// validation failures.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for a sharded queue id.
    pub fn dequeue_sharded(
        &self,
        id: QueueId,
        shard: usize,
    ) -> Result<Option<Dequeued>, RegionError> {
        Ok(self.queue_sharded(id, shard).dequeue(&self.slots))
    }

    /// Dequeues from queue `id` (shard 0) only if the front request
    /// satisfies `pred`; `Ok(None)` means empty *or* mismatched front
    /// (which is left in place). The batched issue path uses this to
    /// drain only requests compatible with the batch being assembled.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserves room for kernel-side
    /// validation failures.
    pub fn dequeue_matching(
        &self,
        id: QueueId,
        pred: impl FnMut(&MovReq) -> bool,
    ) -> Result<Option<Dequeued>, RegionError> {
        self.dequeue_matching_sharded(id, 0, pred)
    }

    /// Like [`Region::dequeue_matching`], on shard `shard`.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserves room for kernel-side
    /// validation failures.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for a sharded queue id.
    pub fn dequeue_matching_sharded(
        &self,
        id: QueueId,
        shard: usize,
        pred: impl FnMut(&MovReq) -> bool,
    ) -> Result<Option<Dequeued>, RegionError> {
        Ok(self.queue_sharded(id, shard).dequeue_if(&self.slots, pred))
    }

    /// Attempts to recolor queue `id` (shard 0; only succeeds when empty,
    /// §4.3).
    ///
    /// # Errors
    ///
    /// [`SetColorError::NotEmpty`] if the queue holds elements.
    pub fn set_color(&self, id: QueueId, new: Color) -> Result<Color, SetColorError> {
        self.set_color_sharded(id, 0, new)
    }

    /// Attempts to recolor shard `shard` of queue `id`.
    ///
    /// # Errors
    ///
    /// [`SetColorError::NotEmpty`] if the queue holds elements.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for a sharded queue id.
    pub fn set_color_sharded(
        &self,
        id: QueueId,
        shard: usize,
        new: Color,
    ) -> Result<Color, SetColorError> {
        self.queue_sharded(id, shard).set_color(&self.slots, new)
    }

    /// The current color of queue `id` (shard 0 for sharded queues).
    pub fn color(&self, id: QueueId) -> Color {
        self.color_sharded(id, 0)
    }

    /// The current color of shard `shard` of queue `id`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for a sharded queue id.
    pub fn color_sharded(&self, id: QueueId, shard: usize) -> Color {
        self.queue_sharded(id, shard).color(&self.slots)
    }

    /// True if queue `id` held no element at the read instant — for the
    /// sharded queues, no element in **any** shard (idle checks).
    pub fn is_empty(&self, id: QueueId) -> bool {
        match id {
            QueueId::Staging | QueueId::Submission => {
                (0..self.shards()).all(|s| self.is_empty_sharded(id, s))
            }
            _ => self.queue(id).is_empty(&self.slots),
        }
    }

    /// True if shard `shard` of queue `id` held no element at the read
    /// instant.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for a sharded queue id.
    pub fn is_empty_sharded(&self, id: QueueId, shard: usize) -> bool {
        self.queue_sharded(id, shard).is_empty(&self.slots)
    }

    /// Occupancy snapshot (diagnostics; meaningful when quiescent).
    /// Sharded queue counts are summed across shards.
    pub fn stats(&self) -> RegionStats {
        RegionStats {
            free: self.free.len_approx(&self.slots),
            staging: self.staging.iter().map(|q| q.len_approx(&self.slots)).sum(),
            submission: self
                .submission
                .iter()
                .map(|q| q.len_approx(&self.slots))
                .sum(),
            completion_ok: self.completion_ok.len_approx(&self.slots),
            completion_err: self.completion_err.len_approx(&self.slots),
        }
    }
}

/// Cross-shard in-flight span index.
///
/// Shard routing sends every request for the same region (VMA) to the
/// same shard, so the per-shard deferred-hazard guard already serializes
/// overlapping requests that hash together. This index is the safety net
/// for the remaining case: two *different* regions whose byte spans
/// overlap (or a routing fallback) landing on different shards. The
/// driver registers every in-flight request's source (and, for
/// replication, destination) span here and consults it before issuing.
///
/// Spans are `(base, len, token)` triples; a token may own several spans
/// and all of them are dropped by [`InflightIndex::remove`]. The set is
/// small (bounded by pipeline depth × shards), so a linear scan beats
/// anything fancier.
#[derive(Debug, Default)]
pub struct InflightIndex {
    spans: Vec<(u64, u64, u64)>,
}

impl InflightIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the half-open byte span `[base, base + len)` under
    /// `token`. Zero-length spans are ignored (they overlap nothing).
    pub fn insert(&mut self, base: u64, len: u64, token: u64) {
        if len > 0 {
            self.spans.push((base, len, token));
        }
    }

    /// Drops every span registered under `token`.
    pub fn remove(&mut self, token: u64) {
        self.spans.retain(|&(_, _, t)| t != token);
    }

    /// The token of the oldest-registered span overlapping
    /// `[base, base + len)`, if any.
    #[must_use]
    pub fn first_overlap(&self, base: u64, len: u64) -> Option<u64> {
        if len == 0 {
            return None;
        }
        let (qb, qe) = (u128::from(base), u128::from(base) + u128::from(len));
        self.spans
            .iter()
            .find(|&&(b, l, _)| qb < u128::from(b) + u128::from(l) && u128::from(b) < qe)
            .map(|&(_, _, t)| t)
    }

    /// True if no span is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of registered spans (not distinct tokens).
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movreq::MoveKind;

    fn req(id: u64) -> MovReq {
        MovReq {
            id,
            kind: MoveKind::Replicate,
            nr_pages: 1,
            page_shift: 12,
            ..MovReq::default()
        }
    }

    #[test]
    fn lifecycle_through_all_queues() {
        let r = Region::new(4).unwrap();
        let s = r.alloc_slot().unwrap();
        let color = r.enqueue(QueueId::Staging, s, &req(1)).unwrap();
        assert_eq!(color, Color::Blue);

        let d = r.dequeue(QueueId::Staging).unwrap().unwrap();
        r.enqueue(QueueId::Submission, d.slot, &d.req).unwrap();

        let d = r.dequeue(QueueId::Submission).unwrap().unwrap();
        assert_eq!(d.req.id, 1);
        r.enqueue(QueueId::CompletionOk, d.slot, &d.req).unwrap();

        let d = r.dequeue(QueueId::CompletionOk).unwrap().unwrap();
        assert_eq!(d.req.id, 1);
        r.free_slot(d.slot).unwrap();

        let stats = r.stats();
        assert_eq!(stats.free, 4);
        assert_eq!(
            stats.staging + stats.submission + stats.completion_ok + stats.completion_err,
            0
        );
    }

    #[test]
    fn capacity_limits() {
        assert!(matches!(Region::new(0), Err(RegionError::BadCapacity(0))));
        assert!(Region::new(MAX_SLOTS).is_err());
        let r = Region::new(2).unwrap();
        assert_eq!(r.capacity(), 2);
        let a = r.alloc_slot().unwrap();
        let _b = r.alloc_slot().unwrap();
        assert_eq!(r.alloc_slot(), Err(RegionError::Exhausted));
        r.free_slot(a).unwrap();
        assert!(r.alloc_slot().is_ok());
    }

    #[test]
    fn slot_validation() {
        let r = Region::new(2).unwrap();
        assert!(r.validate(0).is_ok());
        assert!(r.validate(5).is_ok()); // 2 + 4 dummies = 6 slots
        assert_eq!(r.validate(6), Err(RegionError::InvalidSlot(6)));
        assert_eq!(r.free_slot(1000), Err(RegionError::InvalidSlot(1000)));
        assert!(r.enqueue(QueueId::Staging, 999, &req(0)).is_err());
    }

    #[test]
    fn queues_are_isolated() {
        let r = Region::new(4).unwrap();
        let a = r.alloc_slot().unwrap();
        let b = r.alloc_slot().unwrap();
        r.enqueue(QueueId::Staging, a, &req(1)).unwrap();
        r.enqueue(QueueId::Submission, b, &req(2)).unwrap();
        assert!(r.dequeue(QueueId::CompletionOk).unwrap().is_none());
        assert_eq!(r.dequeue(QueueId::Submission).unwrap().unwrap().req.id, 2);
        assert_eq!(r.dequeue(QueueId::Staging).unwrap().unwrap().req.id, 1);
    }

    #[test]
    fn dequeue_matching_respects_fifo_front() {
        let r = Region::new(4).unwrap();
        let a = r.alloc_slot().unwrap();
        let b = r.alloc_slot().unwrap();
        r.enqueue(QueueId::Submission, a, &req(1)).unwrap();
        r.enqueue(QueueId::Submission, b, &req(2)).unwrap();
        // Front (id 1) mismatches: nothing moves.
        assert!(r
            .dequeue_matching(QueueId::Submission, |m| m.id == 2)
            .unwrap()
            .is_none());
        assert_eq!(r.stats().submission, 2);
        let d = r
            .dequeue_matching(QueueId::Submission, |m| m.id == 1)
            .unwrap()
            .unwrap();
        assert_eq!(d.req.id, 1);
    }

    #[test]
    fn staging_color_protocol() {
        let r = Region::new(4).unwrap();
        assert_eq!(r.color(QueueId::Staging), Color::Blue);
        let s = r.alloc_slot().unwrap();
        assert_eq!(
            r.enqueue(QueueId::Staging, s, &req(1)).unwrap(),
            Color::Blue
        );
        assert!(r.set_color(QueueId::Staging, Color::Red).is_err());
        let d = r.dequeue(QueueId::Staging).unwrap().unwrap();
        assert_eq!(r.set_color(QueueId::Staging, Color::Red), Ok(Color::Blue));
        assert_eq!(
            r.enqueue(QueueId::Staging, d.slot, &req(2)).unwrap(),
            Color::Red
        );
        assert_eq!(r.color(QueueId::Staging), Color::Red);
    }

    #[test]
    fn sharded_layout_and_isolation() {
        assert!(matches!(
            Region::new_sharded(4, 0),
            Err(RegionError::BadShardCount(0))
        ));
        let r = Region::new_sharded(4, 3).unwrap();
        assert_eq!(r.shards(), 3);
        // 4 usable + 2·3 + 2 dummies = 12 slots.
        assert!(r.validate(11).is_ok());
        assert_eq!(r.validate(12), Err(RegionError::InvalidSlot(12)));

        let a = r.alloc_slot().unwrap();
        let b = r.alloc_slot().unwrap();
        r.enqueue_sharded(QueueId::Staging, 0, a, &req(1)).unwrap();
        r.enqueue_sharded(QueueId::Staging, 2, b, &req(2)).unwrap();
        // Shards are independent FIFOs...
        assert!(r.dequeue_sharded(QueueId::Staging, 1).unwrap().is_none());
        assert_eq!(
            r.dequeue_sharded(QueueId::Staging, 2)
                .unwrap()
                .unwrap()
                .req
                .id,
            2
        );
        // ...with independent colors...
        assert_eq!(
            r.set_color_sharded(QueueId::Staging, 2, Color::Red),
            Ok(Color::Blue)
        );
        assert_eq!(r.color_sharded(QueueId::Staging, 2), Color::Red);
        assert_eq!(r.color_sharded(QueueId::Staging, 0), Color::Blue);
        // ...while the unsharded emptiness check spans all shards.
        assert!(!r.is_empty(QueueId::Staging));
        assert!(r.is_empty_sharded(QueueId::Staging, 2));
        assert_eq!(r.stats().staging, 1);
        assert_eq!(
            r.dequeue_sharded(QueueId::Staging, 0)
                .unwrap()
                .unwrap()
                .req
                .id,
            1
        );
        assert!(r.is_empty(QueueId::Staging));
    }

    #[test]
    fn single_shard_matches_seed_layout() {
        // `new` is `new_sharded(_, 1)`: same slot count, same dummy order.
        let r = Region::new(2).unwrap();
        assert_eq!(r.shards(), 1);
        assert!(r.validate(5).is_ok());
        assert_eq!(r.validate(6), Err(RegionError::InvalidSlot(6)));
    }

    #[test]
    fn inflight_index_overlap_and_removal() {
        let mut ix = InflightIndex::new();
        assert!(ix.is_empty());
        assert_eq!(ix.first_overlap(0, u64::MAX), None);

        ix.insert(0x1000, 0x2000, 7); // [0x1000, 0x3000)
        ix.insert(0x8000, 0x1000, 8); // [0x8000, 0x9000)
        ix.insert(0x9000, 0x1000, 8); // replicate dst span, same token
        assert_eq!(ix.len(), 3);

        assert_eq!(ix.first_overlap(0x2fff, 1), Some(7));
        assert_eq!(ix.first_overlap(0x3000, 0x1000), None); // half-open
        assert_eq!(ix.first_overlap(0x0, 0x1001), Some(7));
        assert_eq!(ix.first_overlap(0x8fff, 0x2000), Some(8));
        assert_eq!(ix.first_overlap(0x1000, 0), None); // empty span

        ix.remove(8); // drops both of token 8's spans
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.first_overlap(0x8000, 0x2000), None);
        ix.remove(7);
        assert!(ix.is_empty());

        // No overflow at the top of the address space.
        ix.insert(u64::MAX - 1, 10, 9);
        assert_eq!(ix.first_overlap(u64::MAX, 1), Some(9));
    }

    /// Adjacent (touching, non-overlapping) spans must never report a
    /// conflict: the intervals are half-open on both sides of the query.
    #[test]
    fn inflight_index_adjacent_spans_do_not_conflict() {
        let mut ix = InflightIndex::new();
        ix.insert(0x4000, 0x1000, 1); // [0x4000, 0x5000)
        ix.insert(0x5000, 0x1000, 2); // [0x5000, 0x6000) — touches token 1

        // The spans touch each other without overlapping: both insert
        // fine and each is found only by queries inside its own range.
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.first_overlap(0x4fff, 1), Some(1));
        assert_eq!(ix.first_overlap(0x5000, 1), Some(2));

        // A query ending exactly where a span begins, or beginning
        // exactly where a span ends, does not touch it.
        assert_eq!(ix.first_overlap(0x3000, 0x1000), None); // ends at token 1's base
        assert_eq!(ix.first_overlap(0x6000, 0x1000), None); // begins at token 2's end
                                                            // A query spanning the shared boundary sees the older span first.
        assert_eq!(ix.first_overlap(0x4fff, 2), Some(1));
        ix.remove(1);
        assert_eq!(ix.first_overlap(0x4000, 0x1000), None); // ends exactly at 0x5000
                                                            // One byte over either edge of the surviving span does conflict.
        assert_eq!(ix.first_overlap(0x4000, 0x1001), Some(2));
        assert_eq!(ix.first_overlap(0x5fff, 0x1000), Some(2));
    }

    /// The overlap test runs in u128: spans and queries whose `base +
    /// len` exceeds `u64::MAX` must neither wrap nor panic.
    #[test]
    fn inflight_index_max_address_arithmetic() {
        let mut ix = InflightIndex::new();

        // A span ending exactly at the top of the address space
        // (base + len == 2^64, representable only in u128).
        ix.insert(u64::MAX - 0xfff, 0x1000, 3);
        assert_eq!(ix.first_overlap(u64::MAX, 1), Some(3));
        assert_eq!(ix.first_overlap(u64::MAX - 0x1000, 1), None);
        // A query that also runs to the top overlaps it.
        assert_eq!(ix.first_overlap(u64::MAX - 0x1fff, 0x2000), Some(3));
        // ...but one ending exactly at the span's base does not.
        assert_eq!(ix.first_overlap(u64::MAX - 0x1fff, 0x1000), None);

        // A maximal query (the whole address space) against a maximal
        // span: base + len overflows u64 on both sides.
        ix.remove(3);
        ix.insert(1, u64::MAX, 4); // [1, 2^64 - 1 + 1) == [1, 2^64)
        assert_eq!(ix.first_overlap(0, u64::MAX), Some(4));
        assert_eq!(ix.first_overlap(u64::MAX, u64::MAX), Some(4));
        assert_eq!(ix.first_overlap(0, 1), None); // [0, 1) stops short

        // Degenerate: zero-length span at u64::MAX is ignored entirely.
        ix.remove(4);
        ix.insert(u64::MAX, 0, 5);
        assert!(ix.is_empty());
        assert_eq!(ix.first_overlap(u64::MAX, 1), None);
    }

    #[test]
    fn debug_is_nonempty() {
        let r = Region::new(2).unwrap();
        assert!(!format!("{r:?}").is_empty());
    }
}
