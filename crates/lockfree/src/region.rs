//! The shared request region (paper Figure 3).
//!
//! One region backs one memif instance. In the paper this is a set of
//! pinned kernel pages mapped into the application's address space; here
//! it is a single heap allocation shared by the "user" and "kernel" sides
//! through an `Arc`. Layout mirrors the paper: queue/list metadata
//! followed by an array of `mov_req` slots.

use std::fmt;

use crate::freelist::FreeList;
use crate::link::{Color, SlotIndex, MAX_SLOTS};
use crate::movreq::MovReq;
use crate::queue::{ColorQueue, Dequeued, SetColorError};
use crate::slot::Slot;

/// Identifies one of the region's queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueId {
    /// Holds submitted requests not yet known to the kernel. This is the
    /// red–blue queue; its color assigns flushing responsibility.
    Staging,
    /// Holds requests known to the kernel, waiting to be processed.
    Submission,
    /// Completed requests posted back to the application — successes.
    CompletionOk,
    /// Completed requests posted back to the application — failures.
    /// (The paper implements the completion queue "as two: one for
    /// successful moves and the other for failed ones".)
    CompletionErr,
}

impl QueueId {
    /// All queue identifiers, in layout order.
    pub const ALL: [QueueId; 4] = [
        QueueId::Staging,
        QueueId::Submission,
        QueueId::CompletionOk,
        QueueId::CompletionErr,
    ];
}

/// Errors arising from region operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The requested capacity was zero or above [`MAX_SLOTS`].
    BadCapacity(usize),
    /// A slot index failed kernel-side validation (out of bounds). The
    /// paper: indices "will be validated by the memif driver before use".
    InvalidSlot(SlotIndex),
    /// The free list was empty — too many requests in flight.
    Exhausted,
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::BadCapacity(n) => write!(f, "bad region capacity {n}"),
            RegionError::InvalidSlot(i) => write!(f, "slot index {i} out of bounds"),
            RegionError::Exhausted => f.write_str("no free request slots"),
        }
    }
}

impl std::error::Error for RegionError {}

/// Occupancy snapshot of a region (diagnostics; quiescent only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionStats {
    /// Free request slots.
    pub free: usize,
    /// Requests staged but not yet flushed to the kernel.
    pub staging: usize,
    /// Requests queued for the kernel worker.
    pub submission: usize,
    /// Successful completions awaiting retrieval.
    pub completion_ok: usize,
    /// Failed completions awaiting retrieval.
    pub completion_err: usize,
}

/// The shared region: slot arena, free list, and the four queues.
///
/// `capacity` request slots are usable by the application; four extra
/// slots serve as the queues' initial dummies (the dummy identity rotates
/// as elements flow, but the total is conserved).
pub struct Region {
    slots: Box<[Slot]>,
    capacity: usize,
    free: FreeList,
    staging: ColorQueue,
    submission: ColorQueue,
    completion_ok: ColorQueue,
    completion_err: ColorQueue,
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Region")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Region {
    /// Creates a region with `capacity` usable request slots.
    ///
    /// The staging queue starts **blue**: with no kernel thread active,
    /// the first submitter is responsible for flushing and kicking the
    /// kernel (§4.4).
    ///
    /// # Errors
    ///
    /// [`RegionError::BadCapacity`] if `capacity` is zero or exceeds
    /// [`MAX_SLOTS`] − 4.
    pub fn new(capacity: usize) -> Result<Self, RegionError> {
        if capacity == 0 || capacity > MAX_SLOTS - QueueId::ALL.len() {
            return Err(RegionError::BadCapacity(capacity));
        }
        let total = capacity + QueueId::ALL.len();
        let slots: Box<[Slot]> = (0..total).map(|_| Slot::new()).collect();
        let free = FreeList::new();
        for i in 0..capacity {
            free.push(&slots, i as SlotIndex);
        }
        let dummy = |k: usize| (capacity + k) as SlotIndex;
        let region = Region {
            staging: ColorQueue::new(&slots, dummy(0), Color::Blue),
            submission: ColorQueue::new(&slots, dummy(1), Color::Blue),
            completion_ok: ColorQueue::new(&slots, dummy(2), Color::Blue),
            completion_err: ColorQueue::new(&slots, dummy(3), Color::Blue),
            slots,
            capacity,
            free,
        };
        Ok(region)
    }

    /// Usable request-slot capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn queue(&self, id: QueueId) -> &ColorQueue {
        match id {
            QueueId::Staging => &self.staging,
            QueueId::Submission => &self.submission,
            QueueId::CompletionOk => &self.completion_ok,
            QueueId::CompletionErr => &self.completion_err,
        }
    }

    /// Validates a slot index as the kernel driver does before use.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidSlot`] if out of bounds.
    pub fn validate(&self, slot: SlotIndex) -> Result<(), RegionError> {
        if (slot as usize) < self.slots.len() {
            Ok(())
        } else {
            Err(RegionError::InvalidSlot(slot))
        }
    }

    /// Takes a blank slot from the free list (`AllocRequest`).
    ///
    /// # Errors
    ///
    /// [`RegionError::Exhausted`] when every slot is in flight.
    pub fn alloc_slot(&self) -> Result<SlotIndex, RegionError> {
        self.free.pop(&self.slots).ok_or(RegionError::Exhausted)
    }

    /// Returns a slot to the free list (`FreeRequest`).
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidSlot`] if out of bounds.
    pub fn free_slot(&self, slot: SlotIndex) -> Result<(), RegionError> {
        self.validate(slot)?;
        self.free.push(&self.slots, slot);
        Ok(())
    }

    /// Enqueues the caller-owned `slot` carrying `req` onto queue `id`,
    /// returning the observed queue color.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidSlot`] if out of bounds.
    pub fn enqueue(
        &self,
        id: QueueId,
        slot: SlotIndex,
        req: &MovReq,
    ) -> Result<Color, RegionError> {
        self.validate(slot)?;
        Ok(self.queue(id).enqueue(&self.slots, slot, req))
    }

    /// Dequeues from queue `id`; `Ok(None)` means empty.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserves room for kernel-side
    /// validation failures.
    pub fn dequeue(&self, id: QueueId) -> Result<Option<Dequeued>, RegionError> {
        Ok(self.queue(id).dequeue(&self.slots))
    }

    /// Dequeues from queue `id` only if the front request satisfies
    /// `pred`; `Ok(None)` means empty *or* mismatched front (which is
    /// left in place). The batched issue path uses this to drain only
    /// requests compatible with the batch being assembled.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserves room for kernel-side
    /// validation failures.
    pub fn dequeue_matching(
        &self,
        id: QueueId,
        pred: impl FnMut(&MovReq) -> bool,
    ) -> Result<Option<Dequeued>, RegionError> {
        Ok(self.queue(id).dequeue_if(&self.slots, pred))
    }

    /// Attempts to recolor queue `id` (only succeeds when empty; §4.3).
    ///
    /// # Errors
    ///
    /// [`SetColorError::NotEmpty`] if the queue holds elements.
    pub fn set_color(&self, id: QueueId, new: Color) -> Result<Color, SetColorError> {
        self.queue(id).set_color(&self.slots, new)
    }

    /// The current color of queue `id`.
    pub fn color(&self, id: QueueId) -> Color {
        self.queue(id).color(&self.slots)
    }

    /// True if queue `id` held no element at the read instant.
    pub fn is_empty(&self, id: QueueId) -> bool {
        self.queue(id).is_empty(&self.slots)
    }

    /// Occupancy snapshot (diagnostics; meaningful when quiescent).
    pub fn stats(&self) -> RegionStats {
        RegionStats {
            free: self.free.len_approx(&self.slots),
            staging: self.staging.len_approx(&self.slots),
            submission: self.submission.len_approx(&self.slots),
            completion_ok: self.completion_ok.len_approx(&self.slots),
            completion_err: self.completion_err.len_approx(&self.slots),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movreq::MoveKind;

    fn req(id: u64) -> MovReq {
        MovReq {
            id,
            kind: MoveKind::Replicate,
            nr_pages: 1,
            page_shift: 12,
            ..MovReq::default()
        }
    }

    #[test]
    fn lifecycle_through_all_queues() {
        let r = Region::new(4).unwrap();
        let s = r.alloc_slot().unwrap();
        let color = r.enqueue(QueueId::Staging, s, &req(1)).unwrap();
        assert_eq!(color, Color::Blue);

        let d = r.dequeue(QueueId::Staging).unwrap().unwrap();
        r.enqueue(QueueId::Submission, d.slot, &d.req).unwrap();

        let d = r.dequeue(QueueId::Submission).unwrap().unwrap();
        assert_eq!(d.req.id, 1);
        r.enqueue(QueueId::CompletionOk, d.slot, &d.req).unwrap();

        let d = r.dequeue(QueueId::CompletionOk).unwrap().unwrap();
        assert_eq!(d.req.id, 1);
        r.free_slot(d.slot).unwrap();

        let stats = r.stats();
        assert_eq!(stats.free, 4);
        assert_eq!(
            stats.staging + stats.submission + stats.completion_ok + stats.completion_err,
            0
        );
    }

    #[test]
    fn capacity_limits() {
        assert!(matches!(Region::new(0), Err(RegionError::BadCapacity(0))));
        assert!(Region::new(MAX_SLOTS).is_err());
        let r = Region::new(2).unwrap();
        assert_eq!(r.capacity(), 2);
        let a = r.alloc_slot().unwrap();
        let _b = r.alloc_slot().unwrap();
        assert_eq!(r.alloc_slot(), Err(RegionError::Exhausted));
        r.free_slot(a).unwrap();
        assert!(r.alloc_slot().is_ok());
    }

    #[test]
    fn slot_validation() {
        let r = Region::new(2).unwrap();
        assert!(r.validate(0).is_ok());
        assert!(r.validate(5).is_ok()); // 2 + 4 dummies = 6 slots
        assert_eq!(r.validate(6), Err(RegionError::InvalidSlot(6)));
        assert_eq!(r.free_slot(1000), Err(RegionError::InvalidSlot(1000)));
        assert!(r.enqueue(QueueId::Staging, 999, &req(0)).is_err());
    }

    #[test]
    fn queues_are_isolated() {
        let r = Region::new(4).unwrap();
        let a = r.alloc_slot().unwrap();
        let b = r.alloc_slot().unwrap();
        r.enqueue(QueueId::Staging, a, &req(1)).unwrap();
        r.enqueue(QueueId::Submission, b, &req(2)).unwrap();
        assert!(r.dequeue(QueueId::CompletionOk).unwrap().is_none());
        assert_eq!(r.dequeue(QueueId::Submission).unwrap().unwrap().req.id, 2);
        assert_eq!(r.dequeue(QueueId::Staging).unwrap().unwrap().req.id, 1);
    }

    #[test]
    fn dequeue_matching_respects_fifo_front() {
        let r = Region::new(4).unwrap();
        let a = r.alloc_slot().unwrap();
        let b = r.alloc_slot().unwrap();
        r.enqueue(QueueId::Submission, a, &req(1)).unwrap();
        r.enqueue(QueueId::Submission, b, &req(2)).unwrap();
        // Front (id 1) mismatches: nothing moves.
        assert!(r
            .dequeue_matching(QueueId::Submission, |m| m.id == 2)
            .unwrap()
            .is_none());
        assert_eq!(r.stats().submission, 2);
        let d = r
            .dequeue_matching(QueueId::Submission, |m| m.id == 1)
            .unwrap()
            .unwrap();
        assert_eq!(d.req.id, 1);
    }

    #[test]
    fn staging_color_protocol() {
        let r = Region::new(4).unwrap();
        assert_eq!(r.color(QueueId::Staging), Color::Blue);
        let s = r.alloc_slot().unwrap();
        assert_eq!(
            r.enqueue(QueueId::Staging, s, &req(1)).unwrap(),
            Color::Blue
        );
        assert!(r.set_color(QueueId::Staging, Color::Red).is_err());
        let d = r.dequeue(QueueId::Staging).unwrap().unwrap();
        assert_eq!(r.set_color(QueueId::Staging, Color::Red), Ok(Color::Blue));
        assert_eq!(
            r.enqueue(QueueId::Staging, d.slot, &req(2)).unwrap(),
            Color::Red
        );
        assert_eq!(r.color(QueueId::Staging), Color::Red);
    }

    #[test]
    fn debug_is_nonempty() {
        let r = Region::new(2).unwrap();
        assert!(!format!("{r:?}").is_empty());
    }
}
