//! The lock-free free list of request slots (paper Figure 3a).
//!
//! A Treiber stack over the same index-linked arena as the queues. LIFO
//! order is deliberate: a just-freed slot is the most likely to be warm in
//! the allocating core's cache. The head word carries a modification tag,
//! and — as everywhere in this crate — slot links are only mutated with
//! tag-advancing writes, so pop's speculative read of a possibly-stolen
//! slot's link is rendered harmless by the head CAS.

use crate::link::{AtomicLink, Color, Link, SlotIndex, NULL_INDEX};
use crate::slot::Slot;

/// A lock-free LIFO free list of slot indices.
#[derive(Debug)]
pub struct FreeList {
    head: AtomicLink,
}

impl Default for FreeList {
    fn default() -> Self {
        Self::new()
    }
}

impl FreeList {
    /// An empty free list.
    #[must_use]
    pub fn new() -> Self {
        FreeList {
            head: AtomicLink::new(Link::null(0, Color::Blue)),
        }
    }

    /// Pushes the caller-owned slot `e`.
    pub fn push(&self, slots: &[Slot], e: SlotIndex) {
        let eslot = &slots[e as usize];
        loop {
            let h = self.head.load();
            let own = eslot.link.load();
            eslot.link.store(Link {
                tag: own.tag.wrapping_add(1),
                color: Color::Blue,
                index: h.index,
            });
            if self
                .head
                .compare_exchange(
                    h,
                    Link {
                        tag: h.tag.wrapping_add(1),
                        color: Color::Blue,
                        index: e,
                    },
                )
                .is_ok()
            {
                return;
            }
        }
    }

    /// Pops a slot, or `None` if the list is empty.
    pub fn pop(&self, slots: &[Slot]) -> Option<SlotIndex> {
        loop {
            let h = self.head.load();
            if h.index == NULL_INDEX {
                return None;
            }
            // Speculative read: if the slot was stolen and recycled in the
            // meantime, the tagged head CAS below fails and we retry.
            let next = slots[h.index as usize].link.load().index;
            if self
                .head
                .compare_exchange(
                    h,
                    Link {
                        tag: h.tag.wrapping_add(1),
                        color: Color::Blue,
                        index: next,
                    },
                )
                .is_ok()
            {
                return Some(h.index);
            }
        }
    }

    /// True if the list held no slot at the read instant.
    pub fn is_empty(&self) -> bool {
        self.head.load().index == NULL_INDEX
    }

    /// Number of free slots, by traversal (diagnostics; quiescent only).
    pub fn len_approx(&self, slots: &[Slot]) -> usize {
        let mut n = 0;
        let mut idx = self.head.load().index;
        for _ in 0..slots.len() {
            if idx == NULL_INDEX {
                break;
            }
            n += 1;
            idx = slots[idx as usize].link.load().index;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(n: usize) -> Vec<Slot> {
        (0..n).map(|_| Slot::new()).collect()
    }

    #[test]
    fn lifo_order() {
        let slots = arena(4);
        let f = FreeList::new();
        assert!(f.is_empty());
        f.push(&slots, 0);
        f.push(&slots, 1);
        f.push(&slots, 2);
        assert_eq!(f.len_approx(&slots), 3);
        assert_eq!(f.pop(&slots), Some(2));
        assert_eq!(f.pop(&slots), Some(1));
        assert_eq!(f.pop(&slots), Some(0));
        assert_eq!(f.pop(&slots), None);
        assert!(f.is_empty());
    }

    #[test]
    fn push_pop_cycles() {
        let slots = arena(2);
        let f = FreeList::new();
        for i in 0..100 {
            f.push(&slots, (i % 2) as SlotIndex);
            assert_eq!(f.pop(&slots), Some((i % 2) as SlotIndex));
        }
        assert!(f.is_empty());
    }
}
