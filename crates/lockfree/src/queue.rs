//! The red–blue lock-free queue (paper §4.3).
//!
//! A classic lock-free FIFO in the Michael–Scott style, specialized to an
//! index-linked slot arena, with the paper's novel extension: a queue-wide
//! *color* flag encoded into every link and manipulated atomically as part
//! of the ordinary queue operations. This lets the staging queue and its
//! "who must flush" flag be updated with a **single CAS**, avoiding the
//! lock that a vanilla queue plus a separate flag would require.
//!
//! # Algorithm notes
//!
//! * The queue always contains one *dummy* slot; `head` points at it.
//!   Dequeue advances `head` to the first real element, copies its payload
//!   out, and hands the **old dummy slot** back to the caller (with the
//!   payload deposited into it), so slot counts are conserved without any
//!   deferred reclamation.
//! * Every pointer word (`head`, `tail`, and each slot link) carries a
//!   32-bit modification tag; a CAS only succeeds against the exact tagged
//!   value that was read, which makes the speculative reads inside the
//!   retry loops (possibly of already-recycled slots) harmless.
//! * Tail may lag at most one node behind the last element; both enqueue
//!   and dequeue help swing it, and — as in the original Michael–Scott
//!   algorithm — `head` is never advanced past the node `tail` points to,
//!   so `tail` always references an in-queue slot.
//! * The color invariant: all links in a queue carry the same color.
//!   Enqueue reads the color from the old tail's terminator link and
//!   propagates it into both the new terminator and the new connecting
//!   link; `set_color` succeeds only on an empty queue by CASing the
//!   dummy's NULL terminator.

use std::fmt;

use crate::link::{AtomicLink, Color, Link, SlotIndex, NULL_INDEX};
use crate::movreq::MovReq;
use crate::slot::Slot;

/// Error returned by [`ColorQueue::set_color`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetColorError {
    /// The queue was not empty; per §4.3 a color change "will only succeed
    /// on an empty queue". The paper's C interface signals this as `-1`.
    NotEmpty,
}

impl fmt::Display for SetColorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue not empty")
    }
}

impl std::error::Error for SetColorError {}

/// Result of a successful dequeue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dequeued {
    /// The slot now owned by the caller (the queue's old dummy, carrying a
    /// copy of the dequeued payload). Hand it to another queue or back to
    /// the free list.
    pub slot: SlotIndex,
    /// The dequeued request.
    pub req: MovReq,
    /// The queue color observed at the linearization point, extracted from
    /// the dequeued element's link as in the paper.
    pub color: Color,
}

/// A red–blue lock-free queue over an external slot arena.
///
/// All methods take the arena as a parameter so that several queues (and
/// the free list) can share one array of slots, mirroring the layout of
/// the paper's memory-mapped region. Indices passed to `enqueue` must be
/// exclusively owned by the caller (freshly allocated or just dequeued);
/// this is the interface's ownership protocol and is validated by the
/// kernel side of memif before use, not by this type.
#[derive(Debug)]
pub struct ColorQueue {
    head: AtomicLink,
    tail: AtomicLink,
}

impl ColorQueue {
    /// Creates a queue whose dummy is `dummy`, colored `color`.
    ///
    /// The caller must exclusively own `dummy` and never reuse it.
    ///
    /// # Panics
    ///
    /// Panics if `dummy` is out of bounds for `slots`.
    pub fn new(slots: &[Slot], dummy: SlotIndex, color: Color) -> Self {
        let old = slots[dummy as usize].link.load();
        slots[dummy as usize].link.store(Link {
            tag: old.tag.wrapping_add(1),
            color,
            index: NULL_INDEX,
        });
        ColorQueue {
            head: AtomicLink::new(Link {
                tag: 0,
                color: Color::Blue,
                index: dummy,
            }),
            tail: AtomicLink::new(Link {
                tag: 0,
                color: Color::Blue,
                index: dummy,
            }),
        }
    }

    /// Appends the slot `e` (owned by the caller, payload `req`) and
    /// returns the queue color observed at the linearization point.
    ///
    /// Lock-free: a CAS failure implies another operation succeeded.
    pub fn enqueue(&self, slots: &[Slot], e: SlotIndex, req: &MovReq) -> Color {
        let eslot = &slots[e as usize];
        eslot.write_payload(req);
        loop {
            let t = self.tail.load();
            let tslot = &slots[t.index as usize];
            let tlink = tslot.link.load();
            if tlink.index != NULL_INDEX {
                // Tail lags behind the last node: help swing it forward.
                let _ = self.tail.compare_exchange(
                    t,
                    Link {
                        tag: t.tag.wrapping_add(1),
                        color: Color::Blue,
                        index: tlink.index,
                    },
                );
                continue;
            }
            // Write our own terminator first, propagating the color that the
            // connecting CAS below will also carry.
            let own = eslot.link.load();
            eslot.link.store(Link {
                tag: own.tag.wrapping_add(1),
                color: tlink.color,
                index: NULL_INDEX,
            });
            if tslot
                .link
                .compare_exchange(tlink, tlink.successor(e))
                .is_ok()
            {
                let _ = self.tail.compare_exchange(
                    t,
                    Link {
                        tag: t.tag.wrapping_add(1),
                        color: Color::Blue,
                        index: e,
                    },
                );
                return tlink.color;
            }
        }
    }

    /// Removes the oldest element, or returns `None` if the queue is empty.
    ///
    /// See [`Dequeued`] for the slot-ownership hand-off.
    pub fn dequeue(&self, slots: &[Slot]) -> Option<Dequeued> {
        self.dequeue_if(slots, |_| true)
    }

    /// Removes the oldest element only if `pred` accepts its payload;
    /// returns `None` — leaving the queue untouched — when the queue is
    /// empty or the front element does not match.
    ///
    /// The predicate runs on the speculative payload copy taken *before*
    /// the head CAS (the same copy an unconditional dequeue would
    /// commit), so a mismatched front element is never disturbed. This
    /// is how batched issue peels only compatible requests off the
    /// submission queue without a peek/remove race.
    pub fn dequeue_if(
        &self,
        slots: &[Slot],
        mut pred: impl FnMut(&MovReq) -> bool,
    ) -> Option<Dequeued> {
        loop {
            let h = self.head.load();
            let hslot = &slots[h.index as usize];
            let hlink = hslot.link.load();
            if hlink.index == NULL_INDEX {
                // Confirm the head did not move while we read the link, so
                // the NULL we saw belongs to the live dummy and not to a
                // recycled slot.
                if self.head.load() == h {
                    return None;
                }
                continue;
            }
            let t = self.tail.load();
            if t.index == h.index {
                // Queue is non-empty but tail still points at the dummy:
                // help swing it before advancing head past it.
                let _ = self.tail.compare_exchange(
                    t,
                    Link {
                        tag: t.tag.wrapping_add(1),
                        color: Color::Blue,
                        index: hlink.index,
                    },
                );
                continue;
            }
            // Speculatively copy the payload before the head CAS: a
            // successful CAS proves the head (and hence the payload slot)
            // was undisturbed for the whole read.
            let req = slots[hlink.index as usize].read_payload();
            if !pred(&req) {
                // The speculative copy is only trustworthy if the head
                // held still while we read it; re-confirm before
                // reporting a mismatched front.
                if self.head.load() == h {
                    return None;
                }
                continue;
            }
            if self
                .head
                .compare_exchange(
                    h,
                    Link {
                        tag: h.tag.wrapping_add(1),
                        color: Color::Blue,
                        index: hlink.index,
                    },
                )
                .is_ok()
            {
                // We exclusively own the old dummy now; deposit the payload
                // so the caller receives a self-contained request slot.
                hslot.write_payload(&req);
                return Some(Dequeued {
                    slot: h.index,
                    req,
                    color: hlink.color,
                });
            }
        }
    }

    /// Attempts to change the queue color to `new`, which — as a rule —
    /// only succeeds on an empty queue (§4.3). Returns the old color.
    ///
    /// # Errors
    ///
    /// [`SetColorError::NotEmpty`] if the queue holds any element at the
    /// linearization point.
    pub fn set_color(&self, slots: &[Slot], new: Color) -> Result<Color, SetColorError> {
        loop {
            let h = self.head.load();
            let hslot = &slots[h.index as usize];
            let hlink = hslot.link.load();
            if hlink.index != NULL_INDEX {
                if self.head.load() == h {
                    return Err(SetColorError::NotEmpty);
                }
                continue;
            }
            if hslot
                .link
                .compare_exchange(hlink, Link::null(hlink.tag.wrapping_add(1), new))
                .is_ok()
            {
                return Ok(hlink.color);
            }
        }
    }

    /// The current queue color, read from the terminator reachable from
    /// the head. Monotonic-snapshot only: by the time the caller acts the
    /// color may have changed, which the submit protocol tolerates.
    pub fn color(&self, slots: &[Slot]) -> Color {
        loop {
            let h = self.head.load();
            let hlink = slots[h.index as usize].link.load();
            if self.head.load() == h {
                return hlink.color;
            }
        }
    }

    /// True if the queue held no element at some instant during the call.
    pub fn is_empty(&self, slots: &[Slot]) -> bool {
        loop {
            let h = self.head.load();
            let hlink = slots[h.index as usize].link.load();
            if self.head.load() == h {
                return hlink.index == NULL_INDEX;
            }
        }
    }

    /// Approximate number of elements, by traversal from the dummy.
    ///
    /// Only meaningful when the queue is quiescent (diagnostics/tests);
    /// under concurrency the value is a best-effort snapshot. The walk is
    /// bounded by the arena size, so a torn traversal cannot loop forever.
    pub fn len_approx(&self, slots: &[Slot]) -> usize {
        let mut n = 0;
        let mut idx = self.head.load().index;
        for _ in 0..slots.len() {
            let link = slots[idx as usize].link.load();
            if link.index == NULL_INDEX {
                break;
            }
            n += 1;
            idx = link.index;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movreq::MoveKind;

    fn arena(n: usize) -> Vec<Slot> {
        (0..n).map(|_| Slot::new()).collect()
    }

    fn req(id: u64) -> MovReq {
        MovReq {
            id,
            kind: MoveKind::Replicate,
            nr_pages: 1,
            page_shift: 12,
            ..MovReq::default()
        }
    }

    #[test]
    fn fifo_order() {
        let slots = arena(8);
        let q = ColorQueue::new(&slots, 0, Color::Blue);
        q.enqueue(&slots, 1, &req(10));
        q.enqueue(&slots, 2, &req(20));
        q.enqueue(&slots, 3, &req(30));
        assert_eq!(q.len_approx(&slots), 3);
        assert_eq!(q.dequeue(&slots).unwrap().req.id, 10);
        assert_eq!(q.dequeue(&slots).unwrap().req.id, 20);
        assert_eq!(q.dequeue(&slots).unwrap().req.id, 30);
        assert!(q.dequeue(&slots).is_none());
    }

    #[test]
    fn slot_conservation() {
        // Dequeue returns the *old dummy*; across an enqueue/dequeue pair
        // the set of owned slots stays the same size.
        let slots = arena(4);
        let q = ColorQueue::new(&slots, 0, Color::Blue);
        q.enqueue(&slots, 1, &req(1));
        let d = q.dequeue(&slots).unwrap();
        assert_eq!(d.slot, 0, "caller receives the old dummy");
        assert_eq!(d.req.id, 1, "payload copied into it");
        // Slot 1 is now the queue's dummy; re-enqueue the returned slot.
        q.enqueue(&slots, d.slot, &req(2));
        let d2 = q.dequeue(&slots).unwrap();
        assert_eq!(d2.slot, 1);
        assert_eq!(d2.req.id, 2);
    }

    #[test]
    fn color_propagates_through_enqueues() {
        let slots = arena(8);
        let q = ColorQueue::new(&slots, 0, Color::Red);
        assert_eq!(q.enqueue(&slots, 1, &req(1)), Color::Red);
        assert_eq!(q.enqueue(&slots, 2, &req(2)), Color::Red);
        let d = q.dequeue(&slots).unwrap();
        assert_eq!(d.color, Color::Red);
    }

    #[test]
    fn set_color_requires_empty() {
        let slots = arena(8);
        let q = ColorQueue::new(&slots, 0, Color::Blue);
        q.enqueue(&slots, 1, &req(1));
        assert_eq!(
            q.set_color(&slots, Color::Red),
            Err(SetColorError::NotEmpty)
        );
        q.dequeue(&slots).unwrap();
        assert_eq!(q.set_color(&slots, Color::Red), Ok(Color::Blue));
        assert_eq!(q.color(&slots), Color::Red);
        // Elements enqueued after the change carry the new color.
        assert_eq!(q.enqueue(&slots, 2, &req(2)), Color::Red);
    }

    #[test]
    fn set_color_is_idempotent_on_empty() {
        let slots = arena(2);
        let q = ColorQueue::new(&slots, 0, Color::Red);
        assert_eq!(q.set_color(&slots, Color::Red), Ok(Color::Red));
        assert_eq!(q.color(&slots), Color::Red);
    }

    #[test]
    fn empty_and_len() {
        let slots = arena(4);
        let q = ColorQueue::new(&slots, 0, Color::Blue);
        assert!(q.is_empty(&slots));
        assert_eq!(q.len_approx(&slots), 0);
        q.enqueue(&slots, 1, &req(1));
        assert!(!q.is_empty(&slots));
    }

    #[test]
    fn dequeue_if_leaves_mismatched_front_in_place() {
        let slots = arena(8);
        let q = ColorQueue::new(&slots, 0, Color::Blue);
        q.enqueue(&slots, 1, &req(10));
        q.enqueue(&slots, 2, &req(20));
        // Front is 10: a predicate wanting 20 must not disturb the queue.
        assert!(q.dequeue_if(&slots, |r| r.id == 20).is_none());
        assert_eq!(q.len_approx(&slots), 2);
        // A matching predicate dequeues normally, FIFO order intact.
        let d = q.dequeue_if(&slots, |r| r.id == 10).unwrap();
        assert_eq!(d.req.id, 10);
        assert_eq!(q.dequeue(&slots).unwrap().req.id, 20);
        // Empty queue: predicate is never called.
        assert!(q
            .dequeue_if(&slots, |_| panic!("must not run on empty"))
            .is_none());
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let slots = arena(16);
        let q = ColorQueue::new(&slots, 0, Color::Blue);
        let mut owned: Vec<SlotIndex> = (1..16).collect();
        let mut next_id = 0u64;
        let mut expect_front = 0u64;
        for round in 0..200 {
            if round % 3 != 2 {
                if let Some(slot) = owned.pop() {
                    q.enqueue(&slots, slot, &req(next_id));
                    next_id += 1;
                }
            } else if let Some(d) = q.dequeue(&slots) {
                assert_eq!(d.req.id, expect_front);
                expect_front += 1;
                owned.push(d.slot);
            }
        }
        while let Some(d) = q.dequeue(&slots) {
            assert_eq!(d.req.id, expect_front);
            expect_front += 1;
            owned.push(d.slot);
        }
        assert_eq!(expect_front, next_id);
        assert_eq!(owned.len(), 15);
    }
}
