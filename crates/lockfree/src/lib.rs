//! Lock-free user/kernel interface structures for memif.
//!
//! The memif paper (Lin & Liu, ASPLOS'16, §4.2–4.3) makes applications and
//! the kernel communicate through a set of *lock-free* data structures that
//! live in a shared, pinned memory region:
//!
//! * a **free list** of `mov_req` slots,
//! * a **staging queue** — a novel *red–blue* lock-free queue whose links
//!   carry a queue-wide color flag,
//! * a **submission queue**, and
//! * a **completion queue** (implemented as two: success and failure).
//!
//! This crate reproduces that design in safe Rust. Links are indices into a
//! slot arena, exactly as in the paper ("the only object references, the
//! link field in `mov_req`, are indices into the array of `mov_req`, which
//! will be validated by the memif driver before use"). On top of the paper's
//! 31-bit index + 1-bit color encoding we pack a 32-bit modification tag
//! into every link word so the structures are ABA-safe under real
//! preemptive threads, not just under a cooperative kernel.
//!
//! The central type is [`Region`], the shared-region analogue of the
//! memory-mapped area in Figure 3 of the paper. The queue algorithm and
//! its correctness argument are written up in
//! `docs/red-blue-queue.md` at the repository root. All queue operations are
//! wait-population-oblivious CAS loops: no operation ever blocks, takes a
//! lock, or spins on another thread's *progress* (only on its *interference*),
//! so a stalled application thread can never wedge the kernel side.
//!
//! # Example
//!
//! ```
//! use memif_lockfree::{Region, QueueId, Color, MovReq, MoveKind};
//!
//! let region = Region::new(8).unwrap();
//! let slot = region.alloc_slot().expect("free list non-empty");
//! let req = MovReq { id: 1, kind: MoveKind::Replicate, nr_pages: 4, ..MovReq::default() };
//!
//! // Submitting through the staging queue returns the queue color, which
//! // tells the caller whether *it* must flush the queue (BLUE) or whether
//! // an active kernel thread will (RED).
//! let color = region.enqueue(QueueId::Staging, slot, &req).unwrap();
//! assert_eq!(color, Color::Blue);
//!
//! let deq = region.dequeue(QueueId::Staging).unwrap().expect("one element");
//! assert_eq!(deq.req.id, 1);
//! region.free_slot(deq.slot).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod freelist;
mod link;
mod movreq;
mod queue;
mod region;
mod slot;

pub use freelist::FreeList;
pub use link::{Color, Link, SlotIndex, MAX_SLOTS, NULL_INDEX};
pub use movreq::{FailReason, MovReq, MoveKind, MoveStatus, PAYLOAD_WORDS};
pub use queue::{ColorQueue, Dequeued, SetColorError};
pub use region::{InflightIndex, QueueId, Region, RegionError, RegionStats};
pub use slot::Slot;
