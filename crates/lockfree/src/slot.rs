//! Slots of the shared region: one link word plus a request payload.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::link::{AtomicLink, Color, Link, NULL_INDEX};
use crate::movreq::{MovReq, PAYLOAD_WORDS};

/// One entry of the shared `mov_req` array (paper Figure 3).
///
/// The payload is stored as individual atomic words rather than an
/// `UnsafeCell<MovReq>`: the ownership protocol of the queues guarantees
/// that meaningful reads never race with writes (writes only happen to
/// slots outside any queue), but speculative readers inside a CAS retry
/// loop may observe a slot that has since been recycled. Making every
/// payload access atomic keeps those benign stale reads well-defined
/// without any `unsafe`, at the cost of eight relaxed loads per dequeue.
#[derive(Debug)]
pub struct Slot {
    pub(crate) link: AtomicLink,
    payload: [AtomicU64; PAYLOAD_WORDS],
}

impl Slot {
    /// A fresh slot with a NULL link.
    pub(crate) fn new() -> Self {
        Slot {
            link: AtomicLink::new(Link::null(0, Color::Blue)),
            payload: Default::default(),
        }
    }

    /// Writes `req` into the payload words.
    ///
    /// Must only be called while the caller exclusively owns the slot;
    /// publication happens-before readers via the subsequent link CAS.
    pub(crate) fn write_payload(&self, req: &MovReq) {
        for (cell, word) in self.payload.iter().zip(req.to_words()) {
            cell.store(word, Ordering::Relaxed);
        }
    }

    /// Reads the payload words back into a request.
    ///
    /// May legitimately return garbage when called speculatively on a slot
    /// that has been recycled; callers discard the value unless their
    /// subsequent head CAS succeeds.
    pub(crate) fn read_payload(&self) -> MovReq {
        let mut words = [0u64; PAYLOAD_WORDS];
        for (word, cell) in words.iter_mut().zip(&self.payload) {
            *word = cell.load(Ordering::Relaxed);
        }
        MovReq::from_words(&words)
    }

    /// Current link snapshot (for diagnostics and tests).
    #[must_use]
    pub fn link(&self) -> Link {
        self.link.load()
    }

    /// True if the slot currently terminates a list.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.link.load().index == NULL_INDEX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movreq::MoveKind;

    #[test]
    fn payload_roundtrip() {
        let slot = Slot::new();
        let req = MovReq {
            id: 7,
            kind: MoveKind::Migrate,
            src_base: 4096,
            nr_pages: 3,
            page_shift: 12,
            ..MovReq::default()
        };
        slot.write_payload(&req);
        assert_eq!(slot.read_payload(), req);
    }

    #[test]
    fn fresh_slot_is_terminal() {
        let slot = Slot::new();
        assert!(slot.is_terminal());
        assert_eq!(slot.link().color, Color::Blue);
    }
}
