//! The hardware-independent move request (`struct mov_req` in the paper).

/// Number of 64-bit words a [`MovReq`] occupies inside a slot.
pub const PAYLOAD_WORDS: usize = 8;

/// Type of memory move (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MoveKind {
    /// `memcpy()` semantics between two already-mapped virtual regions.
    /// Incurs the lowest OS cost: no virtual-memory management and
    /// indifference to CPU/DMA races.
    #[default]
    Replicate,
    /// NUMA-page-migration semantics: replace the backing pages of one
    /// virtual region with pages freshly allocated on the destination
    /// node, then fill them from the old pages.
    Migrate,
}

impl MoveKind {
    fn code(self) -> u64 {
        match self {
            MoveKind::Replicate => 0,
            MoveKind::Migrate => 1,
        }
    }

    fn from_code(code: u64) -> Self {
        if code == 1 {
            MoveKind::Migrate
        } else {
            MoveKind::Replicate
        }
    }
}

/// Why a request entered the [`MoveStatus::Failed`] terminal state.
///
/// Failures in this class originate in the *hardware path* — a DMA
/// transfer that timed out, errored mid-flight, or could never obtain
/// descriptors — after the driver exhausted its retry budget and the
/// CPU-copy fallback was disabled. They are distinct from validation
/// rejections ([`MoveStatus::Invalid`]) and race outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailReason {
    /// The per-request watchdog expired: no completion (and no error)
    /// arrived within the expected transfer time plus margin.
    Timeout,
    /// The DMA engine reported an error partway through the transfer.
    DmaError,
    /// The PaRAM descriptor pool stayed exhausted across every retry.
    Descriptors,
}

/// Completion status of a move request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MoveStatus {
    /// Not yet processed.
    #[default]
    Pending,
    /// Completed successfully.
    Done,
    /// A CPU/DMA race was detected during migration; under the default
    /// *proceed-and-fail* policy the application receives the equivalent
    /// of a SEGFAULT notification (§5.2).
    Raced,
    /// The migration was aborted and the original mapping restored
    /// (*proceed-and-recover* mode, §5.2).
    Aborted,
    /// The request was rejected: bad address range, unmapped pages,
    /// invalid destination node, or a slot-index validation failure.
    Invalid,
    /// The destination node ran out of free pages mid-request.
    OutOfMemory,
    /// The hardware path failed terminally: retries were exhausted and
    /// no CPU-copy fallback absorbed the request. The original mapping
    /// has been restored (migrations roll back like an abort).
    Failed(FailReason),
}

impl MoveStatus {
    fn code(self) -> u64 {
        match self {
            MoveStatus::Pending => 0,
            MoveStatus::Done => 1,
            MoveStatus::Raced => 2,
            MoveStatus::Aborted => 3,
            MoveStatus::Invalid => 4,
            MoveStatus::OutOfMemory => 5,
            MoveStatus::Failed(FailReason::Timeout) => 6,
            MoveStatus::Failed(FailReason::DmaError) => 7,
            MoveStatus::Failed(FailReason::Descriptors) => 8,
        }
    }

    fn from_code(code: u64) -> Self {
        match code {
            1 => MoveStatus::Done,
            2 => MoveStatus::Raced,
            3 => MoveStatus::Aborted,
            4 => MoveStatus::Invalid,
            5 => MoveStatus::OutOfMemory,
            6 => MoveStatus::Failed(FailReason::Timeout),
            7 => MoveStatus::Failed(FailReason::DmaError),
            8 => MoveStatus::Failed(FailReason::Descriptors),
            _ => MoveStatus::Pending,
        }
    }

    /// True for every terminal state other than [`MoveStatus::Done`].
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            MoveStatus::Raced
                | MoveStatus::Aborted
                | MoveStatus::Invalid
                | MoveStatus::OutOfMemory
                | MoveStatus::Failed(_)
        )
    }

    /// True for any terminal state (the request will never change again).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self != MoveStatus::Pending
    }
}

/// A hardware-independent move request, the unit of work submitted to
/// memif (paper Figure 3b).
///
/// The request specifies a virtual memory region consisting of
/// `nr_pages` pages of `page_shift` size starting at `src_base`. For a
/// [`MoveKind::Replicate`] the destination region starts at `dst_base`;
/// for a [`MoveKind::Migrate`] the new backing pages are allocated on
/// `dst_node`.
///
/// Unlike the C prototype — where the application holds a pointer into
/// the shared area for the request's whole lifetime — requests here are
/// plain values copied through the queues. Completions are correlated by
/// `id` (assigned at allocation) or the opaque `user_data` cookie; this is
/// the same correlation model used by production async interfaces such as
/// io_uring and is a documented deviation from the paper's pointer-stable
/// slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MovReq {
    /// Request identifier, unique per memif instance.
    pub id: u64,
    /// Replication or migration.
    pub kind: MoveKind,
    /// Base *virtual* address of the source region (page aligned).
    pub src_base: u64,
    /// Base *virtual* address of the destination region (replication only).
    pub dst_base: u64,
    /// Number of pages covered by the request.
    pub nr_pages: u32,
    /// log2 of the page size in bytes (12 = 4 KiB, 16 = 64 KiB, 21 = 2 MiB).
    pub page_shift: u8,
    /// Destination memory node (migration only).
    pub dst_node: u16,
    /// Completion status, written by the driver before notification.
    pub status: MoveStatus,
    /// Opaque cookie echoed back in the completion.
    pub user_data: u64,
}

impl MovReq {
    /// Total bytes covered by the request.
    ///
    /// # Examples
    ///
    /// ```
    /// use memif_lockfree::MovReq;
    /// let req = MovReq { nr_pages: 16, page_shift: 12, ..MovReq::default() };
    /// assert_eq!(req.len_bytes(), 16 * 4096);
    /// ```
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        u64::from(self.nr_pages) << self.page_shift
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_shift
    }

    /// Serializes the request into slot payload words.
    #[must_use]
    pub fn to_words(&self) -> [u64; PAYLOAD_WORDS] {
        [
            self.id,
            self.kind.code(),
            self.src_base,
            self.dst_base,
            (u64::from(self.nr_pages) << 32)
                | (u64::from(self.page_shift) << 16)
                | u64::from(self.dst_node),
            self.status.code(),
            self.user_data,
            0,
        ]
    }

    /// Deserializes a request from slot payload words.
    #[must_use]
    pub fn from_words(words: &[u64; PAYLOAD_WORDS]) -> Self {
        MovReq {
            id: words[0],
            kind: MoveKind::from_code(words[1]),
            src_base: words[2],
            dst_base: words[3],
            nr_pages: (words[4] >> 32) as u32,
            page_shift: ((words[4] >> 16) & 0xFF) as u8,
            dst_node: (words[4] & 0xFFFF) as u16,
            status: MoveStatus::from_code(words[5]),
            user_data: words[6],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let req = MovReq {
            id: 0xDEAD_BEEF,
            kind: MoveKind::Migrate,
            src_base: 0x4000_0000,
            dst_base: 0x8000_0000,
            nr_pages: 1234,
            page_shift: 21,
            dst_node: 3,
            status: MoveStatus::Raced,
            user_data: u64::MAX,
        };
        assert_eq!(MovReq::from_words(&req.to_words()), req);
    }

    #[test]
    fn default_roundtrip() {
        let req = MovReq::default();
        assert_eq!(MovReq::from_words(&req.to_words()), req);
        assert_eq!(req.kind, MoveKind::Replicate);
        assert_eq!(req.status, MoveStatus::Pending);
    }

    #[test]
    fn len_bytes_page_sizes() {
        let small = MovReq {
            nr_pages: 16,
            page_shift: 12,
            ..MovReq::default()
        };
        let medium = MovReq {
            nr_pages: 16,
            page_shift: 16,
            ..MovReq::default()
        };
        let large = MovReq {
            nr_pages: 16,
            page_shift: 21,
            ..MovReq::default()
        };
        assert_eq!(small.len_bytes(), 65_536);
        assert_eq!(medium.len_bytes(), 1_048_576);
        assert_eq!(large.len_bytes(), 33_554_432);
        assert_eq!(large.page_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn status_failure_classes() {
        assert!(!MoveStatus::Pending.is_failure());
        assert!(!MoveStatus::Done.is_failure());
        assert!(MoveStatus::Raced.is_failure());
        assert!(MoveStatus::Aborted.is_failure());
        assert!(MoveStatus::Invalid.is_failure());
        assert!(MoveStatus::OutOfMemory.is_failure());
        assert!(MoveStatus::Failed(FailReason::Timeout).is_failure());
        assert!(MoveStatus::Failed(FailReason::DmaError).is_failure());
        assert!(MoveStatus::Failed(FailReason::Descriptors).is_failure());
        assert!(!MoveStatus::Pending.is_terminal());
        assert!(MoveStatus::Done.is_terminal());
        assert!(MoveStatus::Failed(FailReason::Timeout).is_terminal());
    }

    #[test]
    fn failed_status_roundtrips_through_words() {
        for reason in [
            FailReason::Timeout,
            FailReason::DmaError,
            FailReason::Descriptors,
        ] {
            let req = MovReq {
                id: 7,
                status: MoveStatus::Failed(reason),
                ..MovReq::default()
            };
            assert_eq!(MovReq::from_words(&req.to_words()), req);
        }
    }

    #[test]
    fn unknown_codes_decode_conservatively() {
        assert_eq!(MoveKind::from_code(99), MoveKind::Replicate);
        assert_eq!(MoveStatus::from_code(99), MoveStatus::Pending);
    }
}
