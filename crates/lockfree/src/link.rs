//! Packed link words.
//!
//! Every slot in the shared region carries one 64-bit atomic *link* word,
//! the `link` field of `mov_req` in the paper (Figure 3b). The paper packs
//! a 1-bit queue color next to a slot index; we additionally reserve the
//! upper 32 bits for a per-link modification tag that defeats ABA:
//!
//! ```text
//!  63            32 31      31 30                0
//! +----------------+----------+------------------+
//! |   tag (32 b)   | color(1) |   index (31 b)   |
//! +----------------+----------+------------------+
//! ```
//!
//! The index `0x7FFF_FFFF` is the NULL sentinel (end of list / empty).
//! Every mutation of a link word increments its tag, so a compare-and-swap
//! that expects a stale value fails even if the (index, color) pair has
//! cycled back — the exact hazard that arises once slots are recycled
//! through the free list by preemptible user threads.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Index of a slot inside a [`Region`](crate::Region)'s arena.
pub type SlotIndex = u32;

/// The NULL link index: end-of-list / empty-queue sentinel.
pub const NULL_INDEX: SlotIndex = 0x7FFF_FFFF;

/// Maximum number of slots a region may hold (31-bit index space minus NULL).
pub const MAX_SLOTS: usize = NULL_INDEX as usize;

const INDEX_BITS: u64 = 0x7FFF_FFFF;
const COLOR_BIT: u64 = 1 << 31;
const TAG_SHIFT: u32 = 32;

/// The queue-wide flag carried by every link of a red–blue queue (§4.3).
///
/// The color of the *staging* queue encodes flushing responsibility:
/// `Blue` means the application must flush queued requests to the
/// submission queue (and kick the kernel with `MOV_ONE`); `Red` means an
/// active kernel thread will drain the queue, so submitters may return
/// immediately after enqueueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Color {
    /// The application is responsible for flushing the queue.
    #[default]
    Blue,
    /// The kernel worker is active and will flush the queue.
    Red,
}

impl Color {
    fn from_bit(bit: bool) -> Self {
        if bit {
            Color::Red
        } else {
            Color::Blue
        }
    }

    fn bit(self) -> bool {
        matches!(self, Color::Red)
    }

    /// The opposite color.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Color::Blue => Color::Red,
            Color::Red => Color::Blue,
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Color::Blue => f.write_str("blue"),
            Color::Red => f.write_str("red"),
        }
    }
}

/// An unpacked snapshot of a link word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Per-link modification counter (wraps at 2^32; see module docs).
    pub tag: u32,
    /// The color bit entangled with this link (§4.3).
    pub color: Color,
    /// Successor slot index, or [`NULL_INDEX`].
    pub index: SlotIndex,
}

impl Link {
    /// A NULL link (end of list) carrying `color` and `tag`.
    #[must_use]
    pub fn null(tag: u32, color: Color) -> Self {
        Link {
            tag,
            color,
            index: NULL_INDEX,
        }
    }

    /// True if this link terminates a list.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.index == NULL_INDEX
    }

    /// The link that follows `self` after one mutation: same fields but
    /// with the tag advanced. Callers override `index`/`color` as needed.
    #[must_use]
    pub fn bumped(self) -> Self {
        Link {
            tag: self.tag.wrapping_add(1),
            ..self
        }
    }

    /// Successor with the color propagated, as performed by `enqueue`
    /// ("it then propagates the color to the new tail's next link").
    #[must_use]
    pub fn successor(self, index: SlotIndex) -> Self {
        Link {
            tag: self.tag.wrapping_add(1),
            color: self.color,
            index,
        }
    }

    fn pack(self) -> u64 {
        debug_assert!(u64::from(self.index) <= INDEX_BITS);
        (u64::from(self.tag) << TAG_SHIFT)
            | (if self.color.bit() { COLOR_BIT } else { 0 })
            | u64::from(self.index)
    }

    fn unpack(word: u64) -> Self {
        Link {
            tag: (word >> TAG_SHIFT) as u32,
            color: Color::from_bit(word & COLOR_BIT != 0),
            index: (word & INDEX_BITS) as SlotIndex,
        }
    }
}

/// A 64-bit atomic link word.
#[derive(Debug)]
pub struct AtomicLink(AtomicU64);

impl AtomicLink {
    /// Creates a link word holding `link`.
    pub fn new(link: Link) -> Self {
        AtomicLink(AtomicU64::new(link.pack()))
    }

    /// Atomically loads the link.
    pub fn load(&self) -> Link {
        Link::unpack(self.0.load(Ordering::Acquire))
    }

    /// Atomically stores `link`.
    ///
    /// Only valid while the caller exclusively owns the slot (freshly
    /// allocated or just dequeued); concurrent readers may still observe
    /// the old value, which the tag discipline renders harmless.
    pub fn store(&self, link: Link) {
        self.0.store(link.pack(), Ordering::Release);
    }

    /// Single compare-and-swap of the whole link word — the primitive that
    /// lets a queue operation and the color access happen atomically
    /// together (§4.3: "performing a queue operation (i.e., link update)
    /// and setting/getting color with a single CAS").
    ///
    /// Returns `Ok(())` on success and the observed value on failure.
    pub fn compare_exchange(&self, current: Link, new: Link) -> Result<(), Link> {
        self.0
            .compare_exchange(
                current.pack(),
                new.pack(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
            .map_err(Link::unpack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for &tag in &[0u32, 1, 7, u32::MAX] {
            for &color in &[Color::Blue, Color::Red] {
                for &index in &[0 as SlotIndex, 5, 1 << 20, NULL_INDEX] {
                    let l = Link { tag, color, index };
                    assert_eq!(Link::unpack(l.pack()), l);
                }
            }
        }
    }

    #[test]
    fn null_and_bump() {
        let l = Link::null(3, Color::Red);
        assert!(l.is_null());
        assert_eq!(l.bumped().tag, 4);
        assert_eq!(l.bumped().color, Color::Red);
        let s = l.successor(42);
        assert_eq!(s.index, 42);
        assert_eq!(s.color, Color::Red);
        assert_eq!(s.tag, 4);
    }

    #[test]
    fn tag_wraps() {
        let l = Link {
            tag: u32::MAX,
            color: Color::Blue,
            index: 1,
        };
        assert_eq!(l.bumped().tag, 0);
    }

    #[test]
    fn color_flips_and_displays() {
        assert_eq!(Color::Blue.flipped(), Color::Red);
        assert_eq!(Color::Red.flipped(), Color::Blue);
        assert_eq!(Color::Blue.to_string(), "blue");
        assert_eq!(Color::Red.to_string(), "red");
        assert_eq!(Color::default(), Color::Blue);
    }

    #[test]
    fn atomic_cas_detects_stale_tag() {
        let a = AtomicLink::new(Link::null(0, Color::Blue));
        let stale = a.load();
        a.store(stale.bumped());
        let err = a
            .compare_exchange(stale, stale.successor(9))
            .expect_err("stale CAS must fail");
        assert_eq!(err.tag, 1);
    }

    #[test]
    fn atomic_cas_succeeds_when_fresh() {
        let a = AtomicLink::new(Link::null(0, Color::Blue));
        let cur = a.load();
        a.compare_exchange(cur, cur.successor(7)).unwrap();
        assert_eq!(a.load().index, 7);
    }
}
