//! Property-based tests for the memory-management substrate: the buddy
//! allocator and the page table are checked against trivially-correct
//! reference models under random operation sequences.

use std::collections::{BTreeMap, HashMap};

use memif_hwsim::{NodeId, PhysAddr, Topology};
use memif_mm::{FrameAllocator, PageSize, PageTable, Pte, VirtAddr};
use proptest::prelude::*;

fn booted() -> Topology {
    let mut t = Topology::keystone_ii();
    t.complete_boot();
    t
}

fn size_strategy() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        Just(PageSize::Small4K),
        Just(PageSize::Medium64K),
        Just(PageSize::Large2M),
    ]
}

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(PageSize),
    FreeNth(usize),
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        size_strategy().prop_map(AllocOp::Alloc),
        (0usize..64).prop_map(AllocOp::FreeNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The buddy allocator never double-allocates, never leaks, returns
    /// naturally aligned blocks inside the node's range, and conserves
    /// free bytes exactly.
    #[test]
    fn buddy_allocator_invariants(ops in proptest::collection::vec(alloc_op(), 1..120)) {
        let topo = booted();
        let mut alloc = FrameAllocator::new(&topo);
        let node = NodeId(1); // 6 MiB SRAM: small enough to exhaust
        let total = alloc.free_bytes(node);
        let mut live: Vec<(PhysAddr, PageSize)> = Vec::new();
        let mut live_bytes = 0u64;

        for op in ops {
            match op {
                AllocOp::Alloc(size) => {
                    match alloc.alloc(node, size) {
                        Ok(addr) => {
                            // Natural alignment and containment.
                            prop_assert_eq!(addr.as_u64() % size.bytes(), 0);
                            let bank = topo.node(node).unwrap();
                            prop_assert!(bank.contains(addr));
                            prop_assert!(bank.contains(addr.offset(size.bytes() - 1)));
                            // No overlap with any live block.
                            for (other, osize) in &live {
                                let disjoint = addr.as_u64() + size.bytes()
                                    <= other.as_u64()
                                    || other.as_u64() + osize.bytes() <= addr.as_u64();
                                prop_assert!(disjoint, "overlap: {addr} vs {other}");
                            }
                            live.push((addr, size));
                            live_bytes += size.bytes();
                        }
                        Err(_) => {
                            // Exhaustion is only legal if a max-order
                            // block genuinely cannot fit.
                            prop_assert!(
                                alloc.free_bytes(node) < total,
                                "spurious OOM with an empty node"
                            );
                        }
                    }
                }
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (addr, size) = live.remove(i % live.len());
                        alloc.free(addr).unwrap();
                        live_bytes -= size.bytes();
                    }
                }
            }
            prop_assert_eq!(alloc.free_bytes(node), total - live_bytes);
            prop_assert_eq!(alloc.live_frames(), live.len());
        }

        // Drain and confirm full restoration (coalescing works).
        for (addr, _) in live {
            alloc.free(addr).unwrap();
        }
        prop_assert_eq!(alloc.free_bytes(node), total);
        let mut blocks = 0;
        while alloc.alloc(node, PageSize::Large2M).is_ok() {
            blocks += 1;
        }
        prop_assert_eq!(blocks, 3, "6 MiB coalesces back into 3 x 2 MiB");
    }
}

#[derive(Debug, Clone)]
enum TableOp {
    Map(u8, PageSize, u32),
    Unmap(u8),
    Replace(u8, u32),
    Cas(u8, u32),
}

fn table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        (any::<u8>(), size_strategy(), 0u32..1024).prop_map(|(s, z, f)| TableOp::Map(s, z, f)),
        any::<u8>().prop_map(TableOp::Unmap),
        (any::<u8>(), 0u32..1024).prop_map(|(s, f)| TableOp::Replace(s, f)),
        (any::<u8>(), 0u32..1024).prop_map(|(s, f)| TableOp::Cas(s, f)),
    ]
}

/// Slot index → (vaddr, size). Slots are spread 2 MiB apart so any page
/// size fits without overlap; sizes are fixed per slot by the first map.
fn slot_vaddr(slot: u8) -> VirtAddr {
    VirtAddr::new(0x8000_0000 + u64::from(slot) * (2 << 20))
}

fn frame_addr(f: u32, size: PageSize) -> PhysAddr {
    PhysAddr::new(0x8_0000_0000 + u64::from(f) * size.bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The page table agrees with a map-based reference model under
    /// random map/unmap/replace/CAS sequences, and `mapped_entries`
    /// stays exact.
    #[test]
    fn page_table_matches_model(ops in proptest::collection::vec(table_op(), 1..150)) {
        let mut table = PageTable::new();
        let mut model: BTreeMap<u8, Pte> = BTreeMap::new();
        let mut sizes: HashMap<u8, PageSize> = HashMap::new();

        for op in ops {
            match op {
                TableOp::Map(slot, size, frame) => {
                    let size = *sizes.entry(slot).or_insert(size);
                    let pte = Pte::mapping(frame_addr(frame, size), size);
                    table.map(slot_vaddr(slot), pte).unwrap();
                    model.insert(slot, pte);
                }
                TableOp::Unmap(slot) => {
                    let Some(&size) = sizes.get(&slot) else { continue };
                    let got = table.unmap(slot_vaddr(slot), size);
                    prop_assert_eq!(got, model.remove(&slot));
                }
                TableOp::Replace(slot, frame) => {
                    let Some(&size) = sizes.get(&slot) else { continue };
                    let pte = Pte::mapping(frame_addr(frame, size), size);
                    let old = table.replace(slot_vaddr(slot), pte).unwrap();
                    prop_assert_eq!(old, model.insert(slot, pte).unwrap_or(Pte::EMPTY));
                }
                TableOp::Cas(slot, frame) => {
                    let Some(&size) = sizes.get(&slot) else { continue };
                    let current = model.get(&slot).copied().unwrap_or(Pte::EMPTY);
                    let new = Pte::mapping(frame_addr(frame, size), size).with_young(false);
                    // Expected-correct CAS must succeed...
                    table.compare_exchange(slot_vaddr(slot), current, new).unwrap();
                    model.insert(slot, new);
                    // ...and a stale CAS must fail and report the truth.
                    if current != new {
                        let err = table
                            .compare_exchange(slot_vaddr(slot), current, new)
                            .unwrap_err();
                        prop_assert_eq!(err, new);
                    }
                }
            }
            // Model agreement on every slot ever touched.
            for (&slot, &size) in &sizes {
                let got = table.peek(slot_vaddr(slot), size);
                prop_assert_eq!(got, model.get(&slot).copied());
            }
            prop_assert_eq!(table.mapped_entries(), model.len());
        }
    }

    /// Gang lookup returns exactly the same entries as per-page lookup;
    /// only the walk statistics differ, and they account every page.
    #[test]
    fn gang_and_per_page_agree(present in proptest::collection::vec(any::<bool>(), 1..64)) {
        let mut table = PageTable::new();
        let base = VirtAddr::new(0x10_0000);
        for (i, p) in present.iter().enumerate() {
            if *p {
                let frame = PhysAddr::new(0x8_0000_0000 + i as u64 * 4096);
                table.map(base.offset(i as u64 * 4096), Pte::mapping(frame, PageSize::Small4K)).unwrap();
            }
        }
        let n = present.len() as u32;
        let (gang, gs) = table.lookup_range(base, n, PageSize::Small4K, true);
        let (per, ps) = table.lookup_range(base, n, PageSize::Small4K, false);
        prop_assert_eq!(&gang, &per);
        prop_assert_eq!(gs.vertical + gs.horizontal, n, "every page walked");
        prop_assert_eq!(ps.vertical, n, "per-page is all vertical");
        prop_assert!(gs.vertical <= ps.vertical);
        for (i, p) in present.iter().enumerate() {
            prop_assert_eq!(gang[i].is_some(), *p);
        }
    }
}
