//! NUMA allocation policies and demand paging.

use memif_hwsim::{NodeId, PhysMem, Topology};
use memif_mm::{
    AccessKind, AddressSpace, AllocPolicy, Fault, FrameAllocator, PageSize, Populate, VirtAddr,
};

fn setup() -> (AddressSpace, FrameAllocator, Topology) {
    let mut topo = Topology::keystone_ii();
    topo.complete_boot();
    let alloc = FrameAllocator::new(&topo);
    (AddressSpace::new(), alloc, topo)
}

fn node_of(topo: &Topology, space: &AddressSpace, va: VirtAddr) -> NodeId {
    topo.node_of_addr(space.translate(va).unwrap()).unwrap()
}

#[test]
fn interleave_round_robins_pages() {
    let (mut space, mut alloc, topo) = setup();
    let policy = AllocPolicy::Interleave(vec![NodeId(0), NodeId(1)]);
    let va = space
        .mmap_with(&mut alloc, 8, PageSize::Small4K, policy, Populate::Eager)
        .unwrap();
    for i in 0..8u64 {
        let expect = NodeId((i % 2) as u16);
        assert_eq!(
            node_of(&topo, &space, va.offset(i * 4096)),
            expect,
            "page {i}"
        );
    }
}

#[test]
fn interleave_falls_back_within_the_set() {
    let (mut space, mut alloc, topo) = setup();
    // Exhaust the 6 MiB fast node first.
    let hog = space
        .mmap_anonymous(&mut alloc, 1_536, PageSize::Small4K, NodeId(1))
        .unwrap();
    let _ = hog;
    let policy = AllocPolicy::Interleave(vec![NodeId(1), NodeId(0)]);
    let va = space
        .mmap_with(&mut alloc, 4, PageSize::Small4K, policy, Populate::Eager)
        .unwrap();
    for i in 0..4u64 {
        assert_eq!(
            node_of(&topo, &space, va.offset(i * 4096)),
            NodeId(0),
            "fallback to DDR"
        );
    }
}

#[test]
fn preferred_falls_back_bind_does_not() {
    let (mut space, mut alloc, topo) = setup();
    let hog = space
        .mmap_anonymous(&mut alloc, 1_536, PageSize::Small4K, NodeId(1))
        .unwrap();
    let _ = hog;
    // Bind to the full node fails...
    assert!(space
        .mmap_with(
            &mut alloc,
            1,
            PageSize::Small4K,
            AllocPolicy::Bind(NodeId(1)),
            Populate::Eager
        )
        .is_err());
    // ...Preferred succeeds on the other node.
    let va = space
        .mmap_with(
            &mut alloc,
            1,
            PageSize::Small4K,
            AllocPolicy::Preferred(NodeId(1)),
            Populate::Eager,
        )
        .unwrap();
    assert_eq!(node_of(&topo, &space, va), NodeId(0));
}

#[test]
fn lazy_mapping_populates_on_touch() {
    let (mut space, mut alloc, topo) = setup();
    let live_before = alloc.live_frames();
    let va = space
        .mmap_with(
            &mut alloc,
            8,
            PageSize::Small4K,
            AllocPolicy::Bind(NodeId(0)),
            Populate::Lazy,
        )
        .unwrap();
    assert_eq!(alloc.live_frames(), live_before, "no backing yet");
    assert!(space.translate(va).is_none());

    // First touch faults; handling it installs the page; retry works.
    let fault = space.access(va, AccessKind::Write).unwrap_err();
    assert_eq!(fault, Fault::DemandPage(va));
    space.handle_demand_fault(&mut alloc, va).unwrap();
    assert!(space.access(va, AccessKind::Write).is_ok());
    assert_eq!(
        alloc.live_frames(),
        live_before + 1,
        "exactly the touched page"
    );
    assert_eq!(node_of(&topo, &space, va), NodeId(0));

    // Untouched pages stay unbacked.
    assert!(space.translate(va.offset(4 * 4096)).is_none());
}

#[test]
fn lazy_interleave_places_by_page_index() {
    let (mut space, mut alloc, topo) = setup();
    let policy = AllocPolicy::Interleave(vec![NodeId(0), NodeId(1)]);
    let va = space
        .mmap_with(&mut alloc, 4, PageSize::Small4K, policy, Populate::Lazy)
        .unwrap();
    // Touch pages out of order; placement still follows the index.
    for &i in &[3u64, 0, 2, 1] {
        let page = va.offset(i * 4096);
        space.handle_demand_fault(&mut alloc, page).unwrap();
        assert_eq!(
            node_of(&topo, &space, page),
            NodeId((i % 2) as u16),
            "page {i}"
        );
    }
}

#[test]
fn demand_fault_outside_any_region_errors() {
    let (mut space, mut alloc, _) = setup();
    assert!(space
        .handle_demand_fault(&mut alloc, VirtAddr::new(0x1234_0000))
        .is_err());
}

#[test]
fn byte_io_through_lazy_region() {
    let (mut space, mut alloc, _) = setup();
    let mut phys = PhysMem::new();
    let va = space
        .mmap_with(
            &mut alloc,
            4,
            PageSize::Small4K,
            AllocPolicy::Bind(NodeId(0)),
            Populate::Lazy,
        )
        .unwrap();
    // Kernel-style loop: fault, resolve, retry.
    let data = vec![7u8; 3 * 4096];
    let mut wrote = false;
    for _ in 0..8 {
        match space.write_bytes(&mut phys, va, &data) {
            Ok(()) => {
                wrote = true;
                break;
            }
            Err(Fault::DemandPage(p)) => space.handle_demand_fault(&mut alloc, p).unwrap(),
            Err(other) => panic!("unexpected fault {other}"),
        }
    }
    assert!(wrote);
    let mut back = vec![0u8; data.len()];
    loop {
        match space.read_bytes(&phys, va, &mut back) {
            Ok(()) => break,
            Err(Fault::DemandPage(p)) => space.handle_demand_fault(&mut alloc, p).unwrap(),
            Err(other) => panic!("unexpected fault {other}"),
        }
    }
    assert_eq!(back, data);
}
