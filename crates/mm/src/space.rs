//! Address spaces: VMAs, demand access, and fault semantics.
//!
//! An [`AddressSpace`] owns a page table, a VMA list, and a TLB. The
//! experiments only move *anonymous* memory (the prototype's own
//! limitation, §6.7: "it can only move anonymous pages but not pages
//! backed by files"), so regions are anonymous and eagerly populated.
//!
//! CPU accesses go through [`AddressSpace::access`], which realizes the
//! reference semantics the race-detection design builds on (§5.2): a
//! reference *clears* the young bit of the entry — so memif's Release,
//! which CASes a semi-final young-set entry to its young-cleared final
//! form, fails exactly when the application touched the page mid-flight.
//! Accesses also honor Linux migration entries (they block: the
//! baseline's race prevention) and the write-watch bit used by
//! proceed-and-recover mode.

use std::collections::BTreeMap;

use memif_hwsim::{NodeId, PhysAddr, PhysMem};

use crate::addr::{PageSize, VirtAddr};
use crate::alloc::{AllocError, FrameAllocator};
use crate::pagetable::{PageTable, WalkStats};
use crate::pte::Pte;
use crate::tlb::Tlb;

/// Where a region's backing pages come from — the `mbind`-style NUMA
/// allocation policies of the pseudo-NUMA abstraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Allocate strictly on one node; fail when it is full.
    Bind(NodeId),
    /// Try one node first, fall back to the others.
    Preferred(NodeId),
    /// Round-robin pages across a node set (page *i* starts at
    /// `nodes[i % len]`), falling back within the set.
    Interleave(Vec<NodeId>),
}

impl AllocPolicy {
    /// Nodes to try for page `index`, in order.
    fn candidates(&self, index: u32) -> Vec<NodeId> {
        match self {
            AllocPolicy::Bind(n) => vec![*n],
            AllocPolicy::Preferred(n) => vec![*n],
            AllocPolicy::Interleave(nodes) => {
                let k = index as usize % nodes.len();
                nodes[k..].iter().chain(&nodes[..k]).copied().collect()
            }
        }
    }

    /// Whether exhaustion of the candidates may fall back to any node.
    fn strict(&self) -> bool {
        matches!(self, AllocPolicy::Bind(_))
    }

    /// The policy's primary node (the VMA's "home").
    #[must_use]
    pub fn home(&self) -> NodeId {
        match self {
            AllocPolicy::Bind(n) | AllocPolicy::Preferred(n) => *n,
            AllocPolicy::Interleave(nodes) => nodes[0],
        }
    }
}

/// Whether a mapping is backed at `mmap` time or on first touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Populate {
    /// Allocate and map every page up front.
    #[default]
    Eager,
    /// Leave pages unmapped; a touch demand-allocates per the policy.
    Lazy,
}

/// One virtual memory area of uniform page size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// First address.
    pub start: VirtAddr,
    /// Pages in the region.
    pub pages: u32,
    /// Page granularity.
    pub page_size: PageSize,
    /// Home node (the allocation policy's primary node).
    pub node: NodeId,
    /// The allocation policy backing this region.
    pub policy: AllocPolicy,
}

impl Vma {
    /// One past the last byte.
    #[must_use]
    pub fn end(&self) -> VirtAddr {
        self.start.offset(self.len_bytes())
    }

    /// Region length in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        u64::from(self.pages) * self.page_size.bytes()
    }

    /// True if `vaddr` lies inside the region.
    #[must_use]
    pub fn contains(&self, vaddr: VirtAddr) -> bool {
        vaddr >= self.start && vaddr < self.end()
    }

    /// True if the byte range `[start, start+len)` lies inside.
    #[must_use]
    pub fn covers(&self, start: VirtAddr, len: u64) -> bool {
        start >= self.start && start.offset(len) <= self.end()
    }
}

/// CPU access type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Page-fault outcomes of [`AddressSpace::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No mapping covers the address.
    Unmapped(VirtAddr),
    /// A lazily-populated page was touched for the first time; the
    /// kernel resolves it with
    /// [`AddressSpace::handle_demand_fault`] and the access retries.
    DemandPage(VirtAddr),
    /// A Linux migration entry blocks the access until migration
    /// completes (baseline race prevention, §5.2 / Figure 4a).
    BlockedByMigration(VirtAddr),
    /// The entry is write-watched: the write traps so a custom handler
    /// can abort an in-flight memif migration (proceed-and-recover).
    WriteProtected(VirtAddr),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Unmapped(va) => write!(f, "unmapped access at {va}"),
            Fault::DemandPage(va) => write!(f, "demand fault at {va}"),
            Fault::BlockedByMigration(va) => write!(f, "access blocked by migration entry at {va}"),
            Fault::WriteProtected(va) => write!(f, "write to watched page at {va}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Errors from region management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmError {
    /// Physical allocation failed.
    Alloc(AllocError),
    /// The address is not the start of a mapped region.
    NoSuchRegion(VirtAddr),
    /// Zero pages requested.
    EmptyRegion,
}

impl From<AllocError> for MmError {
    fn from(e: AllocError) -> Self {
        MmError::Alloc(e)
    }
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Alloc(e) => write!(f, "allocation failed: {e}"),
            MmError::NoSuchRegion(va) => write!(f, "no region starts at {va}"),
            MmError::EmptyRegion => f.write_str("empty region"),
        }
    }
}

impl std::error::Error for MmError {}

/// An application's virtual address space.
///
/// # Examples
///
/// ```
/// use memif_hwsim::{NodeId, Topology};
/// use memif_mm::{AccessKind, AddressSpace, FrameAllocator, PageSize};
///
/// let mut topo = Topology::keystone_ii();
/// topo.complete_boot();
/// let mut alloc = FrameAllocator::new(&topo);
/// let mut space = AddressSpace::new();
///
/// let va = space.mmap_anonymous(&mut alloc, 4, PageSize::Small4K, NodeId(0)).unwrap();
/// let pa = space.access(va, AccessKind::Write).unwrap();
/// assert_eq!(topo.node_of_addr(pa), Some(NodeId(0)));
/// // The access cleared the young bit — the hook memif's race
/// // detection builds on (§5.2).
/// assert!(!space.table().peek(va, PageSize::Small4K).unwrap().is_young());
/// ```
#[derive(Debug)]
pub struct AddressSpace {
    table: PageTable,
    vmas: BTreeMap<u64, Vma>,
    tlb: Tlb,
    next_addr: u64,
    /// Access sampling (off by default): when enabled, every CPU access
    /// through [`AddressSpace::access`] bumps a per-frame counter. The
    /// placement policy's sampling epochs read these alongside the PTE
    /// reference-bit scan; with sampling off the space behaves (and
    /// allocates) exactly as before.
    sampling: bool,
    access_counts: BTreeMap<u64, u64>,
}

/// Result of one reference-bit sampling scan
/// ([`AddressSpace::scan_referenced`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// PTEs whose reference state was inspected (and re-armed).
    pub scanned: u32,
    /// Of those, pages referenced since the previous scan.
    pub referenced: u32,
    /// Entries skipped: unmapped, non-present, migration, or watched.
    pub skipped: u32,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// An empty address space; mappings start at 1 GiB.
    #[must_use]
    pub fn new() -> Self {
        AddressSpace {
            table: PageTable::new(),
            vmas: BTreeMap::new(),
            tlb: Tlb::new(),
            next_addr: 1 << 30,
            sampling: false,
            access_counts: BTreeMap::new(),
        }
    }

    /// Maps an anonymous region of `pages` pages of `page_size` with
    /// backing eagerly allocated on `node` — the common case, equivalent
    /// to [`AddressSpace::mmap_with`] under [`AllocPolicy::Bind`] and
    /// [`Populate::Eager`]. Fresh entries are young.
    ///
    /// # Errors
    ///
    /// [`MmError::EmptyRegion`] or an allocation failure (in which case
    /// nothing remains mapped).
    pub fn mmap_anonymous(
        &mut self,
        alloc: &mut FrameAllocator,
        pages: u32,
        page_size: PageSize,
        node: NodeId,
    ) -> Result<VirtAddr, MmError> {
        self.mmap_with(
            alloc,
            pages,
            page_size,
            AllocPolicy::Bind(node),
            Populate::Eager,
        )
    }

    /// Maps an anonymous region under an arbitrary allocation policy,
    /// eagerly or lazily populated.
    ///
    /// # Errors
    ///
    /// [`MmError::EmptyRegion`] or an eager allocation failure (in which
    /// case nothing remains mapped).
    pub fn mmap_with(
        &mut self,
        alloc: &mut FrameAllocator,
        pages: u32,
        page_size: PageSize,
        policy: AllocPolicy,
        populate: Populate,
    ) -> Result<VirtAddr, MmError> {
        if pages == 0 {
            return Err(MmError::EmptyRegion);
        }
        // Align the bump pointer; regions of any size stay naturally
        // aligned for their pages.
        let align = page_size.bytes();
        let start = VirtAddr::new((self.next_addr + align - 1) & !(align - 1));
        if populate == Populate::Eager {
            let mut mapped = Vec::new();
            for i in 0..pages {
                let vaddr = start.offset(u64::from(i) * align);
                match Self::alloc_by_policy(alloc, &policy, i, page_size) {
                    Ok(frame) => {
                        self.table
                            .map(vaddr, Pte::mapping(frame, page_size))
                            .expect("bump allocator never overlaps");
                        mapped.push((vaddr, frame));
                    }
                    Err(e) => {
                        for (va, frame) in mapped {
                            self.table.unmap(va, page_size);
                            let _ = alloc.free(frame);
                        }
                        return Err(e);
                    }
                }
            }
        }
        let vma = Vma {
            start,
            pages,
            page_size,
            node: policy.home(),
            policy,
        };
        self.next_addr = vma.end().as_u64();
        self.vmas.insert(start.as_u64(), vma);
        Ok(start)
    }

    fn alloc_by_policy(
        alloc: &mut FrameAllocator,
        policy: &AllocPolicy,
        page_index: u32,
        page_size: PageSize,
    ) -> Result<memif_hwsim::PhysAddr, MmError> {
        let mut last = None;
        for node in policy.candidates(page_index) {
            match alloc.alloc(node, page_size) {
                Ok(frame) => return Ok(frame),
                Err(e) => last = Some(e),
            }
        }
        if !policy.strict() {
            // Preferred/interleave fall back to any node with room.
            for node in alloc.nodes() {
                if let Ok(frame) = alloc.alloc(node, page_size) {
                    return Ok(frame);
                }
            }
        }
        Err(last.expect("at least one candidate").into())
    }

    /// Resolves a [`Fault::DemandPage`]: allocates backing for the
    /// faulting page per its region's policy and installs a young
    /// mapping. The faulting access should then retry.
    ///
    /// # Errors
    ///
    /// [`MmError::NoSuchRegion`] if no VMA covers `vaddr`, or the
    /// allocation failure.
    pub fn handle_demand_fault(
        &mut self,
        alloc: &mut FrameAllocator,
        vaddr: VirtAddr,
    ) -> Result<(), MmError> {
        let (page, page_size, policy, index) = {
            let vma = self.vma_at(vaddr).ok_or(MmError::NoSuchRegion(vaddr))?;
            let page = vaddr.align_down(vma.page_size);
            let index = ((page.as_u64() - vma.start.as_u64()) / vma.page_size.bytes()) as u32;
            (page, vma.page_size, vma.policy.clone(), index)
        };
        let frame = Self::alloc_by_policy(alloc, &policy, index, page_size)?;
        self.table
            .map(page, Pte::mapping(frame, page_size))
            .expect("demand page was unmapped");
        Ok(())
    }

    /// Maps an *existing* set of frames into this space (a shared
    /// mapping): each frame's reference count is bumped, so the backing
    /// outlives whichever space unmaps first. `node` records the frames'
    /// home for the VMA's allocation policy.
    ///
    /// # Errors
    ///
    /// [`MmError::EmptyRegion`] for no frames, or a frame-table failure
    /// if any address is not a live block base (earlier references are
    /// rolled back).
    ///
    /// # Panics
    ///
    /// Panics if frames are misaligned for `page_size`.
    pub fn map_shared(
        &mut self,
        alloc: &mut FrameAllocator,
        frames: &[memif_hwsim::PhysAddr],
        page_size: PageSize,
        node: NodeId,
    ) -> Result<VirtAddr, MmError> {
        if frames.is_empty() {
            return Err(MmError::EmptyRegion);
        }
        let align = page_size.bytes();
        let start = VirtAddr::new((self.next_addr + align - 1) & !(align - 1));
        for (i, frame) in frames.iter().enumerate() {
            if let Err(e) = alloc.get_ref(*frame) {
                for done in &frames[..i] {
                    let _ = alloc.free(*done);
                    self.table.unmap(start.offset(i as u64 * align), page_size);
                }
                return Err(e.into());
            }
            let vaddr = start.offset(i as u64 * align);
            self.table
                .map(vaddr, Pte::mapping(*frame, page_size))
                .expect("bump allocator never overlaps");
        }
        let vma = Vma {
            start,
            pages: frames.len() as u32,
            page_size,
            node,
            policy: AllocPolicy::Bind(node),
        };
        self.next_addr = vma.end().as_u64();
        self.vmas.insert(start.as_u64(), vma);
        Ok(start)
    }

    /// Unmaps the region starting at `start`, freeing present frames.
    ///
    /// # Errors
    ///
    /// [`MmError::NoSuchRegion`] if `start` is not a region start.
    pub fn munmap(&mut self, alloc: &mut FrameAllocator, start: VirtAddr) -> Result<(), MmError> {
        let vma = self
            .vmas
            .remove(&start.as_u64())
            .ok_or(MmError::NoSuchRegion(start))?;
        for i in 0..vma.pages {
            let vaddr = start.offset(u64::from(i) * vma.page_size.bytes());
            if let Some(pte) = self.table.unmap(vaddr, vma.page_size) {
                if pte.is_present() {
                    let _ = alloc.free(pte.frame());
                }
            }
            self.tlb.flush_page(vaddr, vma.page_size);
        }
        Ok(())
    }

    /// The VMA containing `vaddr`.
    #[must_use]
    pub fn vma_at(&self, vaddr: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=vaddr.as_u64())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(vaddr))
    }

    /// The VMA covering the whole byte range, if one does.
    #[must_use]
    pub fn vma_covering(&self, start: VirtAddr, len: u64) -> Option<&Vma> {
        self.vma_at(start).filter(|v| v.covers(start, len))
    }

    /// All regions, in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Performs a CPU access to `vaddr`: translates, pulls the entry into
    /// the TLB, *clears the young bit*, and sets dirty on writes. Returns
    /// the physical address of the accessed byte.
    ///
    /// # Errors
    ///
    /// See [`Fault`].
    pub fn access(&mut self, vaddr: VirtAddr, kind: AccessKind) -> Result<PhysAddr, Fault> {
        let vma = self.vma_at(vaddr).ok_or(Fault::Unmapped(vaddr))?;
        let size = vma.page_size;
        let page = vaddr.align_down(size);
        let pte = self.table.peek(page, size).ok_or(Fault::DemandPage(page))?;
        if pte.is_migration() {
            return Err(Fault::BlockedByMigration(vaddr));
        }
        if !pte.is_present() {
            return Err(Fault::Unmapped(vaddr));
        }
        if kind == AccessKind::Write && pte.is_watched() {
            return Err(Fault::WriteProtected(vaddr));
        }
        let mut updated = pte.with_young(false);
        if kind == AccessKind::Write {
            updated = updated.with_dirty(true);
        }
        if updated != pte {
            self.table.replace(page, updated).expect("entry just seen");
        }
        self.tlb.access(page, size);
        if self.sampling {
            *self.access_counts.entry(pte.frame().as_u64()).or_insert(0) += 1;
        }
        Ok(pte.frame().offset(vaddr.as_u64() - page.as_u64()))
    }

    /// Turns on per-frame access counting (see [`ScanOutcome`] for the
    /// companion reference-bit scan). Idempotent; off by default.
    pub fn enable_sampling(&mut self) {
        self.sampling = true;
    }

    /// True when per-frame access counting is on.
    #[must_use]
    pub fn sampling_enabled(&self) -> bool {
        self.sampling
    }

    /// Accesses counted against `frame` since sampling was enabled (or
    /// since [`AddressSpace::take_access_counts`] last drained them).
    #[must_use]
    pub fn access_count(&self, frame: PhysAddr) -> u64 {
        self.access_counts
            .get(&frame.as_u64())
            .copied()
            .unwrap_or(0)
    }

    /// Drains the per-frame access counters, returning them keyed by
    /// frame base address (deterministic order).
    pub fn take_access_counts(&mut self) -> BTreeMap<u64, u64> {
        std::mem::take(&mut self.access_counts)
    }

    /// One sampling epoch's reference-bit scan over `[start, start +
    /// pages * page_size)`: inspects each mapped page's young bit and
    /// re-arms it. In this machine's model a CPU reference *clears*
    /// young (§5.2), so a cleared bit means the page was touched since
    /// the previous scan; re-arming sets it back so the next epoch
    /// observes a fresh interval.
    ///
    /// Pages that are unmapped, non-present, under a migration entry, or
    /// write-watched are skipped (counted in
    /// [`ScanOutcome::skipped`]). Callers must not scan ranges covered
    /// by an *in-flight* move: re-arming young on a semi-final entry
    /// would mask the race check Release performs (the policy daemon
    /// therefore skips regions with moves outstanding).
    pub fn scan_referenced(
        &mut self,
        start: VirtAddr,
        pages: u32,
        page_size: PageSize,
    ) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        for i in 0..u64::from(pages) {
            let va = start.offset(i * page_size.bytes());
            let Some(pte) = self.table.peek(va, page_size) else {
                out.skipped += 1;
                continue;
            };
            if !pte.is_present() || pte.is_migration() || pte.is_watched() {
                out.skipped += 1;
                continue;
            }
            out.scanned += 1;
            if !pte.is_young() {
                out.referenced += 1;
                self.table
                    .replace(va, pte.with_young(true))
                    .expect("entry just seen");
            }
        }
        out
    }

    /// Every transient entry a move left in this space's page table:
    /// migration entries (blocking accessors for the transfer window)
    /// and write-watched entries (proceed-and-recover traps). Crash
    /// recovery scans these and cross-checks them against the move
    /// journal — a transient entry no journal record covers would be a
    /// page stuck unreachable forever.
    #[must_use]
    pub fn scan_transient(&self) -> Vec<(VirtAddr, Pte)> {
        let mut out = Vec::new();
        for vma in self.vmas.values() {
            for i in 0..u64::from(vma.pages) {
                let va = vma.start.offset(i * vma.page_size.bytes());
                if let Some(pte) = self.table.peek(va, vma.page_size) {
                    if pte.is_migration() || pte.is_watched() {
                        out.push((va, pte));
                    }
                }
            }
        }
        out
    }

    /// Pure translation: no reference-bit side effects, no TLB insert.
    #[must_use]
    pub fn translate(&self, vaddr: VirtAddr) -> Option<PhysAddr> {
        let vma = self.vma_at(vaddr)?;
        let page = vaddr.align_down(vma.page_size);
        let pte = self.table.peek(page, vma.page_size)?;
        if !pte.is_present() {
            return None;
        }
        Some(pte.frame().offset(vaddr.as_u64() - page.as_u64()))
    }

    /// Writes `data` into the space at `vaddr` through normal accesses
    /// (page by page, with reference-bit effects).
    ///
    /// # Errors
    ///
    /// Any [`Fault`] hit along the way (earlier pages stay written).
    pub fn write_bytes(
        &mut self,
        phys: &mut PhysMem,
        vaddr: VirtAddr,
        data: &[u8],
    ) -> Result<(), Fault> {
        self.chunked(vaddr, data.len() as u64, |space, va, off, len| {
            let pa = space.access(va, AccessKind::Write)?;
            phys.write(pa, &data[off as usize..(off + len) as usize]);
            Ok(())
        })
    }

    /// Reads bytes from the space through normal accesses.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] hit along the way.
    pub fn read_bytes(
        &mut self,
        phys: &PhysMem,
        vaddr: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), Fault> {
        let len = buf.len() as u64;
        self.chunked(vaddr, len, |space, va, off, n| {
            let pa = space.access(va, AccessKind::Read)?;
            phys.read(pa, &mut buf[off as usize..(off + n) as usize]);
            Ok(())
        })
    }

    fn chunked(
        &mut self,
        vaddr: VirtAddr,
        len: u64,
        mut f: impl FnMut(&mut Self, VirtAddr, u64, u64) -> Result<(), Fault>,
    ) -> Result<(), Fault> {
        let mut off = 0;
        while off < len {
            let va = vaddr.offset(off);
            let page_size = self.vma_at(va).ok_or(Fault::Unmapped(va))?.page_size;
            let page_end = va.align_down(page_size).offset(page_size.bytes());
            let n = (page_end.as_u64() - va.as_u64()).min(len - off);
            f(self, va, off, n)?;
            off += n;
        }
        Ok(())
    }

    /// Direct page-table access for the migration drivers.
    #[must_use]
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable page-table access for the migration drivers.
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }

    /// The space's TLB.
    #[must_use]
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Mutable TLB access (for flush accounting by drivers).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Gang or per-page lookup over a region (see
    /// [`PageTable::lookup_range`]).
    #[must_use]
    pub fn lookup_range(
        &self,
        start: VirtAddr,
        count: u32,
        size: PageSize,
        gang: bool,
    ) -> (Vec<Option<Pte>>, WalkStats) {
        self.table.lookup_range(start, count, size, gang)
    }

    /// Buffer-reusing variant of [`lookup_range`](Self::lookup_range)
    /// (see [`PageTable::lookup_range_into`]).
    pub fn lookup_range_into(
        &self,
        start: VirtAddr,
        count: u32,
        size: PageSize,
        gang: bool,
        out: &mut Vec<Option<Pte>>,
    ) -> WalkStats {
        self.table.lookup_range_into(start, count, size, gang, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif_hwsim::Topology;

    fn setup() -> (AddressSpace, FrameAllocator, PhysMem) {
        let mut topo = Topology::keystone_ii();
        topo.complete_boot();
        (
            AddressSpace::new(),
            FrameAllocator::new(&topo),
            PhysMem::new(),
        )
    }

    #[test]
    fn mmap_populates_eagerly() {
        let (mut space, mut alloc, _) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 8, PageSize::Small4K, NodeId(0))
            .unwrap();
        assert_eq!(alloc.live_frames(), 8);
        for i in 0..8 {
            let pa = space.translate(va.offset(i * 4096)).unwrap();
            assert!(pa.as_u64() >= 0x8_0000_0000, "backed by DDR node");
        }
        let vma = space.vma_at(va).unwrap();
        assert_eq!(vma.pages, 8);
        assert_eq!(vma.node, NodeId(0));
    }

    #[test]
    fn mmap_rolls_back_on_exhaustion() {
        let (mut space, mut alloc, _) = setup();
        // SRAM holds 1536 4 KiB pages; ask for more.
        let err = space.mmap_anonymous(&mut alloc, 2_000, PageSize::Small4K, NodeId(1));
        assert!(matches!(
            err,
            Err(MmError::Alloc(AllocError::OutOfMemory(_)))
        ));
        assert_eq!(alloc.live_frames(), 0, "partial allocation rolled back");
        assert_eq!(space.vmas().count(), 0);
    }

    #[test]
    fn munmap_frees_frames() {
        let (mut space, mut alloc, _) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 4, PageSize::Medium64K, NodeId(0))
            .unwrap();
        space.munmap(&mut alloc, va).unwrap();
        assert_eq!(alloc.live_frames(), 0);
        assert!(space.translate(va).is_none());
        assert!(matches!(
            space.munmap(&mut alloc, va),
            Err(MmError::NoSuchRegion(_))
        ));
    }

    #[test]
    fn access_clears_young_and_sets_dirty() {
        let (mut space, mut alloc, _) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 1, PageSize::Small4K, NodeId(0))
            .unwrap();
        assert!(space
            .table()
            .peek(va, PageSize::Small4K)
            .unwrap()
            .is_young());
        space.access(va, AccessKind::Read).unwrap();
        let pte = space.table().peek(va, PageSize::Small4K).unwrap();
        assert!(!pte.is_young(), "reference clears young (§5.2 model)");
        assert!(!pte.is_dirty());
        space.access(va.offset(100), AccessKind::Write).unwrap();
        assert!(space
            .table()
            .peek(va, PageSize::Small4K)
            .unwrap()
            .is_dirty());
    }

    #[test]
    fn sampling_counts_per_frame_accesses() {
        let (mut space, mut alloc, _) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 2, PageSize::Small4K, NodeId(0))
            .unwrap();
        let frame0 = space.translate(va).unwrap();

        // Off by default: accesses leave no trace.
        space.access(va, AccessKind::Read).unwrap();
        assert!(!space.sampling_enabled());
        assert_eq!(space.access_count(frame0), 0);

        space.enable_sampling();
        space.access(va, AccessKind::Read).unwrap();
        space.access(va.offset(8), AccessKind::Write).unwrap();
        space.access(va.offset(4096), AccessKind::Read).unwrap();
        assert_eq!(space.access_count(frame0), 2, "both page-0 accesses");

        let drained = space.take_access_counts();
        assert_eq!(drained.values().sum::<u64>(), 3);
        assert_eq!(space.access_count(frame0), 0, "drain resets");
    }

    #[test]
    fn scan_referenced_reports_and_rearms() {
        let (mut space, mut alloc, _) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 4, PageSize::Small4K, NodeId(0))
            .unwrap();

        // Fresh mappings are young: nothing referenced yet.
        let first = space.scan_referenced(va, 4, PageSize::Small4K);
        assert_eq!(
            first,
            ScanOutcome {
                scanned: 4,
                referenced: 0,
                skipped: 0
            }
        );

        // Touch two pages; the scan sees exactly those and re-arms them.
        space.access(va, AccessKind::Read).unwrap();
        space
            .access(va.offset(2 * 4096), AccessKind::Write)
            .unwrap();
        let second = space.scan_referenced(va, 4, PageSize::Small4K);
        assert_eq!(second.referenced, 2);
        assert!(
            space
                .table()
                .peek(va, PageSize::Small4K)
                .unwrap()
                .is_young(),
            "scan re-arms the reference bit"
        );

        // Re-armed and untouched: the next epoch reports quiescence.
        let third = space.scan_referenced(va, 4, PageSize::Small4K);
        assert_eq!(third.referenced, 0);

        // Unmapped tail pages are skipped, not scanned.
        let wide = space.scan_referenced(va, 6, PageSize::Small4K);
        assert_eq!(wide.scanned, 4);
        assert_eq!(wide.skipped, 2);
    }

    #[test]
    fn access_faults() {
        let (mut space, mut alloc, _) = setup();
        assert!(matches!(
            space.access(VirtAddr::new(0x99), AccessKind::Read),
            Err(Fault::Unmapped(_))
        ));
        let va = space
            .mmap_anonymous(&mut alloc, 1, PageSize::Small4K, NodeId(0))
            .unwrap();
        // Install a migration entry: accesses block.
        space
            .table_mut()
            .replace(va, Pte::migration_entry(PageSize::Small4K))
            .unwrap();
        assert!(matches!(
            space.access(va, AccessKind::Read),
            Err(Fault::BlockedByMigration(_))
        ));
    }

    #[test]
    fn watched_pages_trap_writes_only() {
        let (mut space, mut alloc, _) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 1, PageSize::Small4K, NodeId(0))
            .unwrap();
        let pte = space.table().peek(va, PageSize::Small4K).unwrap();
        space.table_mut().replace(va, pte.with_watch(true)).unwrap();
        assert!(space.access(va, AccessKind::Read).is_ok());
        assert!(matches!(
            space.access(va, AccessKind::Write),
            Err(Fault::WriteProtected(_))
        ));
    }

    #[test]
    fn access_fills_tlb_translate_does_not() {
        let (mut space, mut alloc, _) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 1, PageSize::Small4K, NodeId(0))
            .unwrap();
        space.translate(va).unwrap();
        assert!(
            space.tlb().is_empty(),
            "pure translation leaves no TLB entry"
        );
        space.access(va, AccessKind::Read).unwrap();
        assert!(space.tlb().contains(va, PageSize::Small4K));
    }

    #[test]
    fn byte_io_roundtrip_across_pages() {
        let (mut space, mut alloc, mut phys) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 3, PageSize::Small4K, NodeId(0))
            .unwrap();
        let data: Vec<u8> = (0..(3 * 4096)).map(|i| (i % 251) as u8).collect();
        space.write_bytes(&mut phys, va, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        space.read_bytes(&phys, va, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unaligned_byte_io() {
        let (mut space, mut alloc, mut phys) = setup();
        let va = space
            .mmap_anonymous(&mut alloc, 2, PageSize::Small4K, NodeId(0))
            .unwrap();
        let at = va.offset(4000); // crosses the page boundary
        space
            .write_bytes(&mut phys, at, &[1, 2, 3, 4, 5, 6, 7, 8, 9])
            .unwrap();
        let mut buf = [0u8; 9];
        space.read_bytes(&phys, at, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn vma_lookup_edges() {
        let (mut space, mut alloc, _) = setup();
        let a = space
            .mmap_anonymous(&mut alloc, 2, PageSize::Small4K, NodeId(0))
            .unwrap();
        let b = space
            .mmap_anonymous(&mut alloc, 2, PageSize::Small4K, NodeId(0))
            .unwrap();
        assert_eq!(space.vma_at(a).unwrap().start, a);
        assert_eq!(space.vma_at(a.offset(8191)).unwrap().start, a);
        assert_eq!(space.vma_at(b).unwrap().start, b);
        assert!(space.vma_covering(a, 8192).is_some());
        assert!(
            space.vma_covering(a, 8193).is_none(),
            "range exceeds the VMA"
        );
    }

    #[test]
    fn regions_have_distinct_page_sizes() {
        let (mut space, mut alloc, _) = setup();
        let small = space
            .mmap_anonymous(&mut alloc, 4, PageSize::Small4K, NodeId(0))
            .unwrap();
        let large = space
            .mmap_anonymous(&mut alloc, 2, PageSize::Large2M, NodeId(0))
            .unwrap();
        assert!(large.is_aligned(PageSize::Large2M));
        assert_eq!(space.vma_at(small).unwrap().page_size, PageSize::Small4K);
        assert_eq!(space.vma_at(large).unwrap().page_size, PageSize::Large2M);
        assert!(space.translate(large.offset(3 << 20)).is_some());
    }
}
