//! Virtual addresses and page geometry.

use std::fmt;

/// A virtual byte address in an application's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Constructs an address.
    #[must_use]
    pub const fn new(addr: u64) -> Self {
        VirtAddr(addr)
    }

    /// Raw value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        VirtAddr(self.0 + bytes)
    }

    /// Rounds down to a `size` page boundary.
    #[must_use]
    pub fn align_down(self, size: PageSize) -> Self {
        VirtAddr(self.0 & !(size.bytes() - 1))
    }

    /// True if aligned to a `size` page boundary.
    #[must_use]
    pub fn is_aligned(self, size: PageSize) -> bool {
        self.0 & (size.bytes() - 1) == 0
    }

    /// 4 KiB-granule virtual page number.
    #[must_use]
    pub const fn vpn(self) -> u64 {
        self.0 >> 12
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The page sizes the evaluation sweeps over (Figure 6/8: small, medium,
/// large).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PageSize {
    /// 4 KiB — the platform default and only size mature on the paper's
    /// ARM test platform (§6.2).
    #[default]
    Small4K,
    /// 64 KiB — "medium" pages, mapped as a contiguous run of 4 KiB
    /// granules with a single representative entry.
    Medium64K,
    /// 2 MiB — "large" pages, mapped as one level-2 block entry.
    Large2M,
}

impl PageSize {
    /// All sizes, small to large.
    pub const ALL: [PageSize; 3] = [PageSize::Small4K, PageSize::Medium64K, PageSize::Large2M];

    /// Page size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// log2 of the page size.
    #[must_use]
    pub const fn shift(self) -> u8 {
        match self {
            PageSize::Small4K => 12,
            PageSize::Medium64K => 16,
            PageSize::Large2M => 21,
        }
    }

    /// Buddy-allocator order (in 4 KiB granules).
    #[must_use]
    pub const fn order(self) -> u8 {
        self.shift() - 12
    }

    /// Size from a log2 shift.
    #[must_use]
    pub fn from_shift(shift: u8) -> Option<Self> {
        match shift {
            12 => Some(PageSize::Small4K),
            16 => Some(PageSize::Medium64K),
            21 => Some(PageSize::Large2M),
            _ => None,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Small4K => f.write_str("4KB"),
            PageSize::Medium64K => f.write_str("64KB"),
            PageSize::Large2M => f.write_str("2MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(PageSize::Small4K.bytes(), 4096);
        assert_eq!(PageSize::Medium64K.bytes(), 65_536);
        assert_eq!(PageSize::Large2M.bytes(), 2 << 20);
        assert_eq!(PageSize::Small4K.order(), 0);
        assert_eq!(PageSize::Medium64K.order(), 4);
        assert_eq!(PageSize::Large2M.order(), 9);
    }

    #[test]
    fn shift_roundtrip() {
        for size in PageSize::ALL {
            assert_eq!(PageSize::from_shift(size.shift()), Some(size));
        }
        assert_eq!(PageSize::from_shift(13), None);
    }

    #[test]
    fn alignment() {
        let a = VirtAddr::new(0x2_1234);
        assert_eq!(a.align_down(PageSize::Small4K).as_u64(), 0x2_1000);
        assert_eq!(a.align_down(PageSize::Medium64K).as_u64(), 0x2_0000);
        assert_eq!(a.align_down(PageSize::Large2M).as_u64(), 0);
        assert!(VirtAddr::new(0x40_0000).is_aligned(PageSize::Large2M));
        assert!(!a.is_aligned(PageSize::Small4K));
        assert_eq!(a.vpn(), 0x21);
    }

    #[test]
    fn display() {
        assert_eq!(VirtAddr::new(0xFF).to_string(), "0xff");
        assert_eq!(PageSize::Large2M.to_string(), "2MB");
    }
}
