//! Per-node physical frame allocation.
//!
//! Each pseudo-NUMA node gets a binary-buddy allocator over 4 KiB
//! granules, supporting every order up to 2 MiB pages, with coalescing on
//! free. A frame table records owner node and order for every live
//! allocation so migration can free old pages without trusting callers.

use std::collections::{BTreeSet, HashMap};

use memif_hwsim::{NodeId, PhysAddr, Topology};

use crate::addr::PageSize;

const GRANULE: u64 = 4096;
const MAX_ORDER: u8 = 10; // up to 4 MiB blocks

/// Errors from frame allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The node has no free block large enough.
    OutOfMemory(NodeId),
    /// Unknown node.
    NoSuchNode(NodeId),
    /// Freeing an address that is not an allocated block base.
    BadFree(PhysAddr),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory(n) => write!(f, "{n} out of free pages"),
            AllocError::NoSuchNode(n) => write!(f, "unknown memory {n}"),
            AllocError::BadFree(a) => write!(f, "free of unallocated block {a}"),
        }
    }
}

impl std::error::Error for AllocError {}

#[derive(Debug)]
struct Buddy {
    base: u64,
    /// Free block base offsets (from `base`), per order.
    free: Vec<BTreeSet<u64>>,
    free_bytes: u64,
    total_bytes: u64,
}

impl Buddy {
    fn new(base: PhysAddr, bytes: u64) -> Self {
        let mut b = Buddy {
            base: base.as_u64(),
            free: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
            free_bytes: 0,
            total_bytes: 0,
        };
        // Seed with maximal aligned blocks.
        let mut off = 0;
        while off + GRANULE <= bytes {
            let mut order = MAX_ORDER;
            loop {
                let block = GRANULE << order;
                if off % block == 0 && off + block <= bytes {
                    break;
                }
                order -= 1;
            }
            b.free[order as usize].insert(off);
            let block = GRANULE << order;
            b.free_bytes += block;
            b.total_bytes += block;
            off += block;
        }
        b
    }

    fn alloc(&mut self, order: u8) -> Option<u64> {
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&off) = self.free[o as usize].iter().next() {
                self.free[o as usize].remove(&off);
                found = Some((off, o));
                break;
            }
        }
        let (off, mut o) = found?;
        // Split down to the requested order, returning upper halves.
        while o > order {
            o -= 1;
            let half = GRANULE << o;
            self.free[o as usize].insert(off + half);
        }
        self.free_bytes -= GRANULE << order;
        debug_assert_eq!(off % (GRANULE << order), 0);
        Some(self.base + off)
    }

    fn free(&mut self, addr: u64, order: u8) {
        let mut off = addr - self.base;
        let mut o = order;
        self.free_bytes += GRANULE << order;
        // Coalesce with the buddy while possible.
        while o < MAX_ORDER {
            let block = GRANULE << o;
            let buddy = off ^ block;
            if self.free[o as usize].remove(&buddy) {
                off = off.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.free[o as usize].insert(off);
    }
}

/// Metadata for one live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Owning node.
    pub node: NodeId,
    /// Buddy order of the block.
    pub order: u8,
    /// Reference count (shared mappings).
    pub refcount: u32,
}

/// The machine-wide frame allocator: one buddy per online node plus the
/// frame table.
#[derive(Debug)]
pub struct FrameAllocator {
    buddies: HashMap<NodeId, Buddy>,
    frames: HashMap<u64, FrameInfo>,
    allocs: u64,
    frees: u64,
}

impl FrameAllocator {
    /// Builds allocators for every *online* node of `topo` — before
    /// [`Topology::complete_boot`] the hidden SRAM bank gets none,
    /// reproducing the §6.1 boot constraint. Call again (or use
    /// [`FrameAllocator::online_node`]) after boot to add late banks.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        let mut a = FrameAllocator {
            buddies: HashMap::new(),
            frames: HashMap::new(),
            allocs: 0,
            frees: 0,
        };
        for node in topo.online_nodes() {
            a.buddies.insert(node.id, Buddy::new(node.base, node.bytes));
        }
        a
    }

    /// Adds a node that came online after boot.
    ///
    /// # Panics
    ///
    /// Panics if the node already has an allocator.
    pub fn online_node(&mut self, node: &memif_hwsim::MemoryNode) {
        assert!(
            !self.buddies.contains_key(&node.id),
            "{} already online",
            node.id
        );
        self.buddies
            .insert(node.id, Buddy::new(node.base, node.bytes));
    }

    /// Allocates one `size` page on `node`.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoSuchNode`] or [`AllocError::OutOfMemory`].
    pub fn alloc(&mut self, node: NodeId, size: PageSize) -> Result<PhysAddr, AllocError> {
        let buddy = self
            .buddies
            .get_mut(&node)
            .ok_or(AllocError::NoSuchNode(node))?;
        let addr = buddy
            .alloc(size.order())
            .ok_or(AllocError::OutOfMemory(node))?;
        self.frames.insert(
            addr,
            FrameInfo {
                node,
                order: size.order(),
                refcount: 1,
            },
        );
        self.allocs += 1;
        Ok(PhysAddr::new(addr))
    }

    /// Drops one reference to the block at `addr`, freeing it when the
    /// count reaches zero.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] for an address that is not a live block
    /// base.
    pub fn free(&mut self, addr: PhysAddr) -> Result<(), AllocError> {
        let info = self
            .frames
            .get_mut(&addr.as_u64())
            .ok_or(AllocError::BadFree(addr))?;
        info.refcount -= 1;
        if info.refcount == 0 {
            let info = self.frames.remove(&addr.as_u64()).expect("just seen");
            let buddy = self
                .buddies
                .get_mut(&info.node)
                .expect("frame's node exists");
            buddy.free(addr.as_u64(), info.order);
            self.frees += 1;
        }
        Ok(())
    }

    /// Adds a reference to a live block (shared mapping).
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] if `addr` is not a live block base.
    pub fn get_ref(&mut self, addr: PhysAddr) -> Result<(), AllocError> {
        let info = self
            .frames
            .get_mut(&addr.as_u64())
            .ok_or(AllocError::BadFree(addr))?;
        info.refcount += 1;
        Ok(())
    }

    /// Frame metadata for a live block base.
    #[must_use]
    pub fn frame_info(&self, addr: PhysAddr) -> Option<FrameInfo> {
        self.frames.get(&addr.as_u64()).copied()
    }

    /// Free bytes remaining on `node`.
    #[must_use]
    pub fn free_bytes(&self, node: NodeId) -> u64 {
        self.buddies.get(&node).map_or(0, |b| b.free_bytes)
    }

    /// Total managed bytes on `node`.
    #[must_use]
    pub fn total_bytes(&self, node: NodeId) -> u64 {
        self.buddies.get(&node).map_or(0, |b| b.total_bytes)
    }

    /// `(allocations, frees)` performed so far.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.allocs, self.frees)
    }

    /// Number of live allocations.
    #[must_use]
    pub fn live_frames(&self) -> usize {
        self.frames.len()
    }

    /// The nodes with allocators, in id order.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.buddies.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif_hwsim::Topology;

    fn booted_keystone() -> Topology {
        let mut t = Topology::keystone_ii();
        t.complete_boot();
        t
    }

    #[test]
    fn alloc_free_roundtrip() {
        let topo = booted_keystone();
        let mut a = FrameAllocator::new(&topo);
        let before = a.free_bytes(NodeId(1));
        let p = a.alloc(NodeId(1), PageSize::Small4K).unwrap();
        assert_eq!(a.free_bytes(NodeId(1)), before - 4096);
        assert_eq!(a.frame_info(p).unwrap().node, NodeId(1));
        a.free(p).unwrap();
        assert_eq!(a.free_bytes(NodeId(1)), before);
        assert_eq!(a.counters(), (1, 1));
        assert_eq!(a.live_frames(), 0);
    }

    #[test]
    fn sram_capacity_is_six_megabytes() {
        let topo = booted_keystone();
        let mut a = FrameAllocator::new(&topo);
        let mut pages = Vec::new();
        while let Ok(p) = a.alloc(NodeId(1), PageSize::Small4K) {
            pages.push(p);
        }
        assert_eq!(
            pages.len() as u64,
            (6 << 20) / 4096,
            "exactly 6 MiB of 4 KiB pages"
        );
        assert_eq!(
            a.alloc(NodeId(1), PageSize::Small4K),
            Err(AllocError::OutOfMemory(NodeId(1)))
        );
        for p in pages {
            a.free(p).unwrap();
        }
        assert_eq!(a.free_bytes(NodeId(1)), 6 << 20);
    }

    #[test]
    fn hidden_node_absent_until_onlined() {
        let topo = Topology::keystone_ii(); // not booted
        let mut a = FrameAllocator::new(&topo);
        assert_eq!(
            a.alloc(NodeId(1), PageSize::Small4K),
            Err(AllocError::NoSuchNode(NodeId(1)))
        );
        let mut topo2 = topo.clone();
        topo2.complete_boot();
        a.online_node(topo2.node(NodeId(1)).unwrap());
        assert!(a.alloc(NodeId(1), PageSize::Small4K).is_ok());
    }

    #[test]
    fn alignment_per_order() {
        let topo = booted_keystone();
        let mut a = FrameAllocator::new(&topo);
        for size in PageSize::ALL {
            let p = a.alloc(NodeId(0), size).unwrap();
            assert_eq!(
                p.as_u64() % size.bytes(),
                0,
                "{size} block must be naturally aligned"
            );
        }
    }

    #[test]
    fn coalescing_restores_large_blocks() {
        let topo = booted_keystone();
        let mut a = FrameAllocator::new(&topo);
        // Exhaust SRAM with 4 KiB pages, free them all, then grab 2 MiB
        // blocks: coalescing must have restored them.
        let pages: Vec<_> =
            std::iter::from_fn(|| a.alloc(NodeId(1), PageSize::Small4K).ok()).collect();
        for p in &pages {
            a.free(*p).unwrap();
        }
        let blocks: Vec<_> =
            std::iter::from_fn(|| a.alloc(NodeId(1), PageSize::Large2M).ok()).collect();
        assert_eq!(blocks.len(), 3, "6 MiB = 3 coalesced 2 MiB blocks");
    }

    #[test]
    fn refcounting_defers_free() {
        let topo = booted_keystone();
        let mut a = FrameAllocator::new(&topo);
        let p = a.alloc(NodeId(0), PageSize::Small4K).unwrap();
        a.get_ref(p).unwrap();
        a.free(p).unwrap();
        assert!(a.frame_info(p).is_some(), "still referenced");
        a.free(p).unwrap();
        assert!(a.frame_info(p).is_none());
    }

    #[test]
    fn bad_free_detected() {
        let topo = booted_keystone();
        let mut a = FrameAllocator::new(&topo);
        assert!(matches!(
            a.free(PhysAddr::new(0xDEAD_B000)),
            Err(AllocError::BadFree(_))
        ));
        let p = a.alloc(NodeId(0), PageSize::Medium64K).unwrap();
        // Mid-block address is not a block base.
        assert!(matches!(
            a.free(p.offset(4096)),
            Err(AllocError::BadFree(_))
        ));
    }

    #[test]
    fn distinct_nodes_do_not_interfere() {
        let topo = booted_keystone();
        let mut a = FrameAllocator::new(&topo);
        let p0 = a.alloc(NodeId(0), PageSize::Small4K).unwrap();
        let p1 = a.alloc(NodeId(1), PageSize::Small4K).unwrap();
        assert_ne!(
            topo.node_of_addr(p0),
            topo.node_of_addr(p1),
            "allocations land in their node's physical range"
        );
    }
}
