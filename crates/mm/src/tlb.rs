//! A software TLB model for flush accounting.
//!
//! The paper's Release optimization rests on a TLB fact: "no TLB flush is
//! needed since the semi-final PTE never enters TLB" (§5.2). This model
//! tracks which translations have been walked into the TLB so tests can
//! verify that claim, and counts flush operations so the cost harness can
//! charge them.

use std::collections::HashSet;

use crate::addr::{PageSize, VirtAddr};

/// Flush counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Single-entry flushes.
    pub page_flushes: u64,
    /// Whole-TLB flushes.
    pub full_flushes: u64,
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations that required a walk.
    pub misses: u64,
}

/// A set-of-translations TLB (capacity-unbounded: the experiments care
/// about *whether* an entry was cached, not replacement policy).
#[derive(Debug, Default)]
pub struct Tlb {
    entries: HashSet<u64>,
    stats: TlbStats,
}

impl Tlb {
    /// An empty TLB.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a translation for the page containing `vaddr`. Returns
    /// `true` on a hit (already cached).
    pub fn access(&mut self, vaddr: VirtAddr, size: PageSize) -> bool {
        let key = vaddr.align_down(size).as_u64();
        if self.entries.contains(&key) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            self.entries.insert(key);
            false
        }
    }

    /// True if the page's translation is currently cached.
    #[must_use]
    pub fn contains(&self, vaddr: VirtAddr, size: PageSize) -> bool {
        self.entries.contains(&vaddr.align_down(size).as_u64())
    }

    /// Flushes the entry for one page.
    pub fn flush_page(&mut self, vaddr: VirtAddr, size: PageSize) {
        self.entries.remove(&vaddr.align_down(size).as_u64());
        self.stats.page_flushes += 1;
    }

    /// Flushes everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.stats.full_flushes += 1;
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Cached entries (diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut tlb = Tlb::new();
        let va = VirtAddr::new(0x1234_5678);
        assert!(!tlb.access(va, PageSize::Small4K), "cold miss");
        assert!(tlb.access(va, PageSize::Small4K), "warm hit");
        assert!(
            tlb.access(VirtAddr::new(0x1234_5000), PageSize::Small4K),
            "same page"
        );
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn page_flush_is_targeted() {
        let mut tlb = Tlb::new();
        tlb.access(VirtAddr::new(0x1000), PageSize::Small4K);
        tlb.access(VirtAddr::new(0x2000), PageSize::Small4K);
        tlb.flush_page(VirtAddr::new(0x1000), PageSize::Small4K);
        assert!(!tlb.contains(VirtAddr::new(0x1000), PageSize::Small4K));
        assert!(tlb.contains(VirtAddr::new(0x2000), PageSize::Small4K));
        assert_eq!(tlb.stats().page_flushes, 1);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn full_flush_clears_all() {
        let mut tlb = Tlb::new();
        for i in 0..8u64 {
            tlb.access(VirtAddr::new(i * 4096), PageSize::Small4K);
        }
        tlb.flush_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().full_flushes, 1);
    }

    #[test]
    fn large_pages_key_on_their_base() {
        let mut tlb = Tlb::new();
        tlb.access(VirtAddr::new(0x40_0000), PageSize::Large2M);
        assert!(tlb.contains(VirtAddr::new(0x40_0000 + 12345), PageSize::Large2M));
        tlb.flush_page(VirtAddr::new(0x40_0000 + 99), PageSize::Large2M);
        assert!(!tlb.contains(VirtAddr::new(0x40_0000), PageSize::Large2M));
    }
}
