//! Page-table entries and their flag bits.
//!
//! The *young* bit carries memif's lightweight race detection (§5.2):
//! Remap installs a *semi-final* PTE identical to the final one except
//! that young is set; any page reference clears it; Release swaps in the
//! final PTE with a compare-and-swap that fails exactly when the entry
//! was disturbed during the DMA transfer.

use std::fmt;

use memif_hwsim::PhysAddr;

use crate::addr::PageSize;

const FLAG_PRESENT: u64 = 1 << 0;
const FLAG_WRITABLE: u64 = 1 << 1;
const FLAG_YOUNG: u64 = 1 << 2;
const FLAG_DIRTY: u64 = 1 << 3;
/// A Linux-style migration entry: accesses block until migration ends
/// (the baseline's race *prevention*, §5.2).
const FLAG_MIGRATION: u64 = 1 << 4;
/// Write-protect watch used by memif's proceed-and-recover mode: writes
/// trap to a custom fault handler that aborts the migration.
const FLAG_WATCH: u64 = 1 << 5;
const SIZE_SHIFT: u32 = 6;
const SIZE_MASK: u64 = 0b11 << SIZE_SHIFT;
const ADDR_MASK: u64 = !0xFFF;

/// A page-table entry value: physical frame address plus flag bits.
///
/// Plain value type; the table stores entries and offers the
/// compare-and-swap the driver relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u64);

impl Pte {
    /// The empty (non-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// A present, writable, young mapping of `frame` with `size`.
    ///
    /// Fresh mappings start *young* (recently referenced) and clean, as
    /// Linux installs them.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not aligned to `size`.
    #[must_use]
    pub fn mapping(frame: PhysAddr, size: PageSize) -> Self {
        assert!(
            frame.as_u64() & (size.bytes() - 1) == 0,
            "frame {frame} unaligned for {size} page"
        );
        Pte(frame.as_u64()
            | FLAG_PRESENT
            | FLAG_WRITABLE
            | FLAG_YOUNG
            | ((size as u64) << SIZE_SHIFT))
    }

    /// A Linux migration entry: not present; blocks accessors.
    #[must_use]
    pub fn migration_entry(size: PageSize) -> Self {
        Pte(FLAG_MIGRATION | ((size as u64) << SIZE_SHIFT))
    }

    /// Raw bits (diagnostics).
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The mapped physical frame.
    #[must_use]
    pub fn frame(self) -> PhysAddr {
        PhysAddr::new(self.0 & ADDR_MASK)
    }

    /// Page size recorded in the entry.
    #[must_use]
    pub fn size(self) -> PageSize {
        match (self.0 & SIZE_MASK) >> SIZE_SHIFT {
            1 => PageSize::Medium64K,
            2 => PageSize::Large2M,
            _ => PageSize::Small4K,
        }
    }

    /// Present (maps a frame)?
    #[must_use]
    pub fn is_present(self) -> bool {
        self.0 & FLAG_PRESENT != 0
    }

    /// Empty (neither present nor a special entry)?
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Writable?
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.0 & FLAG_WRITABLE != 0
    }

    /// Young (referenced) bit state.
    #[must_use]
    pub fn is_young(self) -> bool {
        self.0 & FLAG_YOUNG != 0
    }

    /// Dirty?
    #[must_use]
    pub fn is_dirty(self) -> bool {
        self.0 & FLAG_DIRTY != 0
    }

    /// A Linux migration entry?
    #[must_use]
    pub fn is_migration(self) -> bool {
        self.0 & FLAG_MIGRATION != 0
    }

    /// Write-watched (proceed-and-recover mode)?
    #[must_use]
    pub fn is_watched(self) -> bool {
        self.0 & FLAG_WATCH != 0
    }

    /// Copy with the young bit set/cleared.
    #[must_use]
    pub fn with_young(self, young: bool) -> Self {
        if young {
            Pte(self.0 | FLAG_YOUNG)
        } else {
            Pte(self.0 & !FLAG_YOUNG)
        }
    }

    /// Copy with the dirty bit set/cleared.
    #[must_use]
    pub fn with_dirty(self, dirty: bool) -> Self {
        if dirty {
            Pte(self.0 | FLAG_DIRTY)
        } else {
            Pte(self.0 & !FLAG_DIRTY)
        }
    }

    /// Copy with the write-watch bit set/cleared.
    #[must_use]
    pub fn with_watch(self, watch: bool) -> Self {
        if watch {
            Pte(self.0 | FLAG_WATCH)
        } else {
            Pte(self.0 & !FLAG_WATCH)
        }
    }

    /// Copy with writability set/cleared.
    #[must_use]
    pub fn with_writable(self, writable: bool) -> Self {
        if writable {
            Pte(self.0 | FLAG_WRITABLE)
        } else {
            Pte(self.0 & !FLAG_WRITABLE)
        }
    }

    /// Copy pointing at a different frame, all flags preserved.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is unaligned for the entry's size.
    #[must_use]
    pub fn with_frame(self, frame: PhysAddr) -> Self {
        assert!(
            frame.as_u64() & (self.size().bytes() - 1) == 0,
            "frame {frame} unaligned for {} page",
            self.size()
        );
        Pte((self.0 & !ADDR_MASK) | frame.as_u64())
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("pte[empty]");
        }
        write!(
            f,
            "pte[{} {} {}{}{}{}{}{}]",
            self.frame(),
            self.size(),
            if self.is_present() { "P" } else { "-" },
            if self.is_writable() { "W" } else { "-" },
            if self.is_young() { "Y" } else { "-" },
            if self.is_dirty() { "D" } else { "-" },
            if self.is_migration() { "M" } else { "-" },
            if self.is_watched() { "X" } else { "-" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_mapping_flags() {
        let pte = Pte::mapping(PhysAddr::new(0x8000_0000), PageSize::Small4K);
        assert!(pte.is_present());
        assert!(pte.is_writable());
        assert!(pte.is_young(), "fresh mappings are young");
        assert!(!pte.is_dirty());
        assert!(!pte.is_migration());
        assert_eq!(pte.frame(), PhysAddr::new(0x8000_0000));
        assert_eq!(pte.size(), PageSize::Small4K);
    }

    #[test]
    fn size_encoding() {
        for size in PageSize::ALL {
            let pte = Pte::mapping(PhysAddr::new(0x4000_0000), size);
            assert_eq!(pte.size(), size);
        }
    }

    #[test]
    fn semi_final_vs_final_differ_only_in_young() {
        // The §5.2 relationship: semi-final == final except young.
        let final_pte =
            Pte::mapping(PhysAddr::new(0x0C00_0000), PageSize::Small4K).with_young(false);
        let semi_final = final_pte.with_young(true);
        assert_eq!(semi_final.with_young(false), final_pte);
        assert_ne!(semi_final, final_pte);
        assert_eq!(semi_final.frame(), final_pte.frame());
    }

    #[test]
    fn migration_entry_blocks() {
        let pte = Pte::migration_entry(PageSize::Medium64K);
        assert!(pte.is_migration());
        assert!(!pte.is_present());
        assert!(!pte.is_empty());
        assert_eq!(pte.size(), PageSize::Medium64K);
    }

    #[test]
    fn frame_replacement_preserves_flags() {
        let pte = Pte::mapping(PhysAddr::new(0x8000_0000), PageSize::Small4K).with_dirty(true);
        let moved = pte.with_frame(PhysAddr::new(0x0C00_1000));
        assert_eq!(moved.frame(), PhysAddr::new(0x0C00_1000));
        assert!(moved.is_dirty());
        assert!(moved.is_present());
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_frame_rejected() {
        let _ = Pte::mapping(PhysAddr::new(0x1234), PageSize::Large2M);
    }

    #[test]
    fn watch_bit() {
        let pte = Pte::mapping(PhysAddr::new(0x1000), PageSize::Small4K).with_watch(true);
        assert!(pte.is_watched());
        assert!(!pte.with_watch(false).is_watched());
    }

    #[test]
    fn display_is_informative() {
        let pte = Pte::mapping(PhysAddr::new(0x1000), PageSize::Small4K);
        let s = pte.to_string();
        assert!(s.contains("0x1000"));
        assert!(s.contains('Y'));
        assert_eq!(Pte::EMPTY.to_string(), "pte[empty]");
    }
}
