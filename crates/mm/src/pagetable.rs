//! A three-level radix page table with gang lookup.
//!
//! Geometry follows ARM LPAE-style long descriptors: three levels of
//! 9-bit indices over a 39-bit virtual space, 4 KiB granules. 2 MiB pages
//! are level-2 block entries; 64 KiB pages are represented by one entry
//! at their aligned base granule (the contiguous-hint simplification).
//!
//! *Gang page lookup* (§5.1): all pages of a move request are virtually
//! contiguous, so most of their PTEs are adjacent. Only the first page
//! descends vertically from the root; the rest walk horizontally across
//! neighboring entries, restarting the descent only when the walk crosses
//! into a different leaf table. [`WalkStats`] counts both step kinds so
//! callers can charge the corresponding costs.

use crate::addr::{PageSize, VirtAddr};
use crate::pte::Pte;

const LEVEL_BITS: u32 = 9;
const FANOUT: usize = 1 << LEVEL_BITS;

/// Counts of page-table walking work, for cost charging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkStats {
    /// Full descents from the table root.
    pub vertical: u32,
    /// Steps to an adjacent entry within the same leaf table.
    pub horizontal: u32,
}

impl WalkStats {
    fn vertical_step(&mut self) {
        self.vertical += 1;
    }

    fn horizontal_step(&mut self) {
        self.horizontal += 1;
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: WalkStats) {
        self.vertical += other.vertical;
        self.horizontal += other.horizontal;
    }
}

#[derive(Debug)]
enum Slot {
    Empty,
    Table(Box<Node>),
    Leaf(Pte),
}

#[derive(Debug)]
struct Node {
    slots: Vec<Slot>,
}

impl Node {
    fn new() -> Self {
        Node {
            slots: (0..FANOUT).map(|_| Slot::Empty).collect(),
        }
    }
}

/// Errors from page-table mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The virtual address is not aligned to the page size.
    Unaligned(VirtAddr, PageSize),
    /// A mapping of a different granularity occupies the slot.
    Occupied(VirtAddr),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Unaligned(va, size) => write!(f, "{va} unaligned for {size} page"),
            TableError::Occupied(va) => write!(f, "conflicting mapping at {va}"),
        }
    }
}

impl std::error::Error for TableError {}

fn indices(vaddr: VirtAddr) -> [usize; 3] {
    let va = vaddr.as_u64();
    [
        ((va >> (12 + 2 * LEVEL_BITS)) & (FANOUT as u64 - 1)) as usize,
        ((va >> (12 + LEVEL_BITS)) & (FANOUT as u64 - 1)) as usize,
        ((va >> 12) & (FANOUT as u64 - 1)) as usize,
    ]
}

/// Leaf coordinates of a mapping: which table node and which entry.
fn leaf_key(vaddr: VirtAddr, size: PageSize) -> ([usize; 2], usize) {
    let [i1, i2, i3] = indices(vaddr);
    match size {
        PageSize::Large2M => ([i1, usize::MAX], i2),
        _ => ([i1, i2], i3),
    }
}

/// The per-address-space page table.
#[derive(Debug)]
pub struct PageTable {
    root: Node,
    mapped: usize,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        PageTable {
            root: Node::new(),
            mapped: 0,
        }
    }

    /// Number of live leaf entries.
    #[must_use]
    pub fn mapped_entries(&self) -> usize {
        self.mapped
    }

    /// Installs `pte` at `vaddr` (granularity from `pte.size()`).
    ///
    /// # Errors
    ///
    /// [`TableError::Unaligned`] for a misaligned address;
    /// [`TableError::Occupied`] if a table node blocks a block mapping or
    /// vice versa. Overwriting an existing *leaf* of the same shape is
    /// allowed (it is a remap).
    pub fn map(&mut self, vaddr: VirtAddr, pte: Pte) -> Result<(), TableError> {
        let size = pte.size();
        if !vaddr.is_aligned(size) {
            return Err(TableError::Unaligned(vaddr, size));
        }
        let slot = self.leaf_slot_mut(vaddr, size)?;
        let was_empty = matches!(slot, Slot::Empty);
        *slot = Slot::Leaf(pte);
        if was_empty {
            self.mapped += 1;
        }
        Ok(())
    }

    /// Removes the mapping at `vaddr`, returning the old entry.
    pub fn unmap(&mut self, vaddr: VirtAddr, size: PageSize) -> Option<Pte> {
        match self.leaf_slot_mut(vaddr, size) {
            Ok(slot) => match std::mem::replace(slot, Slot::Empty) {
                Slot::Leaf(pte) => {
                    self.mapped -= 1;
                    Some(pte)
                }
                old => {
                    *slot = old;
                    None
                }
            },
            Err(_) => None,
        }
    }

    /// Looks up the entry mapping `vaddr` at `size` granularity, with a
    /// full vertical walk.
    #[must_use]
    pub fn lookup(&self, vaddr: VirtAddr, size: PageSize) -> (Option<Pte>, WalkStats) {
        let mut stats = WalkStats::default();
        stats.vertical_step();
        (self.peek(vaddr, size), stats)
    }

    /// Entry value without any cost accounting (internal/diagnostics).
    #[must_use]
    pub fn peek(&self, vaddr: VirtAddr, size: PageSize) -> Option<Pte> {
        let [i1, i2, i3] = indices(vaddr);
        let l2 = match &self.root.slots[i1] {
            Slot::Table(n) => n,
            _ => return None,
        };
        if size == PageSize::Large2M {
            return match &l2.slots[i2] {
                Slot::Leaf(pte) => Some(*pte),
                _ => None,
            };
        }
        let l3 = match &l2.slots[i2] {
            Slot::Table(n) => n,
            _ => return None,
        };
        match &l3.slots[i3] {
            Slot::Leaf(pte) => Some(*pte),
            _ => None,
        }
    }

    /// Gang lookup (§5.1): entries for `count` consecutive `size` pages
    /// starting at `start`. Returns one `Option<Pte>` per page plus the
    /// walk statistics (first page vertical, neighbors horizontal,
    /// re-descending on leaf-table boundaries).
    ///
    /// With `gang` false every page performs a full vertical walk — the
    /// per-page baseline behavior, kept for ablation A2.
    #[must_use]
    pub fn lookup_range(
        &self,
        start: VirtAddr,
        count: u32,
        size: PageSize,
        gang: bool,
    ) -> (Vec<Option<Pte>>, WalkStats) {
        let mut out = Vec::with_capacity(count as usize);
        let stats = self.lookup_range_into(start, count, size, gang, &mut out);
        (out, stats)
    }

    /// [`lookup_range`](Self::lookup_range) writing into a caller-owned
    /// buffer (cleared first), so hot paths can reuse one allocation
    /// across requests instead of allocating a result vector per call.
    pub fn lookup_range_into(
        &self,
        start: VirtAddr,
        count: u32,
        size: PageSize,
        gang: bool,
        out: &mut Vec<Option<Pte>>,
    ) -> WalkStats {
        out.clear();
        out.reserve(count as usize);
        let mut stats = WalkStats::default();
        let mut prev_node: Option<[usize; 2]> = None;
        for i in 0..count {
            let vaddr = start.offset(u64::from(i) * size.bytes());
            let (node, _) = leaf_key(vaddr, size);
            if gang && prev_node == Some(node) {
                stats.horizontal_step();
            } else {
                stats.vertical_step();
            }
            prev_node = Some(node);
            out.push(self.peek(vaddr, size));
        }
        stats
    }

    /// Replaces the entry at `vaddr`, returning the old one.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError`] from slot resolution.
    pub fn replace(&mut self, vaddr: VirtAddr, new: Pte) -> Result<Pte, TableError> {
        let slot = self.leaf_slot_mut(vaddr, new.size())?;
        let old = match std::mem::replace(slot, Slot::Leaf(new)) {
            Slot::Leaf(pte) => pte,
            Slot::Empty => {
                self.mapped += 1;
                Pte::EMPTY
            }
            Slot::Table(_) => unreachable!("leaf_slot_mut never returns a table slot"),
        };
        Ok(old)
    }

    /// The compare-and-swap of §5.2: installs `new` only if the current
    /// entry equals `expected`; otherwise returns the entry actually
    /// found. This is how memif's Release detects races: any concurrent
    /// modification of the semi-final PTE makes the swap fail.
    ///
    /// # Errors
    ///
    /// `Err(actual)` when the current entry differs from `expected`.
    pub fn compare_exchange(
        &mut self,
        vaddr: VirtAddr,
        expected: Pte,
        new: Pte,
    ) -> Result<(), Pte> {
        let size = new.size();
        let current = self.peek(vaddr, size).unwrap_or(Pte::EMPTY);
        if current != expected {
            return Err(current);
        }
        self.replace(vaddr, new).map_err(|_| current)?;
        Ok(())
    }

    fn leaf_slot_mut(&mut self, vaddr: VirtAddr, size: PageSize) -> Result<&mut Slot, TableError> {
        if !vaddr.is_aligned(size) {
            return Err(TableError::Unaligned(vaddr, size));
        }
        let [i1, i2, i3] = indices(vaddr);
        let l2 = match &mut self.root.slots[i1] {
            slot @ Slot::Empty => {
                *slot = Slot::Table(Box::new(Node::new()));
                match slot {
                    Slot::Table(n) => n,
                    _ => unreachable!(),
                }
            }
            Slot::Table(n) => n,
            Slot::Leaf(_) => return Err(TableError::Occupied(vaddr)),
        };
        if size == PageSize::Large2M {
            return match &mut l2.slots[i2] {
                Slot::Table(_) => Err(TableError::Occupied(vaddr)),
                slot => Ok(slot),
            };
        }
        let l3 = match &mut l2.slots[i2] {
            slot @ Slot::Empty => {
                *slot = Slot::Table(Box::new(Node::new()));
                match slot {
                    Slot::Table(n) => n,
                    _ => unreachable!(),
                }
            }
            Slot::Table(n) => n,
            Slot::Leaf(_) => return Err(TableError::Occupied(vaddr)),
        };
        Ok(&mut l3.slots[i3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif_hwsim::PhysAddr;

    fn pte(frame: u64, size: PageSize) -> Pte {
        Pte::mapping(PhysAddr::new(frame), size)
    }

    #[test]
    fn map_lookup_unmap() {
        let mut t = PageTable::new();
        let va = VirtAddr::new(0x4000_0000);
        t.map(va, pte(0x8000_0000, PageSize::Small4K)).unwrap();
        assert_eq!(t.mapped_entries(), 1);
        let (found, stats) = t.lookup(va, PageSize::Small4K);
        assert_eq!(found.unwrap().frame(), PhysAddr::new(0x8000_0000));
        assert_eq!(stats.vertical, 1);
        assert_eq!(
            t.unmap(va, PageSize::Small4K).unwrap().frame(),
            PhysAddr::new(0x8000_0000)
        );
        assert_eq!(t.mapped_entries(), 0);
        assert!(t.peek(va, PageSize::Small4K).is_none());
    }

    #[test]
    fn large_pages_live_at_level_2() {
        let mut t = PageTable::new();
        let va = VirtAddr::new(0x4000_0000);
        t.map(va, pte(0x8020_0000, PageSize::Large2M)).unwrap();
        assert_eq!(
            t.peek(va, PageSize::Large2M).unwrap().size(),
            PageSize::Large2M
        );
        // A 4 KiB mapping inside the block conflicts.
        assert_eq!(
            t.map(va.offset(4096), pte(0x9000_0000, PageSize::Small4K)),
            Err(TableError::Occupied(va.offset(4096)))
        );
    }

    #[test]
    fn unaligned_map_rejected() {
        let mut t = PageTable::new();
        assert!(matches!(
            t.map(
                VirtAddr::new(0x1234_0000),
                pte(0x8020_0000, PageSize::Large2M)
            ),
            Err(TableError::Unaligned(..))
        ));
    }

    #[test]
    fn gang_lookup_walks_horizontally() {
        let mut t = PageTable::new();
        let base = VirtAddr::new(0x10_0000);
        for i in 0..16u64 {
            t.map(
                base.offset(i * 4096),
                pte(0x8000_0000 + i * 4096, PageSize::Small4K),
            )
            .unwrap();
        }
        let (entries, stats) = t.lookup_range(base, 16, PageSize::Small4K, true);
        assert_eq!(entries.len(), 16);
        assert!(entries.iter().all(Option::is_some));
        assert_eq!(stats.vertical, 1, "one descent for the whole request");
        assert_eq!(stats.horizontal, 15);
    }

    #[test]
    fn gang_lookup_redescends_across_leaf_tables() {
        let mut t = PageTable::new();
        // Straddle a 2 MiB leaf-table boundary: last granule of one L3
        // table and first of the next.
        let base = VirtAddr::new(0x20_0000 - 4096);
        t.map(base, pte(0x8000_0000, PageSize::Small4K)).unwrap();
        t.map(base.offset(4096), pte(0x8000_1000, PageSize::Small4K))
            .unwrap();
        let (_, stats) = t.lookup_range(base, 2, PageSize::Small4K, true);
        assert_eq!(stats.vertical, 2, "boundary crossing forces a re-descent");
        assert_eq!(stats.horizontal, 0);
    }

    #[test]
    fn per_page_lookup_is_all_vertical() {
        let mut t = PageTable::new();
        let base = VirtAddr::new(0x10_0000);
        for i in 0..8u64 {
            t.map(
                base.offset(i * 4096),
                pte(0x8000_0000 + i * 4096, PageSize::Small4K),
            )
            .unwrap();
        }
        let (_, stats) = t.lookup_range(base, 8, PageSize::Small4K, false);
        assert_eq!(stats.vertical, 8, "baseline walks every page from the root");
        assert_eq!(stats.horizontal, 0);
    }

    #[test]
    fn gang_lookup_reports_holes() {
        let mut t = PageTable::new();
        let base = VirtAddr::new(0x10_0000);
        t.map(base, pte(0x8000_0000, PageSize::Small4K)).unwrap();
        t.map(base.offset(2 * 4096), pte(0x8000_2000, PageSize::Small4K))
            .unwrap();
        let (entries, _) = t.lookup_range(base, 3, PageSize::Small4K, true);
        assert!(entries[0].is_some());
        assert!(entries[1].is_none());
        assert!(entries[2].is_some());
    }

    #[test]
    fn compare_exchange_detects_modification() {
        let mut t = PageTable::new();
        let va = VirtAddr::new(0x5000_0000);
        let semi_final = pte(0x0C00_0000, PageSize::Small4K); // young set
        t.map(va, semi_final).unwrap();

        // Undisturbed: CAS succeeds.
        let final_pte = semi_final.with_young(false);
        t.compare_exchange(va, semi_final, final_pte).unwrap();
        assert_eq!(t.peek(va, PageSize::Small4K).unwrap(), final_pte);

        // Disturbed (a reference cleared young already): CAS fails and
        // reports the actual entry.
        t.replace(va, semi_final).unwrap();
        t.replace(va, semi_final.with_young(false)).unwrap(); // the "race"
        let err = t.compare_exchange(va, semi_final, final_pte).unwrap_err();
        assert_eq!(err, semi_final.with_young(false));
    }

    #[test]
    fn replace_returns_old() {
        let mut t = PageTable::new();
        let va = VirtAddr::new(0x10_0000);
        assert_eq!(
            t.replace(va, pte(0x8000_0000, PageSize::Small4K)).unwrap(),
            Pte::EMPTY
        );
        let old = t.replace(va, pte(0x8000_1000, PageSize::Small4K)).unwrap();
        assert_eq!(old.frame(), PhysAddr::new(0x8000_0000));
        assert_eq!(t.mapped_entries(), 1);
    }

    #[test]
    fn walk_stats_merge() {
        let mut a = WalkStats {
            vertical: 1,
            horizontal: 2,
        };
        a.merge(WalkStats {
            vertical: 3,
            horizontal: 4,
        });
        assert_eq!(
            a,
            WalkStats {
                vertical: 4,
                horizontal: 6
            }
        );
    }

    #[test]
    fn medium_pages_at_aligned_base() {
        let mut t = PageTable::new();
        let va = VirtAddr::new(0x100_0000);
        t.map(va, pte(0x8001_0000, PageSize::Medium64K)).unwrap();
        assert_eq!(
            t.peek(va, PageSize::Medium64K).unwrap().size(),
            PageSize::Medium64K
        );
        assert!(
            t.map(
                VirtAddr::new(0x100_1000),
                pte(0x8000_0000, PageSize::Medium64K)
            )
            .is_err(),
            "64 KiB mappings must be 64 KiB aligned"
        );
    }
}
