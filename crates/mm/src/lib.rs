//! Virtual-memory substrate for the memif reproduction.
//!
//! Everything the memif driver and the Linux-migration baseline need
//! from the kernel's memory manager, rebuilt as a library:
//!
//! * [`addr`] — virtual addresses and the three page sizes of the
//!   evaluation (4 KiB / 64 KiB / 2 MiB);
//! * [`pte`] — page-table entries with the *young* bit that carries
//!   memif's lightweight race detection (§5.2), Linux migration entries,
//!   and the write-watch bit of proceed-and-recover mode;
//! * [`pagetable`] — a three-level radix table with the *gang page
//!   lookup* of §5.1 (vertical descent once, horizontal neighbor steps
//!   after) and the PTE compare-and-swap of §5.2;
//! * [`alloc`] — per-node buddy frame allocation with a frame table
//!   (refcounts, owner node);
//! * [`tlb`] — a software TLB model for flush accounting;
//! * [`space`] — address spaces: VMAs, eager anonymous mappings, CPU
//!   access semantics (young clearing, dirty marking), and fault types.
//!
//! Cost charging is deliberately *not* done here: operations return step
//! counts ([`pagetable::WalkStats`], [`tlb::TlbStats`]) and the drivers
//! charge the [`memif_hwsim::CostModel`] prices at their call sites, so
//! the same mechanism serves both the baseline and memif with their
//! respective designs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod pagetable;
pub mod pte;
pub mod space;
pub mod tlb;

pub use addr::{PageSize, VirtAddr};
pub use alloc::{AllocError, FrameAllocator, FrameInfo};
pub use pagetable::{PageTable, TableError, WalkStats};
pub use pte::Pte;
pub use space::{
    AccessKind, AddressSpace, AllocPolicy, Fault, MmError, Populate, ScanOutcome, Vma,
};
pub use tlb::{Tlb, TlbStats};
