//! The pure decision core: decayed heat, waterfall tier selection
//! under per-tier watermarks, and hysteresis.
//!
//! The engine is deliberately sim-free — it sees scan results and
//! per-tier capacity numbers, and returns move lists. Placement follows
//! the *waterfall* discipline over a ranked ladder of tiers (0 =
//! fastest): hot regions climb one rank, cold regions sink one rank,
//! and frozen regions (when the ladder ends in a compressed floor)
//! sink straight to the bottom. All state lives in `BTreeMap`s keyed by
//! region base address and every selection sorts with a total order
//! (heat, then base), so identical inputs produce identical plans: the
//! daemon's epoch loop is replayable because this layer is a pure
//! function of its history.

use std::collections::BTreeMap;

use memif_hwsim::TierRank;
use memif_mm::PageSize;

use crate::PolicyConfig;

/// Per-region policy state.
#[derive(Debug, Clone, Copy)]
pub struct TrackedRegion {
    /// Region base address.
    pub base: u64,
    /// Pages covered.
    pub pages: u32,
    /// Page granularity.
    pub page_size: PageSize,
    /// Exponentially-decayed heat, in page-touches.
    pub heat: u64,
    /// The tier rank currently backing the region (0 = fastest), as an
    /// index into the daemon's tier map.
    pub tier: TierRank,
    /// True while a policy move for the region is outstanding (the
    /// region is neither scanned nor re-planned until it retires).
    pub inflight: bool,
}

impl TrackedRegion {
    /// Bytes covered by the region.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        u64::from(self.pages) * self.page_size.bytes()
    }
}

/// One planned placement change between adjacent ranks — or, for a
/// frozen region, a plunge to the compressed floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMove {
    /// Region base address.
    pub base: u64,
    /// The rank the region leaves.
    pub from: TierRank,
    /// The rank the region lands on.
    pub to: TierRank,
}

/// One epoch's move decisions, in issue order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyPlan {
    /// Regions sinking down the waterfall, coldest first. Demotions are
    /// issued before promotions so capacity frees ahead of demand.
    pub demote: Vec<PlannedMove>,
    /// Regions climbing one rank, hottest first.
    pub promote: Vec<PlannedMove>,
    /// Planned moves that did not fit under their target tier's
    /// watermark this epoch (retried once capacity frees).
    pub dropped: u32,
}

/// One tier's occupancy as seen by the frame allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierOccupancy {
    /// Unallocated bytes on the tier.
    pub free: u64,
    /// The tier's total capacity in bytes.
    pub total: u64,
}

/// The placement engine: tracked regions plus the selection knobs,
/// resolved per tier.
#[derive(Debug)]
pub struct PolicyEngine {
    regions: BTreeMap<u64, TrackedRegion>,
    tiers: usize,
    compressed_floor: bool,
    decay_num: u64,
    decay_den: u64,
    promote_permille: Vec<u64>,
    demote_permille: Vec<u64>,
    watermark_permille: Vec<u64>,
    freeze_permille: u64,
}

impl PolicyEngine {
    /// A two-tier engine (the classic fast/slow pair) with `cfg`'s
    /// selection knobs and no tracked regions.
    #[must_use]
    pub fn new(cfg: &PolicyConfig) -> Self {
        Self::with_tiers(cfg, 2, false)
    }

    /// An engine planning over `tiers` ranks. `compressed_floor`
    /// declares that the last rank is compressed storage, which enables
    /// the freeze rule when [`PolicyConfig::freeze_permille`] is set.
    ///
    /// Per-tier knobs resolve from `cfg.tier_overrides[rank]`, falling
    /// back to the global knobs.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is zero.
    #[must_use]
    pub fn with_tiers(cfg: &PolicyConfig, tiers: usize, compressed_floor: bool) -> Self {
        assert!(tiers >= 1, "an engine needs at least one tier");
        let knob = |rank: usize, pick: fn(&crate::TierTuning) -> Option<u32>, global: u32| {
            u64::from(
                cfg.tier_overrides
                    .get(rank)
                    .and_then(pick)
                    .unwrap_or(global),
            )
        };
        PolicyEngine {
            regions: BTreeMap::new(),
            tiers,
            compressed_floor,
            decay_num: u64::from(cfg.decay_num),
            decay_den: u64::from(cfg.decay_den).max(1),
            promote_permille: (0..tiers)
                .map(|t| knob(t, |o| o.promote_permille, cfg.promote_permille))
                .collect(),
            demote_permille: (0..tiers)
                .map(|t| knob(t, |o| o.demote_permille, cfg.demote_permille))
                .collect(),
            watermark_permille: (0..tiers)
                .map(|t| knob(t, |o| o.watermark_permille, cfg.watermark_permille))
                .collect(),
            freeze_permille: u64::from(cfg.freeze_permille),
        }
    }

    /// The number of ranks the engine plans over.
    #[must_use]
    pub fn tiers(&self) -> usize {
        self.tiers
    }

    /// Registers a region for placement (idempotent per base address).
    pub fn track(&mut self, base: u64, pages: u32, page_size: PageSize, tier: TierRank) {
        self.regions.entry(base).or_insert(TrackedRegion {
            base,
            pages,
            page_size,
            heat: 0,
            tier,
            inflight: false,
        });
    }

    /// Folds one epoch's scan result into `base`'s heat: decay, then
    /// add the referenced page count.
    pub fn observe(&mut self, base: u64, referenced: u32) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.heat = r.heat * self.decay_num / self.decay_den + u64::from(referenced);
        }
    }

    /// Decays `base`'s heat without new observations (regions skipped
    /// by the scan — e.g. with a move outstanding — still cool down).
    pub fn decay(&mut self, base: u64) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.heat = r.heat * self.decay_num / self.decay_den;
        }
    }

    /// Updates residency bookkeeping for `base`.
    pub fn set_tier(&mut self, base: u64, tier: TierRank) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.tier = tier;
        }
    }

    /// Marks/unmarks an outstanding policy move for `base`.
    pub fn set_inflight(&mut self, base: u64, inflight: bool) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.inflight = inflight;
        }
    }

    /// The tracked regions in base-address order.
    pub fn regions(&self) -> impl Iterator<Item = &TrackedRegion> {
        self.regions.values()
    }

    /// One region's state.
    #[must_use]
    pub fn region(&self, base: u64) -> Option<&TrackedRegion> {
        self.regions.get(&base)
    }

    fn threshold(knobs: &[u64], rank: TierRank) -> u64 {
        knobs
            .get(rank.0 as usize)
            .copied()
            .or_else(|| knobs.last().copied())
            .unwrap_or(0)
    }

    /// A region is *hot* when its heat reaches its tier's
    /// `promote_permille` of its page count — e.g. 500 means "half the
    /// region's pages' worth of decayed touches".
    #[must_use]
    pub fn is_hot(&self, r: &TrackedRegion) -> bool {
        r.heat * 1000 >= u64::from(r.pages) * Self::threshold(&self.promote_permille, r.tier)
    }

    /// A region is *cold* when its heat has decayed to its tier's
    /// `demote_permille` of its page count. The gap between the two
    /// thresholds is the hysteresis band: a region between them is
    /// neither promoted nor demoted, so one noisy epoch cannot
    /// ping-pong it. Each tier carries its own band.
    #[must_use]
    pub fn is_cold(&self, r: &TrackedRegion) -> bool {
        r.heat * 1000 <= u64::from(r.pages) * Self::threshold(&self.demote_permille, r.tier)
    }

    /// A region is *frozen* when freezing is enabled (a compressed
    /// floor exists and `freeze_permille > 0`) and its heat has decayed
    /// to `freeze_permille` of its page count: it skips the waterfall
    /// and sinks straight to the floor.
    #[must_use]
    pub fn is_frozen(&self, r: &TrackedRegion) -> bool {
        self.compressed_floor
            && self.freeze_permille > 0
            && r.heat * 1000 <= u64::from(r.pages) * self.freeze_permille
    }

    /// Builds this epoch's plan against every tier's current occupancy
    /// (`occ[rank]` from the frame allocator; one entry per rank).
    ///
    /// Selection, waterfall order: every cold region sinks one rank
    /// (frozen regions sink to the floor), coldest first; hot regions
    /// climb one rank, hottest first. Moves into a non-floor tier must
    /// fit under that tier's watermark ceiling, crediting the bytes
    /// this epoch's earlier selections free — so a demotion out of a
    /// tier makes room for a promotion into it within the same plan.
    /// The floor accepts demotions unconditionally. Regions with a move
    /// outstanding are never re-planned.
    ///
    /// # Panics
    ///
    /// Panics unless `occ` has exactly one entry per tier.
    #[must_use]
    pub fn plan(&self, occ: &[TierOccupancy]) -> PolicyPlan {
        assert_eq!(occ.len(), self.tiers, "one occupancy entry per tier");
        let floor = TierRank((self.tiers - 1) as u16);
        let mut used: Vec<u64> = occ.iter().map(|o| o.total.saturating_sub(o.free)).collect();
        let ceilings: Vec<u64> = occ
            .iter()
            .zip(&self.watermark_permille)
            .map(|(o, w)| o.total / 1000 * w)
            .collect();

        let mut sink: Vec<(&TrackedRegion, TierRank)> = self
            .regions
            .values()
            .filter(|r| !r.inflight && r.tier < floor)
            .filter_map(|r| {
                if self.is_frozen(r) {
                    Some((r, floor))
                } else if self.is_cold(r) {
                    Some((r, r.tier.down()))
                } else {
                    None
                }
            })
            .collect();
        // Coldest first; base address breaks ties so the order is total.
        sink.sort_by_key(|(r, _)| (r.heat, r.base));

        let mut plan = PolicyPlan::default();
        for (r, to) in sink {
            let (from_ix, to_ix) = (r.tier.0 as usize, to.0 as usize);
            if to != floor && used[to_ix] + r.bytes() > ceilings[to_ix] {
                plan.dropped += 1;
                continue;
            }
            used[from_ix] = used[from_ix].saturating_sub(r.bytes());
            used[to_ix] += r.bytes();
            plan.demote.push(PlannedMove {
                base: r.base,
                from: r.tier,
                to,
            });
        }

        // Adversarial per-tier overrides can invert the hysteresis band
        // (promote bar at or below the demote bar), making a region
        // simultaneously cold and hot — never plan it twice.
        let sunk: std::collections::BTreeSet<u64> = plan.demote.iter().map(|m| m.base).collect();
        let mut climb: Vec<&TrackedRegion> = self
            .regions
            .values()
            .filter(|r| !r.inflight && r.tier.0 > 0 && self.is_hot(r) && !sunk.contains(&r.base))
            .collect();
        // Hottest first (descending heat, ascending base on ties).
        climb.sort_by_key(|r| (std::cmp::Reverse(r.heat), r.base));
        for r in climb {
            let to = r.tier.up();
            let (from_ix, to_ix) = (r.tier.0 as usize, to.0 as usize);
            if used[to_ix] + r.bytes() <= ceilings[to_ix] {
                used[from_ix] = used[from_ix].saturating_sub(r.bytes());
                used[to_ix] += r.bytes();
                plan.promote.push(PlannedMove {
                    base: r.base,
                    from: r.tier,
                    to,
                });
            } else {
                plan.dropped += 1;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TierTuning;

    const PAGE: PageSize = PageSize::Small4K;
    const PAGES: u32 = 64; // 256 KiB regions
    const T0: TierRank = TierRank(0);
    const T1: TierRank = TierRank(1);

    fn engine() -> PolicyEngine {
        PolicyEngine::new(&PolicyConfig::default())
    }

    /// Occupancy for the classic pair: SRAM-sized tier 0, roomy tier 1.
    fn two_tier(fast_free: u64, fast_total: u64) -> [TierOccupancy; 2] {
        [
            TierOccupancy {
                free: fast_free,
                total: fast_total,
            },
            TierOccupancy {
                free: 24 << 20,
                total: 24 << 20,
            },
        ]
    }

    fn bases(moves: &[PlannedMove]) -> Vec<u64> {
        moves.iter().map(|m| m.base).collect()
    }

    #[test]
    fn heat_decays_exponentially() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, T1);
        e.observe(0x1000, 64);
        assert_eq!(e.region(0x1000).unwrap().heat, 64);
        e.observe(0x1000, 64);
        assert_eq!(e.region(0x1000).unwrap().heat, 64 / 4 + 64);
        e.decay(0x1000);
        assert_eq!(e.region(0x1000).unwrap().heat, 80 / 4);
    }

    #[test]
    fn hysteresis_band_holds_regions_in_place() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, T0);
        // Default thresholds: hot >= 500‰ of 64 pages = 32; cold <= 150‰
        // of 64 pages = 9.6. Heat 20 sits between the two.
        e.observe(0x1000, 20);
        let r = *e.region(0x1000).unwrap();
        assert!(!e.is_hot(&r) && !e.is_cold(&r), "inside the band");
        let plan = e.plan(&two_tier(1 << 20, 6 << 20));
        assert!(plan.demote.is_empty() && plan.promote.is_empty());
    }

    #[test]
    fn plan_orders_demotions_before_promotions_fit() {
        let mut e = engine();
        // Two cold tier-0 residents, one hot tier-1 region.
        e.track(0x1000, PAGES, PAGE, T0);
        e.track(0x2000_0000, PAGES, PAGE, T0);
        e.track(0x4000_0000, PAGES, PAGE, T1);
        e.observe(0x2000_0000, 5); // slightly warmer of the two cold ones
        e.observe(0x4000_0000, 64);

        // Tier 0 nearly full: only the demotions make the promotion fit.
        let total = 6 << 20;
        let free = 600 << 10; // 600 KiB free, watermark 900‰ of 6 MiB
        let plan = e.plan(&two_tier(free, total));
        assert_eq!(
            bases(&plan.demote),
            vec![0x1000, 0x2000_0000],
            "coldest first"
        );
        assert_eq!(plan.demote[0].from, T0);
        assert_eq!(plan.demote[0].to, T1);
        assert_eq!(bases(&plan.promote), vec![0x4000_0000]);
        assert_eq!(plan.promote[0].to, T0);
        assert_eq!(plan.dropped, 0);
    }

    #[test]
    fn watermark_drops_unfittable_promotions() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, T1);
        e.track(0x2000_0000, PAGES, PAGE, T1);
        e.observe(0x1000, 60);
        e.observe(0x2000_0000, 64);
        // Room under the ceiling for exactly one 256 KiB region.
        let total: u64 = 6 << 20;
        let ceiling = total / 1000 * 900;
        let used = ceiling - (256 << 10);
        let plan = e.plan(&two_tier(total - used, total));
        assert_eq!(
            bases(&plan.promote),
            vec![0x2000_0000],
            "hottest wins the slot"
        );
        assert_eq!(plan.dropped, 1);
    }

    #[test]
    fn inflight_regions_are_never_replanned() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, T1);
        e.observe(0x1000, 64);
        e.set_inflight(0x1000, true);
        let plan = e.plan(&two_tier(6 << 20, 6 << 20));
        assert!(plan.promote.is_empty());
        e.set_inflight(0x1000, false);
        assert_eq!(
            bases(&e.plan(&two_tier(6 << 20, 6 << 20)).promote),
            vec![0x1000]
        );
    }

    /// Four ranks, freezing on: an ice-cold region plunges to the
    /// floor, a merely cold one sinks exactly one rank, and a hot one
    /// climbs exactly one rank.
    #[test]
    fn waterfall_moves_step_one_rank_except_frozen() {
        let cfg = PolicyConfig {
            freeze_permille: 50, // 64 pages → frozen at heat <= 3.2
            ..PolicyConfig::default()
        };
        let mut e = PolicyEngine::with_tiers(&cfg, 4, true);
        let roomy = [TierOccupancy {
            free: 64 << 20,
            total: 64 << 20,
        }; 4];
        e.track(0x1000, PAGES, PAGE, T0); // heat 0: frozen
        e.track(0x2000_0000, PAGES, PAGE, T0); // cold, not frozen
        e.observe(0x2000_0000, 5);
        e.track(0x4000_0000, PAGES, PAGE, TierRank(2)); // hot
        e.observe(0x4000_0000, 64);

        let plan = e.plan(&roomy);
        assert_eq!(
            plan.demote,
            vec![
                PlannedMove {
                    base: 0x1000,
                    from: T0,
                    to: TierRank(3)
                },
                PlannedMove {
                    base: 0x2000_0000,
                    from: T0,
                    to: T1
                },
            ]
        );
        assert_eq!(
            plan.promote,
            vec![PlannedMove {
                base: 0x4000_0000,
                from: TierRank(2),
                to: T1
            }]
        );
    }

    /// A full middle tier rejects demotions into it (counted in
    /// `dropped`), while the floor always accepts.
    #[test]
    fn full_middle_tier_drops_demotions_floor_never_does() {
        let cfg = PolicyConfig {
            freeze_permille: 50,
            ..PolicyConfig::default()
        };
        let mut e = PolicyEngine::with_tiers(&cfg, 3, true);
        e.track(0x1000, PAGES, PAGE, T0); // cold, not frozen
        e.observe(0x1000, 5);
        e.track(0x2000_0000, PAGES, PAGE, T0); // frozen → floor
        let occ = [
            TierOccupancy {
                free: 6 << 20,
                total: 6 << 20,
            },
            TierOccupancy {
                free: 0,
                total: 24 << 20,
            }, // middle tier brim-full
            TierOccupancy {
                free: 0,
                total: 1 << 30,
            }, // floor also full — accepts anyway
        ];
        let plan = e.plan(&occ);
        assert_eq!(bases(&plan.demote), vec![0x2000_0000], "floor plunge");
        assert_eq!(plan.demote[0].to, TierRank(2));
        assert_eq!(plan.dropped, 1, "one-rank sink had nowhere to land");
    }

    /// Tier overrides reshape the hysteresis band per rank.
    #[test]
    fn per_tier_overrides_shape_thresholds() {
        let cfg = PolicyConfig {
            tier_overrides: vec![
                TierTuning::default(), // tier 0: globals
                TierTuning {
                    promote_permille: Some(900), // tier 1: hard to leave
                    ..TierTuning::default()
                },
            ],
            ..PolicyConfig::default()
        };
        let e = PolicyEngine::with_tiers(&cfg, 2, false);
        let r = TrackedRegion {
            base: 0x1000,
            pages: PAGES,
            page_size: PAGE,
            heat: 40, // hot under the global 500‰, not under 900‰
            tier: T1,
            inflight: false,
        };
        assert!(!e.is_hot(&r), "tier-1 override raised the bar");
        let on_t0 = TrackedRegion { tier: T0, ..r };
        assert!(e.is_hot(&on_t0), "tier 0 still uses the global knob");
    }
}
