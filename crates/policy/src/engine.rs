//! The pure decision core: decayed heat, watermark-bounded hot-set
//! selection, and hysteresis.
//!
//! The engine is deliberately sim-free — it sees scan results and
//! capacity numbers, and returns move lists. All state lives in
//! `BTreeMap`s keyed by region base address and every selection sorts
//! with a total order (heat, then base), so identical inputs produce
//! identical plans: the daemon's epoch loop is replayable because this
//! layer is a pure function of its history.

use std::collections::BTreeMap;

use memif_mm::PageSize;

use crate::PolicyConfig;

/// Per-region policy state.
#[derive(Debug, Clone, Copy)]
pub struct TrackedRegion {
    /// Region base address.
    pub base: u64,
    /// Pages covered.
    pub pages: u32,
    /// Page granularity.
    pub page_size: PageSize,
    /// Exponentially-decayed heat, in page-touches.
    pub heat: u64,
    /// True while the region's frames sit on the fast node.
    pub resident_fast: bool,
    /// True while a policy move for the region is outstanding (the
    /// region is neither scanned nor re-planned until it retires).
    pub inflight: bool,
}

impl TrackedRegion {
    /// Bytes covered by the region.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        u64::from(self.pages) * self.page_size.bytes()
    }
}

/// One epoch's move decisions, in issue order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyPlan {
    /// Regions to demote to the slow node, coldest first. Demotions are
    /// issued before promotions so capacity frees ahead of demand.
    pub demote: Vec<u64>,
    /// Regions to promote to the fast node, hottest first.
    pub promote: Vec<u64>,
    /// Hot regions that did not fit under the watermark this epoch.
    pub dropped: u32,
}

/// The placement engine: tracked regions plus the selection knobs.
#[derive(Debug)]
pub struct PolicyEngine {
    regions: BTreeMap<u64, TrackedRegion>,
    decay_num: u64,
    decay_den: u64,
    promote_permille: u64,
    demote_permille: u64,
    watermark_permille: u64,
}

impl PolicyEngine {
    /// An engine with `cfg`'s selection knobs and no tracked regions.
    #[must_use]
    pub fn new(cfg: &PolicyConfig) -> Self {
        PolicyEngine {
            regions: BTreeMap::new(),
            decay_num: u64::from(cfg.decay_num),
            decay_den: u64::from(cfg.decay_den).max(1),
            promote_permille: u64::from(cfg.promote_permille),
            demote_permille: u64::from(cfg.demote_permille),
            watermark_permille: u64::from(cfg.watermark_permille),
        }
    }

    /// Registers a region for placement (idempotent per base address).
    pub fn track(&mut self, base: u64, pages: u32, page_size: PageSize, resident_fast: bool) {
        self.regions.entry(base).or_insert(TrackedRegion {
            base,
            pages,
            page_size,
            heat: 0,
            resident_fast,
            inflight: false,
        });
    }

    /// Folds one epoch's scan result into `base`'s heat: decay, then
    /// add the referenced page count.
    pub fn observe(&mut self, base: u64, referenced: u32) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.heat = r.heat * self.decay_num / self.decay_den + u64::from(referenced);
        }
    }

    /// Decays `base`'s heat without new observations (regions skipped
    /// by the scan — e.g. with a move outstanding — still cool down).
    pub fn decay(&mut self, base: u64) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.heat = r.heat * self.decay_num / self.decay_den;
        }
    }

    /// Updates residency bookkeeping for `base`.
    pub fn set_resident(&mut self, base: u64, fast: bool) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.resident_fast = fast;
        }
    }

    /// Marks/unmarks an outstanding policy move for `base`.
    pub fn set_inflight(&mut self, base: u64, inflight: bool) {
        if let Some(r) = self.regions.get_mut(&base) {
            r.inflight = inflight;
        }
    }

    /// The tracked regions in base-address order.
    pub fn regions(&self) -> impl Iterator<Item = &TrackedRegion> {
        self.regions.values()
    }

    /// One region's state.
    #[must_use]
    pub fn region(&self, base: u64) -> Option<&TrackedRegion> {
        self.regions.get(&base)
    }

    /// A region is *hot* when its heat reaches `promote_permille` of
    /// its page count — e.g. 500 means "half the region's pages' worth
    /// of decayed touches".
    #[must_use]
    pub fn is_hot(&self, r: &TrackedRegion) -> bool {
        r.heat * 1000 >= u64::from(r.pages) * self.promote_permille
    }

    /// A region is *cold* when its heat has decayed to
    /// `demote_permille` of its page count. The gap between the two
    /// thresholds is the hysteresis band: a region between them is
    /// neither promoted nor demoted, so one noisy epoch cannot
    /// ping-pong it.
    #[must_use]
    pub fn is_cold(&self, r: &TrackedRegion) -> bool {
        r.heat * 1000 <= u64::from(r.pages) * self.demote_permille
    }

    /// Builds this epoch's plan against the fast node's current
    /// occupancy (`fast_free`/`fast_total` from the frame allocator).
    ///
    /// Selection: every cold fast-resident region is demoted (coldest
    /// first); hot slow-resident regions are promoted hottest-first
    /// while projected occupancy stays under the watermark ceiling,
    /// crediting the bytes this epoch's demotions will free. Regions
    /// with a move outstanding are never re-planned.
    #[must_use]
    pub fn plan(&self, fast_free: u64, fast_total: u64) -> PolicyPlan {
        let ceiling = fast_total / 1000 * self.watermark_permille;
        let mut used = fast_total.saturating_sub(fast_free);

        let mut demote: Vec<&TrackedRegion> = self
            .regions
            .values()
            .filter(|r| !r.inflight && r.resident_fast && self.is_cold(r))
            .collect();
        // Coldest first; base address breaks ties so the order is total.
        demote.sort_by_key(|r| (r.heat, r.base));
        for r in &demote {
            used = used.saturating_sub(r.bytes());
        }

        let mut promote: Vec<&TrackedRegion> = self
            .regions
            .values()
            .filter(|r| !r.inflight && !r.resident_fast && self.is_hot(r))
            .collect();
        // Hottest first (descending heat, ascending base on ties).
        promote.sort_by_key(|r| (std::cmp::Reverse(r.heat), r.base));

        let mut plan = PolicyPlan {
            demote: demote.iter().map(|r| r.base).collect(),
            ..PolicyPlan::default()
        };
        for r in &promote {
            if used + r.bytes() <= ceiling {
                used += r.bytes();
                plan.promote.push(r.base);
            } else {
                plan.dropped += 1;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: PageSize = PageSize::Small4K;
    const PAGES: u32 = 64; // 256 KiB regions

    fn engine() -> PolicyEngine {
        PolicyEngine::new(&PolicyConfig::default())
    }

    #[test]
    fn heat_decays_exponentially() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, false);
        e.observe(0x1000, 64);
        assert_eq!(e.region(0x1000).unwrap().heat, 64);
        e.observe(0x1000, 64);
        assert_eq!(e.region(0x1000).unwrap().heat, 64 / 4 + 64);
        e.decay(0x1000);
        assert_eq!(e.region(0x1000).unwrap().heat, 80 / 4);
    }

    #[test]
    fn hysteresis_band_holds_regions_in_place() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, true);
        // Default thresholds: hot >= 500‰ of 64 pages = 32; cold <= 150‰
        // of 64 pages = 9.6. Heat 20 sits between the two.
        e.observe(0x1000, 20);
        let r = *e.region(0x1000).unwrap();
        assert!(!e.is_hot(&r) && !e.is_cold(&r), "inside the band");
        let plan = e.plan(1 << 20, 6 << 20);
        assert!(plan.demote.is_empty() && plan.promote.is_empty());
    }

    #[test]
    fn plan_orders_demotions_before_promotions_fit() {
        let mut e = engine();
        // Two cold fast residents, one hot slow region.
        e.track(0x1000, PAGES, PAGE, true);
        e.track(0x2000_0000, PAGES, PAGE, true);
        e.track(0x4000_0000, PAGES, PAGE, false);
        e.observe(0x2000_0000, 5); // slightly warmer of the two cold ones
        e.observe(0x4000_0000, 64);

        // Fast node nearly full: only the demotions make the promotion fit.
        let total = 6 << 20;
        let free = 600 << 10; // 600 KiB free, watermark 900‰ of 6 MiB
        let plan = e.plan(free, total);
        assert_eq!(plan.demote, vec![0x1000, 0x2000_0000], "coldest first");
        assert_eq!(plan.promote, vec![0x4000_0000]);
        assert_eq!(plan.dropped, 0);
    }

    #[test]
    fn watermark_drops_unfittable_promotions() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, false);
        e.track(0x2000_0000, PAGES, PAGE, false);
        e.observe(0x1000, 60);
        e.observe(0x2000_0000, 64);
        // Room under the ceiling for exactly one 256 KiB region.
        let total: u64 = 6 << 20;
        let ceiling = total / 1000 * 900;
        let used = ceiling - (256 << 10);
        let plan = e.plan(total - used, total);
        assert_eq!(plan.promote, vec![0x2000_0000], "hottest wins the slot");
        assert_eq!(plan.dropped, 1);
    }

    #[test]
    fn inflight_regions_are_never_replanned() {
        let mut e = engine();
        e.track(0x1000, PAGES, PAGE, false);
        e.observe(0x1000, 64);
        e.set_inflight(0x1000, true);
        let plan = e.plan(6 << 20, 6 << 20);
        assert!(plan.promote.is_empty());
        e.set_inflight(0x1000, false);
        assert_eq!(e.plan(6 << 20, 6 << 20).promote, vec![0x1000]);
    }
}
