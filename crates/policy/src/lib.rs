//! # memif-policy — automatic hot/cold placement over async moves
//!
//! The paper's thesis is an *interface*: asynchronous moves let software
//! overlap placement change with computation. This crate supplies the
//! natural client of that interface — a kernel-style placement daemon
//! that discovers the hot working set by sampling and repairs placement
//! with background [`memif`] migrations, never stalling the
//! application:
//!
//! * [`engine`] — the pure decision core: per-region exponentially
//!   decayed heat from reference-bit scans, hot-set selection under a
//!   fast-node capacity watermark, and promote/demote hysteresis;
//! * [`daemon`] — the epoch loop bound to the simulation: scans address
//!   spaces ([`memif_mm::AddressSpace::scan_referenced`]), prices its
//!   own work through the cost model, and issues plans through
//!   [`memif::Memif::submit_background`] as low-priority work with a
//!   bounded in-flight window;
//! * [`scenario`] — the evaluation harness: a phased hot-set
//!   application ([`memif_workloads::phased_hot_set`]) run with no
//!   policy, with *synchronous* migration (the app blocks while moves
//!   run — the mbind-style comparator), or with the asynchronous
//!   daemon.
//!
//! Everything is deterministic: identical seeds and configurations
//! produce byte-identical event logs, so policy runs replay through the
//! same trace machinery as plain move streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod scenario;

pub use daemon::{PolicyDaemon, PolicyStats, TierMap};
pub use engine::{PlannedMove, PolicyEngine, PolicyPlan, TierOccupancy, TrackedRegion};
pub use scenario::{run_scenario, Mode, ScenarioConfig, ScenarioResult};

use memif::SimDuration;

/// Per-tier overrides for the selection knobs. Entries index by tier
/// rank (0 = fastest); a missing entry — or a `None` field — falls back
/// to the matching global knob in [`PolicyConfig`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierTuning {
    /// Promotion threshold for regions *on this tier*, in thousandths
    /// of a region's page count.
    pub promote_permille: Option<u32>,
    /// Demotion threshold for regions on this tier, same units.
    pub demote_permille: Option<u32>,
    /// Occupancy ceiling for moves *into* this tier, in thousandths of
    /// the tier's capacity.
    pub watermark_permille: Option<u32>,
}

/// Tuning knobs for the placement daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Sampling-epoch period. Must comfortably exceed the application's
    /// time to cycle its working set once, or hot regions alias with
    /// cold ones between scans.
    pub epoch: SimDuration,
    /// Heat decay numerator: each epoch multiplies heat by
    /// `decay_num / decay_den` before adding new references.
    pub decay_num: u32,
    /// Heat decay denominator.
    pub decay_den: u32,
    /// Promotion threshold, in thousandths of a region's page count
    /// (500 = "heat worth half the region's pages").
    pub promote_permille: u32,
    /// Demotion threshold, same units; the gap below
    /// [`promote_permille`](Self::promote_permille) is the hysteresis
    /// band.
    pub demote_permille: u32,
    /// Fast-node occupancy ceiling the planner fills toward, in
    /// thousandths of the node's capacity.
    pub watermark_permille: u32,
    /// Maximum policy moves outstanding at once; plans beyond the
    /// window wait for the next epoch.
    pub max_inflight: usize,
    /// Freeze threshold, in thousandths of a region's page count: a
    /// region at or below it sinks *straight to the compressed floor*
    /// rather than one rank. Zero disables freezing. Only meaningful
    /// when the tier map ends in a compressed node.
    pub freeze_permille: u32,
    /// Retry moves that did not fit their target tier as soon as a
    /// completion frees capacity, instead of waiting a whole epoch —
    /// the demote-then-promote cascade under capacity pressure.
    pub cascade: bool,
    /// Per-tier threshold overrides (see [`TierTuning`]).
    pub tier_overrides: Vec<TierTuning>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            epoch: SimDuration::from_ns(1_000_000),
            decay_num: 1,
            decay_den: 4,
            promote_permille: 500,
            demote_permille: 150,
            watermark_permille: 900,
            max_inflight: 4,
            freeze_permille: 0,
            cascade: false,
            tier_overrides: Vec::new(),
        }
    }
}
