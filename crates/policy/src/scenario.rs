//! The phased hot-set evaluation harness (experiment E14).
//!
//! An application streams over a rotating hot subset of a region pool
//! that exceeds the fast node several times over
//! ([`memif_workloads::phased_hot_set`]); each tick it streams one hot
//! region, round-robin, at the bandwidth of whichever node currently
//! backs it. The same application runs under three placement regimes:
//!
//! * [`Mode::None`] — no policy; everything stays on the slow node;
//! * [`Mode::Sync`] — the daemon's decisions, but the application
//!   blocks while moves are in flight (the synchronous `mbind`-style
//!   comparator);
//! * [`Mode::Async`] — the memif thesis: the daemon repairs placement
//!   with background moves while the application keeps computing.
//!
//! Runs are deterministic: identical configurations yield byte-identical
//! event logs, so `memifctl policy --trace-events` round-trips through
//! `memifctl replay` like any move trace.

use std::cell::RefCell;
use std::rc::Rc;

use memif::{
    Context, FaultPlan, HookId, Memif, MemifConfig, NodeId, PageSize, RaceMode, Sim, SimDuration,
    SimEvent, SimTime, System, TierRank, TierUsage, VirtAddr,
};
use memif_hwsim::{CostModel, MemoryKind, Topology};
use memif_mm::AccessKind;
use memif_workloads::{phased_hot_set, tiered_phased_hot_set};

use crate::daemon::{PolicyDaemon, PolicyStats, TierMap};
use crate::PolicyConfig;

/// Placement regime for a scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No placement policy: the pool stays where it was mapped.
    None,
    /// Policy decisions with synchronous migration: the application
    /// parks whenever policy moves are outstanding.
    Sync,
    /// Policy decisions over asynchronous background moves.
    Async,
}

impl Mode {
    /// The mode's stable command-line name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::None => "none",
            Mode::Sync => "sync",
            Mode::Async => "async",
        }
    }

    /// Parses a command-line mode name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Mode::None),
            "sync" => Some(Mode::Sync),
            "async" => Some(Mode::Async),
            _ => None,
        }
    }
}

/// Everything that defines one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Placement regime.
    pub mode: Mode,
    /// Seed for the phase schedule.
    pub seed: u64,
    /// Regions in the pool.
    pub regions: usize,
    /// Pages per region.
    pub pages_per_region: u32,
    /// Page granularity.
    pub page_size: PageSize,
    /// Phases in the schedule.
    pub phases: usize,
    /// Hot regions per phase.
    pub hot: usize,
    /// Hot regions carried over between phases.
    pub carry: usize,
    /// Application ticks per phase (each streams one hot region).
    pub ticks_per_phase: u32,
    /// Memory tiers on the machine: 2 runs the classic KeyStone II
    /// pair, 3 or 4 the ranked ladder ([`Topology::ranked`]) with NVM
    /// and a compressed floor. Taller machines force
    /// [`PolicyConfig::cascade`] on and default
    /// [`PolicyConfig::freeze_permille`] to 50 when unset, so one
    /// `tiers` knob fully determines the run.
    pub tiers: usize,
    /// Tiers the *daemon* manages: 0 means all of them. Fewer gives the
    /// comparison regime — e.g. a classic two-tier policy (top rank +
    /// pool home) running on a four-tier machine.
    pub policy_tiers: usize,
    /// Warm regions per phase ([`memif_workloads::tiered_phased_hot_set`]):
    /// a halo whose first quarter of pages is touched every tick —
    /// enough decayed heat to earn the middle tiers under the
    /// graduated thresholds, never enough for the top rank. Zero
    /// streams hot regions only.
    pub warm: usize,
    /// Daemon tuning.
    pub policy: PolicyConfig,
    /// The daemon's memif instance configuration.
    pub memif: MemifConfig,
    /// Optional chaos plan installed before the run.
    pub faults: Option<FaultPlan>,
    /// Record the typed event log (for tracing/replay).
    pub log_events: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            mode: Mode::Async,
            seed: 42,
            regions: 24,
            pages_per_region: 64, // 256 KiB regions; the pool equals SRAM
            page_size: PageSize::Small4K,
            phases: 6,
            hot: 8,
            carry: 3,
            ticks_per_phase: 32,
            tiers: 2,
            policy_tiers: 0,
            warm: 0,
            policy: PolicyConfig::default(),
            memif: MemifConfig {
                // Transparent to the app: racing writes abort the move
                // (read disturbance finalizes harmlessly), and the
                // modern issue path drains policy batches efficiently.
                race_mode: RaceMode::DetectRecover,
                batch_max: 4,
                coalesce: true,
                issue_shards: 2,
                ..MemifConfig::default()
            },
            faults: None,
            log_events: false,
        }
    }
}

/// Measurements from one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The regime that ran.
    pub mode: Mode,
    /// End-to-end application runtime (first tick to last).
    pub wall: SimDuration,
    /// Application ticks executed.
    pub ticks: u64,
    /// Streams served from the top rank (tier 0).
    pub fast_ticks: u64,
    /// Streams served from any lower rank.
    pub slow_ticks: u64,
    /// Streams served per tier rank, indexed by rank.
    pub tier_ticks: Vec<u64>,
    /// Per-tier occupancy and move traffic at the end of the run.
    pub tiers: Vec<TierUsage>,
    /// CPU time spent compressing into the cold floor.
    pub compress_busy: SimDuration,
    /// CPU time spent decompressing out of the cold floor.
    pub decompress_busy: SimDuration,
    /// Per-frame access-counter total drained from the sampling layer.
    pub page_touches: u64,
    /// CPU busy fraction over the run (all contexts).
    pub cpu_usage: f64,
    /// Daemon counters (zero in [`Mode::None`]).
    pub policy: PolicyStats,
    /// The daemon device's driver counters (default in [`Mode::None`]).
    pub driver: memif::DriverStats,
    /// JSON-lines event log, when requested.
    pub events: Vec<String>,
    /// `(req_id, terminal status)` of every policy move, log order.
    pub statuses: Vec<(u64, String)>,
}

struct App {
    bases: Vec<VirtAddr>,
    hot_sets: Vec<Vec<usize>>,
    warm_sets: Vec<Vec<usize>>,
    pages: u32,
    page_size: PageSize,
    ticks_per_phase: u32,
    total_ticks: u64,
    fast_ticks: u64,
    slow_ticks: u64,
    tier_ticks: Vec<u64>,
    finished_at: Option<SimTime>,
    hook: Option<HookId>,
}

/// The CPU's streaming bandwidth against a given storage class.
fn stream_bw(cost: &CostModel, kind: Option<MemoryKind>) -> f64 {
    match kind {
        Some(MemoryKind::Fast) => cost.cpu_stream_fast_gbps,
        Some(MemoryKind::Nvm) => cost.cpu_stream_nvm_gbps,
        Some(MemoryKind::Compressed) => cost.cpu_stream_compressed_gbps,
        Some(MemoryKind::Slow) | None => cost.cpu_stream_slow_gbps,
    }
}

/// Runs one scenario to completion and collects the measurements.
///
/// # Panics
///
/// Panics on setup failure (mapping the pool, opening the daemon's
/// memif instance) or if the application never finishes — all
/// impossible with a well-formed configuration.
#[must_use]
pub fn run_scenario(cost: &CostModel, cfg: &ScenarioConfig) -> ScenarioResult {
    let topo = if cfg.tiers <= 2 {
        Topology::keystone_ii()
    } else {
        Topology::ranked(cfg.tiers)
    };
    let mut sys = System::with_profile(topo, cost.clone());
    if cfg.log_events {
        sys.enable_event_log();
    }
    let mut sim = Sim::new();
    if let Some(plan) = cfg.faults.clone() {
        sys.install_faults(&mut sim, plan);
    }

    // The pool's home: the lowest non-compressed rank (DDR on KeyStone,
    // NVM on the ranked ladders). The compressed floor is policy-only
    // territory — nothing is mapped there directly.
    let tier_count = sys.topo.tier_count();
    let home = (0..tier_count)
        .rev()
        .filter_map(|t| sys.topo.node_of_tier(TierRank(t as u16)))
        .find(|n| !n.kind.is_compressed())
        .map(|n| n.id)
        .expect("a ladder has an uncompressed rank");

    let space = sys.new_space();
    sys.space_mut(space).enable_sampling();
    let bases: Vec<VirtAddr> = (0..cfg.regions)
        .map(|_| {
            sys.mmap(space, cfg.pages_per_region, cfg.page_size, home)
                .expect("home node holds the pool")
        })
        .collect();
    let (hot_sets, warm_sets) = if cfg.warm > 0 {
        let s = tiered_phased_hot_set(
            cfg.seed,
            cfg.regions,
            cfg.phases,
            cfg.hot,
            cfg.carry,
            cfg.warm,
        );
        (s.hot, s.warm)
    } else {
        let s = phased_hot_set(cfg.seed, cfg.regions, cfg.phases, cfg.hot, cfg.carry);
        (s.phases, vec![Vec::new(); cfg.phases])
    };

    let mut policy_cfg = cfg.policy.clone();
    if cfg.tiers > 2 {
        // One knob determines the run: taller machines always cascade,
        // freeze to the compressed floor, and grade their promotion
        // bars unless explicitly tuned — the lower ranks promote at a
        // third of the global bar, so the warm halo's steady heat earns
        // DRAM without ever earning SRAM.
        policy_cfg.cascade = true;
        if policy_cfg.freeze_permille == 0 {
            policy_cfg.freeze_permille = 50;
        }
        if policy_cfg.tier_overrides.is_empty() {
            let eased = crate::TierTuning {
                promote_permille: Some(policy_cfg.promote_permille / 2),
                ..crate::TierTuning::default()
            };
            policy_cfg.tier_overrides = (0..cfg.tiers)
                .map(|t| {
                    if t >= 2 {
                        eased
                    } else {
                        crate::TierTuning::default()
                    }
                })
                .collect();
        }
    }
    let policy_tiers = if cfg.policy_tiers == 0 {
        tier_count
    } else {
        cfg.policy_tiers
    };
    let daemon = match cfg.mode {
        Mode::None => None,
        Mode::Sync | Mode::Async => {
            let memif = Memif::open(&mut sys, space, cfg.memif.clone()).expect("daemon instance");
            let d = if policy_tiers >= tier_count {
                PolicyDaemon::launch(&mut sys, &mut sim, memif, space, policy_cfg)
            } else {
                // The comparison regime: a shorter ladder (top ranks
                // plus the pool's home) on the same machine.
                let mut nodes: Vec<NodeId> = (0..policy_tiers.saturating_sub(1))
                    .filter_map(|t| sys.topo.node_of_tier(TierRank(t as u16)))
                    .map(|n| n.id)
                    .collect();
                nodes.push(home);
                let map = TierMap::of_nodes(&sys.topo, &nodes);
                PolicyDaemon::launch_with_tiers(&mut sys, &mut sim, memif, space, policy_cfg, map)
            };
            for &b in &bases {
                d.track(&sys, b, cfg.pages_per_region, cfg.page_size);
            }
            Some(d)
        }
    };
    let app = Rc::new(RefCell::new(App {
        bases,
        hot_sets,
        warm_sets,
        pages: cfg.pages_per_region,
        page_size: cfg.page_size,
        ticks_per_phase: cfg.ticks_per_phase,
        total_ticks: u64::from(cfg.ticks_per_phase) * cfg.phases as u64,
        fast_ticks: 0,
        slow_ticks: 0,
        tier_ticks: vec![0; tier_count],
        finished_at: None,
        hook: None,
    }));

    let sync_gate = cfg.mode == Mode::Sync;
    let app2 = Rc::clone(&app);
    let daemon2 = daemon.clone();
    let hook = sys.register_hook(move |sys, sim, tick| {
        let hook = app2.borrow().hook.expect("set before scheduling");
        if tick >= app2.borrow().total_ticks {
            app2.borrow_mut().finished_at = Some(sim.now());
            if let Some(d) = &daemon2 {
                d.stop();
            }
            return;
        }
        // Synchronous comparator: placement repair blocks the app.
        if sync_gate {
            if let Some(d) = &daemon2 {
                if d.busy() {
                    d.when_idle(sim, SimEvent::Hook { hook, arg: tick });
                    return;
                }
            }
        }
        let (hot_base, warm_bases, pages, page_size) = {
            let a = app2.borrow();
            let phase = (tick / u64::from(a.ticks_per_phase)) as usize;
            let hot = &a.hot_sets[phase];
            let slot = hot[(tick % u64::from(a.ticks_per_phase)) as usize % hot.len()];
            let warm: Vec<VirtAddr> = a.warm_sets[phase].iter().map(|&w| a.bases[w]).collect();
            (a.bases[slot], warm, a.pages, a.page_size)
        };
        // Stream each region: pages referenced (clearing young, feeding
        // the sampling layer), priced at the backing storage class's
        // bandwidth. The hot region streams whole; the warm halo's
        // regions stream their first quarter each.
        let mut d = SimDuration::from_ns(0);
        let quarter = (pages / 4).max(1);
        for (base, touched) in
            std::iter::once((hot_base, pages)).chain(warm_bases.iter().map(|&b| (b, quarter)))
        {
            for p in 0..touched {
                let va = base.offset(u64::from(p) * page_size.bytes());
                let _ = sys.space_mut(space).access(va, AccessKind::Read);
            }
            let node = sys
                .space(space)
                .translate(base)
                .and_then(|pa| sys.node_of(pa));
            let kind = node.and_then(|n| {
                sys.topo
                    .all_nodes()
                    .iter()
                    .find(|m| m.id == n)
                    .map(|m| m.kind)
            });
            let rank = node
                .and_then(|n| sys.topo.tier_of(n))
                .unwrap_or_else(|| sys.topo.max_tier());
            {
                let mut a = app2.borrow_mut();
                if rank.0 == 0 {
                    a.fast_ticks += 1;
                } else {
                    a.slow_ticks += 1;
                }
                a.tier_ticks[rank.0 as usize] += 1;
            }
            let bytes = u64::from(touched) * page_size.bytes();
            d += SimDuration::for_bytes(bytes, stream_bw(&sys.cost, kind));
        }
        sys.meter.charge(Context::App, d);
        sim.schedule_after(
            d,
            SimEvent::Hook {
                hook,
                arg: tick + 1,
            },
        );
    });
    app.borrow_mut().hook = Some(hook);
    sim.schedule_after(SimDuration::from_ns(0), SimEvent::Hook { hook, arg: 0 });

    sim.run(&mut sys);

    let a = app.borrow();
    let finished = a.finished_at.expect("application ran to completion");
    let wall = finished.since(SimTime::ZERO);
    let policy = daemon.as_ref().map(PolicyDaemon::stats).unwrap_or_default();
    let (driver, statuses) = match &daemon {
        Some(_) => {
            // The daemon's instance is the only device in the system.
            let dev = sys
                .device(memif::DeviceId(0))
                .expect("daemon device stays open");
            (
                dev.stats.clone(),
                dev.log
                    .iter()
                    .map(|r| (r.req_id, format!("{:?}", r.status)))
                    .collect(),
            )
        }
        None => (memif::DriverStats::default(), Vec::new()),
    };
    let page_touches: u64 = sys.space_mut(space).take_access_counts().values().sum();
    ScenarioResult {
        mode: cfg.mode,
        wall,
        ticks: a.total_ticks,
        fast_ticks: a.fast_ticks,
        slow_ticks: a.slow_ticks,
        tier_ticks: a.tier_ticks.clone(),
        tiers: sys.tier_usage(),
        compress_busy: sys.meter.compress_busy(),
        decompress_busy: sys.meter.decompress_busy(),
        page_touches,
        cpu_usage: sys.meter.cpu_busy().as_ns() as f64 / wall.as_ns().max(1) as f64,
        policy,
        driver,
        events: sys.take_event_log(),
        statuses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: Mode) -> ScenarioConfig {
        ScenarioConfig {
            mode,
            phases: 3,
            ticks_per_phase: 16,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn no_policy_stays_on_the_slow_node() {
        let r = run_scenario(&CostModel::keystone_ii(), &quick(Mode::None));
        assert_eq!(r.fast_ticks, 0);
        assert_eq!(r.slow_ticks, r.ticks);
        assert_eq!(r.policy, PolicyStats::default());
        assert!(r.page_touches >= r.ticks * 64, "sampling layer counted");
    }

    #[test]
    fn async_policy_moves_compute_to_the_fast_node() {
        let none = run_scenario(&CostModel::keystone_ii(), &quick(Mode::None));
        let r = run_scenario(&CostModel::keystone_ii(), &quick(Mode::Async));
        assert!(r.policy.promotions > 0, "promotions issued: {:?}", r.policy);
        assert!(r.fast_ticks > 0, "some ticks ran from SRAM");
        assert!(
            r.wall < none.wall,
            "policy beats no policy: {:?} vs {:?}",
            r.wall,
            none.wall
        );
    }

    #[test]
    fn async_beats_sync_migration() {
        let sync = run_scenario(&CostModel::keystone_ii(), &quick(Mode::Sync));
        let async_ = run_scenario(&CostModel::keystone_ii(), &quick(Mode::Async));
        assert!(
            async_.wall < sync.wall,
            "overlap wins: async {:?} vs sync {:?}",
            async_.wall,
            sync.wall
        );
    }

    #[test]
    fn identical_configs_replay_byte_identically() {
        let cfg = ScenarioConfig {
            log_events: true,
            ..quick(Mode::Async)
        };
        let a = run_scenario(&CostModel::keystone_ii(), &cfg);
        let b = run_scenario(&CostModel::keystone_ii(), &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.statuses, b.statuses);
        assert_eq!(a.wall, b.wall);
    }

    fn waterfall(mode: Mode) -> ScenarioConfig {
        ScenarioConfig {
            mode,
            tiers: 4,
            warm: 6,
            phases: 3,
            ticks_per_phase: 16,
            ..ScenarioConfig::default()
        }
    }

    /// On the four-rank ladder the waterfall spreads the pool across
    /// tiers: hot streams reach the top, frozen leftovers sink to the
    /// compressed floor and pay visible codec time.
    #[test]
    fn four_tier_waterfall_spreads_the_pool() {
        let r = run_scenario(&CostModel::keystone_ii(), &waterfall(Mode::Async));
        assert_eq!(r.tier_ticks.len(), 4);
        assert!(
            r.fast_ticks > 0,
            "hot work reached tier 0: {:?}",
            r.tier_ticks
        );
        assert!(r.policy.promotions > 0 && r.policy.demotions > 0);
        assert!(
            r.tiers
                .iter()
                .any(|t| t.kind == "compressed" && t.used_bytes > 0),
            "frozen regions reached the floor: {:?}",
            r.tiers
        );
        assert!(
            r.compress_busy.as_ns() > 0,
            "compression work was priced and attributed"
        );
        let none = run_scenario(&CostModel::keystone_ii(), &waterfall(Mode::None));
        assert!(r.wall < none.wall, "waterfall beats no policy");
    }

    /// Four-tier runs replay byte-identically too — chained floor
    /// plunges, cascade retries, codec charges and all.
    #[test]
    fn four_tier_runs_replay_byte_identically() {
        let cfg = ScenarioConfig {
            log_events: true,
            ..waterfall(Mode::Async)
        };
        let a = run_scenario(&CostModel::keystone_ii(), &cfg);
        let b = run_scenario(&CostModel::keystone_ii(), &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.statuses, b.statuses);
        assert_eq!(a.wall, b.wall);
    }
}
