//! The placement daemon: an epoch loop over the simulation.
//!
//! Each epoch the daemon scans its tracked regions' reference bits
//! ([`memif_mm::AddressSpace::scan_referenced`]), folds the results
//! into the [`PolicyEngine`]'s decayed heat, asks for a waterfall plan
//! over its [`TierMap`], and issues the moves through
//! [`Memif::submit_background`] — staged on the blue queue and drained
//! by the kernel workers like any other request, but with no
//! user/kernel crossing and a bounded in-flight window so placement
//! repair never crowds out application submissions. Its own CPU time
//! (wakeup, PTE scans, heat updates) is priced by the cost model and
//! charged to the kernel-thread context.
//!
//! Waterfall moves step one rank at a time; a frozen region's plunge to
//! the compressed floor rides a [`memif::MoveChain`] through the
//! intermediate tiers, every hop an ordinary journaled request. With
//! [`PolicyConfig::cascade`] set, moves that did not fit their target
//! tier park until a completion frees capacity and retry immediately —
//! the demote-then-promote cascade — instead of waiting a whole epoch.
//!
//! Regions with a move outstanding are neither scanned (re-arming
//! young on a semi-final PTE would mask the Release race check) nor
//! re-planned; their heat decays until the completion retires.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use memif::{
    ChainStep, Context, HookId, Memif, MoveChain, MoveSpec, NodeId, PageSize, Sim, SimDuration,
    SimEvent, SpaceId, System, TierRank, VirtAddr,
};
use memif_hwsim::{MemoryKind, Topology};

use crate::engine::{PolicyEngine, TierOccupancy};
use crate::PolicyConfig;

/// The ordered ladder of memory tiers a daemon manages: one node per
/// rank, fastest first. The engine's [`TierRank`]s index this map.
#[derive(Debug, Clone)]
pub struct TierMap {
    slots: Vec<(NodeId, MemoryKind)>,
}

impl TierMap {
    /// One managed tier per topology rank, fastest first, backed by the
    /// first node of each rank.
    #[must_use]
    pub fn from_topology(topo: &Topology) -> Self {
        let slots = (0..topo.tier_count())
            .filter_map(|t| topo.node_of_tier(TierRank(t as u16)))
            .map(|n| (n.id, n.kind))
            .collect();
        TierMap { slots }
    }

    /// An explicit ladder over `nodes`, fastest first — e.g. the
    /// classic two-tier fast/slow pair on a taller machine.
    ///
    /// # Panics
    ///
    /// Panics if a node is not in the topology.
    #[must_use]
    pub fn of_nodes(topo: &Topology, nodes: &[NodeId]) -> Self {
        let slots = nodes
            .iter()
            .map(|&id| {
                let n = topo
                    .all_nodes()
                    .iter()
                    .find(|n| n.id == id)
                    .expect("tier map node exists in the topology");
                (n.id, n.kind)
            })
            .collect();
        TierMap { slots }
    }

    /// Managed tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no tiers are managed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The node backing rank `rank`.
    #[must_use]
    pub fn node(&self, rank: usize) -> NodeId {
        self.slots[rank].0
    }

    /// The storage class of rank `rank`.
    #[must_use]
    pub fn kind(&self, rank: usize) -> MemoryKind {
        self.slots[rank].1
    }

    /// The managed rank of `node`, if the map includes it.
    #[must_use]
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        self.slots.iter().position(|&(id, _)| id == node)
    }

    /// True when the bottom rank is compressed storage (enables the
    /// freeze rule).
    #[must_use]
    pub fn has_compressed_floor(&self) -> bool {
        self.slots.last().is_some_and(|&(_, k)| k.is_compressed())
    }
}

/// Counters the daemon maintains, surfaced through `memifctl` stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Sampling epochs completed.
    pub epochs: u64,
    /// PTEs inspected by reference scans (including skipped entries).
    pub pages_scanned: u64,
    /// Pages observed referenced since their previous scan.
    pub pages_referenced: u64,
    /// Promotions issued up the waterfall.
    pub promotions: u64,
    /// Demotions issued down the waterfall.
    pub demotions: u64,
    /// Policy moves that completed successfully.
    pub moves_ok: u64,
    /// Policy moves that completed without relocating cleanly (aborted
    /// by a racing write, failed, or raced); the region stays tracked
    /// and a later epoch retries.
    pub moves_failed: u64,
    /// Planned moves dropped because their target tier was over its
    /// watermark (retried once capacity frees).
    pub dropped: u64,
    /// Capacity-pressure cascade steps: chain hops advanced through
    /// intermediate tiers plus parked moves re-issued the moment a
    /// completion freed their target tier.
    pub cascades: u64,
}

struct Inner {
    memif: Memif,
    space: SpaceId,
    cfg: PolicyConfig,
    engine: PolicyEngine,
    tiers: TierMap,
    /// Outstanding policy moves: request id → region base.
    inflight: HashMap<u64, u64>,
    /// Multi-hop floor plunges in flight: region base → chain.
    chains: HashMap<u64, MoveChain>,
    /// Moves that did not fit their target tier, parked for the
    /// cascade retry: `(base, target rank)`, cleared every epoch.
    waiting: Vec<(u64, usize)>,
    stats: PolicyStats,
    running: bool,
    epoch_hook: Option<HookId>,
    drain_hook: Option<HookId>,
    poll_armed: bool,
    /// Events parked by [`PolicyDaemon::when_idle`], released when the
    /// in-flight window drains (the synchronous-migration comparator's
    /// app gate).
    on_idle: Vec<SimEvent>,
}

/// Handle to a launched placement daemon.
#[derive(Clone)]
pub struct PolicyDaemon {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for PolicyDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let i = self.inner.borrow();
        f.debug_struct("PolicyDaemon")
            .field("running", &i.running)
            .field("inflight", &i.inflight.len())
            .field("stats", &i.stats)
            .finish()
    }
}

impl PolicyDaemon {
    /// Starts the daemon over the whole ranked hierarchy (one managed
    /// tier per topology rank): registers its epoch and completion
    /// hooks and schedules the first epoch one period out. The daemon
    /// assumes it owns `memif`'s completion queue — open a dedicated
    /// instance for it rather than sharing the application's.
    pub fn launch(
        sys: &mut System,
        sim: &mut Sim<System>,
        memif: Memif,
        space: SpaceId,
        cfg: PolicyConfig,
    ) -> Self {
        let tiers = TierMap::from_topology(&sys.topo);
        Self::launch_with_tiers(sys, sim, memif, space, cfg, tiers)
    }

    /// Starts the daemon over an explicit [`TierMap`] — e.g. the
    /// classic two-tier pair on a taller machine, for comparison runs.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn launch_with_tiers(
        sys: &mut System,
        sim: &mut Sim<System>,
        memif: Memif,
        space: SpaceId,
        cfg: PolicyConfig,
        tiers: TierMap,
    ) -> Self {
        assert!(!tiers.is_empty(), "a daemon needs at least one tier");
        let engine = PolicyEngine::with_tiers(&cfg, tiers.len(), tiers.has_compressed_floor());
        let inner = Rc::new(RefCell::new(Inner {
            memif,
            space,
            engine,
            cfg,
            tiers,
            inflight: HashMap::new(),
            chains: HashMap::new(),
            waiting: Vec::new(),
            stats: PolicyStats::default(),
            running: true,
            epoch_hook: None,
            drain_hook: None,
            poll_armed: false,
            on_idle: Vec::new(),
        }));
        let epoch_hook = {
            let inner = Rc::clone(&inner);
            sys.register_hook(move |sys, sim, arg| Inner::epoch(&inner, sys, sim, arg))
        };
        let drain_hook = {
            let inner = Rc::clone(&inner);
            sys.register_hook(move |sys, sim, _arg| Inner::drain(&inner, sys, sim))
        };
        let epoch = {
            let mut i = inner.borrow_mut();
            i.epoch_hook = Some(epoch_hook);
            i.drain_hook = Some(drain_hook);
            i.cfg.epoch
        };
        sim.schedule_after(
            epoch,
            SimEvent::Hook {
                hook: epoch_hook,
                arg: 1,
            },
        );
        PolicyDaemon { inner }
    }

    /// Registers a region for placement; its tier is read from the
    /// current mapping.
    pub fn track(&self, sys: &System, base: VirtAddr, pages: u32, page_size: PageSize) {
        let mut i = self.inner.borrow_mut();
        let rank = resident_rank(sys, i.space, base, &i.tiers);
        i.engine
            .track(base.as_u64(), pages, page_size, TierRank(rank as u16));
    }

    /// Stops the epoch loop: the next scheduled epoch becomes a no-op
    /// and nothing further is scheduled. Outstanding moves still drain.
    pub fn stop(&self) {
        self.inner.borrow_mut().running = false;
    }

    /// True while any policy move is outstanding.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.inner.borrow().inflight.is_empty()
    }

    /// Runs `event` once the in-flight window drains — immediately if
    /// the daemon is already idle. The synchronous-migration comparator
    /// parks the application's next tick here.
    pub fn when_idle(&self, sim: &mut Sim<System>, event: SimEvent) {
        let mut i = self.inner.borrow_mut();
        if i.inflight.is_empty() {
            sim.schedule_after(SimDuration::from_ns(0), event);
        } else {
            i.on_idle.push(event);
        }
    }

    /// A snapshot of the daemon's counters.
    #[must_use]
    pub fn stats(&self) -> PolicyStats {
        self.inner.borrow().stats
    }

    /// The tier rank currently backing `base`, per the engine's
    /// bookkeeping (0 = fastest). `None` for untracked regions.
    #[must_use]
    pub fn resident_tier(&self, base: VirtAddr) -> Option<TierRank> {
        self.inner
            .borrow()
            .engine
            .region(base.as_u64())
            .map(|r| r.tier)
    }
}

/// The managed rank backing `base`'s first page. Nodes outside the tier
/// map count as the bottom rank — the daemon can only pull them up.
fn resident_rank(sys: &System, space: SpaceId, base: VirtAddr, tiers: &TierMap) -> usize {
    sys.space(space)
        .translate(base)
        .and_then(|pa| sys.node_of(pa))
        .and_then(|n| tiers.rank_of(n))
        .unwrap_or(tiers.len() - 1)
}

impl Inner {
    /// One sampling epoch: scan, fold, plan, issue, reschedule.
    fn epoch(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>, arg: u64) {
        let (space, regions, period) = {
            let i = inner.borrow();
            if !i.running {
                return; // stopped: no reschedule, the loop quiesces
            }
            let regions: Vec<(u64, u32, PageSize, bool)> = i
                .engine
                .regions()
                .map(|r| (r.base, r.pages, r.page_size, r.inflight))
                .collect();
            (i.space, regions, i.cfg.epoch)
        };

        // Scan outside the borrow (scans mutate the address space, not
        // the daemon), then fold results in.
        let mut scans: Vec<(u64, Option<u32>)> = Vec::with_capacity(regions.len());
        let mut pte_work = 0u64;
        for &(base, pages, page_size, inflight) in &regions {
            if inflight {
                scans.push((base, None)); // decay only; see module docs
            } else {
                let out =
                    sys.space_mut(space)
                        .scan_referenced(VirtAddr::new(base), pages, page_size);
                pte_work += u64::from(out.scanned) + u64::from(out.skipped);
                scans.push((base, Some(out.referenced)));
            }
        }

        let mut i = inner.borrow_mut();
        i.stats.epochs += 1;
        i.stats.pages_scanned += pte_work;
        i.waiting.clear(); // parked moves replan from fresh heat
        for &(base, referenced) in &scans {
            match referenced {
                Some(n) => {
                    i.stats.pages_referenced += u64::from(n);
                    i.engine.observe(base, n);
                }
                None => i.engine.decay(base),
            }
        }
        for &(base, _, _, inflight) in &regions {
            if !inflight {
                let rank = resident_rank(sys, space, VirtAddr::new(base), &i.tiers);
                i.engine.set_tier(base, TierRank(rank as u16));
            }
        }

        let cost = sys.cost.policy_epoch_base
            + sys.cost.policy_scan_pte * pte_work
            + sys.cost.policy_heat_update * regions.len() as u64;
        sys.meter.charge(Context::KernelThread, cost);

        let occ: Vec<TierOccupancy> = (0..i.tiers.len())
            .map(|t| {
                let node = i.tiers.node(t);
                TierOccupancy {
                    free: sys.alloc.free_bytes(node),
                    total: sys.alloc.total_bytes(node),
                }
            })
            .collect();
        let plan = i.engine.plan(&occ);
        i.stats.dropped += u64::from(plan.dropped);
        let floor = i.tiers.len() - 1;

        let mut budget = i.cfg.max_inflight.saturating_sub(i.inflight.len());
        // Classic order issues demotions first so capacity frees ahead
        // of demand. With cascades on, promotions claim the window
        // first — a whole cold pool sinking must not starve the hot
        // set — and anything that does not fit parks until a demotion
        // completes and frees its tier.
        let (first, second) = if i.cfg.cascade {
            (&plan.promote, &plan.demote)
        } else {
            (&plan.demote, &plan.promote)
        };
        for m in first.iter().chain(second) {
            let (from, to) = (m.from.0 as usize, m.to.0 as usize);
            if budget == 0 {
                if i.cfg.cascade {
                    // Park the overflow: drain re-issues it the moment
                    // a completion frees a window slot.
                    Inner::park(&mut i, m.base, to);
                    continue;
                }
                break;
            }
            // The plan's projection credits bytes freed by this epoch's
            // other selections; those moves are still in flight, so
            // re-check actual free bytes and defer what does not fit
            // yet. The floor always accepts.
            if to != floor && !Inner::fits(&i, sys, m.base, to) {
                Inner::park(&mut i, m.base, to);
                continue;
            }
            if Inner::issue(&mut i, sys, sim, m.base, from, to) {
                budget -= 1;
            } else {
                break; // request slots exhausted; retry next epoch
            }
        }

        if !i.inflight.is_empty() && !i.poll_armed {
            Inner::arm_poll(&mut i, sys, sim);
        }
        let hook = i.epoch_hook.expect("set at launch");
        drop(i);
        sim.schedule_after(period, SimEvent::Hook { hook, arg: arg + 1 });
    }

    /// Whether `base`'s bytes fit on rank `to` right now.
    fn fits(i: &std::cell::RefMut<'_, Inner>, sys: &System, base: u64, to: usize) -> bool {
        i.engine
            .region(base)
            .is_some_and(|r| sys.alloc.free_bytes(i.tiers.node(to)) >= r.bytes())
    }

    /// Parks an unfittable move for the cascade retry (or counts it
    /// dropped when cascades are off).
    fn park(i: &mut std::cell::RefMut<'_, Inner>, base: u64, to: usize) {
        if i.cfg.cascade {
            i.waiting.push((base, to));
        } else {
            i.stats.dropped += 1;
        }
    }

    /// Issues one policy move from rank `from` to rank `to`; true on
    /// success. A plunge spanning more than one rank becomes a
    /// [`MoveChain`] hopping through every intermediate tier.
    fn issue(
        i: &mut std::cell::RefMut<'_, Inner>,
        sys: &mut System,
        sim: &mut Sim<System>,
        base: u64,
        from: usize,
        to: usize,
    ) -> bool {
        let Some(r) = i.engine.region(base).copied() else {
            return false;
        };
        let memif = i.memif;
        let va = VirtAddr::new(base);
        let submitted = if to > from + 1 {
            let hops: Vec<NodeId> = (from + 1..=to).map(|t| i.tiers.node(t)).collect();
            let mut chain = MoveChain::new(va, r.pages, r.page_size, hops, base);
            match chain.start(&memif, sys, sim) {
                Ok(rid) => {
                    i.chains.insert(base, chain);
                    Some(rid)
                }
                Err(_) => None,
            }
        } else {
            let dst = i.tiers.node(to);
            let spec = MoveSpec::migrate(va, r.pages, r.page_size, dst).with_user_data(base);
            i.memif
                .submit_background(sys, sim, spec)
                .ok()
                .map(|(rid, _)| rid)
        };
        match submitted {
            Some(rid) => {
                i.inflight.insert(rid.0, base);
                i.engine.set_inflight(base, true);
                if to < from {
                    i.stats.promotions += 1;
                } else {
                    i.stats.demotions += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Completion waker: retire finished policy moves, advance chains,
    /// cascade parked moves into freed capacity, and re-arm.
    fn drain(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        let mut i = inner.borrow_mut();
        i.poll_armed = false;
        let memif = i.memif;
        while let Ok(Some(c)) = memif.retrieve_completed(sys) {
            let Some(base) = i.inflight.remove(&c.req_id.0) else {
                continue;
            };
            // A floor plunge mid-journey: submit the next hop and keep
            // the region in flight.
            if let Some(mut chain) = i.chains.remove(&base) {
                match chain.on_completion(&memif, sys, sim, &c) {
                    Ok(ChainStep::Advanced(rid)) => {
                        i.inflight.insert(rid.0, base);
                        i.chains.insert(base, chain);
                        i.stats.cascades += 1;
                        continue;
                    }
                    Ok(ChainStep::Finished | ChainStep::Failed(_) | ChainStep::NotMine)
                    | Err(_) => {} // terminal either way: retire below
                }
            }
            i.engine.set_inflight(base, false);
            if c.status.is_ok() {
                i.stats.moves_ok += 1;
            } else {
                i.stats.moves_failed += 1;
            }
            // Residency follows the *mapping*, not the status: an
            // aborted migration restored the original frames, while a
            // raced one still relocated them. The page table is the
            // truth either way.
            let space = i.space;
            let rank = resident_rank(sys, space, VirtAddr::new(base), &i.tiers);
            i.engine.set_tier(base, TierRank(rank as u16));
            // Release installs final PTEs with young cleared — the same
            // state an application reference leaves. Re-arm the bits now
            // (discarding the scan) so the next epoch does not mistake
            // the move itself for references and ping-pong the region.
            if let Some(region) = i.engine.region(base).copied() {
                let _ = sys.space_mut(space).scan_referenced(
                    VirtAddr::new(base),
                    region.pages,
                    region.page_size,
                );
                sys.meter.charge(
                    Context::KernelThread,
                    sys.cost.policy_scan_pte * u64::from(region.pages),
                );
            }
        }
        // Cascade: freed capacity lets parked moves go now rather than
        // next epoch.
        if i.cfg.cascade && !i.waiting.is_empty() {
            let mut budget = i.cfg.max_inflight.saturating_sub(i.inflight.len());
            let parked = std::mem::take(&mut i.waiting);
            for (base, to) in parked {
                let from = i.engine.region(base).map_or(to, |r| usize::from(r.tier.0));
                let ready = budget > 0
                    && i.engine.region(base).is_some_and(|r| !r.inflight)
                    && from != to
                    && Inner::fits(&i, sys, base, to);
                if ready && Inner::issue(&mut i, sys, sim, base, from, to) {
                    budget -= 1;
                    i.stats.cascades += 1;
                } else {
                    i.waiting.push((base, to));
                }
            }
        }
        if i.inflight.is_empty() {
            for ev in std::mem::take(&mut i.on_idle) {
                sim.schedule_after(SimDuration::from_ns(0), ev);
            }
        } else {
            Inner::arm_poll(&mut i, sys, sim);
        }
    }

    fn arm_poll(i: &mut std::cell::RefMut<'_, Inner>, sys: &mut System, sim: &mut Sim<System>) {
        let hook = i.drain_hook.expect("set at launch");
        let memif = i.memif;
        if memif
            .poll_event(sys, sim, SimEvent::Hook { hook, arg: 0 })
            .is_ok()
        {
            i.poll_armed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif::{MemifConfig, RaceMode};
    use memif_mm::AccessKind;

    const PAGE: PageSize = PageSize::Small4K;
    const PAGES: u32 = 32; // 128 KiB regions

    /// End-to-end daemon run on KeyStone II: a repeatedly-touched slow
    /// region is promoted to SRAM and an untouched SRAM resident is
    /// demoted, with all bookkeeping consistent.
    #[test]
    fn daemon_promotes_hot_and_demotes_cold() {
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let hot = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
        let cold = sys.mmap(space, PAGES, PAGE, NodeId(1)).unwrap();

        let config = MemifConfig {
            race_mode: RaceMode::DetectRecover,
            ..MemifConfig::default()
        };
        let memif = Memif::open(&mut sys, space, config).unwrap();
        let daemon =
            PolicyDaemon::launch(&mut sys, &mut sim, memif, space, PolicyConfig::default());
        daemon.track(&sys, hot, PAGES, PAGE);
        daemon.track(&sys, cold, PAGES, PAGE);
        assert_eq!(daemon.resident_tier(hot), Some(TierRank(1)), "DDR rank");
        assert_eq!(daemon.resident_tier(cold), Some(TierRank(0)), "SRAM rank");

        // The app: touch every page of `hot` each 400 µs, ten times.
        // Touches sit between the daemon's 1 ms epoch boundaries, so the
        // promotion window never overlaps a touch.
        let d3 = daemon.clone();
        let touch: Rc<RefCell<Option<HookId>>> = Rc::new(RefCell::new(None));
        let touch2 = Rc::clone(&touch);
        let id = sys.register_hook(move |sys, sim, tick| {
            for p in 0..PAGES {
                let va = hot.offset(u64::from(p) * PAGE.bytes());
                sys.space_mut(space).access(va, AccessKind::Read).unwrap();
            }
            if tick < 10 {
                let hook = touch2.borrow().expect("set before run");
                sim.schedule_after(
                    SimDuration::from_ns(400_000),
                    SimEvent::Hook {
                        hook,
                        arg: tick + 1,
                    },
                );
            } else {
                d3.stop();
            }
        });
        *touch.borrow_mut() = Some(id);
        sim.schedule_after(SimDuration::from_ns(0), SimEvent::Hook { hook: id, arg: 1 });
        sim.run(&mut sys);

        let stats = daemon.stats();
        assert!(stats.epochs >= 3, "epoch loop ran: {stats:?}");
        assert!(stats.promotions >= 1, "hot region promoted: {stats:?}");
        assert!(stats.demotions >= 1, "cold region demoted: {stats:?}");
        assert!(stats.moves_ok >= 2, "moves completed: {stats:?}");
        assert_eq!(
            daemon.resident_tier(hot),
            Some(TierRank(0)),
            "hot now on SRAM: {stats:?}"
        );
        assert_eq!(
            daemon.resident_tier(cold),
            Some(TierRank(1)),
            "cold now on DDR: {stats:?}"
        );
        assert!(!daemon.busy(), "window drained");
    }

    /// A stopped daemon schedules nothing further: the simulation
    /// quiesces even with tracked regions.
    #[test]
    fn stop_quiesces_the_loop() {
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let base = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
        let daemon =
            PolicyDaemon::launch(&mut sys, &mut sim, memif, space, PolicyConfig::default());
        daemon.track(&sys, base, PAGES, PAGE);
        daemon.stop();
        sim.run(&mut sys);
        assert_eq!(daemon.stats().epochs, 0, "stopped before the first epoch");
    }

    /// On a four-rank ladder with freezing on, a never-touched DRAM
    /// region plunges to the compressed floor via a chained multi-hop
    /// move, with codec work visible on the meter.
    #[test]
    fn frozen_region_sinks_to_the_compressed_floor() {
        let mut sys = System::with_profile(
            memif_hwsim::Topology::ranked(4),
            memif_hwsim::CostModel::keystone_ii(),
        );
        let mut sim = Sim::new();
        let space = sys.new_space();
        // node0 = DRAM, rank 1 on the 4-tier ladder.
        let idle = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
        let cfg = PolicyConfig {
            freeze_permille: 50,
            ..PolicyConfig::default()
        };
        let daemon = PolicyDaemon::launch(&mut sys, &mut sim, memif, space, cfg);
        daemon.track(&sys, idle, PAGES, PAGE);
        assert_eq!(daemon.resident_tier(idle), Some(TierRank(1)));

        // Let a few epochs pass, then stop the loop.
        let d2 = daemon.clone();
        let stopper = sys.register_hook(move |_sys, _sim, _| d2.stop());
        sim.schedule_after(
            SimDuration::from_ns(4_500_000),
            SimEvent::Hook {
                hook: stopper,
                arg: 0,
            },
        );
        sim.run(&mut sys);

        let stats = daemon.stats();
        assert_eq!(daemon.resident_tier(idle), Some(TierRank(3)), "{stats:?}");
        assert!(stats.cascades >= 1, "chained through NVM: {stats:?}");
        assert!(stats.moves_ok >= 1, "{stats:?}");
        let end = sys.space(space).translate(idle).unwrap();
        assert_eq!(sys.node_of(end), Some(NodeId(3)), "zram backs it");
        assert!(
            sys.meter.compress_busy().as_ns() > 0,
            "sinking into zram paid compression"
        );
        assert!(!daemon.busy());
    }
}
