//! The placement daemon: an epoch loop over the simulation.
//!
//! Each epoch the daemon scans its tracked regions' reference bits
//! ([`memif_mm::AddressSpace::scan_referenced`]), folds the results
//! into the [`PolicyEngine`]'s decayed heat, asks for a plan, and
//! issues the moves through [`Memif::submit_background`] — staged on
//! the blue queue and drained by the kernel workers like any other
//! request, but with no user/kernel crossing and a bounded in-flight
//! window so placement repair never crowds out application
//! submissions. Its own CPU time (wakeup, PTE scans, heat updates) is
//! priced by the cost model and charged to the kernel-thread context.
//!
//! Regions with a move outstanding are neither scanned (re-arming
//! young on a semi-final PTE would mask the Release race check) nor
//! re-planned; their heat decays until the completion retires.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use memif::{
    Context, HookId, Memif, MoveSpec, NodeId, PageSize, Sim, SimDuration, SimEvent, SpaceId,
    System, VirtAddr,
};
use memif_hwsim::MemoryKind;

use crate::engine::PolicyEngine;
use crate::PolicyConfig;

/// Counters the daemon maintains, surfaced through `memifctl` stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Sampling epochs completed.
    pub epochs: u64,
    /// PTEs inspected by reference scans (including skipped entries).
    pub pages_scanned: u64,
    /// Pages observed referenced since their previous scan.
    pub pages_referenced: u64,
    /// Promotions issued toward the fast node.
    pub promotions: u64,
    /// Demotions issued toward the slow node.
    pub demotions: u64,
    /// Policy moves that completed successfully.
    pub moves_ok: u64,
    /// Policy moves that completed without relocating cleanly (aborted
    /// by a racing write, failed, or raced); the region stays tracked
    /// and a later epoch retries.
    pub moves_failed: u64,
    /// Planned promotions dropped because the fast node was over its
    /// watermark (retried once capacity frees).
    pub dropped: u64,
}

struct Inner {
    memif: Memif,
    space: SpaceId,
    cfg: PolicyConfig,
    engine: PolicyEngine,
    fast: NodeId,
    slow: NodeId,
    /// Outstanding policy moves: request id → region base.
    inflight: HashMap<u64, u64>,
    stats: PolicyStats,
    running: bool,
    epoch_hook: Option<HookId>,
    drain_hook: Option<HookId>,
    poll_armed: bool,
    /// Events parked by [`PolicyDaemon::when_idle`], released when the
    /// in-flight window drains (the synchronous-migration comparator's
    /// app gate).
    on_idle: Vec<SimEvent>,
}

/// Handle to a launched placement daemon.
#[derive(Clone)]
pub struct PolicyDaemon {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for PolicyDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let i = self.inner.borrow();
        f.debug_struct("PolicyDaemon")
            .field("running", &i.running)
            .field("inflight", &i.inflight.len())
            .field("stats", &i.stats)
            .finish()
    }
}

impl PolicyDaemon {
    /// Starts the daemon: registers its epoch and completion hooks and
    /// schedules the first epoch one period out. The daemon assumes it
    /// owns `memif`'s completion queue — open a dedicated instance for
    /// it rather than sharing the application's.
    pub fn launch(
        sys: &mut System,
        sim: &mut Sim<System>,
        memif: Memif,
        space: SpaceId,
        cfg: PolicyConfig,
    ) -> Self {
        let fast = sys
            .topo
            .all_nodes()
            .iter()
            .find(|n| n.kind == MemoryKind::Fast)
            .map_or(NodeId(1), |n| n.id);
        let slow = sys
            .topo
            .all_nodes()
            .iter()
            .find(|n| n.kind == MemoryKind::Slow)
            .map_or(NodeId(0), |n| n.id);
        let inner = Rc::new(RefCell::new(Inner {
            memif,
            space,
            engine: PolicyEngine::new(&cfg),
            cfg,
            fast,
            slow,
            inflight: HashMap::new(),
            stats: PolicyStats::default(),
            running: true,
            epoch_hook: None,
            drain_hook: None,
            poll_armed: false,
            on_idle: Vec::new(),
        }));
        let epoch_hook = {
            let inner = Rc::clone(&inner);
            sys.register_hook(move |sys, sim, arg| Inner::epoch(&inner, sys, sim, arg))
        };
        let drain_hook = {
            let inner = Rc::clone(&inner);
            sys.register_hook(move |sys, sim, _arg| Inner::drain(&inner, sys, sim))
        };
        let epoch = {
            let mut i = inner.borrow_mut();
            i.epoch_hook = Some(epoch_hook);
            i.drain_hook = Some(drain_hook);
            i.cfg.epoch
        };
        sim.schedule_after(
            epoch,
            SimEvent::Hook {
                hook: epoch_hook,
                arg: 1,
            },
        );
        PolicyDaemon { inner }
    }

    /// Registers a region for placement; residency is read from the
    /// current mapping.
    pub fn track(&self, sys: &System, base: VirtAddr, pages: u32, page_size: PageSize) {
        let mut i = self.inner.borrow_mut();
        let fast = i.fast;
        let resident = resident_fast(sys, i.space, base, fast);
        i.engine.track(base.as_u64(), pages, page_size, resident);
    }

    /// Stops the epoch loop: the next scheduled epoch becomes a no-op
    /// and nothing further is scheduled. Outstanding moves still drain.
    pub fn stop(&self) {
        self.inner.borrow_mut().running = false;
    }

    /// True while any policy move is outstanding.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.inner.borrow().inflight.is_empty()
    }

    /// Runs `event` once the in-flight window drains — immediately if
    /// the daemon is already idle. The synchronous-migration comparator
    /// parks the application's next tick here.
    pub fn when_idle(&self, sim: &mut Sim<System>, event: SimEvent) {
        let mut i = self.inner.borrow_mut();
        if i.inflight.is_empty() {
            sim.schedule_after(SimDuration::from_ns(0), event);
        } else {
            i.on_idle.push(event);
        }
    }

    /// A snapshot of the daemon's counters.
    #[must_use]
    pub fn stats(&self) -> PolicyStats {
        self.inner.borrow().stats
    }

    /// True while `base` is on the fast node according to the engine's
    /// bookkeeping.
    #[must_use]
    pub fn is_resident_fast(&self, base: VirtAddr) -> bool {
        self.inner
            .borrow()
            .engine
            .region(base.as_u64())
            .is_some_and(|r| r.resident_fast)
    }
}

/// Whether `base`'s first page currently maps to the fast node.
fn resident_fast(sys: &System, space: SpaceId, base: VirtAddr, fast: NodeId) -> bool {
    sys.space(space)
        .translate(base)
        .and_then(|pa| sys.node_of(pa))
        == Some(fast)
}

impl Inner {
    /// One sampling epoch: scan, fold, plan, issue, reschedule.
    fn epoch(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>, arg: u64) {
        let (space, regions, period) = {
            let i = inner.borrow();
            if !i.running {
                return; // stopped: no reschedule, the loop quiesces
            }
            let regions: Vec<(u64, u32, PageSize, bool)> = i
                .engine
                .regions()
                .map(|r| (r.base, r.pages, r.page_size, r.inflight))
                .collect();
            (i.space, regions, i.cfg.epoch)
        };

        // Scan outside the borrow (scans mutate the address space, not
        // the daemon), then fold results in.
        let mut scans: Vec<(u64, Option<u32>)> = Vec::with_capacity(regions.len());
        let mut pte_work = 0u64;
        for &(base, pages, page_size, inflight) in &regions {
            if inflight {
                scans.push((base, None)); // decay only; see module docs
            } else {
                let out =
                    sys.space_mut(space)
                        .scan_referenced(VirtAddr::new(base), pages, page_size);
                pte_work += u64::from(out.scanned) + u64::from(out.skipped);
                scans.push((base, Some(out.referenced)));
            }
        }

        let mut i = inner.borrow_mut();
        i.stats.epochs += 1;
        i.stats.pages_scanned += pte_work;
        for &(base, referenced) in &scans {
            match referenced {
                Some(n) => {
                    i.stats.pages_referenced += u64::from(n);
                    i.engine.observe(base, n);
                }
                None => i.engine.decay(base),
            }
        }
        let fast = i.fast;
        for &(base, _, _, inflight) in &regions {
            if !inflight {
                let r = resident_fast(sys, space, VirtAddr::new(base), fast);
                i.engine.set_resident(base, r);
            }
        }

        let cost = sys.cost.policy_epoch_base
            + sys.cost.policy_scan_pte * pte_work
            + sys.cost.policy_heat_update * regions.len() as u64;
        sys.meter.charge(Context::KernelThread, cost);

        let plan = i
            .engine
            .plan(sys.alloc.free_bytes(fast), sys.alloc.total_bytes(fast));
        i.stats.dropped += u64::from(plan.dropped);

        let mut budget = i.cfg.max_inflight.saturating_sub(i.inflight.len());
        for &base in &plan.demote {
            if budget == 0 {
                break;
            }
            if Inner::issue(&mut i, sys, sim, base, false) {
                budget -= 1;
            } else {
                break; // request slots exhausted; retry next epoch
            }
        }
        for &base in &plan.promote {
            if budget == 0 {
                break;
            }
            let Some(r) = i.engine.region(base).copied() else {
                continue;
            };
            // The plan projected capacity freed by this epoch's
            // demotions; those are still in flight, so re-check actual
            // free bytes and defer what does not fit yet.
            if sys.alloc.free_bytes(fast) < r.bytes() {
                i.stats.dropped += 1;
                continue;
            }
            if Inner::issue(&mut i, sys, sim, base, true) {
                budget -= 1;
            } else {
                break;
            }
        }

        if !i.inflight.is_empty() && !i.poll_armed {
            Inner::arm_poll(&mut i, sys, sim);
        }
        let hook = i.epoch_hook.expect("set at launch");
        drop(i);
        sim.schedule_after(period, SimEvent::Hook { hook, arg: arg + 1 });
    }

    /// Issues one policy migration; true on success.
    fn issue(
        i: &mut std::cell::RefMut<'_, Inner>,
        sys: &mut System,
        sim: &mut Sim<System>,
        base: u64,
        to_fast: bool,
    ) -> bool {
        let Some(r) = i.engine.region(base).copied() else {
            return false;
        };
        let dst = if to_fast { i.fast } else { i.slow };
        let spec =
            MoveSpec::migrate(VirtAddr::new(base), r.pages, r.page_size, dst).with_user_data(base);
        match i.memif.submit_background(sys, sim, spec) {
            Ok((rid, _cpu)) => {
                i.inflight.insert(rid.0, base);
                i.engine.set_inflight(base, true);
                if to_fast {
                    i.stats.promotions += 1;
                } else {
                    i.stats.demotions += 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Completion waker: retire finished policy moves and re-arm.
    fn drain(inner: &Rc<RefCell<Inner>>, sys: &mut System, sim: &mut Sim<System>) {
        let mut i = inner.borrow_mut();
        i.poll_armed = false;
        let memif = i.memif;
        while let Ok(Some(c)) = memif.retrieve_completed(sys) {
            let Some(base) = i.inflight.remove(&c.req_id.0) else {
                continue;
            };
            i.engine.set_inflight(base, false);
            if c.status.is_ok() {
                i.stats.moves_ok += 1;
            } else {
                i.stats.moves_failed += 1;
            }
            // Residency follows the *mapping*, not the status: an
            // aborted migration restored the original frames, while a
            // raced one still relocated them. The page table is the
            // truth either way.
            let (space, fast) = (i.space, i.fast);
            let r = resident_fast(sys, space, VirtAddr::new(base), fast);
            i.engine.set_resident(base, r);
            // Release installs final PTEs with young cleared — the same
            // state an application reference leaves. Re-arm the bits now
            // (discarding the scan) so the next epoch does not mistake
            // the move itself for references and ping-pong the region.
            if let Some(region) = i.engine.region(base).copied() {
                let _ = sys.space_mut(space).scan_referenced(
                    VirtAddr::new(base),
                    region.pages,
                    region.page_size,
                );
                sys.meter.charge(
                    Context::KernelThread,
                    sys.cost.policy_scan_pte * u64::from(region.pages),
                );
            }
        }
        if i.inflight.is_empty() {
            for ev in std::mem::take(&mut i.on_idle) {
                sim.schedule_after(SimDuration::from_ns(0), ev);
            }
        } else {
            Inner::arm_poll(&mut i, sys, sim);
        }
    }

    fn arm_poll(i: &mut std::cell::RefMut<'_, Inner>, sys: &mut System, sim: &mut Sim<System>) {
        let hook = i.drain_hook.expect("set at launch");
        let memif = i.memif;
        if memif
            .poll_event(sys, sim, SimEvent::Hook { hook, arg: 0 })
            .is_ok()
        {
            i.poll_armed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memif::{MemifConfig, RaceMode};
    use memif_mm::AccessKind;

    const PAGE: PageSize = PageSize::Small4K;
    const PAGES: u32 = 32; // 128 KiB regions

    /// End-to-end daemon run on KeyStone II: a repeatedly-touched slow
    /// region is promoted to SRAM and an untouched SRAM resident is
    /// demoted, with all bookkeeping consistent.
    #[test]
    fn daemon_promotes_hot_and_demotes_cold() {
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let hot = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
        let cold = sys.mmap(space, PAGES, PAGE, NodeId(1)).unwrap();

        let config = MemifConfig {
            race_mode: RaceMode::DetectRecover,
            ..MemifConfig::default()
        };
        let memif = Memif::open(&mut sys, space, config).unwrap();
        let daemon =
            PolicyDaemon::launch(&mut sys, &mut sim, memif, space, PolicyConfig::default());
        daemon.track(&sys, hot, PAGES, PAGE);
        daemon.track(&sys, cold, PAGES, PAGE);
        assert!(!daemon.is_resident_fast(hot));
        assert!(daemon.is_resident_fast(cold));

        // The app: touch every page of `hot` each 400 µs, ten times.
        // Touches sit between the daemon's 1 ms epoch boundaries, so the
        // promotion window never overlaps a touch.
        let d3 = daemon.clone();
        let touch: Rc<RefCell<Option<HookId>>> = Rc::new(RefCell::new(None));
        let touch2 = Rc::clone(&touch);
        let id = sys.register_hook(move |sys, sim, tick| {
            for p in 0..PAGES {
                let va = hot.offset(u64::from(p) * PAGE.bytes());
                sys.space_mut(space).access(va, AccessKind::Read).unwrap();
            }
            if tick < 10 {
                let hook = touch2.borrow().expect("set before run");
                sim.schedule_after(
                    SimDuration::from_ns(400_000),
                    SimEvent::Hook {
                        hook,
                        arg: tick + 1,
                    },
                );
            } else {
                d3.stop();
            }
        });
        *touch.borrow_mut() = Some(id);
        sim.schedule_after(SimDuration::from_ns(0), SimEvent::Hook { hook: id, arg: 1 });
        sim.run(&mut sys);

        let stats = daemon.stats();
        assert!(stats.epochs >= 3, "epoch loop ran: {stats:?}");
        assert!(stats.promotions >= 1, "hot region promoted: {stats:?}");
        assert!(stats.demotions >= 1, "cold region demoted: {stats:?}");
        assert!(stats.moves_ok >= 2, "moves completed: {stats:?}");
        assert!(daemon.is_resident_fast(hot), "hot now on SRAM: {stats:?}");
        assert!(!daemon.is_resident_fast(cold), "cold now on DDR: {stats:?}");
        assert!(!daemon.busy(), "window drained");
    }

    /// A stopped daemon schedules nothing further: the simulation
    /// quiesces even with tracked regions.
    #[test]
    fn stop_quiesces_the_loop() {
        let mut sys = System::keystone_ii();
        let mut sim = Sim::new();
        let space = sys.new_space();
        let base = sys.mmap(space, PAGES, PAGE, NodeId(0)).unwrap();
        let memif = Memif::open(&mut sys, space, MemifConfig::default()).unwrap();
        let daemon =
            PolicyDaemon::launch(&mut sys, &mut sim, memif, space, PolicyConfig::default());
        daemon.track(&sys, base, PAGES, PAGE);
        daemon.stop();
        sim.run(&mut sys);
        assert_eq!(daemon.stats().epochs, 0, "stopped before the first epoch");
    }
}
