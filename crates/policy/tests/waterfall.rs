//! Property-based tests for the waterfall planner: whatever the ladder
//! shape (2/3/4 tiers), knob overrides, or occupancy chaos, a plan
//! - never lands a move above a non-floor tier's watermark ceiling,
//!   with this epoch's demotions credited as they free bytes;
//! - never re-plans a region with a move outstanding;
//! - moves every region exactly one rank, except frozen regions, which
//!   plunge straight to the compressed floor;
//! - only sinks cold/frozen regions and only climbs hot ones; and
//! - is a pure function of engine state (same state, same plan), which
//!   is what makes the daemon's epoch loop replayable.

use std::collections::HashSet;

use memif_hwsim::TierRank;
use memif_mm::PageSize;
use memif_policy::{PolicyConfig, PolicyEngine, PolicyPlan, TierOccupancy, TierTuning};
use proptest::prelude::*;

const PAGE: PageSize = PageSize::Small4K;

/// One tracked region's starting state, by strategy.
#[derive(Debug, Clone)]
struct Spec {
    pages: u32,
    heat: u32,
    tier: u16,
    inflight: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (1u32..256, 0u32..400, 0u16..4, any::<bool>()).prop_map(|(pages, heat, tier, inflight)| Spec {
        pages,
        heat,
        tier,
        inflight,
    })
}

fn knob() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), (0u32..1200).prop_map(Some)]
}

fn tuning() -> impl Strategy<Value = TierTuning> {
    (knob(), knob(), knob()).prop_map(|(p, d, w)| TierTuning {
        promote_permille: p,
        demote_permille: d,
        watermark_permille: w,
    })
}

/// Occupancy from an unordered byte pair: total = max, free = min — so
/// `free <= total` always, while zero-capacity and brim-full tiers stay
/// reachable (the chaos cases).
fn occupancy(pair: (u64, u64)) -> TierOccupancy {
    TierOccupancy {
        free: pair.0.min(pair.1),
        total: pair.0.max(pair.1),
    }
}

fn build(cfg: &PolicyConfig, tiers: usize, floor: bool, specs: &[Spec]) -> PolicyEngine {
    let mut e = PolicyEngine::with_tiers(cfg, tiers, floor);
    for (i, s) in specs.iter().enumerate() {
        let base = (i as u64 + 1) * 0x0100_0000;
        e.track(base, s.pages, PAGE, TierRank(s.tier % tiers as u16));
        e.observe(base, s.heat);
        e.set_inflight(base, s.inflight);
    }
    e
}

/// Replays `plan` in issue order against an independent occupancy
/// ledger and asserts every invariant the planner promises.
fn check_plan(e: &PolicyEngine, cfg: &PolicyConfig, occ: &[TierOccupancy], plan: &PolicyPlan) {
    let floor = TierRank(e.tiers() as u16 - 1);
    let ceilings: Vec<u64> = occ
        .iter()
        .enumerate()
        .map(|(t, o)| {
            let w = cfg
                .tier_overrides
                .get(t)
                .and_then(|o| o.watermark_permille)
                .unwrap_or(cfg.watermark_permille);
            o.total / 1000 * u64::from(w)
        })
        .collect();
    let mut used: Vec<u64> = occ.iter().map(|o| o.total - o.free).collect();
    let mut seen = HashSet::new();

    for m in plan.demote.iter().chain(plan.promote.iter()) {
        let r = e.region(m.base).expect("plans only tracked regions");
        prop_assert!(!r.inflight, "replanned inflight region {:#x}", m.base);
        prop_assert!(seen.insert(m.base), "region {:#x} planned twice", m.base);
        prop_assert_eq!(r.tier, m.from, "plan disagrees with residency");

        if m.to > m.from {
            // Sinking: one rank, or a frozen plunge to the floor.
            prop_assert!(m.from < floor, "demoted off the ladder");
            prop_assert!(
                m.to == m.from.down() || (e.is_frozen(r) && m.to == floor),
                "{:#x}: sink {} -> {} is neither one rank nor a frozen plunge",
                m.base,
                m.from,
                m.to
            );
            prop_assert!(
                e.is_cold(r) || e.is_frozen(r),
                "sank a region that is neither cold nor frozen"
            );
        } else {
            prop_assert!(m.from.0 > 0, "promoted above the top rank");
            prop_assert_eq!(m.to, m.from.up(), "promotions climb exactly one rank");
            prop_assert!(e.is_hot(r), "climbed a region that is not hot");
        }

        let (f, t) = (m.from.0 as usize, m.to.0 as usize);
        used[f] = used[f].saturating_sub(r.bytes());
        used[t] += r.bytes();
        if m.to != floor {
            prop_assert!(
                used[t] <= ceilings[t],
                "tier {} overfilled: {} > ceiling {}",
                m.to,
                used[t],
                ceilings[t]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One-shot plans over random ladders, knobs, heats, and
    /// occupancies (including zero-capacity and brim-full tiers) keep
    /// every invariant, and planning is deterministic.
    #[test]
    fn waterfall_plans_hold_their_invariants(
        tiers in 2usize..=4,
        compressed in any::<bool>(),
        freeze in prop_oneof![Just(0u32), Just(50), Just(300)],
        watermark in 400u32..1000,
        overrides in proptest::collection::vec(tuning(), 0..5),
        specs in proptest::collection::vec(spec(), 1..40),
        occ_pairs in proptest::collection::vec((0u64..(64 << 20), 0u64..(64 << 20)), 4),
    ) {
        let cfg = PolicyConfig {
            watermark_permille: watermark,
            freeze_permille: freeze,
            tier_overrides: overrides,
            ..PolicyConfig::default()
        };
        let e = build(&cfg, tiers, compressed, &specs);
        let occ: Vec<TierOccupancy> =
            occ_pairs.into_iter().take(tiers).map(occupancy).collect();

        let plan = e.plan(&occ);
        prop_assert_eq!(&plan, &e.plan(&occ), "same state, same plan");
        check_plan(&e, &cfg, &occ, &plan);
    }

    /// Chaos churn: a random multi-epoch history of observes, decays,
    /// inflight flips, and residency changes — every intermediate plan
    /// still holds the invariants, and two engines fed the identical
    /// history stay in lockstep.
    #[test]
    fn churned_engines_stay_deterministic_and_safe(
        tiers in 2usize..=4,
        freeze in prop_oneof![Just(0u32), Just(120)],
        specs in proptest::collection::vec(spec(), 1..24),
        ops in proptest::collection::vec(
            prop_oneof![
                (0usize..24, 0u32..300).prop_map(|(i, h)| Op::Observe(i, h)),
                (0usize..24).prop_map(Op::Decay),
                (0usize..24, any::<bool>()).prop_map(|(i, b)| Op::Inflight(i, b)),
                (0usize..24, 0u16..4).prop_map(|(i, t)| Op::SetTier(i, t)),
                Just(Op::Plan),
            ],
            1..80,
        ),
        occ_pairs in proptest::collection::vec((0u64..(64 << 20), 0u64..(64 << 20)), 4),
    ) {
        let cfg = PolicyConfig {
            freeze_permille: freeze,
            ..PolicyConfig::default()
        };
        let mut a = build(&cfg, tiers, true, &specs);
        let mut b = build(&cfg, tiers, true, &specs);
        let occ: Vec<TierOccupancy> =
            occ_pairs.into_iter().take(tiers).map(occupancy).collect();
        let base_of = |i: usize| ((i % specs.len()) as u64 + 1) * 0x0100_0000;

        for op in ops {
            match op {
                Op::Observe(i, h) => {
                    a.observe(base_of(i), h);
                    b.observe(base_of(i), h);
                }
                Op::Decay(i) => {
                    a.decay(base_of(i));
                    b.decay(base_of(i));
                }
                Op::Inflight(i, fl) => {
                    a.set_inflight(base_of(i), fl);
                    b.set_inflight(base_of(i), fl);
                }
                Op::SetTier(i, t) => {
                    let tier = TierRank(t % tiers as u16);
                    a.set_tier(base_of(i), tier);
                    b.set_tier(base_of(i), tier);
                }
                Op::Plan => {
                    let plan = a.plan(&occ);
                    prop_assert_eq!(&plan, &b.plan(&occ), "histories diverged");
                    check_plan(&a, &cfg, &occ, &plan);
                }
            }
        }
    }
}

/// A chaos-history step over the engine's mutating surface.
#[derive(Debug, Clone)]
enum Op {
    Observe(usize, u32),
    Decay(usize),
    Inflight(usize, bool),
    SetTier(usize, u16),
    Plan,
}
